//! Integration tests for query semantics across detectors: α behaviour,
//! unequal windows, region sizes, and answer well-formedness.

use surge::prelude::*;

fn small_stream() -> Vec<SpatialObject> {
    // Deterministic: a steady cluster at (1,1) and a fresh burst at (8,8).
    let mut out = Vec::new();
    let mut id = 0u64;
    // steady: arrivals throughout [0, 4000] — 25 per window (wc = 50), the
    // same weight sitting in the past window (fp = fc, zero burstiness).
    for t in (0..4_000).step_by(40) {
        out.push(SpatialObject::new(
            id,
            2.0,
            Point::new(1.0 + (id % 3) as f64 * 0.1, 1.0),
            t,
        ));
        id += 1;
    }
    // burst: arrivals only in [3000, 4000]
    for t in (3_000..4_000).step_by(50) {
        out.push(SpatialObject::new(
            id,
            2.0,
            Point::new(8.0 + (id % 2) as f64 * 0.1, 8.0),
            t,
        ));
        id += 1;
    }
    out.sort_by_key(|o| o.created);
    out
}

fn run_detector(det: &mut dyn BurstDetector, stream: &[SpatialObject]) -> Option<RegionAnswer> {
    let mut windows = SlidingWindowEngine::new(WindowConfig::equal(1_000));
    for obj in stream {
        for ev in windows.push(*obj) {
            det.on_event(&ev);
        }
    }
    det.current()
}

#[test]
fn alpha_steers_every_detector_between_volume_and_burstiness() {
    let stream = small_stream();
    // At the end: the steady cluster has high fc AND high fp; the burst has
    // moderate fc and zero fp. Low α favours volume, high α the clean burst.
    let query_low =
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), 0.0);
    let query_high =
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), 0.9);
    for (make, name) in [
        (
            (|q: SurgeQuery| Box::new(CellCspot::new(q)) as Box<dyn BurstDetector>)
                as fn(SurgeQuery) -> Box<dyn BurstDetector>,
            "CCS",
        ),
        (|q| Box::new(Ag2::new(q)), "aG2"),
        (|q| Box::new(BaseDetector::new(q)), "Base"),
    ] {
        let low = run_detector(make(query_low).as_mut(), &stream).unwrap();
        let high = run_detector(make(query_high).as_mut(), &stream).unwrap();
        assert!(
            low.region.contains(Point::new(1.0, 1.0)),
            "{name}: α=0 should pick the steady high-volume cluster, got {:?}",
            low.region
        );
        assert!(
            high.region.contains(Point::new(8.0, 8.0)),
            "{name}: α=0.9 should pick the fresh burst, got {:?}",
            high.region
        );
    }
}

#[test]
fn larger_regions_never_score_less_for_exact_detector() {
    let stream = small_stream();
    let mut prev = 0.0;
    for scale in [0.5, 1.0, 2.0, 4.0] {
        let query = SurgeQuery::whole_space(
            RegionSize::new(scale, scale),
            WindowConfig::equal(1_000),
            0.0,
        );
        let ans = run_detector(&mut CellCspot::new(query), &stream).unwrap();
        // With α=0 the score is the max enclosed current weight, monotone in
        // the region size.
        assert!(
            ans.score >= prev - 1e-12,
            "score decreased at scale {scale}: {} < {prev}",
            ans.score
        );
        prev = ans.score;
    }
}

#[test]
fn unequal_windows_are_supported_by_all_detectors() {
    let stream = small_stream();
    let query = SurgeQuery::whole_space(
        RegionSize::new(1.0, 1.0),
        WindowConfig::new(800, 2_400),
        0.5,
    );
    let mut ccs = CellCspot::new(query);
    let mut base = BaseDetector::new(query);
    let mut gaps = GapSurge::new(query);
    let mut windows = SlidingWindowEngine::new(query.windows);
    for obj in &stream {
        for ev in windows.push(*obj) {
            ccs.on_event(&ev);
            base.on_event(&ev);
            gaps.on_event(&ev);
        }
    }
    let a = ccs.current().unwrap().score;
    let b = base.current().unwrap().score;
    assert!((a - b).abs() <= 1e-9 * a.max(1e-12));
    let g = gaps.current().unwrap().score;
    assert!(g <= a + 1e-12 && g >= query.burst_params().grid_approx_ratio() * a - 1e-12);
}

#[test]
fn answers_are_well_formed() {
    let stream = small_stream();
    let query =
        SurgeQuery::whole_space(RegionSize::new(1.5, 0.75), WindowConfig::equal(1_000), 0.3);
    let detectors: Vec<Box<dyn BurstDetector>> = vec![
        Box::new(CellCspot::new(query)),
        Box::new(BaseDetector::new(query)),
        Box::new(Ag2::new(query)),
        Box::new(GapSurge::new(query)),
        Box::new(MgapSurge::new(query)),
    ];
    for mut det in detectors {
        let ans = run_detector(det.as_mut(), &stream).unwrap();
        assert!(ans.score.is_finite());
        assert!(ans.score >= 0.0);
        assert!((ans.region.width() - 1.5).abs() < 1e-9, "{}", det.name());
        assert!((ans.region.height() - 0.75).abs() < 1e-9, "{}", det.name());
        assert!(
            ans.region.contains(ans.point) || ans.point == Point::new(ans.region.x1, ans.region.y1)
        );
    }
}

#[test]
fn all_topk_detectors_return_sorted_disjoint_objects_answers() {
    let stream = small_stream();
    let query = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), 0.5);
    let mut kccs = KCellCspot::new(query, 3);
    let mut kgaps = KGapSurge::new(query, 3);
    let mut kmgaps = KMgapSurge::new(query, 3);
    let mut naive = NaiveTopK::new(query, 3);
    let mut windows = SlidingWindowEngine::new(query.windows);
    for obj in &stream {
        for ev in windows.push(*obj) {
            kccs.on_event(&ev);
            kgaps.on_event(&ev);
            kmgaps.on_event(&ev);
            naive.on_event(&ev);
        }
    }
    for (name, top) in [
        ("kCCS", kccs.current_topk()),
        ("kGAPS", kgaps.current_topk()),
        ("kMGAPS", kmgaps.current_topk()),
        ("Naive", naive.current_topk()),
    ] {
        assert!(!top.is_empty(), "{name} returned nothing");
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12, "{name} not sorted");
        }
        for a in &top {
            assert!(a.score > 0.0, "{name} returned non-positive score");
        }
    }
    // Exact and naive agree rank by rank.
    let e = kccs.current_topk();
    let n = naive.current_topk();
    assert_eq!(e.len(), n.len());
    for (a, b) in e.iter().zip(n.iter()) {
        assert!((a.score - b.score).abs() <= 1e-9 * a.score.max(1e-12));
    }
}
