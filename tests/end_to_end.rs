//! End-to-end integration tests spanning all crates: dataset generation →
//! sliding windows → every detector, checked for mutual consistency.

use surge::prelude::*;

/// A standard mid-size pipeline on the Taxi model.
fn taxi_pipeline(objects: usize, seed: u64) -> (SurgeQuery, Vec<SpatialObject>) {
    let dataset = Dataset::Taxi;
    let spec = dataset.spec();
    let q = dataset.default_region();
    let query = SurgeQuery::new(
        spec.extent,
        RegionSize::new(q.width * 4.0, q.height * 4.0),
        WindowConfig::equal_minutes(5),
        0.5,
    );
    let stream = StreamGenerator::new(dataset.workload(objects, seed)).generate();
    (query, stream)
}

#[test]
fn exact_detectors_agree_on_dataset_stream() {
    let (query, stream) = taxi_pipeline(4_000, 1);
    let mut ccs = CellCspot::new(query);
    let mut base = BaseDetector::new(query);
    let mut ag2 = Ag2::new(query);
    let mut windows = SlidingWindowEngine::new(query.windows);
    for (i, obj) in stream.into_iter().enumerate() {
        for ev in windows.push(obj) {
            ccs.on_event(&ev);
            base.on_event(&ev);
            ag2.on_event(&ev);
        }
        if i % 97 != 0 {
            continue; // sample snapshots; agreement must hold at each
        }
        let a = ccs.current().map(|r| r.score).unwrap_or(0.0);
        let b = base.current().map(|r| r.score).unwrap_or(0.0);
        let c = ag2.current().map(|r| r.score).unwrap_or(0.0);
        let scale = a.abs().max(1e-12);
        assert!(
            (a - b).abs() <= 1e-9 * scale,
            "step {i}: CCS {a} vs Base {b}"
        );
        assert!(
            (a - c).abs() <= 1e-9 * scale,
            "step {i}: CCS {a} vs aG2 {c}"
        );
    }
}

#[test]
fn approximate_detectors_respect_guarantee_on_dataset_stream() {
    let (query, stream) = taxi_pipeline(4_000, 2);
    let ratio = query.burst_params().grid_approx_ratio();
    let mut ccs = CellCspot::new(query);
    let mut gaps = GapSurge::new(query);
    let mut mgaps = MgapSurge::new(query);
    let mut windows = SlidingWindowEngine::new(query.windows);
    let mut checked = 0;
    for (i, obj) in stream.into_iter().enumerate() {
        for ev in windows.push(obj) {
            ccs.on_event(&ev);
            gaps.on_event(&ev);
            mgaps.on_event(&ev);
        }
        if i % 61 != 0 {
            continue;
        }
        let Some(opt) = ccs.current() else { continue };
        if opt.score <= 1e-12 {
            continue;
        }
        let g = gaps.current().map(|r| r.score).unwrap_or(0.0);
        let m = mgaps.current().map(|r| r.score).unwrap_or(0.0);
        assert!(g >= ratio * opt.score - 1e-12, "step {i}: GAPS {g} < bound");
        assert!(m >= g - 1e-12, "step {i}: MGAPS {m} < GAPS {g}");
        assert!(
            m <= opt.score + 1e-9 * opt.score,
            "step {i}: MGAPS {m} > OPT"
        );
        checked += 1;
    }
    assert!(checked > 10, "expected many checkpoints, got {checked}");
}

#[test]
fn topk_first_answer_matches_single_region_detector() {
    let (query, stream) = taxi_pipeline(3_000, 3);
    let mut ccs = CellCspot::new(query);
    let mut kccs = KCellCspot::new(query, 3);
    let mut windows = SlidingWindowEngine::new(query.windows);
    for (i, obj) in stream.into_iter().enumerate() {
        for ev in windows.push(obj) {
            ccs.on_event(&ev);
            kccs.on_event(&ev);
        }
        if i % 101 != 0 {
            continue;
        }
        let single = ccs.current().map(|r| r.score).unwrap_or(0.0);
        let top = kccs.current_topk();
        let first = top.first().map(|r| r.score).unwrap_or(0.0);
        let scale = single.abs().max(1e-12);
        assert!(
            (single - first).abs() <= 1e-9 * scale,
            "step {i}: CCS {single} vs kCCS[0] {first}"
        );
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
    }
}

#[test]
fn pipeline_is_deterministic_under_seed() {
    let run = || {
        let (query, stream) = taxi_pipeline(2_000, 9);
        let mut det = CellCspot::new(query);
        let mut windows = SlidingWindowEngine::new(query.windows);
        let mut trace = Vec::new();
        for obj in stream {
            for ev in windows.push(obj) {
                det.on_event(&ev);
            }
            if let Some(a) = det.current() {
                trace.push((a.point.x.to_bits(), a.point.y.to_bits(), a.score.to_bits()));
            }
        }
        trace
    };
    assert_eq!(run(), run());
}

#[test]
fn drive_helpers_run_all_detectors() {
    let (query, stream) = taxi_pipeline(2_000, 5);
    let detectors: Vec<Box<dyn BurstDetector>> = vec![
        Box::new(CellCspot::new(query)),
        Box::new(BaseDetector::new(query)),
        Box::new(Ag2::new(query)),
        Box::new(GapSurge::new(query)),
        Box::new(MgapSurge::new(query)),
    ];
    for mut det in detectors {
        let mut windows = SlidingWindowEngine::new(query.windows);
        let stats = drive(det.as_mut(), &mut windows, stream.iter().copied());
        assert_eq!(
            stats.objects + stats.warmup_objects,
            2_000,
            "{} lost objects",
            stats.name
        );
        assert!(stats.detector.events > 0, "{} saw no events", stats.name);
    }
    let mut kdet = KCellCspot::new(query, 2);
    let mut windows = SlidingWindowEngine::new(query.windows);
    let stats = drive_topk(&mut kdet, &mut windows, stream.iter().copied());
    assert_eq!(stats.objects + stats.warmup_objects, 2_000);
}

#[test]
fn burst_injection_is_detected_end_to_end() {
    let dataset = Dataset::Taxi;
    let q = dataset.default_region();
    let query = SurgeQuery::new(
        dataset.spec().extent,
        RegionSize::new(q.width * 4.0, q.height * 4.0),
        WindowConfig::equal_minutes(5),
        0.8,
    );
    let burst = BurstSpec {
        center: Point::new(12.7, 42.1),
        sigma: 0.002,
        start: 20 * 60_000,
        duration: 20 * 60_000,
        intensity: 0.6,
    };
    let stream = StreamGenerator::new(dataset.workload(15_000, 21).with_burst(burst)).generate();
    let mut det = CellCspot::new(query);
    let mut windows = SlidingWindowEngine::new(query.windows);
    let mut hits = 0;
    let mut total = 0;
    for (i, obj) in stream.into_iter().enumerate() {
        let t = obj.created;
        for ev in windows.push(obj) {
            det.on_event(&ev);
        }
        if i % 50 != 0 {
            continue;
        }
        if t > burst.start + query.windows.current_len / 2 && t < burst.start + burst.duration {
            if let Some(a) = det.current() {
                let c = a.region.center();
                let d = ((c.x - burst.center.x).powi(2) + (c.y - burst.center.y).powi(2)).sqrt();
                total += 1;
                hits += (d < 4.0 * burst.sigma + 0.01) as i32;
            }
        }
    }
    assert!(total > 0);
    assert!(
        hits as f64 / total as f64 > 0.7,
        "burst localized in only {hits}/{total} checkpoints"
    );
}

#[test]
fn area_restriction_is_honoured_end_to_end() {
    // Restrict the query to the eastern half of Rome; detections must stay
    // inside even though the hot-spots sit in the center.
    let dataset = Dataset::Taxi;
    let q = dataset.default_region();
    let area = Rect::new(12.5, 41.6, 12.9, 42.2);
    let query = SurgeQuery::new(
        area,
        RegionSize::new(q.width * 4.0, q.height * 4.0),
        WindowConfig::equal_minutes(5),
        0.5,
    );
    let stream = StreamGenerator::new(dataset.workload(3_000, 8)).generate();
    let mut det = CellCspot::new(query);
    let mut windows = SlidingWindowEngine::new(query.windows);
    for obj in stream {
        for ev in windows.push(obj) {
            det.on_event(&ev);
        }
        if let Some(a) = det.current() {
            assert!(
                area.contains_rect(&a.region),
                "region {:?} escapes area",
                a.region
            );
        }
    }
}
