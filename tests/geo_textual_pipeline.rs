//! The paper's Example 1 end-to-end: a geo-textual message stream
//! ("tweets"), keyword-relevance weighting, and bursty-region detection of a
//! topical outbreak.
//!
//! The textual content is the *weight source*: a Zika-like topic erupts at a
//! specific location, the keyword query upweights messages about that topic,
//! and the detector must find the outbreak region even though the raw
//! message *rate* barely changes elsewhere.

use surge::prelude::*;

fn vocabulary() -> Vocabulary {
    Vocabulary::new(vec![
        Topic {
            name: "smalltalk".into(),
            words: ["coffee", "traffic", "weather", "lunch", "football"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        },
        Topic {
            name: "outbreak".into(),
            words: ["zika", "fever", "mosquito", "clinic", "symptoms"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        },
    ])
}

/// A Taxi-extent workload with one spatial burst that carries the outbreak
/// topic.
fn outbreak_stream(n: usize, seed: u64) -> (Vec<GeoMessage>, Point, u64, u64, Vocabulary) {
    let dataset = Dataset::Taxi;
    let center = Point::new(12.7, 42.05);
    let rate = dataset.spec().rate_per_hour;
    let span_ms = (n as f64 / rate * 3.6e6) as u64;
    let start = span_ms / 3;
    let duration = span_ms / 3;
    let burst = BurstSpec {
        center,
        sigma: 0.004,
        start,
        duration,
        intensity: 0.35,
    };
    let vocab = vocabulary();
    let workload = dataset.workload(n, seed).with_burst(burst);
    let messages: Vec<GeoMessage> = TextStreamGenerator::new(
        workload,
        vocab.clone(),
        0, // background chat
        vec![TopicBurst {
            burst_index: 0,
            topic: 1, // outbreak
            adoption: 0.9,
        }],
        6,
    )
    .collect();
    (messages, center, start, start + duration, vocab)
}

#[test]
fn keyword_weighting_detects_topical_outbreak() {
    let (messages, center, start, end, vocab) = outbreak_stream(20_000, 11);
    let keyword_query = KeywordQuery::new(&vocab, &["zika", "fever", "mosquito"], 50.0, 0.0);

    let dataset = Dataset::Taxi;
    let q = dataset.default_region();
    let query = SurgeQuery::new(
        dataset.spec().extent,
        RegionSize::new(q.width * 8.0, q.height * 8.0),
        WindowConfig::equal_minutes(10),
        0.7,
    );
    let mut det = CellCspot::new(query);
    let mut engine = SlidingWindowEngine::new(query.windows);

    let mut hits = 0usize;
    let mut total = 0usize;
    let mut relevant = 0usize;
    for (i, msg) in messages.into_iter().enumerate() {
        // base_weight = 0 drops irrelevant chatter entirely.
        let Some(obj) = keyword_query.weigh(&msg) else {
            continue;
        };
        relevant += 1;
        let t = obj.created;
        for ev in engine.push(obj) {
            det.on_event(&ev);
        }
        if i % 40 != 0 {
            continue;
        }
        if t > start + query.windows.current_len / 2 && t < end {
            if let Some(a) = det.current() {
                total += 1;
                let c = a.region.center();
                let d = ((c.x - center.x).powi(2) + (c.y - center.y).powi(2)).sqrt();
                hits += (d < 0.03) as usize;
            }
        }
    }
    assert!(
        relevant > 100,
        "keyword filter kept only {relevant} messages"
    );
    assert!(total > 20, "too few checkpoints: {total}");
    assert!(
        hits as f64 / total as f64 > 0.8,
        "outbreak localized in only {hits}/{total} checkpoints"
    );
}

#[test]
fn irrelevant_keywords_find_no_outbreak_signal() {
    // Querying for smalltalk words: the outbreak region must NOT dominate,
    // because its extra messages are topical, not smalltalk.
    let (messages, center, start, end, vocab) = outbreak_stream(12_000, 13);
    let keyword_query = KeywordQuery::new(&vocab, &["coffee", "lunch"], 50.0, 0.0);

    let dataset = Dataset::Taxi;
    let q = dataset.default_region();
    let query = SurgeQuery::new(
        dataset.spec().extent,
        RegionSize::new(q.width * 8.0, q.height * 8.0),
        WindowConfig::equal_minutes(10),
        0.7,
    );
    let mut det = CellCspot::new(query);
    let mut engine = SlidingWindowEngine::new(query.windows);
    let mut hits = 0usize;
    let mut total = 0usize;
    for (i, msg) in messages.into_iter().enumerate() {
        let Some(obj) = keyword_query.weigh(&msg) else {
            continue;
        };
        let t = obj.created;
        for ev in engine.push(obj) {
            det.on_event(&ev);
        }
        if i % 40 != 0 {
            continue;
        }
        if t > start && t < end {
            if let Some(a) = det.current() {
                total += 1;
                let c = a.region.center();
                let d = ((c.x - center.x).powi(2) + (c.y - center.y).powi(2)).sqrt();
                hits += (d < 0.03) as usize;
            }
        }
    }
    // The burst *does* add some smalltalk-weighted traffic at the site (10%
    // non-adoption), so allow occasional hits — but it must not dominate.
    assert!(total > 10, "too few checkpoints: {total}");
    assert!(
        (hits as f64) / (total as f64) < 0.5,
        "smalltalk query spuriously locked onto the outbreak: {hits}/{total}"
    );
}

#[test]
fn relevance_weighting_is_proportional_to_keyword_overlap() {
    let vocab = vocabulary();
    let kq = KeywordQuery::new(&vocab, &["zika", "fever"], 10.0, 1.0);
    let msg = |words: &[&str]| GeoMessage {
        id: 0,
        pos: Point::new(0.0, 0.0),
        created: 0,
        words: words
            .iter()
            .map(|w| vocab.word_id(w).expect("known word"))
            .collect(),
    };
    let full = kq.weigh(&msg(&["zika", "fever"])).unwrap().weight;
    let half = kq.weigh(&msg(&["zika", "coffee"])).unwrap().weight;
    let none = kq.weigh(&msg(&["coffee", "lunch"])).unwrap().weight;
    assert!(full > half && half > none, "{full} / {half} / {none}");
    assert_eq!(none, 1.0); // base weight
    assert_eq!(full, 10.0); // max weight
}
