//! Asymmetric current/past window lengths.
//!
//! The paper assumes `|W_c| = |W_p|` "for the sake of simplicity" and claims
//! the solutions apply unchanged when the two lengths differ (§III-A). These
//! tests exercise that claim across the whole stack: engine transitions,
//! score normalization, exact detectors against the snapshot oracle, and the
//! approximation guarantee.

use proptest::prelude::*;
use surge::prelude::*;
use surge_exact::snapshot_bursty_region;

fn random_stream(n: usize, seed: u64, span_ms: u64, extent: f64) -> Vec<SpatialObject> {
    // Small deterministic LCG so the test does not depend on rand's stream.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut objs: Vec<SpatialObject> = (0..n)
        .map(|i| {
            let t = (next() * span_ms as f64) as u64;
            SpatialObject::new(
                i as u64,
                1.0 + next() * 9.0,
                Point::new(next() * extent, next() * extent),
                t,
            )
        })
        .collect();
    objs.sort_by_key(|o| o.created);
    objs
}

fn check_exact_against_oracle(windows: WindowConfig, seed: u64) {
    let query = SurgeQuery::whole_space(RegionSize::new(2.0, 2.0), windows, 0.5);
    let mut det = CellCspot::new(query);
    let mut engine = SlidingWindowEngine::new(windows);
    for (step, obj) in random_stream(400, seed, 6_000, 20.0)
        .into_iter()
        .enumerate()
    {
        for ev in engine.push(obj) {
            det.on_event(&ev);
        }
        if step % 17 != 0 {
            continue;
        }
        let current: Vec<SpatialObject> = engine.current_objects().copied().collect();
        let past: Vec<SpatialObject> = engine.past_objects().copied().collect();
        let oracle = snapshot_bursty_region(&current, &past, &query)
            .map(|a| a.score)
            .unwrap_or(0.0);
        let got = det.current().map(|a| a.score).unwrap_or(0.0);
        let scale = oracle.abs().max(1e-12);
        assert!(
            (oracle - got).abs() <= 1e-9 * scale,
            "step {step} ({windows:?}): oracle {oracle} vs CCS {got}"
        );
    }
}

#[test]
fn ccs_matches_oracle_with_longer_past_window() {
    check_exact_against_oracle(WindowConfig::new(500, 2_000), 1);
}

#[test]
fn ccs_matches_oracle_with_shorter_past_window() {
    check_exact_against_oracle(WindowConfig::new(2_000, 300), 2);
}

#[test]
fn ccs_matches_oracle_with_extreme_ratio() {
    check_exact_against_oracle(WindowConfig::new(100, 5_000), 3);
}

#[test]
fn gaps_guarantee_holds_with_asymmetric_windows() {
    let windows = WindowConfig::new(800, 3_000);
    let query = SurgeQuery::whole_space(RegionSize::new(2.0, 2.0), windows, 0.4);
    let ratio = query.burst_params().grid_approx_ratio();
    let mut exact = CellCspot::new(query);
    let mut gaps = GapSurge::new(query);
    let mut mgaps = MgapSurge::new(query);
    let mut engine = SlidingWindowEngine::new(windows);
    let mut checked = 0;
    for (step, obj) in random_stream(600, 9, 10_000, 25.0).into_iter().enumerate() {
        for ev in engine.push(obj) {
            exact.on_event(&ev);
            gaps.on_event(&ev);
            mgaps.on_event(&ev);
        }
        if step % 23 != 0 {
            continue;
        }
        let Some(opt) = exact.current() else { continue };
        if opt.score <= 1e-12 {
            continue;
        }
        let g = gaps.current().map(|a| a.score).unwrap_or(0.0);
        let m = mgaps.current().map(|a| a.score).unwrap_or(0.0);
        assert!(g >= ratio * opt.score - 1e-12, "step {step}: GAPS {g}");
        assert!(m >= g - 1e-12, "step {step}: MGAPS {m} < GAPS {g}");
        checked += 1;
    }
    assert!(checked > 5, "too few checkpoints: {checked}");
}

#[test]
fn asymmetric_normalization_shifts_burstiness() {
    // One object in each window, equal weight. With |W_p| ≫ |W_c| the past
    // score is diluted, so the burstiness term is positive; with
    // |W_p| ≪ |W_c| the past dominates and the increase clamps to zero.
    let diluted = BurstParams::new(0.5, WindowConfig::new(100, 10_000));
    let concentrated = BurstParams::new(0.5, WindowConfig::new(10_000, 100));
    let s_diluted = diluted.score_weights(5.0, 5.0);
    let s_concentrated = concentrated.score_weights(5.0, 5.0);
    // Diluted past: fc = 0.05, fp = 0.0005 -> burstiness ~ fc.
    assert!(s_diluted > 0.5 * (5.0 / 100.0));
    // Concentrated past: fc = 0.0005, fp = 0.05 -> burstiness term 0.
    assert!((s_concentrated - 0.5 * (5.0 / 10_000.0)).abs() < 1e-15);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CCS equals the oracle at sampled snapshots for random window shapes.
    #[test]
    fn ccs_oracle_equivalence_random_window_shapes(
        cur in 100u64..3_000,
        past in 100u64..3_000,
        seed in 0u64..1_000,
    ) {
        check_exact_against_oracle(WindowConfig::new(cur, past), seed);
    }
}
