//! # surge
//!
//! Continuous detection of bursty regions over a stream of spatial objects —
//! a Rust implementation of Feng et al., *SURGE* (ICDE 2018).
//!
//! Given a stream of weighted, timestamped points (geo-tagged tweets, ride
//! requests, taxi pickups), SURGE continuously reports the position of an
//! `a×b` rectangle maximizing the **burst score**
//! `S(r) = α·max(f(r,W_c) − f(r,W_p), 0) + (1−α)·f(r,W_c)` over two
//! consecutive sliding windows — i.e. the region spiking *right now*.
//!
//! ## Quickstart
//!
//! ```
//! use surge::prelude::*;
//!
//! // Monitor 1×1 regions with 1-second windows, balanced burstiness.
//! let query = SurgeQuery::whole_space(
//!     RegionSize::new(1.0, 1.0),
//!     WindowConfig::equal(1_000),
//!     0.5,
//! );
//! let mut detector = CellCspot::new(query); // exact
//! let mut windows = SlidingWindowEngine::new(query.windows);
//!
//! for (i, (x, y, t)) in [(0.2, 0.2, 0), (0.5, 0.4, 10), (9.0, 9.0, 20)]
//!     .iter()
//!     .enumerate()
//! {
//!     let obj = SpatialObject::new(i as u64, 1.0, Point::new(*x, *y), *t);
//!     for event in windows.push(obj) {
//!         detector.on_event(&event);
//!     }
//! }
//! let answer = detector.current().unwrap();
//! assert!(answer.region.contains(Point::new(0.2, 0.2)));
//! assert!(answer.region.contains(Point::new(0.5, 0.4)));
//! ```
//!
//! ## Crate map
//!
//! * [`core`] — data model: geometry, objects, windows, burst score, events,
//!   queries, the SURGE→cSPOT reduction, detector traits.
//! * [`stream`] — sliding-window engine, synthetic dataset models (UK / US /
//!   Taxi), burst injection, replay driver.
//! * [`exact`] — SL-CSPOT sweep, Cell-CSPOT (CCS) exact detector, B-CCS and
//!   Base ablations, snapshot oracles.
//! * [`approx`] — GAP-SURGE and MGAP-SURGE with the `(1−α)/4` guarantee.
//! * [`baseline`] — the adapted aG2 competitor.
//! * [`topk`] — kCCS, kGAPS, kMGAPS and the naive greedy top-k.
//! * [`observe`] — the observability layer: a metrics registry of
//!   counters/gauges/latency histograms with JSON + Prometheus export, and
//!   per-worker flight recorders of logical-time trace events. Provably
//!   non-invasive: a disabled [`observe::Observe`] handle compiles to
//!   no-ops, and an enabled one never perturbs answer bits.
//! * [`io`] — CSV/binary stream codecs, event-log recording/replay, GeoJSON
//!   export of detections, and the checksummed snapshot container.
//! * [`checkpoint`] — durable state: periodic logical snapshots + a
//!   segmented WAL, with crash recovery that resumes bit-identically.
//! * [`serve`] — the multi-query subscription layer: many queries over one
//!   shared ingest + window engine, bitwise-identical queries deduped onto
//!   one detector, per-subscription ack-released answer channels, and
//!   whole-registry crash recovery.
//! * [`roadnet`] — the road-network extension (the paper's stated future
//!   work): graph substrate, synthetic cities, and network detectors.
//!
//! Pick [`exact::CellCspot`] when exactness matters (it is fast at realistic
//! rates), [`approx::MgapSurge`] when sustained millions-of-objects-per-day
//! throughput matters more than the last ~10% of burst score.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use surge_approx as approx;
pub use surge_baseline as baseline;
pub use surge_checkpoint as checkpoint;
pub use surge_core as core;
pub use surge_exact as exact;
pub use surge_io as io;
pub use surge_observe as observe;
pub use surge_roadnet as roadnet;
pub use surge_serve as serve;
pub use surge_stream as stream;
pub use surge_topk as topk;

/// The commonly-used types in one import.
pub mod prelude {
    pub use surge_approx::{GapSurge, MgapSurge};
    pub use surge_baseline::Ag2;
    pub use surge_checkpoint::{
        recover, run_checkpointed, CheckpointConfig, CheckpointPolicy, DetectorSpec, SyncPolicy,
    };
    pub use surge_core::{
        burst_score, shard_of_cell, BurstDetector, BurstParams, Event, EventKind,
        IncrementalDetector, Point, Rect, RegionAnswer, RegionSize, ShardedIngest, SpatialObject,
        SurgeQuery, TopKDetector, WindowConfig, WindowKind,
    };
    pub use surge_exact::{
        snapshot_bursty_region, snapshot_topk, BaseDetector, BoundMode, CellCspot,
    };
    pub use surge_io::{
        read_events_from, read_objects_from, write_events_to, write_objects_to, LabelledAnswer,
    };
    pub use surge_observe::{Observe, RegistrySnapshot, TraceDump, TraceEvent};
    pub use surge_roadnet::{
        grid_city, GridCityConfig, NetBallOracle, NetGapSurge, NetMgapSurge, RoadNetwork,
    };
    pub use surge_serve::{ServeConfig, ServeError, ServeStats, SubId, SurgeServer};
    pub use surge_stream::{
        drive, drive_autopilot, drive_incremental, drive_parallel, drive_sharded, drive_slides,
        drive_topk, sweep_parallel, AnswerQuality, AutopilotDetector, AutopilotReport, BurstSpec,
        Dataset, DirtyCellTracker, EventBatch, GeoMessage, Hotspot, KeywordQuery, LatencyHistogram,
        ShardedReport, ShardedWindowEngine, SlidingWindowEngine, SloPolicy, StreamGenerator,
        TextStreamGenerator, Tier, Topic, TopicBurst, Vocabulary, WindowLane, WorkloadConfig,
    };
    pub use surge_topk::{KCellCspot, KGapSurge, KMgapSurge, NaiveTopK};
}
