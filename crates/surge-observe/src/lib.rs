//! # surge-observe
//!
//! The unified observability layer for the SURGE stack: a metrics registry
//! of named counters/gauges/latency histograms with hierarchical labels,
//! per-worker flight recorders (fixed-size rings of logical-time-stamped
//! trace events), and the [`Observe`] handle every driver threads through.
//!
//! * [`metrics`] — [`LatencyHistogram`] / [`LatencySummary`], the
//!   log-bucketed histogram previously homed in `surge-stream` (which
//!   still re-exports it).
//! * [`registry`] — [`MetricsRegistry`], the cheap record handles
//!   ([`Counter`], [`Gauge`], [`Histogram`], [`Flight`]), the [`Observe`]
//!   entry point, and snapshot export to JSON and Prometheus text.
//! * [`flight`] — [`FlightRecorder`] rings and the [`TraceEvent`] schema.
//!
//! The layer's central contract is **non-invasiveness**: a run with
//! [`Observe::off`] and a run with an enabled handle produce bitwise
//! identical answer streams (differentially proptested across every driver
//! family in `surge-stream`/`surge-checkpoint`), and registry totals are
//! conserved against the legacy per-driver report counters. Trace events
//! carry only logical time (slide/flush sequence numbers), so flight dumps
//! are deterministic — same run, same dump, ring wrap included.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod metrics;
pub mod registry;

pub use flight::{FlightDump, FlightRecorder, TraceDump, TraceEvent};
pub use metrics::{LatencyHistogram, LatencySummary};
pub use registry::{
    Counter, Flight, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Observe, PanicDumpGuard,
    RegistrySnapshot, DEFAULT_FLIGHT_CAPACITY,
};
