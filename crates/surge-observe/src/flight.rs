//! Per-worker flight recorders: fixed-size rings of structured trace
//! events stamped with **logical time**.
//!
//! The recorder answers the crash-time question "what was the mesh doing?"
//! without perturbing the run: recording is a couple of stores into a
//! pre-sized ring, and every event field is logical (slide/flush sequence
//! numbers, epoch indices, byte counts, policy names) — never wall clock —
//! so two runs over the same stream produce **bitwise-identical dumps**,
//! ring wrap included. Wall-clock durations belong in the registry's
//! latency histograms, not here.

/// One structured trace event. All payloads are logical quantities so
/// dumps are deterministic across runs of the same stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A flush began (`seq` is the dense 0-based flush sequence).
    FlushStart {
        /// Flush sequence number.
        seq: u64,
    },
    /// A flush completed.
    FlushEnd {
        /// Flush sequence number.
        seq: u64,
        /// Answers the flush produced.
        answers: u64,
    },
    /// The elastic driver computed a steal plan for this flush.
    StealPlan {
        /// Flush sequence number.
        seq: u64,
        /// Total sweeps moved between shards by the plan.
        moved: u64,
    },
    /// The elastic mesh resharded at an epoch boundary.
    ReshardEpoch {
        /// Epoch index (0-based) that ended with this reshard.
        epoch: u64,
        /// Shard count before.
        from: u32,
        /// Shard count after.
        to: u32,
    },
    /// The degradation autopilot switched tiers.
    TierSwitch {
        /// Slide at which the switch took effect.
        seq: u64,
        /// Tier before (static name).
        from: &'static str,
        /// Tier after (static name).
        to: &'static str,
    },
    /// The checkpoint runner stalled the hot path to encode a snapshot.
    SnapshotStall {
        /// Slide at which the snapshot was cut.
        slide: u64,
        /// Encoded snapshot size in bytes.
        bytes: u64,
        /// WAL sync policy in force (static name).
        sync_policy: &'static str,
    },
    /// The write-ahead log rotated to a new segment.
    WalRotation {
        /// Index of the segment that was sealed.
        segment: u64,
    },
    /// A mesh channel pushed back on the driver (send would have blocked
    /// or took unusually long). Only ever *reported*, never acted on.
    Backpressure {
        /// Flush/slide sequence at which pressure was observed.
        seq: u64,
        /// Shard whose channel pushed back.
        shard: u32,
    },
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::FlushStart { seq } => write!(f, "flush_start seq={seq}"),
            TraceEvent::FlushEnd { seq, answers } => {
                write!(f, "flush_end seq={seq} answers={answers}")
            }
            TraceEvent::StealPlan { seq, moved } => {
                write!(f, "steal_plan seq={seq} moved={moved}")
            }
            TraceEvent::ReshardEpoch { epoch, from, to } => {
                write!(f, "reshard_epoch epoch={epoch} from={from} to={to}")
            }
            TraceEvent::TierSwitch { seq, from, to } => {
                write!(f, "tier_switch seq={seq} from={from} to={to}")
            }
            TraceEvent::SnapshotStall {
                slide,
                bytes,
                sync_policy,
            } => write!(
                f,
                "snapshot_stall slide={slide} bytes={bytes} sync_policy={sync_policy}"
            ),
            TraceEvent::WalRotation { segment } => write!(f, "wal_rotation segment={segment}"),
            TraceEvent::Backpressure { seq, shard } => {
                write!(f, "backpressure seq={seq} shard={shard}")
            }
        }
    }
}

/// A fixed-size ring of [`TraceEvent`]s. When full, the oldest event is
/// overwritten and counted in [`dropped`](FlightDump::dropped).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    buf: Vec<TraceEvent>,
    /// Index the next event will be written at (once the ring is full).
    head: usize,
    /// Total events ever recorded (≥ `buf.len()`).
    total: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events
    /// (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder {
            cap,
            buf: Vec::with_capacity(cap),
            head: 0,
            total: 0,
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one event, overwriting the oldest when the ring is full.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
        }
        self.total += 1;
    }

    /// The retained events, oldest first, plus the number of events that
    /// were overwritten. Non-destructive — a dump can be taken mid-run.
    pub fn dump(&self) -> (Vec<TraceEvent>, u64) {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        (out, self.total - self.buf.len() as u64)
    }

    /// [`dump`](Self::dump), then clears the ring (the drain-on-demand
    /// path; `total` keeps counting across drains).
    pub fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let out = self.dump();
        self.buf.clear();
        self.head = 0;
        out
    }
}

/// One worker's drained/dumped ring, as assembled by
/// [`Observe::trace_dump`](crate::Observe::trace_dump).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// The worker label the ring was registered under.
    pub worker: String,
    /// Events overwritten by ring wrap before the dump.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A whole-process trace dump: every registered worker ring, in label
/// order. `Display` renders the deterministic text form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDump {
    /// Per-worker dumps, sorted by worker label.
    pub workers: Vec<FlightDump>,
}

impl TraceDump {
    /// Total events across all workers' retained rings.
    pub fn len(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// Whether no worker retained any events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Display for TraceDump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for w in &self.workers {
            writeln!(f, "=== {} (dropped {}) ===", w.worker, w.dropped)?;
            for ev in &w.events {
                writeln!(f, "  {ev}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for seq in 0..5 {
            r.record(TraceEvent::FlushStart { seq });
        }
        let (events, dropped) = r.dump();
        assert_eq!(dropped, 2);
        assert_eq!(
            events,
            vec![
                TraceEvent::FlushStart { seq: 2 },
                TraceEvent::FlushStart { seq: 3 },
                TraceEvent::FlushStart { seq: 4 },
            ]
        );
    }

    #[test]
    fn dump_is_nondestructive_drain_clears() {
        let mut r = FlightRecorder::new(4);
        r.record(TraceEvent::WalRotation { segment: 1 });
        assert_eq!(r.dump().0.len(), 1);
        assert_eq!(r.dump().0.len(), 1);
        let (events, dropped) = r.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
        assert!(r.dump().0.is_empty());
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn wrap_is_deterministic() {
        // Two identical event sequences must produce identical dumps,
        // including across a ring wrap.
        let run = |cap: usize| {
            let mut r = FlightRecorder::new(cap);
            for seq in 0..17 {
                r.record(TraceEvent::FlushStart { seq });
                r.record(TraceEvent::FlushEnd { seq, answers: 1 });
            }
            r.dump()
        };
        assert_eq!(run(8), run(8));
        assert_eq!(run(8).1, 34 - 8);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = FlightRecorder::new(0);
        r.record(TraceEvent::WalRotation { segment: 0 });
        r.record(TraceEvent::WalRotation { segment: 1 });
        let (events, dropped) = r.dump();
        assert_eq!(events, vec![TraceEvent::WalRotation { segment: 1 }]);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn events_render_stable_text() {
        let texts = [
            TraceEvent::FlushStart { seq: 7 }.to_string(),
            TraceEvent::StealPlan { seq: 7, moved: 3 }.to_string(),
            TraceEvent::ReshardEpoch {
                epoch: 1,
                from: 2,
                to: 4,
            }
            .to_string(),
            TraceEvent::TierSwitch {
                seq: 9,
                from: "exact",
                to: "mgaps",
            }
            .to_string(),
            TraceEvent::SnapshotStall {
                slide: 4,
                bytes: 1024,
                sync_policy: "os_flush",
            }
            .to_string(),
            TraceEvent::Backpressure { seq: 2, shard: 1 }.to_string(),
        ];
        assert_eq!(texts[0], "flush_start seq=7");
        assert_eq!(texts[1], "steal_plan seq=7 moved=3");
        assert_eq!(texts[2], "reshard_epoch epoch=1 from=2 to=4");
        assert_eq!(texts[3], "tier_switch seq=9 from=exact to=mgaps");
        assert_eq!(
            texts[4],
            "snapshot_stall slide=4 bytes=1024 sync_policy=os_flush"
        );
        assert_eq!(texts[5], "backpressure seq=2 shard=1");
    }
}
