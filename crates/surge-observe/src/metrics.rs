//! Latency metrics.
//!
//! The paper reports only the *mean* processing time per object; a
//! production system also needs tail behavior (the exact detector's cost is
//! extremely bimodal — most events touch only upper bounds, a few trigger an
//! `O(|c_max|²)` sweep). [`LatencyHistogram`] is a log-bucketed histogram in
//! the style of HdrHistogram, sized for nanosecond-to-minute latencies with
//! ≤ ~4% relative quantile error, constant memory, and O(1) recording.
//!
//! Home of the histogram since the observability layer landed; `surge-stream`
//! re-exports it unchanged for the pre-existing call sites.

/// Number of sub-buckets per power of two (quantile resolution).
const SUBBUCKETS: usize = 16;
/// Number of powers of two covered (2^0 .. 2^41 ns ≈ 36 minutes).
const EXPONENTS: usize = 42;

/// A log-bucketed latency histogram over nanosecond samples.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; SUBBUCKETS * EXPONENTS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < SUBBUCKETS as u64 {
            return ns as usize;
        }
        let exp = 63 - ns.leading_zeros() as usize; // floor(log2(ns)), >= 4
        let shift = exp - SUBBUCKETS.trailing_zeros() as usize; // exp - 4
        let sub = ((ns >> shift) as usize) & (SUBBUCKETS - 1);
        let idx = (shift + 1) * SUBBUCKETS + sub;
        idx.min(SUBBUCKETS * EXPONENTS - 1)
    }

    /// The representative (upper-bound) value of a bucket.
    fn bucket_value(idx: usize) -> u64 {
        let row = idx / SUBBUCKETS;
        let sub = (idx % SUBBUCKETS) as u64;
        if row == 0 {
            sub
        } else {
            let shift = row - 1;
            ((SUBBUCKETS as u64 + sub) << shift) + ((1u64 << shift) - 1)
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, duration: std::time::Duration) {
        self.record_ns(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples in nanoseconds (the Prometheus summary
    /// `_sum` series).
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The latency at quantile `q ∈ [0, 1]`, within the bucket resolution
    /// (≤ ~1/16 relative error). 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// A one-line summary: `n / mean / p50 / p95 / p99 / max`, in
    /// microseconds.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean_us: self.mean_ns() / 1e3,
            p50_us: self.quantile_ns(0.50) as f64 / 1e3,
            p95_us: self.quantile_ns(0.95) as f64 / 1e3,
            p99_us: self.quantile_ns(0.99) as f64 / 1e3,
            max_us: self.max_ns() as f64 / 1e3,
        }
    }
}

/// The headline percentiles of a [`LatencyHistogram`], in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency.
    pub mean_us: f64,
    /// Median latency.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2}us p50={:.2}us p95={:.2}us p99={:.2}us max={:.2}us",
            self.count, self.mean_us, self.p50_us, self.p95_us, self.p99_us, self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.sum_ns(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [0u64, 1, 5, 15] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 15);
        assert_eq!(h.quantile_ns(0.0), 0);
        assert_eq!(h.quantile_ns(1.0), 15);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record_ns(100);
        h.record_ns(300);
        assert_eq!(h.mean_ns(), 200.0);
        assert_eq!(h.sum_ns(), 400);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        // 1..=10_000 uniformly.
        for v in 1..=10_000u64 {
            h.record_ns(v * 100);
        }
        for &(q, expect) in &[(0.5, 500_000.0), (0.95, 950_000.0), (0.99, 990_000.0)] {
            let got = h.quantile_ns(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.08, "q={q}: got {got}, want ~{expect} (rel {rel})");
        }
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = LatencyHistogram::new();
        h.record_ns(1_000_003);
        assert!(h.quantile_ns(1.0) <= 1_000_003);
        assert!(h.quantile_ns(0.99) <= 1_000_003);
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut last = 0;
        for ns in (0..10_000u64).chain((10_000..10_000_000).step_by(997)) {
            let b = LatencyHistogram::bucket_of(ns);
            assert!(b >= last || b == last, "bucket regressed at {ns}");
            last = last.max(b);
        }
    }

    #[test]
    fn bucket_value_is_within_bucket() {
        for ns in [0u64, 3, 17, 255, 1_000, 123_456, 9_999_999, u64::MAX / 2] {
            let b = LatencyHistogram::bucket_of(ns);
            let v = LatencyHistogram::bucket_value(b);
            // The representative is the bucket's inclusive upper bound:
            // it must not be smaller than the sample's bucket lower bound.
            assert!(
                LatencyHistogram::bucket_of(v) == b,
                "value {v} for bucket {b} of sample {ns} maps to {}",
                LatencyHistogram::bucket_of(v)
            );
            assert!(v >= ns || b == SUBBUCKETS * EXPONENTS - 1, "v={v} ns={ns}");
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_ns(10);
        b.record_ns(1_000);
        b.record_ns(100_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min_ns(), 10);
        assert_eq!(a.max_ns(), 100_000);
    }

    #[test]
    fn summary_formats() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record_ns(2_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean_us - 2.0).abs() < 0.2);
        let text = s.to_string();
        assert!(text.contains("p99"));
    }

    #[test]
    fn record_duration_converts() {
        let mut h = LatencyHistogram::new();
        h.record(std::time::Duration::from_micros(5));
        assert!(h.max_ns() >= 5_000);
    }

    #[test]
    fn huge_values_clamp_to_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_ns(0.5) > 0);
    }
}
