//! The metrics registry and the [`Observe`] handle every driver threads
//! through.
//!
//! Metric names are hierarchical slash-paths whose segments may carry
//! labels: `driver/shard=3/sweeps`. Registration (path lookup, allocation)
//! happens once per handle, off the hot path; recording through a handle is
//! an atomic add (counters/gauges) or one short mutex-guarded histogram
//! update. The disabled [`Observe::off`] handle hands out empty handles
//! whose record calls are a branch on `None` — the optimizer erases them,
//! and the differential proptests in `surge-stream` prove the enabled path
//! doesn't perturb answers either (non-invasiveness is the layer's central
//! contract, not an aspiration).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::flight::{FlightDump, FlightRecorder, TraceDump, TraceEvent};
use crate::metrics::{LatencyHistogram, LatencySummary};

/// Default per-worker flight-recorder ring capacity.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<Mutex<LatencyHistogram>>>,
}

/// A registry of named counters, gauges and latency histograms.
///
/// Shared behind the [`Observe`] handle; not usually constructed directly.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn counter(&self, path: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .counters
            .entry(path.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    fn gauge(&self, path: &str) -> Arc<AtomicI64> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .gauges
            .entry(path.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)))
            .clone()
    }

    fn histogram(&self, path: &str) -> Arc<Mutex<LatencyHistogram>> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(path.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(LatencyHistogram::new())))
            .clone()
    }

    /// A point-in-time snapshot of every metric, sorted by path.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().unwrap();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| {
                    let h = v.lock().unwrap();
                    (
                        k.clone(),
                        HistogramSnapshot {
                            summary: h.summary(),
                            sum_ns: h.sum_ns(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// A counter handle. Cloned freely; the disabled default is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle (signed, set/adjust semantics).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the gauge by `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A latency-histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<Mutex<LatencyHistogram>>>);

impl Histogram {
    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().record_ns(ns);
        }
    }

    /// Records one duration sample.
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().record(d);
        }
    }

    /// Merges a locally-accumulated histogram in (the per-worker pattern:
    /// workers record into their own [`LatencyHistogram`] and merge once).
    pub fn merge(&self, other: &LatencyHistogram) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().merge(other);
        }
    }

    /// Sample count (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.lock().unwrap().count())
    }
}

/// A per-worker flight-recorder handle.
#[derive(Debug, Clone, Default)]
pub struct Flight(Option<Arc<Mutex<FlightRecorder>>>);

impl Flight {
    /// Records one trace event.
    #[inline]
    pub fn record(&self, event: TraceEvent) {
        if let Some(r) = &self.0 {
            r.lock().unwrap().record(event);
        }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

struct ObserveInner {
    registry: MetricsRegistry,
    flights: Mutex<BTreeMap<String, Arc<Mutex<FlightRecorder>>>>,
    flight_capacity: usize,
}

/// The observability handle threaded through every driver.
///
/// [`Observe::off`] (the `Default`) is the disabled layer: every handle it
/// hands out is a no-op and the drivers' answer streams are — provably,
/// via the differential proptests — bitwise identical either way.
#[derive(Clone, Default)]
pub struct Observe(Option<Arc<ObserveInner>>);

impl Observe {
    /// The disabled handle (no registry, no recording).
    pub fn off() -> Self {
        Observe(None)
    }

    /// An enabled handle with the default flight-recorder capacity.
    pub fn enabled() -> Self {
        Self::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// An enabled handle whose per-worker rings keep `capacity` events.
    pub fn with_flight_capacity(capacity: usize) -> Self {
        Observe(Some(Arc::new(ObserveInner {
            registry: MetricsRegistry::new(),
            flights: Mutex::new(BTreeMap::new()),
            flight_capacity: capacity.max(1),
        })))
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Registers (or finds) the counter at `path`.
    pub fn counter(&self, path: &str) -> Counter {
        Counter(self.0.as_ref().map(|i| i.registry.counter(path)))
    }

    /// Registers (or finds) the gauge at `path`.
    pub fn gauge(&self, path: &str) -> Gauge {
        Gauge(self.0.as_ref().map(|i| i.registry.gauge(path)))
    }

    /// Registers (or finds) the latency histogram at `path`.
    pub fn histogram(&self, path: &str) -> Histogram {
        Histogram(self.0.as_ref().map(|i| i.registry.histogram(path)))
    }

    /// Registers (or finds) the flight recorder of worker `label`.
    pub fn flight(&self, label: &str) -> Flight {
        Flight(self.0.as_ref().map(|i| {
            i.flights
                .lock()
                .unwrap()
                .entry(label.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(FlightRecorder::new(i.flight_capacity))))
                .clone()
        }))
    }

    /// A point-in-time snapshot of the registry (empty when disabled).
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.0
            .as_ref()
            .map(|i| i.registry.snapshot())
            .unwrap_or_default()
    }

    /// Dumps every worker's flight ring, in label order (non-destructive).
    pub fn trace_dump(&self) -> TraceDump {
        let mut workers = Vec::new();
        if let Some(inner) = &self.0 {
            for (label, ring) in inner.flights.lock().unwrap().iter() {
                let (events, dropped) = ring.lock().unwrap().dump();
                workers.push(FlightDump {
                    worker: label.clone(),
                    dropped,
                    events,
                });
            }
        }
        TraceDump { workers }
    }

    /// Drains every worker's flight ring, in label order (rings cleared).
    pub fn trace_drain(&self) -> TraceDump {
        let mut workers = Vec::new();
        if let Some(inner) = &self.0 {
            for (label, ring) in inner.flights.lock().unwrap().iter() {
                let (events, dropped) = ring.lock().unwrap().drain();
                workers.push(FlightDump {
                    worker: label.clone(),
                    dropped,
                    events,
                });
            }
        }
        TraceDump { workers }
    }

    /// A guard that dumps the flight rings to stderr if the current scope
    /// unwinds — the drain-on-driver-panic path. Dropping normally is
    /// silent.
    pub fn panic_dump_guard(&self, context: &str) -> PanicDumpGuard {
        PanicDumpGuard {
            obs: self.clone(),
            context: context.to_string(),
        }
    }
}

/// See [`Observe::panic_dump_guard`].
pub struct PanicDumpGuard {
    obs: Observe,
    context: String,
}

impl Drop for PanicDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() && self.obs.is_enabled() {
            eprintln!(
                "surge-observe: panic in {}; flight-recorder dump:\n{}",
                self.context,
                self.obs.trace_dump()
            );
        }
    }
}

/// A histogram's exported state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Headline percentiles.
    pub summary: LatencySummary,
    /// Sum of samples in nanoseconds.
    pub sum_ns: u128,
}

/// A point-in-time export of a [`MetricsRegistry`], sorted by path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(path, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(path, value)` gauges.
    pub gauges: Vec<(String, i64)>,
    /// `(path, state)` histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The counter at `path`, if registered.
    pub fn counter(&self, path: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(p, _)| p == path)
            .map(|&(_, v)| v)
    }

    /// The gauge at `path`, if registered.
    pub fn gauge(&self, path: &str) -> Option<i64> {
        self.gauges.iter().find(|(p, _)| p == path).map(|&(_, v)| v)
    }

    /// The histogram at `path`, if registered.
    pub fn histogram(&self, path: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, h)| h)
    }

    /// Sum of every counter whose path satisfies `pred` (the conservation
    /// checks sum label families, e.g. every `sharded/shard=*/sweeps`).
    pub fn sum_counters(&self, mut pred: impl FnMut(&str) -> bool) -> u64 {
        self.counters
            .iter()
            .filter(|(p, _)| pred(p))
            .map(|&(_, v)| v)
            .sum()
    }

    /// The registry as a JSON document (hand-rolled — the workspace is
    /// offline and serde-free).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"surge-observe-registry-v1\",\n  \"counters\": {");
        for (i, (path, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape_json(path), v));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (path, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape_json(path), v));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (path, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &h.summary;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"mean_us\": {:.3}, \
                 \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \"max_us\": {:.3}}}",
                escape_json(path),
                s.count,
                h.sum_ns,
                s.mean_us,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                s.max_us
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// The registry as Prometheus-style exposition text. Path segments of
    /// the form `k=v` become labels; the remaining segments, joined by
    /// `_`, become the metric name (prefixed `surge_`). Histograms export
    /// as summaries (`quantile` series plus `_count` and `_sum`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (path, v) in &self.counters {
            let (name, labels) = prom_name(path);
            out.push_str(&format!("# TYPE {name} counter\n{name}{labels} {v}\n"));
        }
        for (path, v) in &self.gauges {
            let (name, labels) = prom_name(path);
            out.push_str(&format!("# TYPE {name} gauge\n{name}{labels} {v}\n"));
        }
        for (path, h) in &self.histograms {
            let (name, labels) = prom_name(path);
            let inner = labels
                .strip_prefix('{')
                .and_then(|l| l.strip_suffix('}'))
                .unwrap_or("");
            let with_q = |q: &str| {
                if inner.is_empty() {
                    format!("{{quantile=\"{q}\"}}")
                } else {
                    format!("{{{inner},quantile=\"{q}\"}}")
                }
            };
            out.push_str(&format!("# TYPE {name} summary\n"));
            let s = &h.summary;
            for (q, us) in [("0.5", s.p50_us), ("0.95", s.p95_us), ("0.99", s.p99_us)] {
                out.push_str(&format!("{name}{} {:.0}\n", with_q(q), us * 1e3));
            }
            out.push_str(&format!("{name}_count{labels} {}\n", s.count));
            out.push_str(&format!("{name}_sum{labels} {}\n", h.sum_ns));
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Splits a slash path into a Prometheus metric name and a label block.
fn prom_name(path: &str) -> (String, String) {
    let mut name_parts: Vec<String> = vec!["surge".to_string()];
    let mut labels: Vec<String> = Vec::new();
    for seg in path.split('/') {
        if let Some((k, v)) = seg.split_once('=') {
            labels.push(format!("{}=\"{}\"", sanitize(k), v.replace('"', "")));
        } else {
            name_parts.push(sanitize(seg));
        }
    }
    let labels = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", labels.join(","))
    };
    (name_parts.join("_"), labels)
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let obs = Observe::off();
        let c = obs.counter("a/b");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = obs.gauge("a/g");
        g.set(7);
        assert_eq!(g.get(), 0);
        let h = obs.histogram("a/h");
        h.record_ns(100);
        assert_eq!(h.count(), 0);
        let f = obs.flight("w");
        assert!(!f.is_enabled());
        f.record(TraceEvent::FlushStart { seq: 0 });
        assert!(obs.snapshot().counters.is_empty());
        assert!(obs.trace_dump().is_empty());
    }

    #[test]
    fn counters_aggregate_across_clones_and_lookups() {
        let obs = Observe::enabled();
        let a = obs.counter("driver/shard=0/sweeps");
        let b = obs.counter("driver/shard=0/sweeps");
        a.add(3);
        b.add(4);
        a.clone().inc();
        assert_eq!(obs.snapshot().counter("driver/shard=0/sweeps"), Some(8));
    }

    #[test]
    fn sum_counters_covers_label_families() {
        let obs = Observe::enabled();
        obs.counter("d/shard=0/sweeps").add(2);
        obs.counter("d/shard=1/sweeps").add(3);
        obs.counter("d/shard=1/touches").add(100);
        let snap = obs.snapshot();
        let total = snap.sum_counters(|p| p.starts_with("d/shard=") && p.ends_with("/sweeps"));
        assert_eq!(total, 5);
    }

    #[test]
    fn histograms_merge_worker_locals() {
        let obs = Observe::enabled();
        let h = obs.histogram("checkpoint/stall_ns");
        let mut local = LatencyHistogram::new();
        local.record_ns(1_000);
        local.record_ns(2_000);
        h.merge(&local);
        h.record_ns(3_000);
        let snap = obs.snapshot();
        let hs = snap.histogram("checkpoint/stall_ns").unwrap();
        assert_eq!(hs.summary.count, 3);
        assert_eq!(hs.sum_ns, 6_000);
    }

    #[test]
    fn gauges_set_and_adjust() {
        let obs = Observe::enabled();
        let g = obs.gauge("serve/subscriptions");
        g.set(3);
        g.add(2);
        g.add(-1);
        assert_eq!(obs.snapshot().gauge("serve/subscriptions"), Some(4));
    }

    #[test]
    fn trace_dump_orders_workers_by_label() {
        let obs = Observe::enabled();
        obs.flight("shard=1")
            .record(TraceEvent::FlushStart { seq: 1 });
        obs.flight("shard=0")
            .record(TraceEvent::FlushStart { seq: 0 });
        obs.flight("driver")
            .record(TraceEvent::WalRotation { segment: 2 });
        let dump = obs.trace_dump();
        let labels: Vec<&str> = dump.workers.iter().map(|w| w.worker.as_str()).collect();
        assert_eq!(labels, vec!["driver", "shard=0", "shard=1"]);
        assert_eq!(dump.len(), 3);
        // Drain clears but keeps registrations.
        let drained = obs.trace_drain();
        assert_eq!(drained.len(), 3);
        assert!(obs.trace_dump().is_empty());
    }

    #[test]
    fn json_export_is_wellformed_and_complete() {
        let obs = Observe::enabled();
        obs.counter("runtime/objects").add(10);
        obs.gauge("serve/lanes").set(2);
        obs.histogram("runtime/flush_ns").record_ns(5_000);
        let json = obs.snapshot().to_json();
        assert!(json.contains("\"surge-observe-registry-v1\""));
        assert!(json.contains("\"runtime/objects\": 10"));
        assert!(json.contains("\"serve/lanes\": 2"));
        assert!(json.contains("\"runtime/flush_ns\""));
        // Balanced braces/quotes (same wellformedness check the bench
        // emitters use).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('"').count() % 2, 0, "unbalanced quotes");
    }

    #[test]
    fn prometheus_export_turns_segments_into_labels() {
        let obs = Observe::enabled();
        obs.counter("driver/shard=3/sweeps").add(42);
        obs.histogram("checkpoint/stall_ns").record_ns(10_000);
        let text = obs.snapshot().to_prometheus();
        assert!(
            text.contains("surge_driver_sweeps{shard=\"3\"} 42"),
            "{text}"
        );
        assert!(text.contains("# TYPE surge_driver_sweeps counter"));
        assert!(text.contains("surge_checkpoint_stall_ns{quantile=\"0.5\"}"));
        assert!(text.contains("surge_checkpoint_stall_ns_count 1"));
        assert!(text.contains("surge_checkpoint_stall_ns_sum 10000"));
    }

    #[test]
    fn flight_capacity_is_configurable() {
        let obs = Observe::with_flight_capacity(2);
        let f = obs.flight("w");
        for seq in 0..5 {
            f.record(TraceEvent::FlushStart { seq });
        }
        let dump = obs.trace_dump();
        assert_eq!(dump.workers[0].events.len(), 2);
        assert_eq!(dump.workers[0].dropped, 3);
    }

    #[test]
    fn panic_guard_is_silent_on_normal_drop() {
        let obs = Observe::enabled();
        let guard = obs.panic_dump_guard("test");
        drop(guard);
    }
}
