//! kCCS: the exact top-k detector (CCS-KSURGE, Algorithm 4).
//!
//! The top-k bursty regions (Definition 9) are defined greedily: the i-th
//! region maximizes the burst score over the objects not covered by regions
//! 1..i−1. The reduction turns this into k chained cSPOT problems: problem i
//! sees only the rectangles that cover none of the first i−1 bursty points.
//!
//! Following the paper, each rectangle carries a **level** `lvl ∈ [1, k]`:
//! `lvl = i` means the rectangle covers the current i-th bursty point (so it
//! is visible only to problems 1..i); `lvl = k` means it covers none.
//! Problem i operates on `G[i:] = {g | g.lvl ≥ i}`. Every cell maintains k
//! upper bounds and k candidate points — one per cSPOT problem — updated in
//! O(k) per event; cells are searched lazily per level exactly as in CCS.
//!
//! Window events use the same Lemma-4 candidate maintenance as CCS. Level
//! *changes* (a rectangle becoming visible/invisible to a problem when a
//! bursty point moves) are handled as pseudo-events equivalent to window
//! events for the affected problems — visible Current ≙ New, invisible
//! Current ≙ Grown, visible Past ≙ Grown, invisible Past ≙ Expired — so the
//! same Lemma-4 rules keep candidates valid whenever possible.

use std::collections::{BTreeSet, HashMap, HashSet};

use surge_core::{
    object_to_rect, BurstParams, CandidateState, CellId, CellState, CheckpointableDetector,
    DetectorState, DetectorStats, Event, EventKind, GridSpec, ObjectId, Point, Rect, RectState,
    RegionAnswer, RestoreError, SurgeQuery, TopKDetector, TotalF64, WindowKind,
};
use surge_exact::{sl_cspot, SweepRect};

#[derive(Debug, Clone, Copy)]
struct KCand {
    point: Point,
    wc: f64,
    wp: f64,
}

#[derive(Debug, Clone, Copy)]
enum KState {
    Stale,
    Valid(KCand),
    Infeasible,
}

#[derive(Debug)]
struct KRect {
    sweep: SweepRect,
    /// Visibility level: visible to problems `1..=lvl`.
    lvl: usize,
    cells: Vec<CellId>,
}

#[derive(Debug)]
struct KCell {
    members: HashSet<ObjectId>,
    /// Per level i (index i−1): Σ current-window weights of members with
    /// `lvl ≥ i` (the static bound, Definition 7, per problem).
    us: Vec<f64>,
    /// Per level dynamic bound in score units (∞ until first search).
    ud: Vec<f64>,
    cand: Vec<KState>,
    keys: Vec<TotalF64>,
    domain: Option<Rect>,
}

/// A currently-selected bursty point.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bursty {
    point: Point,
    score: f64,
}

/// The exact continuous top-k detector.
#[derive(Debug)]
pub struct KCellCspot {
    query: SurgeQuery,
    params: BurstParams,
    grid: GridSpec,
    k: usize,
    rects: HashMap<ObjectId, KRect>,
    cells: HashMap<CellId, KCell>,
    /// One bound-ordered queue per cSPOT problem.
    queues: Vec<BTreeSet<(TotalF64, CellId)>>,
    bursty: Vec<Option<Bursty>>,
    stats: DetectorStats,
}

impl KCellCspot {
    /// Creates a top-k detector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(query: SurgeQuery, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KCellCspot {
            params: query.burst_params(),
            grid: GridSpec::anchored(query.region.width, query.region.height),
            query,
            k,
            rects: HashMap::new(),
            cells: HashMap::new(),
            queues: vec![BTreeSet::new(); k],
            bursty: vec![None; k],
            stats: DetectorStats::default(),
        }
    }

    /// Number of non-empty cells tracked.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    fn key_for(&self, cell: &KCell, level: usize) -> TotalF64 {
        if matches!(cell.cand[level], KState::Infeasible) {
            return TotalF64(f64::NEG_INFINITY);
        }
        TotalF64((cell.us[level] / self.params.current_norm).min(cell.ud[level]))
    }

    fn refresh_key(&mut self, id: CellId, level: usize) {
        let Some(cell) = self.cells.get(&id) else {
            return;
        };
        let new_key = self.key_for(cell, level);
        let old_key = cell.keys[level];
        if new_key != old_key || !self.queues[level].contains(&(new_key, id)) {
            self.queues[level].remove(&(old_key, id));
            self.queues[level].insert((new_key, id));
            self.cells.get_mut(&id).expect("present").keys[level] = new_key;
        }
    }

    fn remove_cell_if_empty(&mut self, id: CellId) {
        let empty = self.cells.get(&id).is_some_and(|c| c.members.is_empty());
        if empty {
            let cell = self.cells.remove(&id).expect("present");
            for (level, key) in cell.keys.iter().enumerate() {
                self.queues[level].remove(&(*key, id));
            }
        }
    }

    fn ensure_cell(&mut self, id: CellId) {
        if self.cells.contains_key(&id) {
            return;
        }
        let cell_rect = self.grid.cell_rect(id);
        let domain = self
            .query
            .point_domain()
            .and_then(|d| d.intersection(&cell_rect));
        let state = if domain.is_none() {
            KState::Infeasible
        } else {
            KState::Stale
        };
        let cell = KCell {
            members: HashSet::new(),
            us: vec![0.0; self.k],
            ud: vec![f64::INFINITY; self.k],
            cand: vec![state; self.k],
            keys: vec![TotalF64(f64::NEG_INFINITY); self.k],
            domain,
        };
        self.cells.insert(id, cell);
    }

    /// Applies a window event to one cell at every level the rectangle is
    /// visible to (Lemma 4 per level, Eqn. 3 per level).
    fn apply_window_event(&mut self, id: CellId, ev: &Event, g: &SweepRect, lvl: usize) {
        self.ensure_cell(id);
        let params = self.params;
        let k = self.k;
        {
            let cell = self.cells.get_mut(&id).expect("present");
            let w = ev.object.weight;
            let covers = |c: &KCand| g.rect.contains(c.point);
            match ev.kind {
                EventKind::New => {
                    cell.members.insert(ev.object.id);
                    for j in 0..k {
                        cell.us[j] += w;
                        if cell.ud[j].is_finite() {
                            cell.ud[j] += w / params.current_norm;
                        }
                        if let KState::Valid(c) = &mut cell.cand[j] {
                            let increasing =
                                c.wc / params.current_norm - c.wp / params.past_norm > 0.0;
                            if covers(c) && increasing {
                                c.wc += w;
                            } else {
                                cell.cand[j] = KState::Stale;
                            }
                        }
                    }
                }
                EventKind::Grown => {
                    if cell.members.contains(&ev.object.id) {
                        for j in 0..lvl {
                            cell.us[j] -= w;
                            if let KState::Valid(c) = &cell.cand[j] {
                                if covers(c) {
                                    cell.cand[j] = KState::Stale;
                                }
                            }
                        }
                    }
                }
                EventKind::Expired => {
                    if cell.members.remove(&ev.object.id) {
                        for j in 0..lvl {
                            if cell.ud[j].is_finite() {
                                cell.ud[j] += params.alpha * w / params.past_norm;
                            }
                            if let KState::Valid(c) = &mut cell.cand[j] {
                                let increasing =
                                    c.wc / params.current_norm - c.wp / params.past_norm > 0.0;
                                if covers(c) && increasing {
                                    c.wp -= w;
                                } else {
                                    cell.cand[j] = KState::Stale;
                                }
                            }
                        }
                    }
                }
            }
        }
        for level in 0..k {
            self.refresh_key(id, level);
        }
        self.remove_cell_if_empty(id);
    }

    /// Changes a rectangle's level, emitting visibility pseudo-events to its
    /// cells for the affected level range.
    fn set_level(&mut self, rid: ObjectId, new_lvl: usize) {
        let (old_lvl, w, kind, cells) = {
            let Some(r) = self.rects.get_mut(&rid) else {
                return;
            };
            let old = r.lvl;
            if old == new_lvl {
                return;
            }
            r.lvl = new_lvl;
            (old, r.sweep.weight, r.sweep.kind, r.cells.clone())
        };
        let params = self.params;
        let (lo, hi, becoming_visible) = if new_lvl > old_lvl {
            (old_lvl, new_lvl, true) // visible at levels old_lvl+1..=new_lvl
        } else {
            (new_lvl, old_lvl, false) // invisible at levels new_lvl+1..=old_lvl
        };
        let rect = self.rects.get(&rid).expect("rect exists").sweep.rect;
        for id in cells {
            if let Some(cell) = self.cells.get_mut(&id) {
                for j in lo..hi {
                    // A visibility change at level j is equivalent to a
                    // window event for problem j: visible Current ≙ New,
                    // invisible Current ≙ Grown, visible Past ≙ Grown (drops
                    // covered scores), invisible Past ≙ Expired. Candidate
                    // maintenance follows Lemma 4 accordingly.
                    match (becoming_visible, kind) {
                        (true, WindowKind::Current) => {
                            cell.us[j] += w;
                            if cell.ud[j].is_finite() {
                                cell.ud[j] += w / params.current_norm;
                            }
                            if let KState::Valid(c) = &mut cell.cand[j] {
                                let increasing =
                                    c.wc / params.current_norm - c.wp / params.past_norm > 0.0;
                                if rect.contains(c.point) && increasing {
                                    c.wc += w;
                                } else {
                                    cell.cand[j] = KState::Stale;
                                }
                            }
                        }
                        (true, WindowKind::Past) => {
                            // Covered points lose score; uncovered candidates
                            // stay optimal.
                            if let KState::Valid(c) = &cell.cand[j] {
                                if rect.contains(c.point) {
                                    cell.cand[j] = KState::Stale;
                                }
                            }
                        }
                        (false, WindowKind::Current) => {
                            cell.us[j] -= w;
                            if let KState::Valid(c) = &mut cell.cand[j] {
                                if rect.contains(c.point) {
                                    cell.cand[j] = KState::Stale;
                                }
                            }
                        }
                        (false, WindowKind::Past) => {
                            // Removing a past rect can raise covered scores.
                            if cell.ud[j].is_finite() {
                                cell.ud[j] += params.alpha * w / params.past_norm;
                            }
                            if let KState::Valid(c) = &mut cell.cand[j] {
                                let increasing =
                                    c.wc / params.current_norm - c.wp / params.past_norm > 0.0;
                                if rect.contains(c.point) && increasing {
                                    c.wp -= w;
                                } else {
                                    cell.cand[j] = KState::Stale;
                                }
                            }
                        }
                    }
                }
            }
            for j in lo..hi {
                self.refresh_key(id, j);
            }
        }
    }

    /// Searches one cell for one problem level.
    fn search_cell_level(&mut self, id: CellId, level: usize) -> Option<f64> {
        self.stats.searches += 1;
        let params = self.params;
        let result = {
            let cell = self.cells.get(&id)?;
            let domain = cell.domain?;
            // Deterministic sweep input (ties break by order).
            let mut ids: Vec<ObjectId> = cell.members.iter().copied().collect();
            ids.sort_unstable();
            let rects: Vec<SweepRect> = ids
                .iter()
                .filter_map(|rid| {
                    let r = self.rects.get(rid)?;
                    (r.lvl > level).then_some(r.sweep) // lvl >= level+1 (1-indexed ≥ i)
                })
                .collect();
            match sl_cspot(&rects, &domain, &params) {
                Some(res) => (
                    KCand {
                        point: res.point,
                        wc: res.wc,
                        wp: res.wp,
                    },
                    res.score,
                ),
                None => (
                    KCand {
                        point: Point::new(domain.x1, domain.y1),
                        wc: 0.0,
                        wp: 0.0,
                    },
                    0.0,
                ),
            }
        };
        let (cand, score) = result;
        {
            let cell = self.cells.get_mut(&id).expect("present");
            cell.cand[level] = KState::Valid(cand);
            cell.ud[level] = score;
        }
        self.refresh_key(id, level);
        Some(score)
    }

    /// Selects the level-`level` bursty point via the lazy bound-ordered scan
    /// (positive scores only).
    fn select(&mut self, level: usize) -> Option<Bursty> {
        let mut best: Option<Bursty> = None;
        let mut cursor: Option<(TotalF64, CellId)> = None;
        loop {
            let entry = match cursor {
                None => self.queues[level].iter().next_back().copied(),
                Some(c) => self.queues[level].range(..c).next_back().copied(),
            };
            let Some((key, id)) = entry else { break };
            let floor = best.map_or(surge_core::SCORE_EPS, |b| b.score);
            if key.get() <= floor {
                break;
            }
            let state = self.cells.get(&id).map(|c| c.cand[level]);
            match state {
                Some(KState::Valid(c)) => {
                    let s = self.params.score_weights(c.wc, c.wp);
                    if s > floor {
                        best = Some(Bursty {
                            point: c.point,
                            score: s,
                        });
                    }
                    cursor = Some((key, id));
                }
                Some(KState::Stale) => {
                    self.search_cell_level(id, level);
                    cursor = None; // key changed; restart from the top
                }
                Some(KState::Infeasible) | None => {
                    cursor = Some((key, id));
                }
            }
        }
        best
    }

    /// The ids of rectangles covering `p` (all of them are members of the
    /// cell canonically containing `p`).
    fn covering(&self, p: Point) -> Vec<ObjectId> {
        let cid = self.grid.cell_of(p);
        match self.cells.get(&cid) {
            Some(cell) => cell
                .members
                .iter()
                .filter(|rid| {
                    self.rects
                        .get(rid)
                        .is_some_and(|r| r.sweep.rect.contains(p))
                })
                .copied()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Re-runs the greedy selection for all k levels, updating rectangle
    /// levels as bursty points move (Algorithm 4 lines 2–17).
    fn reselect_all(&mut self) {
        for i in 0..self.k {
            let pold = self.bursty[i];
            // If the previous problem already came up empty, this one must
            // too (its rectangle set is a subset).
            let pnew = if i > 0 && self.bursty[i - 1].is_none() {
                None
            } else {
                self.select(i)
            };

            // Rule 1 (line 15): rectangles pinned at this level by the OLD
            // point that no longer cover the NEW point become fully visible.
            if let Some(old) = pold {
                let moved =
                    pnew.is_none_or(|n| !(n.point.x == old.point.x && n.point.y == old.point.y));
                if moved || pnew.is_none() {
                    for rid in self.covering(old.point) {
                        let Some(r) = self.rects.get(&rid) else {
                            continue;
                        };
                        if r.lvl == i + 1 {
                            let still = pnew.is_some_and(|n| r.sweep.rect.contains(n.point));
                            if !still {
                                self.set_level(rid, self.k);
                            }
                        }
                    }
                }
            }
            // Rule 2 (line 16): rectangles covering the new point that were
            // visible to this problem get pinned here.
            if let Some(new) = pnew {
                for rid in self.covering(new.point) {
                    let Some(r) = self.rects.get(&rid) else {
                        continue;
                    };
                    if r.lvl > i + 1 {
                        self.set_level(rid, i + 1);
                    }
                }
            }
            self.bursty[i] = pnew;
        }
    }
}

/// Checkpoint capture/restore. The top-k logical state is the **global**
/// rectangle set with visibility levels ([`DetectorState::rects`]), the
/// per-cell per-level accumulators and candidates, and the current bursty
/// incumbents. Cell membership and queue keys are derived on restore (the
/// cells a rectangle touches are a pure function of the grid; keys are pure
/// functions of the captured bounds), so a restored detector's greedy
/// re-selection continues the uninterrupted run bit for bit.
impl CheckpointableDetector for KCellCspot {
    fn capture_state(&self) -> DetectorState {
        let mut rects: Vec<RectState> = self
            .rects
            .iter()
            .map(|(&id, r)| RectState {
                id,
                rect: r.sweep.rect,
                weight: r.sweep.weight,
                kind: r.sweep.kind,
                level: r.lvl as u32,
            })
            .collect();
        rects.sort_unstable_by_key(|r| r.id);
        let mut cells: Vec<CellState> = self
            .cells
            .iter()
            .map(|(&id, cell)| CellState {
                id,
                rects: Vec::new(),
                us: cell.us.clone(),
                ud: cell.ud.clone(),
                cand: cell
                    .cand
                    .iter()
                    .map(|c| match c {
                        KState::Stale => CandidateState::Stale,
                        KState::Infeasible => CandidateState::Infeasible,
                        KState::Valid(c) => CandidateState::Valid {
                            point: c.point,
                            wc: c.wc,
                            wp: c.wp,
                        },
                    })
                    .collect(),
            })
            .collect();
        cells.sort_unstable_by_key(|c| c.id);
        DetectorState {
            name: self.name().to_string(),
            levels: self.k as u32,
            cells,
            rects,
            incumbents: self
                .bursty
                .iter()
                .map(|b| b.map(|b| (b.point, b.score)))
                .collect(),
            grid_cells: Vec::new(),
            controller: None,
            stats: self.stats,
        }
    }

    fn restore_state(&mut self, state: &DetectorState) -> Result<(), RestoreError> {
        if !self.cells.is_empty() || !self.rects.is_empty() {
            return Err(RestoreError::new(
                "restore target must be a freshly constructed detector",
            ));
        }
        if state.levels as usize != self.k {
            return Err(RestoreError::new(format!(
                "snapshot has k={}, detector has k={}",
                state.levels, self.k
            )));
        }
        if state.name != self.name() {
            return Err(RestoreError::new(format!(
                "snapshot captured a {:?} detector, restoring into {:?}",
                state.name,
                self.name()
            )));
        }
        if state.incumbents.len() != self.k {
            return Err(RestoreError::new(format!(
                "snapshot has {} incumbents, expected {}",
                state.incumbents.len(),
                self.k
            )));
        }
        let k = self.k;
        for cp in &state.cells {
            if cp.us.len() != k || cp.ud.len() != k || cp.cand.len() != k {
                return Err(RestoreError::new(format!(
                    "cell {:?}: per-level vectors must have length k={k}",
                    cp.id
                )));
            }
            let cell_rect = self.grid.cell_rect(cp.id);
            let domain = self
                .query
                .point_domain()
                .and_then(|d| d.intersection(&cell_rect));
            let cand = cp
                .cand
                .iter()
                .map(|c| match *c {
                    CandidateState::Stale => Ok(KState::Stale),
                    CandidateState::Infeasible => Ok(KState::Infeasible),
                    CandidateState::Valid { point, wc, wp } => {
                        Ok(KState::Valid(KCand { point, wc, wp }))
                    }
                    CandidateState::Absent => {
                        Err(RestoreError::new("kCCS never records Absent candidates"))
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            let inserted = self.cells.insert(
                cp.id,
                KCell {
                    members: HashSet::new(),
                    us: cp.us.clone(),
                    ud: cp.ud.clone(),
                    cand,
                    keys: vec![TotalF64(f64::NEG_INFINITY); k],
                    domain,
                },
            );
            if inserted.is_some() {
                return Err(RestoreError::new(format!("duplicate cell {:?}", cp.id)));
            }
        }
        // Rebuild the global rectangle set and derive cell membership from
        // the grid — every cell a live rectangle touches must exist in the
        // snapshot (a memberless cell would have been dropped).
        for r in &state.rects {
            let lvl = r.level as usize;
            if lvl == 0 || lvl > k {
                return Err(RestoreError::new(format!(
                    "rect {}: level {lvl} outside 1..={k}",
                    r.id
                )));
            }
            let cells: Vec<CellId> = self.grid.cells_overlapping_iter(&r.rect).collect();
            for cid in &cells {
                let cell = self.cells.get_mut(cid).ok_or_else(|| {
                    RestoreError::new(format!(
                        "rect {} touches cell {cid:?} missing from the snapshot",
                        r.id
                    ))
                })?;
                cell.members.insert(r.id);
            }
            let dup = self.rects.insert(
                r.id,
                KRect {
                    sweep: SweepRect {
                        rect: r.rect,
                        weight: r.weight,
                        kind: r.kind,
                    },
                    lvl,
                    cells,
                },
            );
            if dup.is_some() {
                return Err(RestoreError::new(format!("duplicate rect {}", r.id)));
            }
        }
        for cell in self.cells.values() {
            if cell.members.is_empty() {
                return Err(RestoreError::new(
                    "snapshot contains a cell no rectangle touches",
                ));
            }
        }
        // Derive the queue keys — pure functions of the restored bounds.
        let ids: Vec<CellId> = self.cells.keys().copied().collect();
        for id in ids {
            for level in 0..k {
                self.refresh_key(id, level);
            }
        }
        self.bursty = state
            .incumbents
            .iter()
            .map(|b| b.map(|(point, score)| Bursty { point, score }))
            .collect();
        self.stats = state.stats;
        Ok(())
    }
}

impl TopKDetector for KCellCspot {
    fn on_event(&mut self, event: &Event) {
        self.stats.events += 1;
        if event.kind == EventKind::New {
            self.stats.new_events += 1;
        }
        if !self.query.accepts(event.object.pos) {
            return;
        }
        let searches_before = self.stats.searches;
        match event.kind {
            EventKind::New => {
                let g = object_to_rect(&event.object, self.query.region);
                let sweep = SweepRect {
                    rect: g.rect,
                    weight: g.weight,
                    kind: WindowKind::Current,
                };
                let cells: Vec<CellId> = self.grid.cells_overlapping_iter(&g.rect).collect();
                self.rects.insert(
                    event.object.id,
                    KRect {
                        sweep,
                        lvl: self.k,
                        cells: cells.clone(),
                    },
                );
                for id in cells {
                    self.apply_window_event(id, event, &sweep, self.k);
                }
            }
            EventKind::Grown => {
                let Some((sweep, lvl, cells)) = self.rects.get_mut(&event.object.id).map(|r| {
                    r.sweep.kind = WindowKind::Past;
                    (r.sweep, r.lvl, r.cells.clone())
                }) else {
                    return;
                };
                for id in cells {
                    self.apply_window_event(id, event, &sweep, lvl);
                }
            }
            EventKind::Expired => {
                let Some(r) = self.rects.remove(&event.object.id) else {
                    return;
                };
                for id in r.cells {
                    self.apply_window_event(id, event, &r.sweep, r.lvl);
                }
            }
        }
        self.reselect_all();
        if self.stats.searches > searches_before {
            self.stats.events_triggering_search += 1;
        }
    }

    fn current_topk(&mut self) -> Vec<RegionAnswer> {
        self.bursty
            .iter()
            .take_while(|b| b.is_some())
            .map(|b| {
                let b = b.expect("take_while guards");
                RegionAnswer::from_point(b.point, self.query.region, b.score)
            })
            .collect()
    }

    fn k(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        "kCCS"
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::{RegionSize, SpatialObject, WindowConfig};

    fn query(alpha: f64) -> SurgeQuery {
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), alpha)
    }

    fn obj(id: u64, w: f64, x: f64, y: f64, t: u64) -> SpatialObject {
        SpatialObject::new(id, w, Point::new(x, y), t)
    }

    #[test]
    fn capture_restore_resumes_bit_identically() {
        let events: Vec<Event> = (0..70u64)
            .flat_map(|i| {
                let o = obj(
                    i,
                    1.0 + (i % 5) as f64,
                    (i as f64 * 3.7) % 20.0,
                    (i as f64 * 5.3) % 20.0,
                    i * 11,
                );
                let mut evs = vec![Event::new_arrival(o)];
                if i >= 25 && i % 2 == 0 {
                    let p = i - 25;
                    let old = obj(
                        p,
                        1.0 + (p % 5) as f64,
                        (p as f64 * 3.7) % 20.0,
                        (p as f64 * 5.3) % 20.0,
                        p * 11,
                    );
                    evs.push(Event::grown(old, i * 11));
                }
                if i >= 50 && i % 2 == 0 {
                    let p = i - 50;
                    let old = obj(
                        p,
                        1.0 + (p % 5) as f64,
                        (p as f64 * 3.7) % 20.0,
                        (p as f64 * 5.3) % 20.0,
                        p * 11,
                    );
                    evs.push(Event::expired(old, i * 11));
                }
                evs
            })
            .collect();
        for k in [1usize, 3] {
            for cut in [0usize, 31, events.len()] {
                let mut live = KCellCspot::new(query(0.4), k);
                for ev in &events[..cut] {
                    live.on_event(ev);
                }
                let state = live.capture_state();
                let mut resumed = KCellCspot::new(query(0.4), k);
                resumed.restore_state(&state).unwrap();
                assert_eq!(resumed.capture_state(), state, "capture is stable");
                for (i, ev) in events[cut..].iter().enumerate() {
                    live.on_event(ev);
                    resumed.on_event(ev);
                    let (a, b) = (live.current_topk(), resumed.current_topk());
                    assert_eq!(a.len(), b.len(), "k {k} cut {cut} ev {i}");
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(
                            x.score.to_bits(),
                            y.score.to_bits(),
                            "k {k} cut {cut} ev {i}"
                        );
                        assert_eq!(x.point.x.to_bits(), y.point.x.to_bits());
                        assert_eq!(x.point.y.to_bits(), y.point.y.to_bits());
                    }
                }
                assert_eq!(resumed.stats(), live.stats());
                assert_eq!(resumed.cell_count(), live.cell_count());
            }
        }
    }

    #[test]
    fn restore_rejects_k_mismatch() {
        let mut d = KCellCspot::new(query(0.5), 2);
        d.on_event(&Event::new_arrival(obj(0, 1.0, 0.0, 0.0, 0)));
        let state = d.capture_state();
        let mut wrong = KCellCspot::new(query(0.5), 3);
        assert!(wrong.restore_state(&state).is_err());
    }

    #[test]
    fn empty_detector_reports_nothing() {
        let mut d = KCellCspot::new(query(0.5), 3);
        assert!(d.current_topk().is_empty());
    }

    #[test]
    fn two_clusters_two_answers() {
        let mut d = KCellCspot::new(query(0.0), 2);
        d.on_event(&Event::new_arrival(obj(0, 3.0, 0.0, 0.0, 0)));
        d.on_event(&Event::new_arrival(obj(1, 2.0, 0.3, 0.3, 0)));
        d.on_event(&Event::new_arrival(obj(2, 4.0, 20.0, 20.0, 0)));
        let top = d.current_topk();
        assert_eq!(top.len(), 2);
        assert!((top[0].score - 5.0 / 1_000.0).abs() < 1e-12);
        assert!((top[1].score - 4.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_clusters_truncates() {
        let mut d = KCellCspot::new(query(0.0), 5);
        d.on_event(&Event::new_arrival(obj(0, 1.0, 0.0, 0.0, 0)));
        let top = d.current_topk();
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn second_region_excludes_first_regions_objects() {
        // One heavy cluster; k=2. The second answer must NOT re-report the
        // same objects.
        let mut d = KCellCspot::new(query(0.0), 2);
        d.on_event(&Event::new_arrival(obj(0, 5.0, 0.0, 0.0, 0)));
        d.on_event(&Event::new_arrival(obj(1, 5.0, 0.1, 0.1, 0)));
        let top = d.current_topk();
        assert_eq!(top.len(), 1, "no disjoint second region exists: {top:?}");
    }

    #[test]
    fn levels_release_objects_when_point_moves() {
        let mut d = KCellCspot::new(query(0.0), 2);
        let a = obj(0, 3.0, 0.0, 0.0, 0);
        let b = obj(1, 2.0, 20.0, 20.0, 0);
        d.on_event(&Event::new_arrival(a));
        d.on_event(&Event::new_arrival(b));
        let top = d.current_topk();
        assert_eq!(top.len(), 2);
        // Now a heavier cluster appears; the old #1 becomes #2 and the old
        // #2 drops out.
        d.on_event(&Event::new_arrival(obj(2, 10.0, 40.0, 40.0, 10)));
        let top = d.current_topk();
        assert_eq!(top.len(), 2);
        assert!((top[0].score - 10.0 / 1_000.0).abs() < 1e-12);
        assert!((top[1].score - 3.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn expiry_clears_answers() {
        let mut d = KCellCspot::new(query(0.5), 2);
        let a = obj(0, 3.0, 0.0, 0.0, 0);
        d.on_event(&Event::new_arrival(a));
        assert_eq!(d.current_topk().len(), 1);
        d.on_event(&Event::grown(a, 1_000));
        // past-only: no positive score remains
        assert!(d.current_topk().is_empty());
        d.on_event(&Event::expired(a, 2_000));
        assert!(d.current_topk().is_empty());
        assert_eq!(d.cell_count(), 0);
    }

    #[test]
    fn scores_non_increasing() {
        let mut d = KCellCspot::new(query(0.3), 4);
        for i in 0..12 {
            d.on_event(&Event::new_arrival(obj(
                i,
                1.0 + (i % 5) as f64,
                (i as f64 * 3.7) % 25.0,
                (i as f64 * 5.3) % 25.0,
                i * 10,
            )));
            let top = d.current_topk();
            for w in top.windows(2) {
                assert!(w[0].score >= w[1].score - 1e-12);
            }
        }
    }
}
