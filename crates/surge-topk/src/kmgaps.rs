//! kMGAPS: the top-k extension of MGAP-SURGE (Algorithm 7).
//!
//! Each of the four shifted grids contributes its top `4k` cells (a cell of
//! one grid overlaps at most four cells of another, so `4k` per grid is
//! enough to guarantee `k` non-overlapping survivors); the merged candidates
//! are greedily filtered to the best `k` pairwise non-overlapping cells.

use surge_approx::MgapSurge;
use surge_core::{BurstDetector, DetectorStats, Event, RegionAnswer, SurgeQuery, TopKDetector};

/// The multi-grid approximate top-k detector.
#[derive(Debug)]
pub struct KMgapSurge {
    inner: MgapSurge,
    k: usize,
}

impl KMgapSurge {
    /// Creates a kMGAPS detector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(query: SurgeQuery, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMgapSurge {
            inner: MgapSurge::new(query),
            k,
        }
    }

    /// The underlying single-region detector.
    pub fn inner(&self) -> &MgapSurge {
        &self.inner
    }
}

impl TopKDetector for KMgapSurge {
    fn on_event(&mut self, event: &Event) {
        self.inner.on_event(event);
    }

    fn current_topk(&mut self) -> Vec<RegionAnswer> {
        let mut out = self.inner.topk(self.k);
        out.retain(|a| a.score > surge_core::SCORE_EPS);
        out
    }

    fn k(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        "kMGAPS"
    }

    fn stats(&self) -> DetectorStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::{Point, RegionSize, SpatialObject, WindowConfig};

    fn query() -> SurgeQuery {
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), 0.0)
    }

    fn obj(id: u64, w: f64, x: f64, y: f64, t: u64) -> SpatialObject {
        SpatialObject::new(id, w, Point::new(x, y), t)
    }

    #[test]
    fn straddling_cluster_recovered_by_shifted_grid() {
        // Cluster straddling the anchored grid corner (1,1): kGAPS splits it
        // across 4 cells; kMGAPS's fully-shifted grid holds it in one cell.
        let mut d = KMgapSurge::new(query(), 1);
        for (i, (x, y)) in [(0.9, 0.9), (1.1, 0.9), (0.9, 1.1), (1.1, 1.1)]
            .iter()
            .enumerate()
        {
            d.on_event(&Event::new_arrival(obj(i as u64, 1.0, *x, *y, 0)));
        }
        let top = d.current_topk();
        assert_eq!(top.len(), 1);
        assert!((top[0].score - 4.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn topk_non_overlapping_across_grids() {
        let mut d = KMgapSurge::new(query(), 3);
        for i in 0..12 {
            d.on_event(&Event::new_arrival(obj(
                i,
                1.0 + (i % 4) as f64,
                (i as f64 * 2.13) % 12.0,
                (i as f64 * 3.71) % 12.0,
                0,
            )));
        }
        let top = d.current_topk();
        assert!(!top.is_empty());
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                assert!(
                    !top[i].region.interior_intersects(&top[j].region),
                    "{:?} overlaps {:?}",
                    top[i].region,
                    top[j].region
                );
            }
        }
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn zero_scores_suppressed() {
        let mut d = KMgapSurge::new(query(), 2);
        let o = obj(0, 2.0, 0.5, 0.5, 0);
        d.on_event(&Event::new_arrival(o));
        d.on_event(&Event::grown(o, 1_000));
        assert!(d.current_topk().is_empty());
    }
}
