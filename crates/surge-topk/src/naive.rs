//! The naive top-k detector (§VII-F): re-runs the full greedy top-k search
//! (k global sweeps) on every event. Prohibitively expensive — the paper
//! reports it ~100× slower than kCCS — but trivially correct, so it doubles
//! as a runtime reference and as a live oracle.

use std::collections::HashMap;

use surge_core::{
    DetectorStats, Event, EventKind, ObjectId, RegionAnswer, SpatialObject, SurgeQuery,
    TopKDetector,
};
use surge_exact::snapshot_topk;

/// The naive greedy top-k detector.
#[derive(Debug)]
pub struct NaiveTopK {
    query: SurgeQuery,
    k: usize,
    current: HashMap<ObjectId, SpatialObject>,
    past: HashMap<ObjectId, SpatialObject>,
    stats: DetectorStats,
}

impl NaiveTopK {
    /// Creates a naive top-k detector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(query: SurgeQuery, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        NaiveTopK {
            query,
            k,
            current: HashMap::new(),
            past: HashMap::new(),
            stats: DetectorStats::default(),
        }
    }

    /// Objects currently resident in either window.
    pub fn resident_objects(&self) -> usize {
        self.current.len() + self.past.len()
    }
}

impl TopKDetector for NaiveTopK {
    fn on_event(&mut self, event: &Event) {
        self.stats.events += 1;
        if event.kind == EventKind::New {
            self.stats.new_events += 1;
        }
        if !self.query.accepts(event.object.pos) {
            return;
        }
        match event.kind {
            EventKind::New => {
                self.current.insert(event.object.id, event.object);
            }
            EventKind::Grown => {
                if let Some(o) = self.current.remove(&event.object.id) {
                    self.past.insert(event.object.id, o);
                }
            }
            EventKind::Expired => {
                self.past.remove(&event.object.id);
            }
        }
    }

    fn current_topk(&mut self) -> Vec<RegionAnswer> {
        self.stats.searches += self.k as u64;
        self.stats.events_triggering_search += 1;
        let current: Vec<SpatialObject> = self.current.values().copied().collect();
        let past: Vec<SpatialObject> = self.past.values().copied().collect();
        snapshot_topk(&current, &past, &self.query, self.k)
    }

    fn k(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        "Naive"
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::{Point, RegionSize, WindowConfig};

    fn query() -> SurgeQuery {
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), 0.5)
    }

    fn obj(id: u64, w: f64, x: f64, y: f64, t: u64) -> SpatialObject {
        SpatialObject::new(id, w, Point::new(x, y), t)
    }

    #[test]
    fn tracks_window_membership() {
        let mut d = NaiveTopK::new(query(), 2);
        let o = obj(0, 1.0, 0.0, 0.0, 0);
        d.on_event(&Event::new_arrival(o));
        assert_eq!(d.resident_objects(), 1);
        d.on_event(&Event::grown(o, 1_000));
        assert_eq!(d.resident_objects(), 1);
        d.on_event(&Event::expired(o, 2_000));
        assert_eq!(d.resident_objects(), 0);
    }

    #[test]
    fn greedy_answers() {
        let mut d = NaiveTopK::new(query(), 2);
        d.on_event(&Event::new_arrival(obj(0, 3.0, 0.0, 0.0, 0)));
        d.on_event(&Event::new_arrival(obj(1, 5.0, 30.0, 30.0, 0)));
        let top = d.current_topk();
        assert_eq!(top.len(), 2);
        assert!((top[0].score - 5.0 / 1_000.0).abs() < 1e-12);
        assert!((top[1].score - 3.0 / 1_000.0).abs() < 1e-12);
    }
}
