//! kGAPS: the top-k extension of GAP-SURGE (Algorithm 6).
//!
//! GAP-SURGE already keeps every cell in a score-ordered heap; the top-k
//! answer is simply the k best cells. Cells of one grid are disjoint, so the
//! exclusion requirement of Definition 9 is satisfied by construction.

use surge_approx::GapSurge;
use surge_core::{BurstDetector, DetectorStats, Event, RegionAnswer, SurgeQuery, TopKDetector};

/// The grid-based approximate top-k detector.
#[derive(Debug)]
pub struct KGapSurge {
    inner: GapSurge,
    k: usize,
}

impl KGapSurge {
    /// Creates a kGAPS detector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(query: SurgeQuery, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KGapSurge {
            inner: GapSurge::new(query),
            k,
        }
    }

    /// The underlying single-region detector.
    pub fn inner(&self) -> &GapSurge {
        &self.inner
    }
}

impl TopKDetector for KGapSurge {
    fn on_event(&mut self, event: &Event) {
        self.inner.on_event(event);
    }

    fn current_topk(&mut self) -> Vec<RegionAnswer> {
        let mut out = self.inner.topk(self.k);
        out.retain(|a| a.score > surge_core::SCORE_EPS);
        out
    }

    fn k(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        "kGAPS"
    }

    fn stats(&self) -> DetectorStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::{Point, RegionSize, SpatialObject, WindowConfig};

    fn query() -> SurgeQuery {
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), 0.5)
    }

    fn obj(id: u64, w: f64, x: f64, y: f64, t: u64) -> SpatialObject {
        SpatialObject::new(id, w, Point::new(x, y), t)
    }

    #[test]
    fn reports_k_best_cells() {
        let mut d = KGapSurge::new(query(), 2);
        d.on_event(&Event::new_arrival(obj(0, 3.0, 0.5, 0.5, 0)));
        d.on_event(&Event::new_arrival(obj(1, 2.0, 5.5, 5.5, 0)));
        d.on_event(&Event::new_arrival(obj(2, 1.0, 9.5, 9.5, 0)));
        let top = d.current_topk();
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        assert!((top[0].score - 3.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn zero_score_cells_suppressed() {
        let mut d = KGapSurge::new(query(), 3);
        let o = obj(0, 2.0, 0.5, 0.5, 0);
        d.on_event(&Event::new_arrival(o));
        d.on_event(&Event::grown(o, 1_000));
        assert!(d.current_topk().is_empty());
    }

    #[test]
    fn answers_are_disjoint_cells() {
        let mut d = KGapSurge::new(query(), 3);
        for i in 0..9 {
            d.on_event(&Event::new_arrival(obj(
                i,
                1.0,
                (i % 3) as f64 * 3.0 + 0.5,
                (i / 3) as f64 * 3.0 + 0.5,
                0,
            )));
        }
        let top = d.current_topk();
        assert_eq!(top.len(), 3);
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                assert!(!top[i].region.interior_intersects(&top[j].region));
            }
        }
    }
}
