//! # surge-topk
//!
//! Continuous top-k bursty-region detection (paper §VI): the greedy top-k
//! semantics of Definition 9 — region i maximizes the burst score over the
//! objects not covered by regions 1..i−1 — implemented four ways:
//!
//! * [`kccs`] — exact kCCS (Algorithm 4): k chained cSPOT problems sharing
//!   one grid, with per-level bounds/candidates and rectangle levels.
//! * [`kgaps`] — approximate kGAPS (Algorithm 6): the k best grid cells.
//! * [`kmgaps`] — approximate kMGAPS (Algorithm 7): top-4k cells from four
//!   shifted grids, greedily merged to k non-overlapping cells.
//! * [`naive`] — the brute-force greedy re-run per event, the paper's
//!   runtime strawman and a live correctness oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kccs;
pub mod kgaps;
pub mod kmgaps;
pub mod naive;

pub use kccs::KCellCspot;
pub use kgaps::KGapSurge;
pub use kmgaps::KMgapSurge;
pub use naive::NaiveTopK;
