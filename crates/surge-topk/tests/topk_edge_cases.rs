//! Edge cases for the top-k detectors: k exceeding available regions, k = 1
//! equivalence, greedy-disjointness semantics, and churn.

use surge_core::{
    BurstDetector, Point, RegionSize, SpatialObject, SurgeQuery, TopKDetector, WindowConfig,
};
use surge_exact::CellCspot;
use surge_stream::SlidingWindowEngine;
use surge_topk::{KCellCspot, KGapSurge, KMgapSurge, NaiveTopK};

fn query() -> SurgeQuery {
    SurgeQuery::whole_space(RegionSize::new(2.0, 2.0), WindowConfig::equal(1_000), 0.5)
}

/// Three well-separated clusters with strictly decreasing mass.
fn three_clusters() -> Vec<SpatialObject> {
    let mut objs = Vec::new();
    let mut id = 0;
    for t in 0..12u64 {
        for (cx, copies) in [(0.0f64, 3u64), (50.0, 2), (100.0, 1)] {
            for _ in 0..copies {
                objs.push(SpatialObject::new(
                    id,
                    1.0,
                    Point::new(cx + (id % 3) as f64 * 0.2, 5.0),
                    t * 50,
                ));
                id += 1;
            }
        }
    }
    objs
}

fn drive_k<D: TopKDetector>(det: &mut D, objs: &[SpatialObject]) {
    let mut engine = SlidingWindowEngine::new(WindowConfig::equal(1_000));
    for o in objs {
        for ev in engine.push(*o) {
            det.on_event(ev_ref(&ev));
        }
    }
}

// TopKDetector::on_event takes &Event; helper for readability.
fn ev_ref(ev: &surge_core::Event) -> &surge_core::Event {
    ev
}

#[test]
fn k_larger_than_occupied_regions_returns_fewer() {
    let objs = three_clusters();
    let mut det = KCellCspot::new(query(), 9);
    drive_k(&mut det, &objs);
    let answers = det.current_topk();
    assert!(answers.len() <= 9);
    assert!(answers.len() >= 3, "three clusters → at least 3 answers");
    for w in answers.windows(2) {
        assert!(w[0].score >= w[1].score - 1e-12);
    }
}

#[test]
fn k_equals_one_matches_single_detector() {
    let objs = three_clusters();
    let mut single = CellCspot::new(query());
    let mut k1 = KCellCspot::new(query(), 1);
    let mut engine = SlidingWindowEngine::new(WindowConfig::equal(1_000));
    for o in &objs {
        for ev in engine.push(*o) {
            single.on_event(&ev);
            k1.on_event(&ev);
        }
        let a = single.current().map(|r| r.score).unwrap_or(0.0);
        let b = k1.current_topk().first().map(|r| r.score).unwrap_or(0.0);
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1e-12), "{a} vs {b}");
    }
}

#[test]
fn greedy_ranks_clusters_by_mass() {
    let objs = three_clusters();
    let mut det = KCellCspot::new(query(), 3);
    drive_k(&mut det, &objs);
    let answers = det.current_topk();
    assert_eq!(answers.len(), 3);
    // Cluster order: x ≈ 0 (mass 3) > x ≈ 50 (mass 2) > x ≈ 100 (mass 1).
    let xs: Vec<f64> = answers.iter().map(|a| a.region.center().x).collect();
    assert!(xs[0] < 10.0, "first answer at {}", xs[0]);
    assert!((40.0..60.0).contains(&xs[1]), "second answer at {}", xs[1]);
    assert!(xs[2] > 90.0, "third answer at {}", xs[2]);
}

#[test]
fn kccs_matches_naive_on_churning_stream() {
    let q = query();
    let mut fast = KCellCspot::new(q, 3);
    let mut naive = NaiveTopK::new(q, 3);
    let mut engine = SlidingWindowEngine::new(q.windows);
    // Clusters whose ranking flips as objects age out.
    let mut objs = Vec::new();
    let mut id = 0;
    for t in 0..60u64 {
        let cx = if t < 30 { 0.0 } else { 50.0 };
        objs.push(SpatialObject::new(id, 1.0, Point::new(cx, 0.0), t * 60));
        id += 1;
        if t % 2 == 0 {
            objs.push(SpatialObject::new(id, 1.0, Point::new(25.0, 0.0), t * 60));
            id += 1;
        }
    }
    for (step, o) in objs.iter().enumerate() {
        for ev in engine.push(*o) {
            fast.on_event(&ev);
            naive.on_event(&ev);
        }
        if step % 7 != 0 {
            continue;
        }
        let f: Vec<f64> = fast.current_topk().iter().map(|a| a.score).collect();
        let n: Vec<f64> = naive.current_topk().iter().map(|a| a.score).collect();
        assert_eq!(f.len(), n.len(), "step {step}: {f:?} vs {n:?}");
        for (i, (a, b)) in f.iter().zip(&n).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1e-12),
                "step {step} rank {i}: kCCS {a} vs naive {b}"
            );
        }
    }
}

#[test]
fn approx_topk_is_sorted_and_disjoint() {
    let objs = three_clusters();
    let mut kg = KGapSurge::new(query(), 4);
    let mut km = KMgapSurge::new(query(), 4);
    drive_k(&mut kg, &objs);
    drive_k(&mut km, &objs);
    for answers in [kg.current_topk(), km.current_topk()] {
        for w in answers.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
            // Reported regions must not overlap (cells are disjoint; the
            // merged multi-grid answers are filtered for overlap).
            let a = &w[0].region;
            let b = &w[1].region;
            let overlap_w = (a.x1.min(b.x1) - a.x0.max(b.x0)).max(0.0);
            let overlap_h = (a.y1.min(b.y1) - a.y0.max(b.y0)).max(0.0);
            assert!(
                overlap_w * overlap_h <= 1e-12,
                "overlapping answers {a:?} / {b:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// finish()-path edge cases (the PR-3 terminal-drain contract)
// ---------------------------------------------------------------------------

/// After the engine's `finish()` drains the tail windows, every object has
/// completed its lifecycle: the top-k must be empty — for the exact
/// detector, the naive strawman, and the approximations alike. (These
/// detectors predate the drain contract; without delivering the drained
/// events they would keep reporting the truncated windows' residents.)
#[test]
fn finish_drain_empties_topk() {
    let objs = three_clusters();
    let mut kccs = KCellCspot::new(query(), 3);
    let mut naive = NaiveTopK::new(query(), 3);
    let mut kg = KGapSurge::new(query(), 3);
    let mut km = KMgapSurge::new(query(), 3);
    let mut engine = SlidingWindowEngine::new(WindowConfig::equal(1_000));
    for o in &objs {
        for ev in engine.push(*o) {
            kccs.on_event(&ev);
            naive.on_event(&ev);
            kg.on_event(&ev);
            km.on_event(&ev);
        }
    }
    assert!(!kccs.current_topk().is_empty(), "pre-drain sanity");
    for ev in engine.finish() {
        kccs.on_event(&ev);
        naive.on_event(&ev);
        kg.on_event(&ev);
        km.on_event(&ev);
    }
    assert_eq!(engine.current_len() + engine.past_len(), 0);
    for (name, answers) in [
        ("kCCS", kccs.current_topk()),
        ("Naive", naive.current_topk()),
        ("kGAPS", kg.current_topk()),
        ("kMGAPS", km.current_topk()),
    ] {
        assert!(
            answers.iter().all(|a| a.score.abs() <= 1e-12),
            "{name} still scores after full drain: {answers:?}"
        );
    }
}

/// Empty tail window: with a zero-length past window every grow is chased
/// by its expire at the same instant, so the drain's Grown/Expired pairs
/// collapse. The top-k must stay well-formed at every step and empty after
/// the drain.
#[test]
fn zero_length_past_window_drain_is_clean() {
    let q = SurgeQuery::whole_space(RegionSize::new(2.0, 2.0), WindowConfig::new(1_000, 0), 0.5);
    let mut det = KCellCspot::new(q, 4);
    let mut engine = SlidingWindowEngine::new(WindowConfig::new(1_000, 0));
    for o in three_clusters() {
        for ev in engine.push(o) {
            det.on_event(&ev);
        }
        let answers = det.current_topk();
        for w in answers.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12, "unsorted: {answers:?}");
        }
    }
    for ev in engine.finish() {
        det.on_event(&ev);
    }
    assert!(
        det.current_topk().iter().all(|a| a.score.abs() <= 1e-12),
        "zero-length past window left residue"
    );
}

/// k larger than the survivors of a partial drain: advance past the first
/// cluster wave's expiry, leaving fewer occupied regions than k. The
/// detector must report at most the surviving regions — never pad with
/// expired ones — and keep them sorted.
#[test]
fn k_exceeds_survivors_after_partial_drain() {
    let q = query();
    let mut det = KCellCspot::new(q, 9);
    let mut engine = SlidingWindowEngine::new(q.windows);
    // Wave 1: three clusters early. Wave 2: one cluster much later.
    let mut objs = Vec::new();
    let mut id = 0u64;
    for t in 0..6u64 {
        for cx in [0.0f64, 50.0, 100.0] {
            objs.push(SpatialObject::new(id, 1.0, Point::new(cx, 5.0), t * 10));
            id += 1;
        }
    }
    for t in 0..4u64 {
        objs.push(SpatialObject::new(
            id,
            1.0,
            Point::new(200.0, 5.0),
            10_000 + t * 10,
        ));
        id += 1;
    }
    for o in &objs {
        for ev in engine.push(*o) {
            det.on_event(&ev);
        }
    }
    // The second wave's arrival advanced the clock past wave 1's expiry:
    // only the x = 200 cluster survives.
    let answers: Vec<_> = det
        .current_topk()
        .into_iter()
        .filter(|a| a.score > 1e-12)
        .collect();
    assert!(
        !answers.is_empty() && answers.len() <= 2,
        "expected only the surviving cluster's region(s), got {answers:?}"
    );
    for a in &answers {
        assert!(
            a.region.center().x > 190.0,
            "expired cluster reported: {a:?}"
        );
    }
    // Drain the tail: k still exceeds survivors (now zero).
    for ev in engine.finish() {
        det.on_event(&ev);
    }
    assert!(det.current_topk().iter().all(|a| a.score.abs() <= 1e-12));
}

#[test]
fn empty_stream_yields_empty_topk() {
    let mut det = KCellCspot::new(query(), 3);
    assert!(det.current_topk().is_empty());
    let mut kg = KGapSurge::new(query(), 3);
    assert!(kg.current_topk().is_empty());
}

#[test]
fn expired_clusters_leave_topk() {
    let q = query();
    let mut det = KCellCspot::new(q, 2);
    let mut engine = SlidingWindowEngine::new(q.windows);
    // A cluster at x = 0 early, then a cluster at x = 50 much later (after
    // the first has fully expired).
    for i in 0..10u64 {
        for ev in engine.push(SpatialObject::new(i, 1.0, Point::new(0.0, 0.0), i)) {
            det.on_event(&ev);
        }
    }
    for i in 0..10u64 {
        for ev in engine.push(SpatialObject::new(
            100 + i,
            1.0,
            Point::new(50.0, 0.0),
            10_000 + i,
        )) {
            det.on_event(&ev);
        }
    }
    let answers = det.current_topk();
    assert!(!answers.is_empty());
    for a in &answers {
        assert!(
            a.region.center().x > 40.0,
            "expired cluster still reported at {:?}",
            a.region
        );
    }
}
