//! Top-k oracle equivalence: after every event of a random stream, kCCS must
//! report exactly the greedy top-k of Definition 9 (same length, same scores
//! rank by rank), as computed by the stateless snapshot oracle. The naive
//! detector, by construction a thin wrapper over the oracle, is also checked
//! end-to-end through the event interface.
//!
//! Weights are made *generic* (no two subset sums collide in practice) so the
//! greedy argmax is unique at every rank and the oracle/detector tie-breaking
//! cannot diverge.

use proptest::prelude::*;

use surge_core::{Point, RegionSize, SpatialObject, SurgeQuery, TopKDetector, WindowConfig};
use surge_exact::snapshot_topk;
use surge_stream::SlidingWindowEngine;
use surge_topk::{KCellCspot, NaiveTopK};

/// Generic weights: 1 + frac(i·φ)·small — subset sums are distinct with
/// overwhelming probability, making the greedy selection unique.
fn generic_weight(i: usize) -> f64 {
    1.0 + ((i as f64) * 0.6180339887498949).fract() * 0.37
}

fn object_stream(max_len: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec((0u64..18, 0u64..18, 0u64..50), 1..max_len).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, dt))| {
                t += dt;
                SpatialObject::new(
                    i as u64,
                    generic_weight(i),
                    Point::new(x as f64 / 10.0, y as f64 / 10.0),
                    t,
                )
            })
            .collect()
    })
}

fn check_kccs(objects: &[SpatialObject], alpha: f64, k: usize) {
    let query = SurgeQuery::whole_space(RegionSize::new(0.5, 0.5), WindowConfig::equal(120), alpha);
    let mut engine = SlidingWindowEngine::new(query.windows);
    let mut det = KCellCspot::new(query, k);
    for (step, obj) in objects.iter().enumerate() {
        for ev in engine.push(*obj) {
            det.on_event(&ev);
        }
        let current: Vec<SpatialObject> = engine.current_objects().copied().collect();
        let past: Vec<SpatialObject> = engine.past_objects().copied().collect();
        let want = snapshot_topk(&current, &past, &query, k);
        let got = det.current_topk();
        assert_eq!(
            want.len(),
            got.len(),
            "step {step}: oracle {} answers vs kCCS {}\noracle: {want:?}\nkccs: {got:?}",
            want.len(),
            got.len()
        );
        for (rank, (w, g)) in want.iter().zip(got.iter()).enumerate() {
            let scale = w.score.abs().max(1e-12);
            assert!(
                (w.score - g.score).abs() <= 1e-9 * scale,
                "step {step} rank {rank}: oracle {} vs kCCS {}",
                w.score,
                g.score
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kccs_matches_greedy_oracle_k2(objects in object_stream(30), alpha in 0.0f64..0.95) {
        check_kccs(&objects, alpha, 2);
    }

    #[test]
    fn kccs_matches_greedy_oracle_k3(objects in object_stream(25), alpha in 0.0f64..0.95) {
        check_kccs(&objects, alpha, 3);
    }

    #[test]
    fn kccs_matches_greedy_oracle_k5(objects in object_stream(20), alpha in 0.0f64..0.95) {
        check_kccs(&objects, alpha, 5);
    }

    #[test]
    fn naive_matches_greedy_oracle(objects in object_stream(25), alpha in 0.0f64..0.95) {
        let query =
            SurgeQuery::whole_space(RegionSize::new(0.5, 0.5), WindowConfig::equal(120), alpha);
        let mut engine = SlidingWindowEngine::new(query.windows);
        let mut det = NaiveTopK::new(query, 3);
        for obj in objects.iter() {
            for ev in engine.push(*obj) {
                det.on_event(&ev);
            }
            let current: Vec<SpatialObject> = engine.current_objects().copied().collect();
            let past: Vec<SpatialObject> = engine.past_objects().copied().collect();
            let want = snapshot_topk(&current, &past, &query, 3);
            let got = det.current_topk();
            prop_assert_eq!(want.len(), got.len());
            for (w, g) in want.iter().zip(got.iter()) {
                prop_assert!((w.score - g.score).abs() <= 1e-12);
            }
        }
    }
}

#[test]
fn kccs_k1_equals_single_region_semantics() {
    // With k=1, kCCS must behave exactly like the single-region greedy.
    let objects: Vec<SpatialObject> = (0..30)
        .map(|i| {
            SpatialObject::new(
                i,
                generic_weight(i as usize),
                Point::new((i as f64 * 0.631) % 2.0, (i as f64 * 0.377) % 2.0),
                i * 30,
            )
        })
        .collect();
    check_kccs(&objects, 0.4, 1);
}

#[test]
fn kccs_alignment_heavy_regression() {
    let objects: Vec<SpatialObject> = (0..24)
        .map(|i| {
            SpatialObject::new(
                i,
                generic_weight(i as usize),
                Point::new((i % 4) as f64 * 0.5, (i % 3) as f64 * 0.5),
                i * 35,
            )
        })
        .collect();
    check_kccs(&objects, 0.6, 3);
}
