//! # surge-testkit
//!
//! The workspace's shared differential-testing toolkit: one canonical set of
//! stream/scene/window generators and proptest strategies, extracted from
//! the per-crate test files that had been copy-pasting them since PR 1.
//!
//! The guarantee that makes every optimization PR in this repo trustworthy
//! is *bitwise differential testing* against a retained naive path — flat vs
//! recursive segment trees, segtree vs naive sweeps, persistent vs rebuild
//! cell state, sharded vs sequential drivers, lane-merged vs monolithic
//! window engines. Those comparisons are only as strong as their inputs, so
//! the generators here are deliberately *collision-heavy*: coordinates snap
//! to coarse lattices (shared edges, corner touches and exact overlaps are
//! common, not measure-zero), weights are small integers (exact float ties),
//! timestamps can repeat within a tick, and window configurations include
//! zero-length past windows (grow and expire coincide). A sloppy merge rule
//! or tie-break diverges on these streams within a few dozen cases.
//!
//! This is a tooling crate: the production detector crates must not depend
//! on it. Test targets reach it through dev-dependencies (cargo permits
//! dev-only cycles back to the crates it builds on), and `surge-bench` —
//! the experiment harness — uses it directly so benchmark workloads and
//! test workloads are byte-for-byte the same streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proptest::prelude::*;
use surge_core::{Point, Rect, SpatialObject, WindowConfig, WindowKind};
use surge_exact::SweepRect;

/// The deterministic LCG every hand-rolled generator in this workspace uses
/// (Knuth's MMIX multiplier) — one implementation instead of six inlined
/// copies of the same `wrapping_mul`/`wrapping_add` pair.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator seeded with `seed` (any value; 0 is fine).
    pub fn new(seed: u64) -> Self {
        Lcg { state: seed | 1 }
    }

    /// The next 31 high-quality bits.
    #[inline]
    pub fn next_bits(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 33
    }

    /// A uniform draw from `[0, 1)` (31 random bits over 2³¹); generators
    /// scale it to their own coordinate ranges.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_bits() as f64) / ((1u64 << 31) as f64)
    }
}

// ---------------------------------------------------------------------------
// Rectangle scenes (sweep-level differentials)
// ---------------------------------------------------------------------------

/// Raw tuples → rectangles on a coarse lattice: snapping coordinates to
/// multiples of 0.25 makes shared edges, corner touches and exact overlaps
/// common instead of measure-zero. `w = 0` / `h = 0` produce degenerate
/// (segment / point) rectangles.
pub fn lattice_rects(raw: Vec<(u32, u32, u32, u32, u32, bool)>) -> Vec<SweepRect> {
    raw.into_iter()
        .map(|(x, y, w, h, wt, past)| {
            let x0 = x as f64 * 0.25 - 5.0;
            let y0 = y as f64 * 0.25 - 5.0;
            let x1 = x0 + w as f64 * 0.25;
            let y1 = y0 + h as f64 * 0.25;
            SweepRect {
                rect: Rect::new(x0, y0, x1, y1),
                weight: 1.0 + wt as f64,
                kind: if past {
                    WindowKind::Past
                } else {
                    WindowKind::Current
                },
            }
        })
        .collect()
}

/// A strategy for [`lattice_rects`] scenes of 1 to `max_len − 1`
/// rectangles, mixed current/past.
pub fn arb_scene(max_len: usize) -> impl Strategy<Value = Vec<SweepRect>> {
    prop::collection::vec(
        (
            0u32..40,
            0u32..40,
            0u32..12,
            0u32..12,
            0u32..4,
            any::<bool>(),
        ),
        1..max_len,
    )
    .prop_map(lattice_rects)
}

// ---------------------------------------------------------------------------
// Object streams (driver/detector-level differentials)
// ---------------------------------------------------------------------------

/// Raw tuples → a lattice stream: snapped positions and small integer
/// weights make exact ties common; timestamps strictly increase (5 ms step
/// plus jitter) so window transitions are deterministic.
pub fn lattice_stream(raw: Vec<(u32, u32, u32, u32)>) -> Vec<SpatialObject> {
    raw.into_iter()
        .enumerate()
        .map(|(i, (x, y, w, dt))| {
            SpatialObject::new(
                i as u64,
                1.0 + (w % 4) as f64,
                Point::new(x as f64 * 0.5, y as f64 * 0.5),
                (i as u64) * 5 + (dt % 5) as u64,
            )
        })
        .collect()
}

/// A strategy for [`lattice_stream`] streams of 8 to `max_len − 1` objects.
pub fn arb_lattice_stream(max_len: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec((0u32..16, 0u32..12, 0u32..8, 0u32..8), 8..max_len)
        .prop_map(lattice_stream)
}

/// Raw tuples → a stream with **duplicate timestamps** (every `per_tick`
/// arrivals share one tick) on a coarse spatial lattice, ids in arrival
/// order — the stream shape that stresses cross-lane transition-time ties.
pub fn ticked_stream(raw: Vec<(u32, u32, u32)>, per_tick: u64, tick: u64) -> Vec<SpatialObject> {
    raw.into_iter()
        .enumerate()
        .map(|(i, (x, y, w))| {
            SpatialObject::new(
                i as u64,
                1.0 + (w % 4) as f64,
                Point::new(x as f64 * 0.5, y as f64 * 0.5),
                (i as u64 / per_tick.max(1)) * tick,
            )
        })
        .collect()
}

/// Builds a timestamp-ordered stream from unordered raw `(t, weight)`
/// tuples: timestamps are sorted and zipped back, so arrival order and ids
/// stay index-ordered while the time axis is arbitrary (including repeats).
pub fn ordered_stream(raw: Vec<(u64, u16)>) -> Vec<SpatialObject> {
    let mut ts: Vec<u64> = raw.iter().map(|r| r.0).collect();
    ts.sort_unstable();
    raw.into_iter()
        .zip(ts)
        .enumerate()
        .map(|(i, ((_, w), t))| {
            SpatialObject::new(i as u64, w as f64, Point::new(i as f64, 0.0), t)
        })
        .collect()
}

/// Raw tuples → an integer-ish clustered stream with accumulated
/// inter-arrival gaps — the oracle-equivalence shape: coordinates snap to a
/// 0.1 lattice, weights are small integers, and the time axis advances by
/// 0–39 ms per arrival so every event kind fires heavily against short
/// windows.
pub fn timed_stream(raw: Vec<(u64, u64, u64, u64)>) -> Vec<SpatialObject> {
    let mut t = 0u64;
    raw.into_iter()
        .enumerate()
        .map(|(i, (x, y, w, dt))| {
            t += dt;
            SpatialObject::new(
                i as u64,
                w as f64,
                Point::new(x as f64 / 10.0, y as f64 / 10.0),
                t,
            )
        })
        .collect()
}

/// A strategy for [`timed_stream`] streams of 1 to `max_len − 1` objects.
pub fn arb_timed_stream(max_len: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec((0u64..20, 0u64..20, 1u64..5, 0u64..40), 1..max_len)
        .prop_map(timed_stream)
}

/// A deterministic stream of `n` objects spread over `clusters` spatial
/// clusters (cluster `i % clusters` at `(3i, 2i)` plus jitter), timestamps
/// `step` ms apart — keeps several cells contending so dirty-cell machinery
/// stays busy.
pub fn clustered_stream(n: usize, clusters: usize, step: u64, seed: u64) -> Vec<SpatialObject> {
    let clusters = clusters.max(1);
    let mut rng = Lcg::new(seed);
    (0..n)
        .map(|i| {
            let cluster = i % clusters;
            let cx = cluster as f64 * 3.0;
            let cy = cluster as f64 * 2.0;
            SpatialObject::new(
                i as u64,
                1.0 + (i % 4) as f64,
                Point::new(cx + rng.unit(), cy + rng.unit()),
                (i as u64) * step,
            )
        })
        .collect()
}

/// An evenly-loaded stream: pseudo-random positions over a wide area so the
/// resident rectangles spread across many similarly-sized cells — the
/// workload where shard/lane scaling (and persistent-sweep churn locality)
/// is visible.
pub fn uniform_stream(n: usize, seed: u64) -> Vec<SpatialObject> {
    let mut rng = Lcg::new(seed);
    (0..n)
        .map(|i| {
            SpatialObject::new(
                i as u64,
                1.0 + (i % 4) as f64,
                Point::new(rng.unit() * 7.5, rng.unit() * 7.5),
                (i as u64) * 3,
            )
        })
        .collect()
}

/// A flash-crowd stream: `n` objects of uniform background traffic with a
/// hotspot burst in the middle. Objects `[crowd_start, crowd_start +
/// crowd_len)` land inside a tight cluster near `(1.0, 1.0)` with
/// timestamps advancing `crowd_step` ms apart (instead of the background
/// `step`), so the arrival *rate* spikes while the crowd passes — the
/// overload scenario the degradation autopilot exists for. Timestamps stay
/// monotone for any `step`/`crowd_step` pair.
pub fn flash_crowd_stream(
    n: usize,
    crowd_start: usize,
    crowd_len: usize,
    step: u64,
    crowd_step: u64,
    seed: u64,
) -> Vec<SpatialObject> {
    let mut rng = Lcg::new(seed);
    let crowd_end = crowd_start.saturating_add(crowd_len);
    let mut t = 0u64;
    (0..n)
        .map(|i| {
            let in_crowd = (crowd_start..crowd_end).contains(&i);
            let pos = if in_crowd {
                Point::new(1.0 + rng.unit() * 0.4, 1.0 + rng.unit() * 0.4)
            } else {
                Point::new(rng.unit() * 7.5, rng.unit() * 7.5)
            };
            let weight = if in_crowd {
                2.0 + (i % 3) as f64
            } else {
                1.0 + (i % 4) as f64
            };
            let obj = SpatialObject::new(i as u64, weight, pos, t);
            t += if in_crowd { crowd_step } else { step };
            obj
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Window configurations
// ---------------------------------------------------------------------------

/// A strategy over window configurations **including zero-length past
/// windows** (`|W_p| = 0`: grow and expire coincide — the tie case PR 3
/// fixed and every engine differential must keep covering).
pub fn arb_window_config(max_len: u64) -> impl Strategy<Value = WindowConfig> {
    (1u64..max_len, 0u64..max_len).prop_map(|(cur, past)| WindowConfig::new(cur, past))
}

/// A strategy over equal-length window configurations.
pub fn arb_equal_windows(max_len: u64) -> impl Strategy<Value = WindowConfig> {
    (1u64..max_len).prop_map(WindowConfig::equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::TestRng;

    #[test]
    fn lattice_rects_snap_and_degenerate() {
        let rects = lattice_rects(vec![(0, 0, 0, 4, 2, true), (4, 4, 2, 0, 0, false)]);
        assert_eq!(rects.len(), 2);
        assert_eq!(rects[0].rect.x0, rects[0].rect.x1, "w=0 is a segment");
        assert_eq!(rects[0].kind, WindowKind::Past);
        assert_eq!(rects[1].weight, 1.0);
    }

    #[test]
    fn ticked_stream_repeats_timestamps() {
        let s = ticked_stream(vec![(0, 0, 0); 6], 3, 100);
        assert_eq!(s[0].created, s[2].created);
        assert_ne!(s[2].created, s[3].created);
        assert!(s.windows(2).all(|w| w[0].created <= w[1].created));
        assert!(s.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn ordered_stream_is_timestamp_ordered() {
        let s = ordered_stream(vec![(500, 2), (3, 1), (100, 9)]);
        assert!(s.windows(2).all(|w| w[0].created <= w[1].created));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn timed_stream_accumulates_gaps() {
        let s = timed_stream(vec![(0, 0, 1, 10), (1, 1, 2, 0), (2, 2, 3, 5)]);
        assert_eq!(
            s.iter().map(|o| o.created).collect::<Vec<_>>(),
            vec![10, 10, 15]
        );
    }

    #[test]
    fn deterministic_streams_are_reproducible() {
        assert_eq!(
            clustered_stream(50, 5, 7, 42),
            clustered_stream(50, 5, 7, 42)
        );
        assert_eq!(uniform_stream(50, 42), uniform_stream(50, 42));
        // Note: `Lcg` forces the low seed bit, so distinct seeds must differ
        // above bit 0 to yield distinct streams.
        assert_ne!(uniform_stream(50, 42), uniform_stream(50, 44));
    }

    #[test]
    fn flash_crowd_stream_is_monotone_and_clustered() {
        let s = flash_crowd_stream(300, 100, 100, 5, 0, 42);
        assert_eq!(s.len(), 300);
        assert!(s.windows(2).all(|w| w[0].created <= w[1].created));
        for o in &s[100..200] {
            assert!((1.0..=1.4).contains(&o.pos.x) && (1.0..=1.4).contains(&o.pos.y));
        }
        // crowd_step = 0: the crowd arrives in a single instant...
        assert_eq!(s[100].created, s[199].created);
        // ...and the background cadence resumes afterwards.
        assert!(s[299].created > s[100].created);
        assert_eq!(
            flash_crowd_stream(300, 100, 100, 5, 0, 42),
            flash_crowd_stream(300, 100, 100, 5, 0, 42)
        );
    }

    #[test]
    fn window_strategy_covers_zero_length_past() {
        let mut rng = TestRng::deterministic("testkit-windows");
        let strat = arb_window_config(50);
        let mut saw_zero_past = false;
        for _ in 0..200 {
            let w = strat.new_value(&mut rng);
            assert!(w.current_len >= 1);
            saw_zero_past |= w.past_len == 0;
        }
        assert!(saw_zero_past, "zero-length past windows must be generated");
    }
}
