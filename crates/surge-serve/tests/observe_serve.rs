//! Observability differentials for the serving layer: a server wired to an
//! enabled [`Observe`] handle must deliver **bitwise-identical** answer
//! streams to an unobserved server over the same workload, while its live
//! registry snapshot tracks occupancy (lanes/groups/subscriptions gauges)
//! and throughput (`serve/objects`, `serve/slides`) faithfully.

use surge_checkpoint::DetectorSpec;
use surge_core::{Point, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
use surge_exact::{BoundMode, SweepMode};
use surge_observe::{Observe, TraceEvent};
use surge_serve::{ServeConfig, SurgeServer};

fn cell_spec() -> DetectorSpec {
    DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 1,
    }
}

fn stream(n: u64) -> Vec<SpatialObject> {
    (0..n)
        .map(|i| {
            SpatialObject::new(
                i,
                1.0 + (i % 3) as f64,
                Point::new((i % 17) as f64 * 0.3, (i % 11) as f64 * 0.5),
                i * 13,
            )
        })
        .collect()
}

/// Observed vs unobserved servers: same subscriptions, same stream, same
/// answer bits; registry conserved against the server's own stats.
#[test]
fn observed_server_is_bit_identical_and_conserved() {
    let objs = stream(400);
    let w1 = WindowConfig::equal(200);
    let w2 = WindowConfig::new(260, 90);
    let q1 = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), w1, 0.4);
    let q2 = SurgeQuery::whole_space(RegionSize::new(1.2, 0.8), w2, 0.6);
    let cfg = ServeConfig {
        slide_objects: 16,
        threads: 2,
        engine_lanes: 2,
    };

    let run = |obs: Option<&Observe>| {
        let mut server = SurgeServer::new(cfg);
        if let Some(obs) = obs {
            server.observe(obs);
        }
        let subs = [
            server.subscribe(q1, cell_spec()).unwrap(),
            server.subscribe(q1, DetectorSpec::TopK { k: 2 }).unwrap(),
            server
                .subscribe(q2, DetectorSpec::Base { pruned: true })
                .unwrap(),
        ];
        for obj in &objs {
            server.ingest(*obj);
        }
        server.finish();
        let answers: Vec<_> = subs
            .iter()
            .map(|&s| server.answers(s).unwrap().retained().to_vec())
            .collect();
        (server, answers)
    };

    let (_off_server, off_answers) = run(None);
    let obs = Observe::enabled();
    let (on_server, on_answers) = run(Some(&obs));

    assert_eq!(off_answers.len(), on_answers.len());
    for (s, (a, b)) in off_answers.iter().zip(on_answers.iter()).enumerate() {
        assert_eq!(a.len(), b.len(), "sub {s}: flush counts differ");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.len(), y.len(), "sub {s} flush {i}");
            for (p, q) in x.iter().zip(y.iter()) {
                assert_eq!(p.score.to_bits(), q.score.to_bits(), "sub {s} flush {i}");
                assert_eq!(
                    p.point.x.to_bits(),
                    q.point.x.to_bits(),
                    "sub {s} flush {i}"
                );
                assert_eq!(
                    p.point.y.to_bits(),
                    q.point.y.to_bits(),
                    "sub {s} flush {i}"
                );
            }
        }
    }

    // The live snapshot mirrors the server's own accounting.
    let snap = on_server.registry_snapshot().expect("observed server");
    let stats = on_server.stats();
    assert_eq!(
        snap.counter("serve/objects"),
        Some(on_server.objects_ingested())
    );
    assert_eq!(snap.gauge("serve/lanes"), Some(stats.lanes as i64));
    assert_eq!(snap.gauge("serve/groups"), Some(stats.groups as i64));
    assert_eq!(
        snap.gauge("serve/subscriptions"),
        Some(stats.subscriptions as i64)
    );
    // Every lane flushed once per slide boundary it crossed; the flush
    // trail in the ingest flight ring brackets each of those slides.
    let slides = snap.counter("serve/slides").expect("slides counter");
    assert!(slides > 0, "no slides recorded");
    let dump = on_server.trace_dump();
    let starts = dump
        .workers
        .iter()
        .flat_map(|w| w.events.iter())
        .filter(|e| matches!(e, TraceEvent::FlushStart { .. }))
        .count() as u64;
    let ends = dump
        .workers
        .iter()
        .flat_map(|w| w.events.iter())
        .filter(|e| matches!(e, TraceEvent::FlushEnd { .. }))
        .count() as u64;
    assert_eq!(starts, ends, "unbalanced flush brackets");
    assert_eq!(starts, slides, "flight trail != slides counter");

    // An unobserved server exposes no registry.
    assert!(_off_server.registry_snapshot().is_none());
    assert!(_off_server.trace_dump().workers.is_empty());
}

/// Occupancy gauges follow subscription churn live — including the lane
/// and group collapse when the last subscriber of a window config leaves.
#[test]
fn occupancy_gauges_track_churn() {
    let w1 = WindowConfig::equal(200);
    let w2 = WindowConfig::new(260, 90);
    let q1 = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), w1, 0.4);
    let q2 = SurgeQuery::whole_space(RegionSize::new(1.2, 0.8), w2, 0.6);
    let obs = Observe::enabled();
    let mut server = SurgeServer::new(ServeConfig {
        slide_objects: 8,
        threads: 1,
        engine_lanes: 1,
    });
    server.observe(&obs);

    let a = server.subscribe(q1, cell_spec()).unwrap();
    let _b = server.subscribe(q1, cell_spec()).unwrap(); // dedup: same group
    let c = server.subscribe(q2, cell_spec()).unwrap();

    let gauges = |snap: &surge_observe::RegistrySnapshot| {
        (
            snap.gauge("serve/lanes").unwrap(),
            snap.gauge("serve/groups").unwrap(),
            snap.gauge("serve/subscriptions").unwrap(),
        )
    };
    assert_eq!(gauges(&server.registry_snapshot().unwrap()), (2, 2, 3));

    server.unsubscribe(c).unwrap();
    assert_eq!(
        gauges(&server.registry_snapshot().unwrap()),
        (1, 1, 2),
        "last w2 subscriber left: its lane and group collapse"
    );

    server.unsubscribe(a).unwrap();
    assert_eq!(
        gauges(&server.registry_snapshot().unwrap()),
        (1, 1, 1),
        "dedup twin still holds the shared group live"
    );
}
