//! Live resharding under live subscriptions, at both mesh levels:
//!
//! * [`SurgeServer::reshard_lanes`] rebuilds every ingest lane's window
//!   engine at a new shard-lane count mid-run (including mid-slide) —
//!   lane count is structural, so every subscription's answer stream must
//!   stay bitwise equal to a server that never resharded.
//! * [`DetectorSpec::Elastic`] groups carry a work-stealing sweep mesh
//!   whose balancer splits hot shards from flush-boundary load; a skewed
//!   stream must split the group's mesh mid-run while its answers stay
//!   bit-identical to a plain exact detector riding the same lane.
//!
//! The group's [`MeshState`] also rides the durable [`ServeState`] codec:
//! capture → snapshot round-trip → restore resumes the resharded group at
//! its live width.

use proptest::prelude::*;
use surge_checkpoint::{DetectorSpec, ServeState};
use surge_core::{Point, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
use surge_exact::{BoundMode, SweepMode};
use surge_serve::{ServeConfig, SubId, SurgeServer};
use surge_stream::BalancerPolicy;
use surge_testkit::{arb_lattice_stream, clustered_stream};

fn query(windows: WindowConfig, alpha: f64) -> SurgeQuery {
    SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, alpha)
}

fn cell_spec() -> DetectorSpec {
    DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 1,
    }
}

/// A split-happy elastic flavor so short serve streams actually reshard.
fn elastic_spec() -> DetectorSpec {
    DetectorSpec::Elastic {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 2,
        policy: BalancerPolicy {
            skew_percent: 0,
            patience: 2,
            max_shards: 8,
            min_load: 1,
        },
    }
}

/// Every object homed to a cell hashing to shard 0 at width 2, so one
/// shard owns the whole sweep load and the balancer splits within a few
/// flushes (same construction as the elastic differential tests).
fn hot_stream(n: usize) -> Vec<SpatialObject> {
    let hot: Vec<(i64, i64)> = (0..40i64)
        .flat_map(|i| (0..40i64).map(move |j| (i, j)))
        .filter(|&(i, j)| surge_core::shard_of_cell((i, j), 2) == 0)
        .take(12)
        .collect();
    (0..n)
        .map(|i| {
            let (cx, cy) = hot[i % hot.len()];
            SpatialObject::new(
                i as u64,
                1.0 + (i % 3) as f64,
                Point::new(cx as f64 + 0.2 + (i % 7) as f64 * 0.1, cy as f64 + 0.3),
                (i as u64) * 7,
            )
        })
        .collect()
}

fn assert_channels_bitwise(a: &SurgeServer, b: &SurgeServer, subs: &[SubId], ctx: &str) {
    for sub in subs {
        let (x, y) = (a.answers(*sub).unwrap(), b.answers(*sub).unwrap());
        assert_eq!(x.released(), y.released(), "{ctx} {sub}: ack cursor");
        assert_eq!(x.len(), y.len(), "{ctx} {sub}: retention diverged");
        for (i, (ga, wa)) in x.iter().zip(y.iter()).enumerate() {
            assert_eq!(ga.len(), wa.len(), "{ctx} {sub} flush {i}");
            for (g, w) in ga.iter().zip(wa.iter()) {
                assert_eq!(
                    g.score.to_bits(),
                    w.score.to_bits(),
                    "{ctx} {sub} flush {i}"
                );
                assert_eq!(
                    g.point.x.to_bits(),
                    w.point.x.to_bits(),
                    "{ctx} {sub} flush {i}"
                );
                assert_eq!(
                    g.point.y.to_bits(),
                    w.point.y.to_bits(),
                    "{ctx} {sub} flush {i}"
                );
            }
        }
    }
}

/// Ingest-lane resharding mid-run — including mid-slide, twice, in both
/// directions (1 → 4 → 2) — with a mixed panel of flavors subscribed the
/// whole time. Every channel must bit-match the never-resharded control.
#[test]
fn lane_reshard_under_live_subscriptions_is_bit_identical() {
    let stream = clustered_stream(260, 4, 9, 77);
    let windows = WindowConfig::new(280, 140);
    let q1 = query(windows, 0.4);
    let q2 = query(windows, 0.65);

    let panel: Vec<(SurgeQuery, DetectorSpec)> = vec![
        (q1, cell_spec()),
        (q1, cell_spec()), // dedup twin shares the group across reshards
        (q2, DetectorSpec::Base { pruned: true }),
        (q1, DetectorSpec::TopK { k: 3 }),
        (q2, elastic_spec()),
    ];

    let make = |lanes: usize| {
        let mut server = SurgeServer::new(ServeConfig {
            slide_objects: 7, // 90 % 7 != 0: the first reshard lands mid-slide
            threads: 2,
            engine_lanes: lanes,
        });
        let subs: Vec<SubId> = panel
            .iter()
            .map(|(q, s)| server.subscribe(*q, *s).unwrap())
            .collect();
        (server, subs)
    };
    let (mut resharded, subs) = make(1);
    let (mut control, control_subs) = make(1);
    assert_eq!(subs, control_subs);

    for (i, obj) in stream.iter().enumerate() {
        if i == 90 {
            resharded.reshard_lanes(4).unwrap();
        }
        if i == 180 {
            resharded.reshard_lanes(2).unwrap();
        }
        resharded.ingest(*obj);
        control.ingest(*obj);
    }
    resharded.finish();
    control.finish();

    assert_eq!(resharded.stats(), control.stats());
    assert_channels_bitwise(&resharded, &control, &subs, "lane-reshard");
}

/// A skewed stream splits an Elastic group's sweep mesh mid-run — and its
/// subscription still bit-matches a plain exact detector riding the very
/// same lane over the very same transition stream.
#[test]
fn elastic_group_splits_under_skew_while_serving() {
    let stream = hot_stream(180);
    let windows = WindowConfig::equal(170);
    let q = query(windows, 0.5);

    let mut server = SurgeServer::new(ServeConfig {
        slide_objects: 16,
        threads: 2,
        engine_lanes: 2,
    });
    let exact = server.subscribe(q, cell_spec()).unwrap();
    let elastic = server.subscribe(q, elastic_spec()).unwrap();
    assert_eq!(server.stats().lanes, 1, "same windows: one shared lane");
    assert_eq!(server.stats().groups, 2, "different flavors: two groups");

    assert_eq!(server.mesh_state(exact).unwrap(), None);
    let initial = server
        .mesh_state(elastic)
        .unwrap()
        .expect("elastic groups expose their mesh");
    assert_eq!((initial.shards, initial.reshards), (2, 0));

    for obj in &stream {
        server.ingest(*obj);
    }
    server.finish();

    let mesh = server
        .mesh_state(elastic)
        .unwrap()
        .expect("still elastic after the run");
    assert!(
        mesh.shards > 2 && mesh.reshards >= 1,
        "the skewed stream never split the serving mesh: {mesh:?}"
    );
    let (x, y) = (
        server.answers(exact).unwrap(),
        server.answers(elastic).unwrap(),
    );
    assert_eq!(x.len(), y.len(), "lane mates flush in lockstep");
    for (i, (ga, wa)) in x.iter().zip(y.iter()).enumerate() {
        assert_eq!(ga.len(), wa.len(), "flush {i}");
        for (g, w) in ga.iter().zip(wa.iter()) {
            assert_eq!(g.score.to_bits(), w.score.to_bits(), "flush {i}");
            assert_eq!(g.point.x.to_bits(), w.point.x.to_bits(), "flush {i}");
            assert_eq!(g.point.y.to_bits(), w.point.y.to_bits(), "flush {i}");
        }
    }
}

/// A resharded Elastic group survives capture → durable snapshot codec →
/// restore at its **live** width, and both servers then serve the rest of
/// the stream bit-identically.
#[test]
fn resharded_group_survives_capture_restore() {
    let stream = hot_stream(200);
    let (prefix, suffix) = stream.split_at(110); // mid-slide: 110 % 16 != 0
    let windows = WindowConfig::equal(170);
    let q = query(windows, 0.5);

    let mut live = SurgeServer::new(ServeConfig {
        slide_objects: 16,
        threads: 2,
        engine_lanes: 2,
    });
    let exact = live.subscribe(q, cell_spec()).unwrap();
    let elastic = live.subscribe(q, elastic_spec()).unwrap();
    for obj in prefix {
        live.ingest(*obj);
    }
    let mesh_at_capture = live.mesh_state(elastic).unwrap().unwrap();
    assert!(
        mesh_at_capture.reshards >= 1,
        "the prefix must already have split the mesh: {mesh_at_capture:?}"
    );

    let state = live.capture();
    let bytes = state.to_snapshot().encode();
    let decoded = ServeState::from_snapshot(
        &surge_io::Snapshot::decode(&bytes).expect("snapshot container round-trips"),
    )
    .expect("registry round-trips");
    assert_eq!(decoded, state);
    let mut restored = SurgeServer::restore(&decoded).expect("restore");

    assert_eq!(
        restored.mesh_state(elastic).unwrap().unwrap(),
        mesh_at_capture,
        "restore must resume the mesh at its live width"
    );

    for obj in suffix {
        live.ingest(*obj);
        restored.ingest(*obj);
    }
    live.finish();
    restored.finish();
    assert_channels_bitwise(&live, &restored, &[exact, elastic], "restore");
    assert_eq!(
        restored.mesh_state(elastic).unwrap(),
        live.mesh_state(elastic).unwrap(),
        "identical suffixes must produce identical reshard histories"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary streams, an arbitrary reshard point (any slide phase) and
    /// an arbitrary target width: the resharded server bit-matches the
    /// never-resharded control on every channel.
    #[test]
    fn lane_reshard_anywhere_is_bit_identical(
        stream in arb_lattice_stream(150),
        at_seed in 0usize..1000,
        from_pow in 0u32..3,
        to_pow in 0u32..3,
        slide in 3usize..20,
    ) {
        let at = at_seed % (stream.len() + 1);
        let windows = WindowConfig::equal(170);
        let q1 = query(windows, 0.45);
        let q2 = query(windows, 0.7);
        let make = || {
            let mut server = SurgeServer::new(ServeConfig {
                slide_objects: slide,
                threads: 1,
                engine_lanes: 1 << from_pow,
            });
            let a = server.subscribe(q1, cell_spec()).unwrap();
            let b = server.subscribe(q2, DetectorSpec::Base { pruned: false }).unwrap();
            (server, vec![a, b])
        };
        let (mut resharded, subs) = make();
        let (mut control, _) = make();
        for (i, obj) in stream.iter().enumerate() {
            if i == at {
                resharded.reshard_lanes(1 << to_pow).unwrap();
            }
            resharded.ingest(*obj);
            control.ingest(*obj);
        }
        if at == stream.len() {
            resharded.reshard_lanes(1 << to_pow).unwrap();
        }
        resharded.finish();
        control.finish();
        assert_channels_bitwise(&resharded, &control, &subs, "prop");
    }
}
