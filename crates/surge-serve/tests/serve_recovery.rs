//! Crash recovery of a **live registry**: a server with five active
//! subscriptions (including a deduped pair and partially-acked channels) is
//! captured mid-slide, round-tripped through the durable snapshot codec,
//! restored, and must then serve the rest of the stream bit-identically to
//! the server that never stopped.

use surge_checkpoint::{DetectorSpec, ServeState};
use surge_core::{RegionSize, SurgeQuery, WindowConfig};
use surge_exact::{BoundMode, SweepMode};
use surge_serve::{ServeConfig, ServeError, SubId, SurgeServer};
use surge_testkit::clustered_stream;

fn cell_spec() -> DetectorSpec {
    DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 1,
    }
}

fn assert_channels_bitwise(a: &SurgeServer, b: &SurgeServer, subs: &[SubId]) {
    for sub in subs {
        let (x, y) = (a.answers(*sub).unwrap(), b.answers(*sub).unwrap());
        assert_eq!(x.released(), y.released(), "{sub}: ack cursor diverged");
        assert_eq!(x.len(), y.len(), "{sub}: retention diverged");
        for (ga, wa) in x.iter().zip(y.iter()) {
            assert_eq!(ga.len(), wa.len(), "{sub}");
            for (g, w) in ga.iter().zip(wa.iter()) {
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "{sub}");
                assert_eq!(g.point.x.to_bits(), w.point.x.to_bits(), "{sub}");
                assert_eq!(g.point.y.to_bits(), w.point.y.to_bits(), "{sub}");
            }
        }
    }
}

/// Builds the five-subscription registry the tests crash: two lanes (two
/// window configs), a deduped exact pair, a baseline, a top-k and a grid
/// approximation.
fn populate(server: &mut SurgeServer) -> Vec<SubId> {
    let w1 = WindowConfig::new(280, 140);
    let w2 = WindowConfig::new(200, 100);
    let q1 = SurgeQuery::whole_space(RegionSize::new(1.2, 1.2), w1, 0.4);
    let q2 = SurgeQuery::whole_space(RegionSize::new(1.6, 0.9), w1, 0.55);
    let q3 = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), w2, 0.7);
    vec![
        server.subscribe(q1, cell_spec()).unwrap(),
        server.subscribe(q1, cell_spec()).unwrap(), // dedup twin
        server
            .subscribe(q2, DetectorSpec::Base { pruned: true })
            .unwrap(),
        server.subscribe(q1, DetectorSpec::TopK { k: 3 }).unwrap(),
        server
            .subscribe(q3, DetectorSpec::Gaps { shards: 2 })
            .unwrap(),
    ]
}

#[test]
fn live_registry_recovers_bit_identically() {
    let stream = clustered_stream(250, 4, 9, 42);
    let (prefix, suffix) = stream.split_at(150);

    let mut live = SurgeServer::new(ServeConfig {
        slide_objects: 7, // 150 % 7 != 0: the crash lands mid-slide
        threads: 2,
        engine_lanes: 2,
    });
    let subs = populate(&mut live);
    assert_eq!(live.stats().subscriptions, 5);
    assert_eq!(live.stats().groups, 4, "the exact pair dedupes");
    assert_eq!(live.stats().lanes, 2);

    for obj in prefix {
        live.ingest(*obj);
    }
    // Consumers in different positions: one fully drained, one mid-stream
    // ack, the rest never acked.
    live.drain(subs[2]).unwrap();
    live.ack(subs[3], 2).unwrap();

    // Crash: capture, serialize to bytes, read the bytes back, restore.
    let state = live.capture();
    let bytes = state.to_snapshot().encode();
    let decoded = ServeState::from_snapshot(
        &surge_io::Snapshot::decode(&bytes).expect("snapshot container survives"),
    )
    .expect("serve sections survive");
    assert_eq!(decoded, state, "durable round-trip is lossless");
    let mut recovered = SurgeServer::restore(&decoded).expect("registry restores");

    // The recovered registry is structurally the live one: same sharing,
    // same cursors, same retained answers.
    assert_eq!(recovered.stats(), live.stats());
    assert_eq!(recovered.objects_ingested(), live.objects_ingested());
    assert_channels_bitwise(&live, &recovered, &subs);

    // New ids issued after recovery never collide with recovered ones (a
    // fresh subscription rides its own late lane and cannot disturb the
    // recovered channels).
    let extra = recovered
        .subscribe(
            SurgeQuery::whole_space(RegionSize::new(1.1, 1.1), WindowConfig::new(280, 140), 0.5),
            DetectorSpec::Base { pruned: false },
        )
        .unwrap();
    assert!(
        subs.iter().all(|s| *s != extra),
        "recovered ids stay unique"
    );

    // Both servers serve the rest of the stream; every channel stays
    // bitwise identical — including the flush that completes the slide the
    // crash interrupted.
    for obj in suffix {
        live.ingest(*obj);
        recovered.ingest(*obj);
    }
    live.finish();
    recovered.finish();
    assert_channels_bitwise(&live, &recovered, &subs);
    assert_eq!(
        recovered
            .subscribe(
                SurgeQuery::whole_space(
                    RegionSize::new(1.1, 1.1),
                    WindowConfig::new(280, 140),
                    0.5
                ),
                DetectorSpec::Base { pruned: false },
            )
            .unwrap_err(),
        ServeError::Finished,
        "finished servers stay closed"
    );
}

#[test]
fn recovery_mid_churn_preserves_late_lanes() {
    let stream = clustered_stream(220, 3, 11, 7);
    let (prefix, suffix) = stream.split_at(100);

    let mut live = SurgeServer::new(ServeConfig {
        slide_objects: 6,
        threads: 1,
        engine_lanes: 2,
    });
    let subs = populate(&mut live);
    for obj in prefix {
        live.ingest(*obj);
    }
    // Churn before the crash: one channel leaves, a late lane arrives.
    live.unsubscribe(subs[4]).unwrap();
    let late = live
        .subscribe(
            SurgeQuery::whole_space(RegionSize::new(1.2, 1.2), WindowConfig::new(280, 140), 0.4),
            cell_spec(),
        )
        .unwrap();

    let state = live.capture();
    let mut recovered = SurgeServer::restore(&state).expect("registry restores");
    let tracked = [subs[0], subs[1], subs[2], subs[3], late];

    for obj in suffix {
        live.ingest(*obj);
        recovered.ingest(*obj);
    }
    live.finish();
    recovered.finish();
    assert_channels_bitwise(&live, &recovered, &tracked);
    assert_eq!(
        recovered.answers(subs[4]).unwrap_err(),
        ServeError::UnknownSubscription(subs[4]),
        "unsubscribed channels do not resurrect"
    );
}

#[test]
fn corrupt_states_are_rejected() {
    let mut live = SurgeServer::new(ServeConfig::sequential(8));
    populate(&mut live);
    for obj in clustered_stream(64, 3, 9, 1) {
        live.ingest(obj);
    }
    let good = live.capture();

    let mut bad = good.clone();
    bad.meta.slide_objects = 0;
    assert!(SurgeServer::restore(&bad).is_err());

    let mut bad = good.clone();
    bad.lanes[0].in_slide = bad.meta.slide_objects;
    assert!(SurgeServer::restore(&bad).is_err());

    let mut bad = good.clone();
    bad.lanes[0].groups[0].subs.clear();
    assert!(SurgeServer::restore(&bad).is_err());

    let mut bad = good.clone();
    bad.lanes[0].start_objects = good.meta.objects_ingested + 1;
    assert!(SurgeServer::restore(&bad).is_err());
}
