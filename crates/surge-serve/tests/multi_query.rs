//! The serving layer's bit-identity contract: every subscription's answer
//! stream equals a dedicated single-query run over the stream suffix the
//! subscription lived through — across engine lane counts, detector
//! flavors, dedup sharing, and mid-stream register/deregister churn.

use proptest::prelude::*;
use surge_checkpoint::{DetectorSpec, SpecDetector};
use surge_core::{RegionAnswer, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
use surge_exact::{BoundMode, CellCspot, SweepMode};
use surge_serve::{ServeConfig, SubId, SurgeServer};
use surge_stream::{drive_incremental, QueryRuntime};
use surge_testkit::ticked_stream;

/// The dedicated single-query run a subscription must match: the same
/// detector flavor on its own monolithic-engine [`QueryRuntime`].
fn independent_run(
    query: SurgeQuery,
    spec: DetectorSpec,
    objs: &[SpatialObject],
    slide: usize,
    threads: usize,
) -> Vec<Vec<RegionAnswer>> {
    let det = SpecDetector::build(&spec, query).expect("servable spec");
    let mut rt = QueryRuntime::new(det, query.windows, slide, threads);
    let mut answers = Vec::new();
    rt.run(objs.iter().copied(), |_seq, a| answers.push(a));
    answers
}

fn assert_flushes_bitwise(got: &[Vec<RegionAnswer>], want: &[Vec<RegionAnswer>], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: flush count diverged");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{label} flush {i}: answer count diverged");
        for (a, b) in g.iter().zip(w) {
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{label} flush {i}");
            assert_eq!(
                a.point.x.to_bits(),
                b.point.x.to_bits(),
                "{label} flush {i}"
            );
            assert_eq!(
                a.point.y.to_bits(),
                b.point.y.to_bits(),
                "{label} flush {i}"
            );
            assert_eq!(a.region, b.region, "{label} flush {i}");
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_sub(
    server: &SurgeServer,
    sub: SubId,
    query: SurgeQuery,
    spec: DetectorSpec,
    suffix: &[SpatialObject],
    slide: usize,
    threads: usize,
    label: &str,
) {
    let want = independent_run(query, spec, suffix, slide, threads);
    let log = server.answers(sub).expect("live subscription");
    assert_eq!(log.released(), 0, "{label}: nothing was acked");
    assert_flushes_bitwise(log.retained(), &want, label);
}

fn cell_spec() -> DetectorSpec {
    DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// N concurrent subscriptions — duplicated queries, mixed flavors, two
    /// window configurations — each match their dedicated run, for 1/2/8
    /// engine lanes. The exact flavor is additionally cross-checked against
    /// `drive_incremental`, the driver a dedicated process would use.
    #[test]
    fn concurrent_subscriptions_match_independent_runs(
        raw in prop::collection::vec((0u32..18, 0u32..12, 0u32..8), 16..160),
        per_tick in 1u64..4,
        tick in 5u64..50,
        win in 60u64..320,
        slide in 1usize..24,
        threads in 1usize..4,
        lane_idx in 0usize..3,
    ) {
        let objs = ticked_stream(raw, per_tick, tick);
        let engine_lanes = [1usize, 2, 8][lane_idx];
        let w1 = WindowConfig::equal(win);
        let w2 = WindowConfig::new(win + win / 2, win / 2 + 1);

        let q1 = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), w1, 0.3);
        let q3 = SurgeQuery::whole_space(RegionSize::new(1.5, 0.8), w1, 0.6);
        let q5 = SurgeQuery::whole_space(RegionSize::new(0.9, 1.2), w2, 0.5);

        let panel: Vec<(SurgeQuery, DetectorSpec)> = vec![
            (q1, cell_spec()),
            (q1, cell_spec()), // bitwise duplicate: shares the group
            (q3, DetectorSpec::Base { pruned: true }),
            (q1, DetectorSpec::TopK { k: 3 }), // same query, new flavor: own group, same lane
            (q5, DetectorSpec::Gaps { shards: 2 }),
            (q5, DetectorSpec::Mgaps { shards: 1 }),
        ];

        let mut server = SurgeServer::new(ServeConfig { slide_objects: slide, threads, engine_lanes });
        let subs: Vec<SubId> = panel
            .iter()
            .map(|(q, s)| server.subscribe(*q, *s).unwrap())
            .collect();

        let stats = server.stats();
        prop_assert_eq!(stats.subscriptions, 6);
        prop_assert_eq!(stats.groups, 5, "the duplicate dedupes");
        prop_assert_eq!(stats.lanes, 2, "two window configs, two lanes");

        for obj in &objs {
            server.ingest(*obj);
        }
        server.finish();

        for (i, ((q, s), sub)) in panel.iter().zip(&subs).enumerate() {
            check_sub(&server, *sub, *q, *s, &objs, slide, threads, &format!("panel[{i}]"));
        }

        // The deduped pair shares one detector but both channels carry the
        // full stream.
        let (a, b) = (server.answers(subs[0]).unwrap(), server.answers(subs[1]).unwrap());
        assert_flushes_bitwise(a.retained(), b.retained(), "dedup twins");

        // Exact flavor vs the dedicated incremental driver.
        let mut det = CellCspot::with_sweep_mode(q1, BoundMode::Combined, SweepMode::Persistent, 1);
        let rep = drive_incremental(&mut det, w1, objs.iter().copied(), slide, threads);
        let served = server.answers(subs[0]).unwrap();
        prop_assert_eq!(served.len(), rep.answers.len());
        for (got, want) in served.iter().zip(rep.answers.iter()) {
            match (got.as_slice(), want) {
                ([g], Some(w)) => {
                    prop_assert_eq!(g.score.to_bits(), w.score.to_bits());
                    prop_assert_eq!(g.point.x.to_bits(), w.point.x.to_bits());
                    prop_assert_eq!(g.point.y.to_bits(), w.point.y.to_bits());
                }
                ([], None) => {}
                other => prop_assert!(false, "presence diverged: {:?}", other),
            }
        }
    }

    /// Mid-stream churn: a deregistered channel froze at its last delivered
    /// flush; a subscription registered mid-stream matches a dedicated run
    /// over the suffix it actually saw — including a late bitwise duplicate
    /// of an already-running query, which gets its own lane (it must not
    /// inherit window history it never subscribed to).
    #[test]
    fn register_and_deregister_mid_stream(
        raw in prop::collection::vec((0u32..16, 0u32..10, 0u32..8), 24..140),
        per_tick in 1u64..4,
        tick in 5u64..40,
        win in 60u64..260,
        slide in 1usize..16,
        cut_pct in 20usize..80,
        lane_idx in 0usize..3,
    ) {
        let objs = ticked_stream(raw, per_tick, tick);
        let cut = objs.len() * cut_pct / 100;
        let (prefix, suffix) = objs.split_at(cut);
        let engine_lanes = [1usize, 2, 8][lane_idx];
        let threads = 2;
        let w = WindowConfig::equal(win);

        let qa = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), w, 0.4);
        let qb = SurgeQuery::whole_space(RegionSize::new(1.2, 0.7), w, 0.6);
        let qc = SurgeQuery::whole_space(RegionSize::new(0.8, 0.8), w, 0.5);

        let mut server = SurgeServer::new(ServeConfig { slide_objects: slide, threads, engine_lanes });
        let a = server.subscribe(qa, cell_spec()).unwrap();
        let b = server.subscribe(qb, DetectorSpec::Base { pruned: false }).unwrap();

        for obj in prefix {
            server.ingest(*obj);
        }

        // Deregister B mid-stream: its channel holds exactly the full
        // slides delivered so far — a prefix of the dedicated run.
        let b_log = server.unsubscribe(b).unwrap();
        prop_assert_eq!(b_log.len(), cut / slide);
        let b_ref = independent_run(qb, DetectorSpec::Base { pruned: false }, &objs, slide, threads);
        assert_flushes_bitwise(b_log.retained(), &b_ref[..b_log.len()], "deregistered prefix");

        // Register C (plus a dedup twin) and a late duplicate of A.
        let c = server.subscribe(qc, DetectorSpec::TopK { k: 2 }).unwrap();
        let c2 = server.subscribe(qc, DetectorSpec::TopK { k: 2 }).unwrap();
        let a_late = server.subscribe(qa, cell_spec()).unwrap();
        let stats = server.stats();
        prop_assert_eq!(stats.subscriptions, 4);
        prop_assert_eq!(stats.groups, 3, "C twins dedupe; late A cannot join A's group");
        if cut > 0 {
            prop_assert_eq!(stats.lanes, 2, "late registrations start their own lane");
        }

        for obj in suffix {
            server.ingest(*obj);
        }
        server.finish();

        check_sub(&server, a, qa, cell_spec(), &objs, slide, threads, "A (full stream)");
        check_sub(&server, c, qc, DetectorSpec::TopK { k: 2 }, suffix, slide, threads, "C (suffix)");
        check_sub(&server, c2, qc, DetectorSpec::TopK { k: 2 }, suffix, slide, threads, "C twin");
        check_sub(&server, a_late, qa, cell_spec(), suffix, slide, threads, "late A (suffix)");
    }
}

/// The same registry served at 1, 2 and 8 engine lanes produces identical
/// channels — the lane-count independence the sharded-engine contract
/// promises, observed end to end through the serving layer.
#[test]
fn lane_count_never_changes_answers() {
    let objs = ticked_stream(
        (0u32..200).map(|i| (i % 17, i % 11, i % 8)).collect(),
        2,
        13,
    );
    let w = WindowConfig::new(300, 150);
    let q1 = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), w, 0.35);
    let q2 = SurgeQuery::whole_space(RegionSize::new(1.4, 0.9), w, 0.65);

    let mut per_lane_count: Vec<Vec<Vec<Vec<RegionAnswer>>>> = Vec::new();
    for engine_lanes in [1usize, 2, 8] {
        let mut server = SurgeServer::new(ServeConfig {
            slide_objects: 9,
            threads: 2,
            engine_lanes,
        });
        let subs = [
            server.subscribe(q1, cell_spec()).unwrap(),
            server
                .subscribe(q2, DetectorSpec::Gaps { shards: 2 })
                .unwrap(),
            server.subscribe(q1, DetectorSpec::TopK { k: 4 }).unwrap(),
        ];
        for obj in &objs {
            server.ingest(*obj);
        }
        server.finish();
        per_lane_count.push(
            subs.iter()
                .map(|s| server.answers(*s).unwrap().retained().to_vec())
                .collect(),
        );
    }
    for variant in &per_lane_count[1..] {
        for (sub_idx, (got, want)) in variant.iter().zip(&per_lane_count[0]).enumerate() {
            assert_flushes_bitwise(got, want, &format!("sub {sub_idx} vs 1-lane"));
        }
    }
}
