//! # surge-serve
//!
//! The multi-query subscription layer: many continuous SURGE queries served
//! from **one shared ingest path**, instead of one process per query.
//!
//! A [`SurgeServer`] owns a registry of live subscriptions. Each
//! subscription names a [`SurgeQuery`] (area, region size a×b, α, window
//! lengths) and a [`DetectorSpec`] flavor (exact cell-sweep, baseline,
//! top-k, GAPS/MGAPS approximations). The server shares work at two levels:
//!
//! * **Lanes** — queries whose window configuration matches share one
//!   [`ShardedWindowEngine`]: every arrival is expanded into the canonical
//!   `New`/`Grown`/`Expired` transition stream once per lane and broadcast
//!   to every detector riding it.
//! * **Groups** — queries that are outright identical (bitwise, via
//!   [`QueryKey`]) *and* ask for the same detector flavor share a single
//!   detector; their subscriptions fan out of one answer computation.
//!
//! Answers flow into per-subscription [`AnswerLog`] channels. A consumer
//! reads ([`SurgeServer::answers`], [`SurgeServer::drain`]) and acknowledges
//! ([`SurgeServer::ack`]); acked flushes are released, so retention is
//! bounded by consumer lag — the serving-layer replacement for the
//! grow-forever `answers: Vec` pattern of the single-query drivers.
//!
//! **The contract is bit-identity**: every subscription's answer stream is
//! bitwise equal to what a dedicated single-query run
//! ([`surge_stream::drive_incremental`] or a [`QueryRuntime`] over the same
//! flavor) would have produced over the stream suffix the subscription
//! lived through. Mid-stream registration starts a fresh lane at the
//! current stream position; deregistration drops the channel without
//! disturbing lane mates. `tests/multi_query.rs` proptests the claim across
//! 1/2/8 engine lanes, including mid-stream churn, and
//! `tests/serve_recovery.rs` proves a crashed server with live
//! subscriptions recovers all of them bit-identically via
//! [`ServeState`](surge_checkpoint::ServeState).
//!
//! The mesh is **elastic** at both levels:
//! [`SurgeServer::reshard_lanes`] rebuilds every ingest lane's window
//! engine at a new shard-lane count mid-run (lane count is structural, so
//! bit-identity holds across the switch), and [`DetectorSpec::Elastic`]
//! groups carry their own work-stealing sweep mesh whose balancer splits
//! hot shards from flush-boundary load — `tests/reshard_live.rs` proves
//! both under live subscriptions, and the group's
//! [`MeshState`](surge_checkpoint::MeshState) travels through
//! [`ServeState`] so a recovered server resumes at the live width.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use surge_checkpoint::{
    DetectorSpec, MeshState, ServeGroupState, ServeLaneState, ServeMeta, ServeState, ServeSubState,
    SpecDetector,
};
use surge_core::{
    QueryKey, QueryKeyError, RegionAnswer, RegionSize, SpatialObject, SurgeQuery, WindowConfig,
};
use surge_observe::{Counter, Flight, Observe, RegistrySnapshot, TraceDump, TraceEvent};
use surge_stream::{AnswerLog, EventBatch, ShardedWindowEngine};

/// Opaque subscription handle issued by [`SurgeServer::subscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubId(u64);

impl SubId {
    /// The raw id (the durable form used in [`ServeState`]).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SubId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// Why a serve-layer call was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The query has a NaN parameter and therefore no dedup identity.
    Query(QueryKeyError),
    /// The detector flavor cannot be served (e.g. `Serve` itself, or the
    /// wall-clock-driven `Autopilot`, whose tier switches are not a pure
    /// function of the event stream and would break dedup bit-identity).
    UnsupportedSpec(&'static str),
    /// No live subscription has this id.
    UnknownSubscription(SubId),
    /// The server already ran its terminal drain.
    Finished,
    /// A [`ServeState`] failed validation during restore.
    Corrupt(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Query(e) => write!(f, "{e}"),
            ServeError::UnsupportedSpec(what) => write!(f, "unsupported detector spec: {what}"),
            ServeError::UnknownSubscription(id) => write!(f, "unknown subscription {id}"),
            ServeError::Finished => write!(f, "server already finished"),
            ServeError::Corrupt(what) => write!(f, "corrupt serve state: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueryKeyError> for ServeError {
    fn from(e: QueryKeyError) -> Self {
        ServeError::Query(e)
    }
}

/// Server-wide knobs shared by every lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Arrivals per slide (the flush cadence of every lane).
    pub slide_objects: usize,
    /// Sweep worker threads per flush.
    pub threads: usize,
    /// Window-engine shard lanes per ingest lane (1 = monolithic; every
    /// count produces the same merged event stream bit-identically).
    pub engine_lanes: usize,
}

impl ServeConfig {
    /// A sequential single-lane configuration.
    pub fn sequential(slide_objects: usize) -> Self {
        ServeConfig {
            slide_objects,
            threads: 1,
            engine_lanes: 1,
        }
    }
}

/// Registry occupancy counters: how much sharing the server achieves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Ingest lanes (distinct window-config × registration-point pairs).
    pub lanes: usize,
    /// Deduped detector groups across all lanes.
    pub groups: usize,
    /// Live subscriptions across all groups.
    pub subscriptions: usize,
}

impl ServeStats {
    /// Fraction of subscriptions served without their own detector:
    /// `(subscriptions - groups) / subscriptions` (0.0 when empty).
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.subscriptions == 0 {
            0.0
        } else {
            (self.subscriptions - self.groups) as f64 / self.subscriptions as f64
        }
    }
}

/// One subscription's answer channel.
struct Sub {
    id: SubId,
    log: AnswerLog<Vec<RegionAnswer>>,
}

/// One deduped detector shared by every subscription with a bitwise-equal
/// query and the same flavor.
struct Group {
    key: QueryKey,
    query: SurgeQuery,
    spec: DetectorSpec,
    detector: SpecDetector,
    events: u64,
    subs: Vec<Sub>,
}

impl Group {
    fn flush_to_subs(&mut self, threads: usize) -> u64 {
        let outcome = self.detector.flush(threads);
        let produced = outcome.len() as u64;
        // Last subscriber takes the vector itself; earlier ones clone.
        let (last, rest) = self.subs.split_last_mut().expect("groups are never empty");
        for sub in rest {
            sub.log.push(outcome.clone());
        }
        last.log.push(outcome);
        produced
    }
}

/// The server's observability handles: registry counters for the shared
/// ingest, occupancy gauges synced on every subscribe/unsubscribe, and a
/// flight ring tracing lane flushes in logical time. All no-ops until
/// [`SurgeServer::observe`] attaches an enabled [`Observe`]; the answer
/// streams are bitwise identical either way.
struct ServeProbes {
    obs: Observe,
    objects: Counter,
    slides: Counter,
    flight: Flight,
}

impl ServeProbes {
    fn new(obs: &Observe) -> Self {
        ServeProbes {
            obs: obs.clone(),
            objects: obs.counter("serve/objects"),
            slides: obs.counter("serve/slides"),
            flight: obs.flight("serve/ingest"),
        }
    }

    fn off() -> Self {
        Self::new(&Observe::off())
    }
}

/// One shared ingest lane: a window engine at the server's slide cadence
/// plus the detector groups riding it.
struct Lane {
    /// Server-level object count when the lane was created; the lane only
    /// saw the stream suffix from here, so a subscription can only join it
    /// while `objects_ingested == start_objects`.
    start_objects: u64,
    in_slide: usize,
    slides: u64,
    /// The router region the sharded engine was built with (the first
    /// query's region size). Lane routing never affects the merged event
    /// order — the lane-module contract — but rebuilding the identical
    /// engine on restore needs the identical region.
    region: RegionSize,
    engine: ShardedWindowEngine,
    groups: Vec<Group>,
    batch: EventBatch,
}

impl Lane {
    fn windows(&self) -> WindowConfig {
        self.engine.windows()
    }

    /// Mirrors `QueryRuntime::push` for every group at once: expand the
    /// arrival once, deliver the events to each detector, flush everyone
    /// when the slide completes.
    fn push(
        &mut self,
        object: SpatialObject,
        slide_objects: usize,
        threads: usize,
        probes: &ServeProbes,
    ) {
        self.batch.clear();
        self.engine.push_into(object, &mut self.batch);
        for group in &mut self.groups {
            for ev in self.batch.iter() {
                group.detector.on_event(ev);
            }
            group.events += self.batch.len() as u64;
        }
        self.in_slide += 1;
        if self.in_slide >= slide_objects {
            self.in_slide = 0;
            self.flush(threads, probes);
        }
    }

    /// Mirrors `QueryRuntime::finish`: partial-slide flush, engine drain,
    /// terminal flush.
    fn finish(&mut self, threads: usize, probes: &ServeProbes) {
        if self.in_slide > 0 {
            self.in_slide = 0;
            self.flush(threads, probes);
        }
        self.batch.clear();
        self.engine.finish_into(&mut self.batch);
        for group in &mut self.groups {
            for ev in self.batch.iter() {
                group.detector.on_event(ev);
            }
            group.events += self.batch.len() as u64;
        }
        self.flush(threads, probes);
    }

    fn flush(&mut self, threads: usize, probes: &ServeProbes) {
        probes
            .flight
            .record(TraceEvent::FlushStart { seq: self.slides });
        let mut produced = 0u64;
        for group in &mut self.groups {
            produced += group.flush_to_subs(threads);
        }
        probes.flight.record(TraceEvent::FlushEnd {
            seq: self.slides,
            answers: produced,
        });
        probes.slides.inc();
        self.slides += 1;
    }
}

/// The multi-query server: one shared ingest feeding every live
/// subscription's answer channel. See the crate docs for the sharing model
/// and the bit-identity contract.
pub struct SurgeServer {
    cfg: ServeConfig,
    objects_ingested: u64,
    next_sub_id: u64,
    snapshot_seq: u64,
    finished: bool,
    lanes: Vec<Lane>,
    probes: ServeProbes,
}

impl SurgeServer {
    /// An empty server.
    ///
    /// # Panics
    ///
    /// Panics if `slide_objects` or `engine_lanes` is 0.
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(
            cfg.slide_objects > 0,
            "slide must contain at least one object"
        );
        assert!(cfg.engine_lanes > 0, "engine needs at least one lane");
        SurgeServer {
            cfg,
            objects_ingested: 0,
            next_sub_id: 0,
            snapshot_seq: 0,
            finished: false,
            lanes: Vec::new(),
            probes: ServeProbes::off(),
        }
    }

    /// Attaches an observability handle: `serve/objects` and `serve/slides`
    /// counters, `serve/lanes|groups|subscriptions` occupancy gauges (kept
    /// in sync on every subscribe/unsubscribe), and a `serve/ingest` flight
    /// ring tracing lane flushes in logical time. Attaching [`Observe::off`]
    /// detaches. The answer streams are bitwise identical with observability
    /// on or off — the serving layer's non-invasiveness contract.
    pub fn observe(&mut self, obs: &Observe) {
        self.probes = ServeProbes::new(obs);
        self.sync_occupancy();
    }

    /// A point-in-time snapshot of the attached metrics registry, or `None`
    /// when observability is off — the live server-stats surface
    /// ([`RegistrySnapshot::to_json`] / [`RegistrySnapshot::to_prometheus`]
    /// render it for transport).
    pub fn registry_snapshot(&self) -> Option<RegistrySnapshot> {
        self.probes
            .obs
            .is_enabled()
            .then(|| self.probes.obs.snapshot())
    }

    /// Dumps every flight-recorder ring of the attached [`Observe`] handle
    /// (non-destructively). Empty when observability is off.
    pub fn trace_dump(&self) -> TraceDump {
        self.probes.obs.trace_dump()
    }

    /// Re-points the occupancy gauges at the current registry shape.
    fn sync_occupancy(&self) {
        if self.probes.obs.is_enabled() {
            let stats = self.stats();
            let obs = &self.probes.obs;
            obs.gauge("serve/lanes").set(stats.lanes as i64);
            obs.gauge("serve/groups").set(stats.groups as i64);
            obs.gauge("serve/subscriptions")
                .set(stats.subscriptions as i64);
        }
    }

    /// Registers a query at the **current stream position**: the
    /// subscription's answers cover the stream suffix from this call on,
    /// exactly as if a dedicated detector had been started here.
    ///
    /// Joins an existing lane when one with the same window configuration
    /// is registering at the same position, and an existing detector group
    /// when the query is bitwise-identical ([`QueryKey`]) with the same
    /// flavor.
    pub fn subscribe(
        &mut self,
        query: SurgeQuery,
        spec: DetectorSpec,
    ) -> Result<SubId, ServeError> {
        if self.finished {
            return Err(ServeError::Finished);
        }
        let key = QueryKey::new(&query)?;
        match spec {
            DetectorSpec::Serve => {
                return Err(ServeError::UnsupportedSpec(
                    "Serve is the registry marker, not a detector flavor",
                ))
            }
            DetectorSpec::Autopilot { .. } => {
                return Err(ServeError::UnsupportedSpec(
                    "Autopilot degrades on wall-clock latency, which is not a pure \
                     function of the event stream; subscribe the exact or approximate \
                     flavor directly",
                ))
            }
            _ => {}
        }
        let detector =
            SpecDetector::build(&spec, query).map_err(|e| ServeError::Corrupt(e.to_string()))?;
        let id = SubId(self.next_sub_id);
        self.next_sub_id += 1;
        let sub = Sub {
            id,
            log: AnswerLog::new(),
        };

        let windows = query.windows;
        let start = self.objects_ingested;
        let lane = match self
            .lanes
            .iter_mut()
            .find(|l| l.windows() == windows && l.start_objects == start)
        {
            Some(lane) => lane,
            None => {
                self.lanes.push(Lane {
                    start_objects: start,
                    in_slide: 0,
                    slides: 0,
                    region: query.region,
                    engine: ShardedWindowEngine::new(windows, query.region, self.cfg.engine_lanes),
                    groups: Vec::new(),
                    batch: EventBatch::new(),
                });
                self.lanes.last_mut().expect("just pushed")
            }
        };
        match lane
            .groups
            .iter_mut()
            .find(|g| g.key == key && g.spec == spec)
        {
            Some(group) => group.subs.push(sub),
            None => lane.groups.push(Group {
                key,
                query,
                spec,
                detector,
                events: 0,
                subs: vec![sub],
            }),
        }
        self.sync_occupancy();
        Ok(id)
    }

    /// Drops a subscription, returning its answer channel (whatever was
    /// still retained). The last subscription out of a group removes the
    /// shared detector; the last group out of a lane removes the lane.
    pub fn unsubscribe(&mut self, sub: SubId) -> Result<AnswerLog<Vec<RegionAnswer>>, ServeError> {
        for lane in &mut self.lanes {
            for group in &mut lane.groups {
                if let Some(pos) = group.subs.iter().position(|s| s.id == sub) {
                    let removed = group.subs.remove(pos);
                    lane.groups.retain(|g| !g.subs.is_empty());
                    self.lanes.retain(|l| !l.groups.is_empty());
                    self.sync_occupancy();
                    return Ok(removed.log);
                }
            }
        }
        Err(ServeError::UnknownSubscription(sub))
    }

    /// Broadcasts one arrival to every lane; lanes that complete a slide
    /// flush their groups into the subscription channels.
    ///
    /// # Panics
    ///
    /// Panics after [`finish`](Self::finish) — a drained server cannot
    /// ingest.
    pub fn ingest(&mut self, object: SpatialObject) {
        assert!(!self.finished, "SurgeServer::ingest after finish");
        self.objects_ingested += 1;
        self.probes.objects.inc();
        for lane in &mut self.lanes {
            lane.push(
                object,
                self.cfg.slide_objects,
                self.cfg.threads,
                &self.probes,
            );
        }
    }

    /// End of stream: every lane runs the canonical drain — a flush for
    /// its trailing partial slide, the engine tail, then the terminal
    /// flush. Subscriptions keep their channels; acks still release.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        for lane in &mut self.lanes {
            lane.finish(self.cfg.threads, &self.probes);
        }
    }

    /// Live-reshards the **ingest mesh**: every lane's window engine is
    /// rebuilt at `engine_lanes` shard lanes from its logical checkpoint,
    /// without disturbing slide phase, detector state or subscription
    /// channels. Lane count is structural — the merged transition stream
    /// is bit-identical at every count — so answers after the reshard
    /// match a server that ran at either width all along. Safe at any
    /// stream position, including mid-slide.
    ///
    /// # Panics
    ///
    /// Panics if `engine_lanes` is 0 (mirroring [`new`](Self::new)).
    pub fn reshard_lanes(&mut self, engine_lanes: usize) -> Result<(), ServeError> {
        assert!(engine_lanes > 0, "engine needs at least one lane");
        if self.finished {
            return Err(ServeError::Finished);
        }
        for lane in &mut self.lanes {
            let state = lane.engine.checkpoint();
            lane.engine = ShardedWindowEngine::from_state(&state, lane.region, engine_lanes)
                .map_err(|e| ServeError::Corrupt(e.to_string()))?;
        }
        self.cfg.engine_lanes = engine_lanes;
        Ok(())
    }

    /// The elastic-mesh state of the detector group serving `sub` —
    /// `None` unless the group's flavor is [`DetectorSpec::Elastic`].
    /// Elastic groups rebalance themselves: every flush feeds the shared
    /// detector's balancer, so a skewed stream splits that group's sweep
    /// mesh mid-run while every subscription keeps its bit-identical
    /// answer stream.
    pub fn mesh_state(&self, sub: SubId) -> Result<Option<MeshState>, ServeError> {
        for lane in &self.lanes {
            for group in &lane.groups {
                if group.subs.iter().any(|s| s.id == sub) {
                    return Ok(group.detector.mesh_state());
                }
            }
        }
        Err(ServeError::UnknownSubscription(sub))
    }

    /// A subscription's answer channel: flush answers at dense 0-based
    /// seqs, `released..next_seq` retained until acked.
    pub fn answers(&self, sub: SubId) -> Result<&AnswerLog<Vec<RegionAnswer>>, ServeError> {
        self.find(sub).map(|s| &s.log)
    }

    /// Acknowledges every flush of `sub` up to and including `upto`,
    /// releasing the retained answers.
    pub fn ack(&mut self, sub: SubId, upto: u64) -> Result<(), ServeError> {
        self.find_mut(sub)?.log.ack(upto);
        Ok(())
    }

    /// Takes and acknowledges everything `sub` has retained, as
    /// `(seq, answers)` pairs.
    pub fn drain(&mut self, sub: SubId) -> Result<Vec<(u64, Vec<RegionAnswer>)>, ServeError> {
        let log = &mut self.find_mut(sub)?.log;
        let out: Vec<(u64, Vec<RegionAnswer>)> = log
            .iter_seq()
            .map(|(seq, answers)| (seq, answers.clone()))
            .collect();
        if let Some((last, _)) = out.last() {
            log.ack(*last);
        }
        Ok(out)
    }

    /// Registry occupancy (lanes / deduped groups / subscriptions).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            lanes: self.lanes.len(),
            groups: self.lanes.iter().map(|l| l.groups.len()).sum(),
            subscriptions: self
                .lanes
                .iter()
                .flat_map(|l| &l.groups)
                .map(|g| g.subs.len())
                .sum(),
        }
    }

    /// Objects broadcast so far.
    pub fn objects_ingested(&self) -> u64 {
        self.objects_ingested
    }

    /// Whether the terminal drain has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Captures the complete logical registry as a durable
    /// [`ServeState`] (and bumps the snapshot sequence). Restoring it with
    /// [`restore`](Self::restore) yields a server whose future answers are
    /// bit-identical to this one's.
    pub fn capture(&mut self) -> ServeState {
        let seq = self.snapshot_seq;
        self.snapshot_seq += 1;
        ServeState {
            meta: ServeMeta {
                objects_ingested: self.objects_ingested,
                slide_objects: self.cfg.slide_objects as u64,
                threads: self.cfg.threads as u64,
                next_sub_id: self.next_sub_id,
                snapshot_seq: seq,
            },
            lanes: self
                .lanes
                .iter()
                .map(|lane| ServeLaneState {
                    start_objects: lane.start_objects,
                    in_slide: lane.in_slide as u64,
                    slides: lane.slides,
                    lane_count: lane.engine.lane_count() as u64,
                    region: (lane.region.width, lane.region.height),
                    engine: lane.engine.checkpoint(),
                    groups: lane
                        .groups
                        .iter()
                        .map(|g| ServeGroupState {
                            query: g.query,
                            spec: g.spec,
                            detector: g.detector.capture(),
                            mesh: g.detector.mesh_state(),
                            events: g.events,
                            subs: g
                                .subs
                                .iter()
                                .map(|s| ServeSubState {
                                    id: s.id.0,
                                    released: s.log.released(),
                                    retained: s.log.retained().to_vec(),
                                })
                                .collect(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a live server from a captured registry. Every engine,
    /// shared detector and answer channel resumes exactly where the
    /// capture left it; `engine_lanes` for *future* lanes defaults to the
    /// first restored lane's count (or 1 on an empty registry).
    pub fn restore(state: &ServeState) -> Result<Self, ServeError> {
        let meta = &state.meta;
        if meta.slide_objects == 0 {
            return Err(ServeError::Corrupt("slide_objects must be positive".into()));
        }
        let mut lanes = Vec::with_capacity(state.lanes.len());
        let mut max_sub = None::<u64>;
        for ls in &state.lanes {
            if ls.in_slide >= meta.slide_objects {
                return Err(ServeError::Corrupt(format!(
                    "lane in_slide {} not below slide_objects {}",
                    ls.in_slide, meta.slide_objects
                )));
            }
            if ls.start_objects > meta.objects_ingested {
                return Err(ServeError::Corrupt(format!(
                    "lane starts at {} but the server only ingested {}",
                    ls.start_objects, meta.objects_ingested
                )));
            }
            let region = RegionSize::new(ls.region.0, ls.region.1);
            let engine =
                ShardedWindowEngine::from_state(&ls.engine, region, ls.lane_count as usize)
                    .map_err(|e| ServeError::Corrupt(e.to_string()))?;
            let mut groups = Vec::with_capacity(ls.groups.len());
            for gs in &ls.groups {
                if gs.subs.is_empty() {
                    return Err(ServeError::Corrupt("group without subscribers".into()));
                }
                if matches!(
                    gs.spec,
                    DetectorSpec::Serve | DetectorSpec::Autopilot { .. }
                ) {
                    return Err(ServeError::Corrupt(format!(
                        "registry contains an unservable {:?} group",
                        gs.spec
                    )));
                }
                let key = QueryKey::new(&gs.query)?;
                let mut detector = SpecDetector::build(&gs.spec, gs.query)
                    .map_err(|e| ServeError::Corrupt(e.to_string()))?;
                detector
                    .restore(&gs.detector)
                    .map_err(|e| ServeError::Corrupt(e.to_string()))?;
                if let Some(mesh) = &gs.mesh {
                    detector
                        .apply_mesh(mesh)
                        .map_err(|e| ServeError::Corrupt(e.to_string()))?;
                }
                let subs = gs
                    .subs
                    .iter()
                    .map(|ss| {
                        max_sub = Some(max_sub.map_or(ss.id, |m| m.max(ss.id)));
                        Sub {
                            id: SubId(ss.id),
                            log: AnswerLog::from_parts(ss.released, ss.retained.clone()),
                        }
                    })
                    .collect();
                groups.push(Group {
                    key,
                    query: gs.query,
                    spec: gs.spec,
                    detector,
                    events: gs.events,
                    subs,
                });
            }
            lanes.push(Lane {
                start_objects: ls.start_objects,
                in_slide: ls.in_slide as usize,
                slides: ls.slides,
                region,
                engine,
                groups,
                batch: EventBatch::new(),
            });
        }
        let floor = max_sub.map_or(0, |m| m + 1);
        Ok(SurgeServer {
            cfg: ServeConfig {
                slide_objects: meta.slide_objects as usize,
                threads: (meta.threads as usize).max(1),
                engine_lanes: lanes.first().map_or(1, |l: &Lane| l.engine.lane_count()),
            },
            objects_ingested: meta.objects_ingested,
            next_sub_id: meta.next_sub_id.max(floor),
            snapshot_seq: meta.snapshot_seq + 1,
            finished: false,
            lanes,
            probes: ServeProbes::off(),
        })
    }

    fn find(&self, sub: SubId) -> Result<&Sub, ServeError> {
        self.lanes
            .iter()
            .flat_map(|l| &l.groups)
            .flat_map(|g| &g.subs)
            .find(|s| s.id == sub)
            .ok_or(ServeError::UnknownSubscription(sub))
    }

    fn find_mut(&mut self, sub: SubId) -> Result<&mut Sub, ServeError> {
        self.lanes
            .iter_mut()
            .flat_map(|l| &mut l.groups)
            .flat_map(|g| &mut g.subs)
            .find(|s| s.id == sub)
            .ok_or(ServeError::UnknownSubscription(sub))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::WindowConfig;

    fn query(alpha: f64) -> SurgeQuery {
        SurgeQuery::whole_space(RegionSize::new(1.5, 1.5), WindowConfig::new(120, 60), alpha)
    }

    fn base_spec() -> DetectorSpec {
        DetectorSpec::Base { pruned: false }
    }

    fn stream(n: usize) -> Vec<SpatialObject> {
        use surge_core::Point;
        (0..n)
            .map(|i| {
                SpatialObject::new(
                    i as u64,
                    1.0 + (i % 3) as f64,
                    Point::new((i % 7) as f64 * 0.4, (i % 5) as f64 * 0.6),
                    (i as u64) * 9,
                )
            })
            .collect()
    }

    #[test]
    fn identical_queries_share_a_group() {
        let mut server = SurgeServer::new(ServeConfig::sequential(8));
        let a = server.subscribe(query(0.4), base_spec()).unwrap();
        let b = server.subscribe(query(0.4), base_spec()).unwrap();
        let c = server.subscribe(query(0.7), base_spec()).unwrap();
        let stats = server.stats();
        assert_eq!((stats.lanes, stats.groups, stats.subscriptions), (1, 2, 3));
        assert!((stats.dedup_hit_rate() - 1.0 / 3.0).abs() < 1e-12);

        for obj in stream(64) {
            server.ingest(obj);
        }
        server.finish();
        let (a, b, c) = (
            server.answers(a).unwrap(),
            server.answers(b).unwrap(),
            server.answers(c).unwrap(),
        );
        assert!(a.len() > 1);
        assert_eq!(a.retained(), b.retained(), "deduped twins see one stream");
        assert_eq!(a.len(), c.len(), "lane mates flush in lockstep");
    }

    #[test]
    fn acks_release_and_drain_empties() {
        let mut server = SurgeServer::new(ServeConfig::sequential(8));
        let id = server.subscribe(query(0.5), base_spec()).unwrap();
        for obj in stream(40) {
            server.ingest(obj);
        }
        server.finish();
        let total = server.answers(id).unwrap().len();
        let drained = server.drain(id).unwrap();
        assert_eq!(drained.len(), total);
        assert_eq!(drained.first().unwrap().0, 0);
        assert!(server.answers(id).unwrap().is_empty());
        assert_eq!(server.answers(id).unwrap().released() as usize, total);
        assert!(server.drain(id).unwrap().is_empty());
    }

    #[test]
    fn unsubscribe_cascades_cleanup() {
        let mut server = SurgeServer::new(ServeConfig::sequential(8));
        let a = server.subscribe(query(0.4), base_spec()).unwrap();
        let b = server.subscribe(query(0.4), base_spec()).unwrap();
        server.unsubscribe(a).unwrap();
        assert_eq!(server.stats().groups, 1, "twin keeps the group alive");
        server.unsubscribe(b).unwrap();
        let stats = server.stats();
        assert_eq!((stats.lanes, stats.groups, stats.subscriptions), (0, 0, 0));
        assert_eq!(
            server.unsubscribe(b),
            Err(ServeError::UnknownSubscription(b))
        );
    }

    #[test]
    fn unservable_specs_are_rejected() {
        let mut server = SurgeServer::new(ServeConfig::sequential(8));
        assert!(matches!(
            server.subscribe(query(0.4), DetectorSpec::Serve),
            Err(ServeError::UnsupportedSpec(_))
        ));
    }

    #[test]
    fn finished_server_rejects_subscriptions() {
        let mut server = SurgeServer::new(ServeConfig::sequential(8));
        server.subscribe(query(0.4), base_spec()).unwrap();
        server.finish();
        assert_eq!(
            server.subscribe(query(0.6), base_spec()).unwrap_err(),
            ServeError::Finished
        );
    }
}
