//! # surge-bench
//!
//! Experiment harness regenerating every table and figure of the SURGE
//! paper's evaluation (§VII). The [`experiments`] module exposes one runner
//! per table/figure returning structured rows; the `surge-exp` binary prints
//! them in the paper's layout, and the criterion benches in `benches/` wrap
//! the same runners at reduced scale.
//!
//! Experiment ↔ paper mapping (see `DESIGN.md` §5 and `EXPERIMENTS.md`):
//!
//! | Runner | Paper artifact |
//! |--------|----------------|
//! | [`experiments::table1`] | Table I (dataset statistics) |
//! | [`experiments::fig5`]   | Fig. 5 (exact runtime vs window / rect size) |
//! | [`experiments::table2`] | Table II (search trigger ratio CCS vs B-CCS) |
//! | [`experiments::fig6`]   | Fig. 6 (approx runtime vs window / rect size) |
//! | [`experiments::fig7`]   | Fig. 7 (runtime vs α) |
//! | [`experiments::table3`] | Table III (approx ratio vs α) |
//! | [`experiments::table4`] | Table IV (approx ratio vs window) |
//! | [`experiments::fig8`]   | Fig. 8 (scalability vs arrival rate) |
//! | [`experiments::fig9`]   | Fig. 9 (top-k runtime vs window / k) |
//! | [`experiments::case_study`] | §VII-G / App. L (burst localization) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod print;

pub use experiments::{
    case_study, fig5, fig6, fig7, fig8, fig9, sweep_bench, table1, table2, table3, table4, Algo,
    ExpConfig, SweepAxis, SweepBenchRow,
};
