//! Experiment runners, one per table/figure of the paper.
//!
//! All runners are deterministic given an [`ExpConfig`] (object counts and
//! seed). Absolute timings depend on the machine; the *shapes* — which
//! algorithm wins, how curves grow with window/rect/α/rate/k — are what the
//! paper's evaluation establishes and what `EXPERIMENTS.md` compares.

use surge_core::{
    BurstDetector, RegionSize, SpatialObject, SurgeQuery, TopKDetector, WindowConfig, SCORE_EPS,
};
use surge_stream::{
    drive, drive_topk, BurstSpec, Dataset, RunStats, SlidingWindowEngine, StreamGenerator,
};

use surge_approx::{GapSurge, MgapSurge};
use surge_baseline::Ag2;
use surge_exact::{BaseDetector, BoundMode, CellCspot, SweepMode, DEFAULT_SHARDS};
use surge_topk::{KCellCspot, KGapSurge, KMgapSurge, NaiveTopK};

/// The single-region algorithms the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Cell-CSPOT (exact, combined bounds).
    Ccs,
    /// Cell-CSPOT with static bound only (ablation).
    Bccs,
    /// No-bound per-event search (ablation).
    Base,
    /// Adapted continuous-MaxRS competitor.
    Ag2,
    /// Grid approximation.
    Gaps,
    /// Multi-grid approximation.
    Mgaps,
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Ccs => "CCS",
            Algo::Bccs => "B-CCS",
            Algo::Base => "Base",
            Algo::Ag2 => "aG2",
            Algo::Gaps => "GAPS",
            Algo::Mgaps => "MGAPS",
        }
    }

    /// The four exact-solution curves of Fig. 5.
    pub const EXACT_SET: [Algo; 4] = [Algo::Ccs, Algo::Bccs, Algo::Base, Algo::Ag2];
    /// The two approximate curves of Fig. 6.
    pub const APPROX_SET: [Algo; 2] = [Algo::Gaps, Algo::Mgaps];

    /// Builds a fresh detector for `query` (persistent cross-sweep state —
    /// the production configuration).
    pub fn build(&self, query: SurgeQuery) -> Box<dyn BurstDetector> {
        self.build_with(query, SweepMode::Persistent)
    }

    /// Builds a fresh detector with an explicit per-cell sweep mode. The
    /// mode only affects the exact cell detectors (CCS / B-CCS); answers
    /// are bit-identical either way — [`SweepMode::Rebuild`] exists so the
    /// harness can time the pre-persistence cost profile
    /// (`surge-exp --persistent off`).
    pub fn build_with(&self, query: SurgeQuery, sweep_mode: SweepMode) -> Box<dyn BurstDetector> {
        match self {
            Algo::Ccs => Box::new(CellCspot::with_sweep_mode(
                query,
                BoundMode::Combined,
                sweep_mode,
                DEFAULT_SHARDS,
            )),
            Algo::Bccs => Box::new(CellCspot::with_sweep_mode(
                query,
                BoundMode::StaticOnly,
                sweep_mode,
                DEFAULT_SHARDS,
            )),
            Algo::Base => Box::new(BaseDetector::new(query)),
            Algo::Ag2 => Box::new(Ag2::new(query)),
            Algo::Gaps => Box::new(GapSurge::new(query)),
            Algo::Mgaps => Box::new(MgapSurge::new(query)),
        }
    }

    /// Whether this algorithm pays a super-linear per-event cost and should
    /// run on a reduced stream in the combined harness.
    pub fn is_heavy(&self) -> bool {
        matches!(self, Algo::Bccs | Algo::Base | Algo::Ag2)
    }
}

/// Scale knobs for the harness.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Objects per run for fast algorithms (CCS, GAPS, MGAPS).
    pub objects: usize,
    /// Objects per run for the heavy ablations/baselines (B-CCS, Base, aG2).
    pub heavy_objects: usize,
    /// Objects per run for the naive top-k strawman.
    pub naive_objects: usize,
    /// Workload seed.
    pub seed: u64,
    /// Checkpoint stride for quality measurements (Tables III/IV).
    pub quality_stride: usize,
    /// Cap on the total stream length (warm-up + measurement) for fast
    /// algorithms. Long windows need long warm-ups (≈ arrival-rate × 2·|W|);
    /// configurations whose warm-up exceeds this cap fall back to full-run
    /// timing and are marked `*` in the output.
    pub max_objects: usize,
    /// Same cap for the heavy ablations/baselines.
    pub max_heavy_objects: usize,
    /// Per-cell sweep mode for the exact cell detectors (`surge-exp
    /// --persistent on|off`). Answers are bit-identical in both modes;
    /// `Rebuild` times the pre-persistence cost profile.
    pub sweep_mode: SweepMode,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            objects: 20_000,
            heavy_objects: 6_000,
            naive_objects: 1_200,
            seed: 42,
            quality_stride: 50,
            max_objects: 450_000,
            max_heavy_objects: 30_000,
            sweep_mode: SweepMode::Persistent,
        }
    }
}

impl ExpConfig {
    /// A fast smoke-scale configuration (used by `--fast` and the criterion
    /// benches).
    pub fn fast() -> Self {
        ExpConfig {
            objects: 4_000,
            heavy_objects: 1_500,
            naive_objects: 400,
            seed: 42,
            quality_stride: 25,
            max_objects: 40_000,
            max_heavy_objects: 8_000,
            sweep_mode: SweepMode::Persistent,
        }
    }

    /// Paper-scale configuration (1M objects; expect long runtimes).
    pub fn paper() -> Self {
        ExpConfig {
            objects: 1_000_000,
            heavy_objects: 100_000,
            naive_objects: 5_000,
            seed: 42,
            quality_stride: 1_000,
            max_objects: 2_000_000,
            max_heavy_objects: 500_000,
            sweep_mode: SweepMode::Persistent,
        }
    }
}

/// Which parameter a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Sliding-window length (Figs. 5/6/9 a–c).
    Window,
    /// Query-rectangle size (Figs. 5/6 d–f).
    Rect,
    /// Top-k `k` (Fig. 9 d–f).
    K,
}

/// The paper's window sweep for a dataset, as (label, config) pairs.
pub fn window_sweep(dataset: Dataset) -> Vec<(String, WindowConfig)> {
    match dataset {
        Dataset::Taxi => [1u64, 5, 10, 20, 30]
            .iter()
            .map(|m| (format!("{m}min"), WindowConfig::equal_minutes(*m)))
            .collect(),
        _ => [
            (30u64, "0.5h"),
            (60, "1h"),
            (120, "2h"),
            (300, "5h"),
            (720, "12h"),
        ]
        .iter()
        .map(|(m, label)| (label.to_string(), WindowConfig::equal_minutes(*m)))
        .collect(),
    }
}

/// The paper's rectangle sweep: 0.5q, q, 2q, 3q.
pub fn rect_sweep() -> Vec<(String, f64)> {
    vec![
        ("0.5q".into(), 0.5),
        ("q".into(), 1.0),
        ("2q".into(), 2.0),
        ("3q".into(), 3.0),
    ]
}

/// The paper's α sweep.
pub fn alpha_sweep() -> Vec<f64> {
    vec![0.1, 0.3, 0.5, 0.7, 0.9]
}

/// The paper's k sweep.
pub fn k_sweep() -> Vec<usize> {
    vec![3, 5, 7, 9]
}

/// Default α used everywhere the paper doesn't sweep it.
pub const DEFAULT_ALPHA: f64 = 0.5;

fn query_for(dataset: Dataset, windows: WindowConfig, rect_scale: f64, alpha: f64) -> SurgeQuery {
    let q = dataset.default_region();
    SurgeQuery::new(
        dataset.spec().extent,
        RegionSize::new(q.width * rect_scale, q.height * rect_scale),
        windows,
        alpha,
    )
}

fn stream_for(dataset: Dataset, objects: usize, seed: u64) -> Vec<SpatialObject> {
    StreamGenerator::new(dataset.workload(objects, seed)).generate()
}

/// Total stream length needed to measure `measure` objects after the windows
/// stabilize, capped. Warm-up ≈ arrival-rate × 2.2·|W| (first expiry happens
/// after two full windows).
fn objects_for(dataset: Dataset, windows: WindowConfig, measure: usize, cap: usize) -> usize {
    let rate = dataset.spec().rate_per_hour;
    let window_hours = windows.current_len as f64 / 3.6e6 + windows.past_len as f64 / 3.6e6;
    let warmup = (rate * window_hours * 1.1).ceil() as usize;
    (warmup + measure).min(cap).max(measure.min(cap))
}

/// Runs one single-region algorithm over a dataset stream and reports timing.
pub fn run_algo(
    algo: Algo,
    dataset: Dataset,
    windows: WindowConfig,
    rect_scale: f64,
    alpha: f64,
    objects: usize,
    seed: u64,
) -> RunStats {
    run_algo_with_mode(
        algo,
        dataset,
        windows,
        rect_scale,
        alpha,
        objects,
        seed,
        SweepMode::Persistent,
    )
}

/// [`run_algo`] with an explicit per-cell sweep mode (the `--persistent`
/// toggle; only the exact cell detectors are affected).
#[allow(clippy::too_many_arguments)]
pub fn run_algo_with_mode(
    algo: Algo,
    dataset: Dataset,
    windows: WindowConfig,
    rect_scale: f64,
    alpha: f64,
    objects: usize,
    seed: u64,
    sweep_mode: SweepMode,
) -> RunStats {
    let query = query_for(dataset, windows, rect_scale, alpha);
    let mut detector = algo.build_with(query, sweep_mode);
    let mut engine = SlidingWindowEngine::new(windows);
    let stream = stream_for(dataset, objects, seed);
    drive(detector.as_mut(), &mut engine, stream.into_iter())
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// Generated object count.
    pub objects: usize,
    /// Empirical arrival rate (objects per hour).
    pub rate_per_hour: f64,
    /// Latitude range (y).
    pub lat_range: (f64, f64),
    /// Longitude range (x).
    pub lon_range: (f64, f64),
}

/// Regenerates Table I from the synthetic dataset models.
pub fn table1(cfg: &ExpConfig) -> Vec<Table1Row> {
    Dataset::ALL
        .iter()
        .map(|d| {
            let objs = stream_for(*d, cfg.objects, cfg.seed);
            let span_h = objs.last().map_or(0.0, |o| o.created as f64 / 3.6e6);
            let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
            for o in &objs {
                x0 = x0.min(o.pos.x);
                x1 = x1.max(o.pos.x);
                y0 = y0.min(o.pos.y);
                y1 = y1.max(o.pos.y);
            }
            Table1Row {
                dataset: d.to_string(),
                objects: objs.len(),
                rate_per_hour: objs.len() as f64 / span_h.max(1e-9),
                lat_range: (y0, y1),
                lon_range: (x0, x1),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 5 & 6: runtime vs window / rect size
// ---------------------------------------------------------------------------

/// One measured point of a runtime figure.
#[derive(Debug, Clone)]
pub struct RuntimePoint {
    /// Dataset name.
    pub dataset: String,
    /// Sweep-parameter label ("1h", "2q", …).
    pub param: String,
    /// Algorithm name.
    pub algo: &'static str,
    /// Mean processing time per object, microseconds.
    pub time_per_object_us: f64,
    /// Objects processed in the timed phase.
    pub objects: u64,
    /// Whether the measurement comes from the stable phase (paper
    /// methodology) or the full-run fallback (window never filled within the
    /// object budget; marked `*` in the output).
    pub stable: bool,
}

fn runtime_sweep(
    datasets: &[Dataset],
    algos: &[Algo],
    axis: SweepAxis,
    cfg: &ExpConfig,
) -> Vec<RuntimePoint> {
    let mut out = Vec::new();
    for &dataset in datasets {
        let params: Vec<(String, WindowConfig, f64)> = match axis {
            SweepAxis::Window => window_sweep(dataset)
                .into_iter()
                .map(|(label, w)| (label, w, 1.0))
                .collect(),
            SweepAxis::Rect => rect_sweep()
                .into_iter()
                .map(|(label, s)| (label, dataset.spec().default_windows, s))
                .collect(),
            SweepAxis::K => panic!("K axis is only valid for fig9"),
        };
        for (label, windows, rect_scale) in params {
            for &algo in algos {
                let (measure, cap) = if algo.is_heavy() {
                    (cfg.heavy_objects, cfg.max_heavy_objects)
                } else {
                    (cfg.objects, cfg.max_objects)
                };
                let objects = objects_for(dataset, windows, measure, cap);
                let stats = run_algo_with_mode(
                    algo,
                    dataset,
                    windows,
                    rect_scale,
                    DEFAULT_ALPHA,
                    objects,
                    cfg.seed,
                    cfg.sweep_mode,
                );
                let (t, stable) = if stats.objects > 0 {
                    (stats.time_per_object_us(), true)
                } else {
                    (stats.time_per_object_full_us(), false)
                };
                out.push(RuntimePoint {
                    dataset: dataset.to_string(),
                    param: label.clone(),
                    algo: algo.name(),
                    time_per_object_us: t,
                    objects: stats.objects,
                    stable,
                });
            }
        }
    }
    out
}

/// Fig. 5: exact solutions (CCS, B-CCS, Base, aG2) vs window length or
/// rectangle size, per dataset.
pub fn fig5(datasets: &[Dataset], axis: SweepAxis, cfg: &ExpConfig) -> Vec<RuntimePoint> {
    runtime_sweep(datasets, &Algo::EXACT_SET, axis, cfg)
}

/// Fig. 6: approximate solutions (GAPS, MGAPS) vs window length or rectangle
/// size, per dataset.
pub fn fig6(datasets: &[Dataset], axis: SweepAxis, cfg: &ExpConfig) -> Vec<RuntimePoint> {
    runtime_sweep(datasets, &Algo::APPROX_SET, axis, cfg)
}

// ---------------------------------------------------------------------------
// Table II: search trigger ratio
// ---------------------------------------------------------------------------

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Window label.
    pub window: String,
    /// Fraction of events that triggered ≥1 cell search in CCS.
    pub ccs_ratio: f64,
    /// Same for B-CCS.
    pub bccs_ratio: f64,
}

/// Regenerates Table II: the fraction of rectangle messages that trigger a
/// cell search, CCS vs B-CCS, across the window sweep.
pub fn table2(datasets: &[Dataset], cfg: &ExpConfig) -> Vec<Table2Row> {
    let mut out = Vec::new();
    for &dataset in datasets {
        for (label, windows) in window_sweep(dataset) {
            let objects = objects_for(dataset, windows, cfg.heavy_objects, cfg.max_heavy_objects);
            let ccs = run_algo_with_mode(
                Algo::Ccs,
                dataset,
                windows,
                1.0,
                DEFAULT_ALPHA,
                objects,
                cfg.seed,
                cfg.sweep_mode,
            );
            let bccs = run_algo_with_mode(
                Algo::Bccs,
                dataset,
                windows,
                1.0,
                DEFAULT_ALPHA,
                objects,
                cfg.seed,
                cfg.sweep_mode,
            );
            out.push(Table2Row {
                dataset: dataset.to_string(),
                window: label,
                ccs_ratio: ccs.detector.trigger_ratio(),
                bccs_ratio: bccs.detector.trigger_ratio(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 7: runtime vs alpha (US)
// ---------------------------------------------------------------------------

/// One measured point of Fig. 7.
#[derive(Debug, Clone)]
pub struct AlphaPoint {
    /// α value.
    pub alpha: f64,
    /// Algorithm name.
    pub algo: &'static str,
    /// Mean processing time per object, microseconds.
    pub time_per_object_us: f64,
}

/// Fig. 7: runtime vs α on US (CCS + aG2 for the exact panel, GAPS + MGAPS
/// for the approximate panel).
pub fn fig7(cfg: &ExpConfig) -> Vec<AlphaPoint> {
    let dataset = Dataset::Us;
    let windows = WindowConfig::equal_hours(1);
    let mut out = Vec::new();
    for alpha in alpha_sweep() {
        for algo in [Algo::Ccs, Algo::Ag2, Algo::Gaps, Algo::Mgaps] {
            let (measure, cap) = if algo.is_heavy() {
                (cfg.heavy_objects, cfg.max_heavy_objects)
            } else {
                (cfg.objects, cfg.max_objects)
            };
            let objects = objects_for(dataset, windows, measure, cap);
            let stats = run_algo_with_mode(
                algo,
                dataset,
                windows,
                1.0,
                alpha,
                objects,
                cfg.seed,
                cfg.sweep_mode,
            );
            let t = if stats.objects > 0 {
                stats.time_per_object_us()
            } else {
                stats.time_per_object_full_us()
            };
            out.push(AlphaPoint {
                alpha,
                algo: algo.name(),
                time_per_object_us: t,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tables III & IV: approximation ratio
// ---------------------------------------------------------------------------

/// One approximation-ratio measurement.
#[derive(Debug, Clone)]
pub struct RatioRow {
    /// Dataset name.
    pub dataset: String,
    /// Sweep label (α value or window label).
    pub param: String,
    /// Mean GAPS/OPT burst-score ratio over the checkpoints.
    pub gaps_ratio: f64,
    /// Mean MGAPS/OPT ratio.
    pub mgaps_ratio: f64,
    /// Number of checkpoints sampled.
    pub checkpoints: usize,
}

/// Runs CCS (exact oracle), GAPS and MGAPS side by side and samples the score
/// ratio every `stride` objects once the stream is stable.
fn quality_run(
    dataset: Dataset,
    windows: WindowConfig,
    alpha: f64,
    objects: usize,
    stride: usize,
    seed: u64,
) -> (f64, f64, usize) {
    let query = query_for(dataset, windows, 1.0, alpha);
    let mut ccs = CellCspot::new(query);
    let mut gaps = GapSurge::new(query);
    let mut mgaps = MgapSurge::new(query);
    let mut engine = SlidingWindowEngine::new(windows);
    let stream = stream_for(dataset, objects, seed);

    let mut sum_gaps = 0.0;
    let mut sum_mgaps = 0.0;
    let mut n = 0usize;
    for (i, obj) in stream.into_iter().enumerate() {
        let stable = engine.is_stable();
        for ev in engine.push(obj) {
            ccs.on_event(&ev);
            gaps.on_event(&ev);
            mgaps.on_event(&ev);
        }
        if stable && i % stride == 0 {
            let opt = ccs.current().map_or(0.0, |a| a.score);
            if opt > SCORE_EPS {
                let g = gaps.current().map_or(0.0, |a| a.score);
                let m = mgaps.current().map_or(0.0, |a| a.score);
                sum_gaps += (g / opt).min(1.0);
                sum_mgaps += (m / opt).min(1.0);
                n += 1;
            }
        }
    }
    if n == 0 {
        (0.0, 0.0, 0)
    } else {
        (sum_gaps / n as f64, sum_mgaps / n as f64, n)
    }
}

/// Table III: approximation ratio vs α on US.
pub fn table3(cfg: &ExpConfig) -> Vec<RatioRow> {
    let dataset = Dataset::Us;
    alpha_sweep()
        .into_iter()
        .map(|alpha| {
            let windows = WindowConfig::equal_hours(1);
            let objects = objects_for(dataset, windows, cfg.objects, cfg.max_objects);
            let (g, m, n) = quality_run(
                dataset,
                windows,
                alpha,
                objects,
                cfg.quality_stride,
                cfg.seed,
            );
            RatioRow {
                dataset: dataset.to_string(),
                param: format!("{alpha:.1}"),
                gaps_ratio: g,
                mgaps_ratio: m,
                checkpoints: n,
            }
        })
        .collect()
}

/// Table IV: approximation ratio vs window size, all datasets.
pub fn table4(datasets: &[Dataset], cfg: &ExpConfig) -> Vec<RatioRow> {
    let mut out = Vec::new();
    for &dataset in datasets {
        for (label, windows) in window_sweep(dataset) {
            let objects = objects_for(dataset, windows, cfg.objects, cfg.max_objects);
            let (g, m, n) = quality_run(
                dataset,
                windows,
                DEFAULT_ALPHA,
                objects,
                cfg.quality_stride,
                cfg.seed,
            );
            out.push(RatioRow {
                dataset: dataset.to_string(),
                param: label,
                gaps_ratio: g,
                mgaps_ratio: m,
                checkpoints: n,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 8: scalability vs arrival rate
// ---------------------------------------------------------------------------

/// One measured point of Fig. 8.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Dataset name.
    pub dataset: String,
    /// Arrival rate, millions of objects per day.
    pub rate_mpd: f64,
    /// Algorithm name.
    pub algo: &'static str,
    /// Wall-clock seconds needed per hour of stream time (`t_h`).
    pub seconds_per_stream_hour: f64,
}

/// Fig. 8: CCS and GAPS processing cost per stream-hour as the stream is
/// stretched to 2–10 million objects per day (1-hour windows).
pub fn fig8(datasets: &[Dataset], cfg: &ExpConfig) -> Vec<ScalePoint> {
    let rates = [2.0, 4.0, 6.0, 8.0, 10.0];
    let windows = WindowConfig::equal_hours(1);
    let mut out = Vec::new();
    for &dataset in datasets {
        for &rate in &rates {
            for algo in [Algo::Ccs, Algo::Gaps] {
                // Stretching multiplies the resident-object count: at R
                // million/day with 1-hour windows, ~R/24 million objects sit
                // in the two windows. The object budget is a fixed measuring
                // span; the full-run metric (warm-up included) is used so
                // every rate is measurable within the budget.
                let objects = cfg.objects;
                let query = query_for(dataset, windows, 1.0, DEFAULT_ALPHA);
                let workload = dataset
                    .workload(objects, cfg.seed)
                    .stretched_to_rate(rate * 1e6);
                let mut det = algo.build_with(query, cfg.sweep_mode);
                let mut engine = SlidingWindowEngine::new(windows);
                let stream = StreamGenerator::new(workload).generate();
                let stats = drive(det.as_mut(), &mut engine, stream.into_iter());
                out.push(ScalePoint {
                    dataset: dataset.to_string(),
                    rate_mpd: rate,
                    algo: algo.name(),
                    seconds_per_stream_hour: stats.seconds_per_stream_hour_full(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 9: top-k
// ---------------------------------------------------------------------------

/// One measured point of Fig. 9.
#[derive(Debug, Clone)]
pub struct TopKPoint {
    /// Dataset name.
    pub dataset: String,
    /// Sweep label (window label or k value).
    pub param: String,
    /// Algorithm name.
    pub algo: &'static str,
    /// Mean processing time per object, microseconds.
    pub time_per_object_us: f64,
}

fn run_topk(
    detector: &mut dyn TopKDetector,
    dataset: Dataset,
    windows: WindowConfig,
    objects: usize,
    seed: u64,
) -> RunStats {
    let mut engine = SlidingWindowEngine::new(windows);
    let stream = stream_for(dataset, objects, seed);
    drive_topk(detector, &mut engine, stream.into_iter())
}

fn topk_time(stats: &RunStats) -> f64 {
    if stats.objects > 0 {
        stats.time_per_object_us()
    } else {
        stats.time_per_object_full_us()
    }
}

/// Fig. 9: top-k runtime. `axis == Window` sweeps the window with k=3 (panels
/// a–c, plus the Naive strawman on US); `axis == K` sweeps k∈{3,5,7,9} at the
/// default window (panels d–f).
pub fn fig9(datasets: &[Dataset], axis: SweepAxis, cfg: &ExpConfig) -> Vec<TopKPoint> {
    let mut out = Vec::new();
    match axis {
        SweepAxis::K => {
            for &dataset in datasets {
                let windows = dataset.spec().default_windows;
                for k in k_sweep() {
                    let query = query_for(dataset, windows, 1.0, DEFAULT_ALPHA);
                    let heavy =
                        objects_for(dataset, windows, cfg.heavy_objects, cfg.max_heavy_objects);
                    let fast = objects_for(dataset, windows, cfg.objects, cfg.max_objects);
                    let mut kccs = KCellCspot::new(query, k);
                    let s = run_topk(&mut kccs, dataset, windows, heavy, cfg.seed);
                    out.push(TopKPoint {
                        dataset: dataset.to_string(),
                        param: format!("k={k}"),
                        algo: "kCCS",
                        time_per_object_us: topk_time(&s),
                    });
                    let mut kgaps = KGapSurge::new(query, k);
                    let s = run_topk(&mut kgaps, dataset, windows, fast, cfg.seed);
                    out.push(TopKPoint {
                        dataset: dataset.to_string(),
                        param: format!("k={k}"),
                        algo: "kGAPS",
                        time_per_object_us: topk_time(&s),
                    });
                    let mut kmgaps = KMgapSurge::new(query, k);
                    let s = run_topk(&mut kmgaps, dataset, windows, fast, cfg.seed);
                    out.push(TopKPoint {
                        dataset: dataset.to_string(),
                        param: format!("k={k}"),
                        algo: "kMGAPS",
                        time_per_object_us: topk_time(&s),
                    });
                }
            }
        }
        _ => {
            let k = 3;
            for &dataset in datasets {
                for (label, windows) in window_sweep(dataset) {
                    let query = query_for(dataset, windows, 1.0, DEFAULT_ALPHA);
                    let heavy =
                        objects_for(dataset, windows, cfg.heavy_objects, cfg.max_heavy_objects);
                    let fast = objects_for(dataset, windows, cfg.objects, cfg.max_objects);
                    let mut kccs = KCellCspot::new(query, k);
                    let s = run_topk(&mut kccs, dataset, windows, heavy, cfg.seed);
                    out.push(TopKPoint {
                        dataset: dataset.to_string(),
                        param: label.clone(),
                        algo: "kCCS",
                        time_per_object_us: topk_time(&s),
                    });
                    let mut kgaps = KGapSurge::new(query, k);
                    let s = run_topk(&mut kgaps, dataset, windows, fast, cfg.seed);
                    out.push(TopKPoint {
                        dataset: dataset.to_string(),
                        param: label.clone(),
                        algo: "kGAPS",
                        time_per_object_us: topk_time(&s),
                    });
                    let mut kmgaps = KMgapSurge::new(query, k);
                    let s = run_topk(&mut kmgaps, dataset, windows, fast, cfg.seed);
                    out.push(TopKPoint {
                        dataset: dataset.to_string(),
                        param: label.clone(),
                        algo: "kMGAPS",
                        time_per_object_us: topk_time(&s),
                    });
                    // The paper runs the Naive strawman only on US with a
                    // small window; mirror that (first window value only).
                    if dataset == Dataset::Us && label == "0.5h" {
                        let mut naive = NaiveTopK::new(query, k);
                        let s = run_topk(&mut naive, dataset, windows, cfg.naive_objects, cfg.seed);
                        out.push(TopKPoint {
                            dataset: dataset.to_string(),
                            param: label.clone(),
                            algo: "Naive",
                            time_per_object_us: topk_time(&s),
                        });
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Case study (§VII-G / Appendix L)
// ---------------------------------------------------------------------------

/// Outcome of the burst-localization case study.
#[derive(Debug, Clone)]
pub struct CaseStudyResult {
    /// Injected burst center.
    pub burst_center: (f64, f64),
    /// Burst activity interval (ms).
    pub burst_interval: (u64, u64),
    /// Fraction of during-burst checkpoints where the detected region's
    /// center lies within 4σ of the burst center.
    pub hit_rate_during: f64,
    /// Fraction of pre-burst checkpoints where it (spuriously) does.
    pub hit_rate_before: f64,
    /// Number of checkpoints inspected during the burst.
    pub checkpoints_during: usize,
}

/// The case study: injects a localized demand spike into the Taxi stream and
/// verifies CCS localizes it — the analogue of the paper's "concert" and
/// "parade" detections on real tweets.
pub fn case_study(cfg: &ExpConfig) -> CaseStudyResult {
    let dataset = Dataset::Taxi;
    let windows = dataset.spec().default_windows;
    let query = query_for(dataset, windows, 1.0, 0.8); // burst-focused α
    let objects = cfg.objects.max(10_000);
    // Place the burst at a quiet spot, active through the middle of the
    // stream's timespan.
    let rate = dataset.spec().rate_per_hour;
    let span_ms = (objects as f64 / rate * 3.6e6) as u64;
    let burst = BurstSpec {
        center: surge_core::Point::new(12.70, 42.05),
        sigma: 0.002,
        start: span_ms / 2,
        duration: (windows.current_len * 4).min(span_ms / 4).max(1),
        intensity: 0.7,
    };
    let workload = dataset.workload(objects, cfg.seed).with_burst(burst);
    let stream = StreamGenerator::new(workload).generate();

    let mut ccs = CellCspot::new(query);
    let mut engine = SlidingWindowEngine::new(windows);
    let mut during_hits = 0usize;
    let mut during_total = 0usize;
    let mut before_hits = 0usize;
    let mut before_total = 0usize;
    for (i, obj) in stream.into_iter().enumerate() {
        let t = obj.created;
        for ev in engine.push(obj) {
            ccs.on_event(&ev);
        }
        if i % 20 != 0 {
            continue;
        }
        let Some(ans) = ccs.current() else { continue };
        // The burst spreads over ~4σ, wider than the tiny query region, so
        // "localized" means the detected region sits inside the burst zone
        // (its center within 4σ of the injected center), not that it covers
        // the exact center point.
        let c = ans.region.center();
        let dist2 = (c.x - burst.center.x).powi(2) + (c.y - burst.center.y).powi(2);
        let hit = dist2 <= (4.0 * burst.sigma).powi(2);
        // Give the windows one window-length to fill with burst traffic.
        if t >= burst.start + windows.current_len / 2
            && t < burst.start + burst.duration + windows.current_len / 2
        {
            during_total += 1;
            during_hits += hit as usize;
        } else if t < burst.start {
            before_total += 1;
            before_hits += hit as usize;
        }
    }
    CaseStudyResult {
        burst_center: (burst.center.x, burst.center.y),
        burst_interval: (burst.start, burst.start + burst.duration),
        hit_rate_during: during_hits as f64 / during_total.max(1) as f64,
        hit_rate_before: before_hits as f64 / before_total.max(1) as f64,
        checkpoints_during: during_total,
    }
}

// ---------------------------------------------------------------------------
// Latency-tail table (extension: the paper reports means only)
// ---------------------------------------------------------------------------

/// One row of the tail-latency table.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Algorithm name.
    pub algo: &'static str,
    /// Per-event latency percentiles.
    pub summary: surge_stream::LatencySummary,
    /// Final burst score (sanity: exact rows must agree).
    pub final_score: f64,
}

/// Runs every single-region algorithm over one stream via the parallel
/// fan-out driver and reports per-event latency percentiles.
///
/// The paper's figures show means; the tail is where the exact detector's
/// bimodal cost (bound update vs full cell sweep) becomes visible.
pub fn latency_table(dataset: Dataset, cfg: &ExpConfig) -> Vec<LatencyRow> {
    let windows = dataset.spec().default_windows;
    let query = query_for(dataset, windows, 1.0, DEFAULT_ALPHA);
    let objects = objects_for(dataset, windows, cfg.heavy_objects, cfg.max_heavy_objects);
    let stream = stream_for(dataset, objects, cfg.seed);
    let detectors: Vec<Box<dyn BurstDetector + Send>> = vec![
        Box::new(CellCspot::with_sweep_mode(
            query,
            BoundMode::Combined,
            cfg.sweep_mode,
            DEFAULT_SHARDS,
        )),
        Box::new(CellCspot::with_sweep_mode(
            query,
            BoundMode::StaticOnly,
            cfg.sweep_mode,
            DEFAULT_SHARDS,
        )),
        Box::new(BaseDetector::new(query)),
        Box::new(Ag2::new(query)),
        Box::new(GapSurge::new(query)),
        Box::new(MgapSurge::new(query)),
    ];
    surge_stream::drive_parallel(detectors, windows, stream.into_iter())
        .into_iter()
        .map(|r| LatencyRow {
            algo: r.name,
            summary: r.latency_summary(),
            final_score: r.final_answer.map(|a| a.score).unwrap_or(0.0),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Road-network extension experiment
// ---------------------------------------------------------------------------

/// One row of the road-network segment-length sweep.
#[derive(Debug, Clone)]
pub struct RoadnetRow {
    /// Segment length `L` (meters of road per candidate region).
    pub segment_len: f64,
    /// Number of candidate segments induced on the network.
    pub segments: u32,
    /// Mean processing time per object, microseconds.
    pub time_per_object_us: f64,
    /// Fraction of in-burst checkpoints where the detected segment midpoint
    /// lies within 150 m of the injected rush center.
    pub hit_rate: f64,
}

/// The road-network experiment: a jittered grid city, a rush injected on one
/// street, and `NetGapSurge` swept over segment lengths. Finer segments cost
/// more bookkeeping but localize more sharply — until they fragment the rush
/// across segments and the score (and hit rate) drops.
pub fn roadnet_sweep(cfg: &ExpConfig) -> Vec<RoadnetRow> {
    use surge_roadnet::{grid_city, GridCityConfig, NetGapSurge};

    let city = grid_city(&GridCityConfig {
        nx: 12,
        ny: 12,
        spacing: 100.0,
        jitter: 0.1,
        drop_fraction: 0.1,
        seed: cfg.seed,
    });
    let windows = WindowConfig::equal(30_000);
    let params = surge_core::BurstParams::new(DEFAULT_ALPHA, windows);
    let rush = surge_core::Point::new(600.0, 500.0);
    let n = cfg.objects.clamp(2_000, 200_000);

    // Deterministic stream: uniform background, rush in the middle third.
    let span: u64 = 300_000;
    let step = span / n as u64;
    let stream: Vec<SpatialObject> = (0..n as u64)
        .map(|i| {
            let t = i * step.max(1);
            let rushing = (span / 3..2 * span / 3).contains(&t) && i % 2 == 0;
            let pos = if rushing {
                surge_core::Point::new(
                    rush.x + ((i * 29) % 60) as f64 - 30.0,
                    rush.y + ((i * 13) % 14) as f64 - 7.0,
                )
            } else {
                surge_core::Point::new(((i * 547) % 1_100) as f64, ((i * 389) % 1_100) as f64)
            };
            SpatialObject::new(i, 1.0 + (i % 4) as f64, pos, t)
        })
        .collect();

    [25.0f64, 50.0, 100.0, 200.0]
        .iter()
        .map(|&seg_len| {
            let mut det = NetGapSurge::new(city.clone(), seg_len, params, 80.0);
            let segments = det.segmentation().segment_count();
            let mut engine = SlidingWindowEngine::new(windows);
            let mut hits = 0usize;
            let mut total = 0usize;
            let t0 = std::time::Instant::now();
            for obj in stream.iter().copied() {
                let t = obj.created;
                for ev in engine.push(obj) {
                    det.on_event(&ev);
                }
                if (span / 3 + windows.current_len..2 * span / 3).contains(&t) && total < 500 {
                    if let Some(a) = det.current() {
                        total += 1;
                        let d2 = (a.midpoint.x - rush.x).powi(2) + (a.midpoint.y - rush.y).powi(2);
                        hits += (d2 < 150.0f64.powi(2)) as usize;
                    }
                }
            }
            let elapsed = t0.elapsed();
            RoadnetRow {
                segment_len: seg_len,
                segments,
                time_per_object_us: elapsed.as_secs_f64() * 1e6 / n as f64,
                hit_rate: hits as f64 / total.max(1) as f64,
            }
        })
        .collect()
}

/// One row of the sweep micro-benchmark: naive vs segment-tree SL-CSPOT on
/// identical scenes of `n` rectangles, plus the flat-vs-recursive segment
/// tree comparison at the same `n`.
#[derive(Debug, Clone, Copy)]
pub struct SweepBenchRow {
    /// Rectangles per scene (and leaves per tree in the tree columns).
    pub n: usize,
    /// Mean microseconds per naive `O(n²)` sweep.
    pub naive_us: f64,
    /// Mean microseconds per segment-tree `O(n log n)` sweep.
    pub segtree_us: f64,
    /// `naive_us / segtree_us`.
    pub speedup: f64,
    /// Mean microseconds per flat-tree interval-add workload.
    pub tree_flat_us: f64,
    /// Mean microseconds for the same workload on the recursive baseline.
    pub tree_recursive_us: f64,
    /// `tree_recursive_us / tree_flat_us`.
    pub tree_speedup: f64,
    /// Mean microseconds per fused SoA-lane burst-tree workload
    /// (clear + sync + 3n applies with a `top()` each).
    pub burst_fused_us: f64,
    /// Mean microseconds for the same workload on the split two-tree
    /// layout.
    pub burst_split_us: f64,
    /// `burst_split_us / burst_fused_us`.
    pub burst_speedup: f64,
}

/// Times one deterministic interval-add workload (3n adds + a `top()` each)
/// on the flat iterative tree vs the retained recursive baseline at `n`
/// leaves, cross-checking results every round.
fn tree_bench(n: usize, seed: u64, reps: usize) -> (f64, f64) {
    use surge_exact::{MaxAddTree, RecursiveMaxAddTree};

    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let ops: Vec<(usize, usize, f64)> = (0..3 * n)
        .map(|_| {
            let a = next() as usize % n;
            let b = next() as usize % n;
            let v = (next() % 41) as f64 - 20.0;
            (a.min(b), a.max(b), v)
        })
        .collect();

    let mut t_flat = std::time::Duration::ZERO;
    let mut t_rec = std::time::Duration::ZERO;
    let mut acc_flat = 0.0f64;
    let mut acc_rec = 0.0f64;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let mut flat = MaxAddTree::new(n);
        for &(l, r, v) in &ops {
            flat.add(l, r, v);
            acc_flat += flat.top().0;
        }
        t_flat += t0.elapsed();
        let t0 = std::time::Instant::now();
        let mut rec = RecursiveMaxAddTree::new(n);
        for &(l, r, v) in &ops {
            rec.add(l, r, v);
            acc_rec += rec.top().0;
        }
        t_rec += t0.elapsed();
    }
    assert!(
        acc_flat.to_bits() == acc_rec.to_bits(),
        "tree mismatch at n={n}: {acc_flat} vs {acc_rec}"
    );
    (
        t_flat.as_secs_f64() * 1e6 / reps as f64,
        t_rec.as_secs_f64() * 1e6 / reps as f64,
    )
}

/// Times the persistent sweep's burst-tree workload — `clear_values` +
/// `sync_len` then `3n` signed burst applies with a `top()` each — on the
/// fused SoA-lane tree vs the split two-tree layout, cross-checking the
/// accumulated maxima bit for bit every round.
fn burst_bench(n: usize, seed: u64, reps: usize) -> (f64, f64) {
    use surge_core::{BurstParams, WindowKind};
    use surge_exact::{BurstSegTree, SplitBurstSegTree};

    let params = BurstParams {
        alpha: DEFAULT_ALPHA,
        current_norm: 1.0,
        past_norm: 1.0,
    };
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let ops: Vec<(usize, usize, f64, WindowKind, f64)> = (0..3 * n)
        .map(|i| {
            let a = next() as usize % n;
            let b = next() as usize % n;
            let w = 1.0 + (next() % 7) as f64;
            let kind = if next() % 3 == 0 {
                WindowKind::Past
            } else {
                WindowKind::Current
            };
            // Every third op retracts (the persistent sweep's remove path).
            let sign = if i % 3 == 2 { -1.0 } else { 1.0 };
            (a.min(b), a.max(b), w, kind, sign)
        })
        .collect();

    let mut fused = BurstSegTree::new(n, &params);
    let mut split = SplitBurstSegTree::new(n, &params);
    let mut t_fused = std::time::Duration::ZERO;
    let mut t_split = std::time::Duration::ZERO;
    let mut acc_fused = 0.0f64;
    let mut acc_split = 0.0f64;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        fused.clear_values();
        fused.sync_len(n, &params);
        for &(l, r, w, kind, sign) in &ops {
            fused.apply(l, r, w, kind, sign);
            acc_fused += fused.top().0;
        }
        t_fused += t0.elapsed();
        let t0 = std::time::Instant::now();
        split.clear_values();
        split.sync_len(n, &params);
        for &(l, r, w, kind, sign) in &ops {
            split.apply(l, r, w, kind, sign);
            acc_split += split.top().0;
        }
        t_split += t0.elapsed();
    }
    assert!(
        acc_fused.to_bits() == acc_split.to_bits(),
        "burst-tree mismatch at n={n}: {acc_fused} vs {acc_split}"
    );
    (
        t_fused.as_secs_f64() * 1e6 / reps as f64,
        t_split.as_secs_f64() * 1e6 / reps as f64,
    )
}

/// Times [`surge_exact::sl_cspot`] (segment tree) against
/// [`surge_exact::sl_cspot_naive`] on identical deterministic scenes at
/// n ∈ {64, 256, 1024, 4096} — the comparison behind the PR-1 `≥ 5×` at
/// n = 4096 acceptance bar — and the flat vs recursive tree workload at the
/// same sizes. Scores are cross-checked every round so a regression in
/// either implementation fails loudly rather than benching garbage.
pub fn sweep_bench(cfg: &ExpConfig) -> Vec<SweepBenchRow> {
    use surge_core::{BurstParams, Rect, WindowKind};
    use surge_exact::{sl_cspot, sl_cspot_naive, SweepRect};

    let params = BurstParams {
        alpha: DEFAULT_ALPHA,
        current_norm: 1.0,
        past_norm: 1.0,
    };
    let area = Rect::new(0.0, 0.0, 50.0, 50.0);
    let make_rects = |n: usize, seed: u64| -> Vec<SweepRect> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64)
        };
        (0..n)
            .map(|i| {
                let x0 = next() * 10.0;
                let y0 = next() * 10.0;
                SweepRect {
                    rect: Rect::new(x0, y0, x0 + 1.0, y0 + 1.0),
                    weight: 1.0 + next(),
                    kind: if i % 3 == 0 {
                        WindowKind::Past
                    } else {
                        WindowKind::Current
                    },
                }
            })
            .collect()
    };

    [64usize, 256, 1024, 4096]
        .iter()
        .map(|&n| {
            let rects = make_rects(n, cfg.seed);
            // The quadratic sweep dominates the budget; scale repetitions so
            // small n still averages over noise without making n=4096 crawl.
            let reps = (16_384 / n).max(1);
            let mut t_seg = std::time::Duration::ZERO;
            let mut t_naive = std::time::Duration::ZERO;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                let fast = sl_cspot(&rects, &area, &params);
                t_seg += t0.elapsed();
                let t0 = std::time::Instant::now();
                let naive = sl_cspot_naive(&rects, &area, &params);
                t_naive += t0.elapsed();
                let (f, g) = (fast.unwrap(), naive.unwrap());
                assert!(
                    (f.score - g.score).abs() <= 1e-9 * g.score.abs().max(1.0),
                    "sweep mismatch at n={n}: {} vs {}",
                    f.score,
                    g.score
                );
            }
            let naive_us = t_naive.as_secs_f64() * 1e6 / reps as f64;
            let segtree_us = t_seg.as_secs_f64() * 1e6 / reps as f64;
            let (tree_flat_us, tree_recursive_us) = tree_bench(n, cfg.seed, reps.min(64));
            let (burst_fused_us, burst_split_us) = burst_bench(n, cfg.seed, reps.min(64));
            SweepBenchRow {
                n,
                naive_us,
                segtree_us,
                speedup: naive_us / segtree_us,
                tree_flat_us,
                tree_recursive_us,
                tree_speedup: tree_recursive_us / tree_flat_us,
                burst_fused_us,
                burst_split_us,
                burst_speedup: burst_split_us / burst_fused_us,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Persistent vs rebuild cell sweeps
// ---------------------------------------------------------------------------

/// One row of the persistent-vs-rebuild cell-sweep experiment: the same
/// incremental workload driven through a `CellCspot` whose per-cell sweeps
/// either reuse persistent cross-sweep state or rebuild from the rectangle
/// set on every search.
#[derive(Debug, Clone, Copy)]
pub struct PersistentBenchRow {
    /// Workload label (`"uniform"` or `"taxi"`).
    pub workload: &'static str,
    /// `"persistent"` or `"rebuild"`.
    pub mode: &'static str,
    /// Objects driven through the pipeline.
    pub objects: u64,
    /// Cell searches executed (identical across modes by construction).
    pub searches: u64,
    /// Incremental edits applied to persistent structures (0 in rebuild
    /// mode).
    pub churn_ops: u64,
    /// Evaluation positions written by full rebuilds — the
    /// hardware-independent work metric: rebuild mode pays this on *every*
    /// search, the persistent mode only on threshold crossings.
    pub rebuilt_leaves: u64,
    /// Full rebuilds executed.
    pub full_rebuilds: u64,
    /// Searches answered from the epoch-keyed result cache (0 in rebuild
    /// mode; 0 on exactly-once streams, where every window event mutates a
    /// touched cell's clip set).
    pub epoch_hits: u64,
    /// Searches that replayed a retained kinetic y-order plan instead of
    /// re-deriving it (0 in rebuild mode).
    pub plan_reuses: u64,
    /// Wall-clock milliseconds for the run (informative only on a 1-CPU
    /// container).
    pub elapsed_ms: f64,
    /// Rebuild-mode elapsed / this row's elapsed.
    pub speedup: f64,
}

/// Runs the persistent-vs-rebuild comparison on the incremental workloads
/// (`surge_exp sweep-bench` → the `persistent` section of
/// `BENCH_sweep.json`), asserting per-slide **bit-identity** between the
/// two modes before reporting any numbers — benchmarks must not time a
/// divergent pipeline.
pub fn persistent_bench(cfg: &ExpConfig) -> Vec<PersistentBenchRow> {
    use surge_stream::drive_incremental;

    // Tighter cadence than the throughput benches: continuous monitoring
    // sweeps after every few arrivals, which is the regime cross-sweep
    // persistence targets (fewer mutations per inter-sweep window, so
    // kinetic plans and incremental structures amortize across searches).
    let slide = 32;
    let taxi_windows = Dataset::Taxi.spec().default_windows;
    let taxi_objects = objects_for(Dataset::Taxi, taxi_windows, cfg.objects, cfg.max_objects);
    let uniform_windows = WindowConfig::equal(60_000);
    let workloads: [(&'static str, WindowConfig, SurgeQuery, Vec<SpatialObject>); 2] = [
        (
            "uniform",
            uniform_windows,
            SurgeQuery::whole_space(RegionSize::new(0.3, 0.3), uniform_windows, DEFAULT_ALPHA),
            uniform_stream(cfg.objects.clamp(4_000, 200_000), cfg.seed),
        ),
        (
            "taxi",
            taxi_windows,
            query_for(Dataset::Taxi, taxi_windows, 1.0, DEFAULT_ALPHA),
            stream_for(Dataset::Taxi, taxi_objects, cfg.seed),
        ),
    ];

    let mut rows = Vec::new();
    for (workload, windows, query, stream) in workloads {
        let mut reports = Vec::new();
        for (mode, sweep_mode) in [
            ("rebuild", SweepMode::Rebuild),
            ("persistent", SweepMode::Persistent),
        ] {
            // Best of five: single runs on a shared 1-CPU container are
            // ±10% noisy, more than the effect under measurement.
            let mut best: Option<(_, std::time::Duration, _)> = None;
            for _ in 0..5 {
                let mut det = CellCspot::with_sweep_mode(query, BoundMode::Combined, sweep_mode, 1);
                let t0 = std::time::Instant::now();
                let report = drive_incremental(&mut det, windows, stream.iter().copied(), slide, 1);
                let elapsed = t0.elapsed();
                if best.as_ref().is_none_or(|(_, b, _)| elapsed < *b) {
                    best = Some((report, elapsed, det.sweep_stats()));
                }
            }
            let (report, elapsed, stats) = best.expect("three runs");
            reports.push((mode, report, elapsed, stats));
        }
        let (rebuild_report, rebuild_elapsed) = (&reports[0].1, reports[0].2);

        // Bit-identity gate: every slide answer must match across modes.
        let persistent_report = &reports[1].1;
        assert_eq!(
            persistent_report.answers.len(),
            rebuild_report.answers.len()
        );
        for (i, (a, b)) in persistent_report
            .answers
            .iter()
            .zip(rebuild_report.answers.iter())
            .enumerate()
        {
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "persistent-bench divergence at {workload}, slide {i}"
                ),
                (None, None) => {}
                other => panic!("persistent-bench divergence at {workload}, slide {i}: {other:?}"),
            }
        }
        assert_eq!(persistent_report.jobs, rebuild_report.jobs);

        for (mode, report, elapsed, sweep) in &reports {
            rows.push(PersistentBenchRow {
                workload,
                mode,
                objects: report.objects,
                searches: sweep.searches,
                churn_ops: sweep.churn_ops,
                rebuilt_leaves: sweep.rebuilt_leaves,
                full_rebuilds: sweep.full_rebuilds,
                epoch_hits: sweep.epoch_hits,
                plan_reuses: sweep.plan_reuses,
                elapsed_ms: elapsed.as_secs_f64() * 1e3,
                speedup: rebuild_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            });
        }
    }
    rows.extend(redelivery_bench(cfg, slide));
    rows
}

/// The at-least-once workload the epoch cache exists for: after every sweep
/// the batch just processed is redelivered in full (a crash/retry replay)
/// and the detector swept again. The pending-delta journal cancels each
/// duplicate back to the anchored epoch, so persistent mode answers the
/// replay sweeps from the cell result cache while rebuild mode re-sweeps —
/// with per-sweep bit-identity asserted across the modes throughout.
fn redelivery_bench(cfg: &ExpConfig, slide: usize) -> Vec<PersistentBenchRow> {
    use surge_core::{Event, IncrementalDetector, RegionAnswer};
    use surge_stream::EventBatch;

    let windows = WindowConfig::equal(60_000);
    let query = SurgeQuery::whole_space(RegionSize::new(0.3, 0.3), windows, DEFAULT_ALPHA);
    let stream = uniform_stream(cfg.objects.clamp(4_000, 50_000), cfg.seed);

    let drive = |sweep_mode: SweepMode| {
        let mut det = CellCspot::with_sweep_mode(query, BoundMode::Combined, sweep_mode, 1);
        let mut engine = SlidingWindowEngine::new(windows);
        let mut batch = EventBatch::new();
        let mut window: Vec<Event> = Vec::new();
        let mut answers: Vec<Option<RegionAnswer>> = Vec::new();
        let t0 = std::time::Instant::now();
        for (i, obj) in stream.iter().copied().enumerate() {
            engine.push_into(obj, &mut batch);
            for ev in batch.as_slice() {
                window.push(*ev);
                det.on_event(ev);
            }
            batch.clear();
            if (i + 1) % slide == 0 {
                det.sweep_dirty(1);
                answers.push(det.current());
                for ev in &window {
                    det.on_event(ev);
                }
                det.sweep_dirty(1);
                answers.push(det.current());
                window.clear();
            }
        }
        let elapsed = t0.elapsed();
        (answers, elapsed, det.sweep_stats())
    };

    // Best of three, for the same reason the main workloads take the best of
    // five: container noise exceeds the effect size.
    let drive_best = |sweep_mode: SweepMode| {
        let mut best = drive(sweep_mode);
        for _ in 0..2 {
            let run = drive(sweep_mode);
            if run.1 < best.1 {
                best = run;
            }
        }
        best
    };
    let (rebuild_answers, rebuild_elapsed, rebuild_sweep) = drive_best(SweepMode::Rebuild);
    let (persistent_answers, persistent_elapsed, persistent_sweep) =
        drive_best(SweepMode::Persistent);

    // Bit-identity gate: live and replay sweeps alike must agree.
    assert_eq!(persistent_answers.len(), rebuild_answers.len());
    for (i, (a, b)) in persistent_answers
        .iter()
        .zip(rebuild_answers.iter())
        .enumerate()
    {
        match (a, b) {
            (Some(x), Some(y)) => assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "redelivery-bench divergence at sweep {i}"
            ),
            (None, None) => {}
            other => panic!("redelivery-bench divergence at sweep {i}: {other:?}"),
        }
    }
    assert!(
        persistent_sweep.epoch_hits > 0,
        "replayed batches must hit the epoch cache"
    );

    let objects = stream.len() as u64;
    [
        ("rebuild", rebuild_elapsed, rebuild_sweep),
        ("persistent", persistent_elapsed, persistent_sweep),
    ]
    .into_iter()
    .map(|(mode, elapsed, sweep)| PersistentBenchRow {
        workload: "redeliver",
        mode,
        objects,
        searches: sweep.searches,
        churn_ops: sweep.churn_ops,
        rebuilt_leaves: sweep.rebuilt_leaves,
        full_rebuilds: sweep.full_rebuilds,
        epoch_hits: sweep.epoch_hits,
        plan_reuses: sweep.plan_reuses,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        speedup: rebuild_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Shard-scaling experiment
// ---------------------------------------------------------------------------

/// One row of the shard-scaling experiment.
#[derive(Debug, Clone, Copy)]
pub struct ShardBenchRow {
    /// Workload label: `"uniform"` (evenly loaded cells — the scaling case)
    /// or `"taxi"` (hot-spot skew — the single-hot-cell ceiling).
    pub workload: &'static str,
    /// Shard (and worker-thread) count; 0 marks the sequential
    /// `drive_incremental` baseline row.
    pub shards: usize,
    /// Objects driven through the pipeline.
    pub objects: u64,
    /// Window-transition events processed.
    pub events: u64,
    /// Dirty-cell sweeps across the whole run.
    pub sweeps: u64,
    /// Wall-clock milliseconds for the run.
    pub elapsed_ms: f64,
    /// Throughput in objects per second.
    pub objects_per_sec: f64,
    /// Baseline elapsed / this row's elapsed. On a single-core host this
    /// hovers near 1 (modulo the arena win of in-place shard sweeps over
    /// job snapshotting); `max_shard_sweeps` is the hardware-independent
    /// scaling signal.
    pub speedup: f64,
    /// Largest per-shard sweep count — the sweep critical path. Scaling
    /// shows up as this dropping toward `sweeps / shards` while total
    /// `sweeps` stays constant.
    pub max_shard_sweeps: u64,
}

/// An evenly-loaded stream: pseudo-random positions over a wide area so the
/// resident rectangles spread across hundreds of similarly-sized cells —
/// the workload where shard scaling is visible. (Hot-spot workloads like
/// Taxi concentrate most sweep time in a few cells; a *single* cell's sweep
/// is serial by design, which caps shard scaling — the bench reports both.)
/// The canonical generator lives in `surge-testkit` so the soak and
/// differential tests exercise byte-for-byte the same streams the
/// `BENCH_*.json` numbers report.
fn uniform_stream(objects: usize, seed: u64) -> Vec<SpatialObject> {
    surge_testkit::uniform_stream(objects, seed)
}

/// Runs the sharded driver at shard counts {1, 2, 4, 8} against the
/// sequential incremental driver, asserting per-slide answers are
/// **bit-identical** across every configuration before reporting timings
/// (`surge_exp shard-bench` → `BENCH_shard.json`). Two workloads: a
/// uniform stream (even per-cell load — the scaling case) and the Taxi
/// stream (hot-spot skew — the single-hot-cell ceiling).
pub fn shard_bench(cfg: &ExpConfig) -> Vec<ShardBenchRow> {
    use surge_exact::{BoundMode, CellCspot};
    use surge_stream::{drive_incremental, drive_sharded};

    let slide = 256;
    let mut rows = Vec::new();

    let taxi_windows = Dataset::Taxi.spec().default_windows;
    let taxi_objects = objects_for(Dataset::Taxi, taxi_windows, cfg.objects, cfg.max_objects);
    let uniform_windows = WindowConfig::equal(60_000);
    let workloads: [(&'static str, WindowConfig, SurgeQuery, Vec<SpatialObject>); 2] = [
        (
            "uniform",
            uniform_windows,
            SurgeQuery::whole_space(RegionSize::new(0.3, 0.3), uniform_windows, DEFAULT_ALPHA),
            uniform_stream(cfg.objects.clamp(4_000, 200_000), cfg.seed),
        ),
        (
            "taxi",
            taxi_windows,
            query_for(Dataset::Taxi, taxi_windows, 1.0, DEFAULT_ALPHA),
            stream_for(Dataset::Taxi, taxi_objects, cfg.seed),
        ),
    ];

    for (workload, windows, query, stream) in workloads {
        // Sequential baseline: unsharded detector, single-threaded driver.
        let mut seq = CellCspot::with_shards(query, BoundMode::Combined, 1);
        let t0 = std::time::Instant::now();
        let seq_report = drive_incremental(&mut seq, windows, stream.iter().copied(), slide, 1);
        let seq_elapsed = t0.elapsed();

        rows.push(ShardBenchRow {
            workload,
            shards: 0,
            objects: seq_report.objects,
            events: seq_report.events,
            sweeps: seq_report.jobs,
            elapsed_ms: seq_elapsed.as_secs_f64() * 1e3,
            objects_per_sec: seq_report.objects as f64 / seq_elapsed.as_secs_f64().max(1e-9),
            speedup: 1.0,
            max_shard_sweeps: seq_report.jobs,
        });

        for shards in [1usize, 2, 4, 8] {
            let mut det = CellCspot::with_shards(query, BoundMode::Combined, shards);
            let t0 = std::time::Instant::now();
            let report = drive_sharded(&mut det, windows, stream.iter().copied(), slide);
            let elapsed = t0.elapsed();

            // Benchmarks must not time a divergent pipeline: every slide
            // answer must be bit-identical to the sequential baseline.
            assert_eq!(report.answers.len(), seq_report.answers.len());
            for (i, (a, b)) in report
                .answers
                .iter()
                .zip(seq_report.answers.iter())
                .enumerate()
            {
                match (a, b) {
                    (Some(x), Some(y)) => assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "shard-bench divergence at {workload}, shards={shards}, slide {i}"
                    ),
                    (None, None) => {}
                    other => panic!(
                        "shard-bench divergence at {workload}, shards={shards}, slide {i}: {other:?}"
                    ),
                }
            }
            assert_eq!(report.sweeps, seq_report.jobs, "sweep count diverged");

            rows.push(ShardBenchRow {
                workload,
                shards,
                objects: report.objects,
                events: report.events,
                sweeps: report.sweeps,
                elapsed_ms: elapsed.as_secs_f64() * 1e3,
                objects_per_sec: report.objects as f64 / elapsed.as_secs_f64().max(1e-9),
                speedup: seq_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
                max_shard_sweeps: report
                    .shard_stats
                    .iter()
                    .map(|s| s.sweeps)
                    .max()
                    .unwrap_or(0),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Elastic-mesh experiment
// ---------------------------------------------------------------------------

/// One row of the elastic-mesh experiment.
#[derive(Debug, Clone, Copy)]
pub struct ElasticBenchRow {
    /// Workload label: `"hotspot"` (every object homed to cells owned by
    /// one width-2 shard — worst-case skew) or `"uniform"` (evenly spread
    /// load — the no-regression case).
    pub workload: &'static str,
    /// Mesh mode: `"seq"` (unsharded `drive_incremental` baseline),
    /// `"static"` (`drive_sharded`, fixed ownership) or `"elastic"`
    /// (`drive_elastic`: work-stealing + balancer-driven resharding).
    pub mode: &'static str,
    /// Shard count at the start of the run (0 for the sequential row).
    pub shards: usize,
    /// Shard count at the end of the run (differs from `shards` only when
    /// the elastic balancer split the mesh).
    pub final_shards: usize,
    /// Objects driven through the pipeline.
    pub objects: u64,
    /// Window-transition events processed.
    pub events: u64,
    /// Dirty-cell sweeps across the whole run — invariant across modes
    /// (a stolen sweep is counted by the thief, installation is free).
    pub sweeps: u64,
    /// Sweeps executed away from their owning shard (0 outside elastic).
    pub stolen: u64,
    /// Mesh-doubling events the balancer triggered (0 outside elastic).
    pub reshards: u64,
    /// Largest per-shard sweep count — the sweep critical path. The
    /// acceptance bar: elastic must at least halve this versus the static
    /// mesh on the hotspot workload.
    pub max_shard_sweeps: u64,
    /// Wall-clock milliseconds for the run.
    pub elapsed_ms: f64,
    /// Throughput in objects per second.
    pub objects_per_sec: f64,
    /// Baseline elapsed / this row's elapsed (wall-clock is meaningful
    /// only on multi-core hosts; `max_shard_sweeps` is the scaling signal).
    pub speedup: f64,
}

/// Worst-case skew for a width-2 mesh: every object is homed to one of 12
/// cells that `shard_of_cell` hashes to shard 0, so the static mesh's
/// second worker never sweeps. Same construction as the
/// `elastic_differential.rs` streams, scaled up.
fn hotspot_stream(objects: usize, seed: u64) -> Vec<SpatialObject> {
    let hot: Vec<(i64, i64)> = (0..40i64)
        .flat_map(|i| (0..40i64).map(move |j| (i, j)))
        .filter(|&(i, j)| surge_core::shard_of_cell((i, j), 2) == 0)
        .take(12)
        .collect();
    let mut lcg = surge_testkit::Lcg::new(seed);
    (0..objects)
        .map(|i| {
            let (cx, cy) = hot[(lcg.next_bits() as usize) % hot.len()];
            SpatialObject::new(
                i as u64,
                1.0 + (i % 5) as f64 * 0.5,
                surge_core::Point::new(
                    cx as f64 + 0.1 + lcg.unit() * 0.8,
                    cy as f64 + 0.1 + lcg.unit() * 0.8,
                ),
                i as u64,
            )
        })
        .collect()
}

/// Asserts two per-slide answer streams are bit-identical.
fn assert_slides_bitwise(
    got: &[Option<surge_core::RegionAnswer>],
    want: &[Option<surge_core::RegionAnswer>],
    ctx: &str,
) {
    assert_eq!(got.len(), want.len(), "{ctx}: flush counts diverged");
    for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "{ctx}: divergence at slide {i}"
                );
                assert_eq!(x.point.x.to_bits(), y.point.x.to_bits(), "{ctx}: slide {i}");
                assert_eq!(x.point.y.to_bits(), y.point.y.to_bits(), "{ctx}: slide {i}");
            }
            (None, None) => {}
            other => panic!("{ctx}: divergence at slide {i}: {other:?}"),
        }
    }
}

/// Runs the elastic mesh against the static sharded driver and the
/// sequential baseline on a worst-case-skew hotspot stream and a uniform
/// stream, asserting per-slide answers are **bit-identical** across every
/// configuration *and* that steal+split at least halve the sweep critical
/// path (`max_shard_sweeps`) on the hotspot workload, before reporting
/// timings (`surge_exp elastic-bench` → `BENCH_elastic.json`).
pub fn elastic_bench(cfg: &ExpConfig) -> Vec<ElasticBenchRow> {
    use surge_exact::{BoundMode, CellCspot};
    use surge_stream::{drive_elastic, drive_incremental, drive_sharded, BalancerPolicy};

    let slide = 256;
    let shards = 2;
    let policy = BalancerPolicy {
        skew_percent: 25,
        patience: 2,
        max_shards: 8,
        min_load: 4,
    };
    let mut rows = Vec::new();

    let hot_windows = WindowConfig::equal(4_000);
    let uniform_windows = WindowConfig::equal(60_000);
    let workloads: [(&'static str, WindowConfig, SurgeQuery, Vec<SpatialObject>); 2] = [
        (
            "hotspot",
            hot_windows,
            SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), hot_windows, DEFAULT_ALPHA),
            hotspot_stream(cfg.objects.clamp(2_000, 50_000), cfg.seed),
        ),
        (
            "uniform",
            uniform_windows,
            SurgeQuery::whole_space(RegionSize::new(0.3, 0.3), uniform_windows, DEFAULT_ALPHA),
            uniform_stream(cfg.objects.clamp(2_000, 50_000), cfg.seed),
        ),
    ];

    for (workload, windows, query, stream) in workloads {
        // Sequential baseline: unsharded detector, single-threaded driver.
        let mut seq = CellCspot::with_shards(query, BoundMode::Combined, 1);
        let t0 = std::time::Instant::now();
        let seq_report = drive_incremental(&mut seq, windows, stream.iter().copied(), slide, 1);
        let seq_elapsed = t0.elapsed();
        rows.push(ElasticBenchRow {
            workload,
            mode: "seq",
            shards: 0,
            final_shards: 0,
            objects: seq_report.objects,
            events: seq_report.events,
            sweeps: seq_report.jobs,
            stolen: 0,
            reshards: 0,
            max_shard_sweeps: seq_report.jobs,
            elapsed_ms: seq_elapsed.as_secs_f64() * 1e3,
            objects_per_sec: seq_report.objects as f64 / seq_elapsed.as_secs_f64().max(1e-9),
            speedup: 1.0,
        });

        // Static mesh: fixed cell ownership, no stealing, no splitting.
        let mut det = CellCspot::with_shards(query, BoundMode::Combined, shards);
        let t0 = std::time::Instant::now();
        let static_report = drive_sharded(&mut det, windows, stream.iter().copied(), slide);
        let static_elapsed = t0.elapsed();
        assert_slides_bitwise(
            static_report.answers.retained(),
            seq_report.answers.retained(),
            &format!("elastic-bench {workload} static"),
        );
        let static_max = static_report
            .shard_stats
            .iter()
            .map(|s| s.sweeps)
            .max()
            .unwrap_or(0);
        rows.push(ElasticBenchRow {
            workload,
            mode: "static",
            shards,
            final_shards: shards,
            objects: static_report.objects,
            events: static_report.events,
            sweeps: static_report.sweeps,
            stolen: 0,
            reshards: 0,
            max_shard_sweeps: static_max,
            elapsed_ms: static_elapsed.as_secs_f64() * 1e3,
            objects_per_sec: static_report.objects as f64 / static_elapsed.as_secs_f64().max(1e-9),
            speedup: seq_elapsed.as_secs_f64() / static_elapsed.as_secs_f64().max(1e-9),
        });

        // Elastic mesh: same starting width, stealing + balancer splits.
        let mut det = CellCspot::with_shards(query, BoundMode::Combined, shards);
        let t0 = std::time::Instant::now();
        let elastic_report =
            drive_elastic(&mut det, windows, stream.iter().copied(), slide, policy);
        let elastic_elapsed = t0.elapsed();
        assert_slides_bitwise(
            elastic_report.answers.retained(),
            seq_report.answers.retained(),
            &format!("elastic-bench {workload} elastic"),
        );
        assert_eq!(
            elastic_report.sweeps, seq_report.jobs,
            "elastic-bench {workload}: sweep count diverged"
        );
        let elastic_max = elastic_report.max_shard_sweeps();
        if workload == "hotspot" {
            // The acceptance bar: steal+split must at least halve the
            // sweep critical path on worst-case skew.
            assert!(
                elastic_max * 2 <= static_max,
                "elastic-bench {workload}: max_shard_sweeps {elastic_max} is not \
                 a 2x improvement over the static mesh's {static_max}"
            );
            assert!(
                elastic_report.reshards >= 1,
                "elastic-bench {workload}: the balancer never split the mesh"
            );
        }
        rows.push(ElasticBenchRow {
            workload,
            mode: "elastic",
            shards,
            final_shards: elastic_report.final_shards,
            objects: elastic_report.objects,
            events: elastic_report.events,
            sweeps: elastic_report.sweeps,
            stolen: elastic_report.stolen,
            reshards: elastic_report.reshards,
            max_shard_sweeps: elastic_max,
            elapsed_ms: elastic_elapsed.as_secs_f64() * 1e3,
            objects_per_sec: elastic_report.objects as f64
                / elastic_elapsed.as_secs_f64().max(1e-9),
            speedup: seq_elapsed.as_secs_f64() / elastic_elapsed.as_secs_f64().max(1e-9),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Window-lane scaling experiment
// ---------------------------------------------------------------------------

/// One row of the window-lane scaling experiment.
#[derive(Debug, Clone, Copy)]
pub struct WindowBenchRow {
    /// Workload label: `"uniform"` (evenly spread anchor cells) or `"taxi"`
    /// (hot-spot skew).
    pub workload: &'static str,
    /// Lane count; 0 marks the monolithic `SlidingWindowEngine` baseline.
    pub lanes: usize,
    /// Objects expanded.
    pub objects: u64,
    /// Events emitted (New + Grown + Expired) — invariant across lane
    /// counts.
    pub events: u64,
    /// Grown/Expired transitions expanded — invariant across lane counts.
    pub transitions: u64,
    /// Largest per-lane transition count — the expansion critical path.
    /// Scaling shows up as this dropping toward `transitions / lanes` while
    /// `transitions` stays constant (wall-clock is flat on a single-core
    /// host).
    pub max_lane_transitions: u64,
    /// Wall-clock milliseconds for the expansion run.
    pub elapsed_ms: f64,
    /// Throughput in events per second.
    pub events_per_sec: f64,
    /// Baseline elapsed / this row's elapsed.
    pub speedup: f64,
}

/// Engine adapter for [`expand_run`]: both the monolithic and the sharded
/// window engine expand a stream through the same batched API.
trait WindowExpander {
    fn push(&mut self, o: SpatialObject, out: &mut surge_stream::EventBatch);
    fn finish(&mut self, out: &mut surge_stream::EventBatch);
}

impl WindowExpander for SlidingWindowEngine {
    fn push(&mut self, o: SpatialObject, out: &mut surge_stream::EventBatch) {
        self.push_into(o, out);
    }
    fn finish(&mut self, out: &mut surge_stream::EventBatch) {
        self.finish_into(out);
    }
}

impl WindowExpander for surge_stream::ShardedWindowEngine {
    fn push(&mut self, o: SpatialObject, out: &mut surge_stream::EventBatch) {
        self.push_into(o, out);
    }
    fn finish(&mut self, out: &mut surge_stream::EventBatch) {
        self.finish_into(out);
    }
}

/// Expands one stream through an engine, returning
/// `(events, transitions, checksum)` — the checksum keeps the expansion
/// honest (the batch is consumed, not dead-code-eliminated) and doubles as
/// a cheap cross-configuration identity signal.
fn expand_run<E: WindowExpander>(stream: &[SpatialObject], eng: &mut E) -> (u64, u64, u64) {
    let mut batch = surge_stream::EventBatch::with_capacity(64);
    let (mut events, mut transitions, mut checksum) = (0u64, 0u64, 0u64);
    let mut note = |batch: &surge_stream::EventBatch| {
        for ev in batch.iter() {
            events += 1;
            if ev.kind != surge_core::EventKind::New {
                transitions += 1;
            }
            checksum = checksum.wrapping_add(ev.object.id ^ ev.at);
        }
    };
    for obj in stream.iter().copied() {
        batch.clear();
        eng.push(obj, &mut batch);
        note(&batch);
    }
    batch.clear();
    eng.finish(&mut batch);
    note(&batch);
    (events, transitions, checksum)
}

/// Runs window-lane expansion at lane counts {1, 2, 4, 8} against the
/// monolithic engine, asserting the merged event stream is **bit-identical**
/// to the monolithic one before reporting timings (`surge_exp window-bench`
/// → `BENCH_window.json`). The scaling signal on a single-core host is
/// `max_lane_transitions`, the expansion critical path.
pub fn window_bench(cfg: &ExpConfig) -> Vec<WindowBenchRow> {
    use surge_stream::{EventBatch, ShardedWindowEngine};

    let taxi_windows = Dataset::Taxi.spec().default_windows;
    let taxi_objects = objects_for(Dataset::Taxi, taxi_windows, cfg.objects, cfg.max_objects);
    let uniform_windows = WindowConfig::equal(60_000);
    let workloads: [(&'static str, WindowConfig, RegionSize, Vec<SpatialObject>); 2] = [
        (
            "uniform",
            uniform_windows,
            RegionSize::new(0.3, 0.3),
            uniform_stream(cfg.objects.clamp(4_000, 200_000), cfg.seed),
        ),
        (
            "taxi",
            taxi_windows,
            query_for(Dataset::Taxi, taxi_windows, 1.0, DEFAULT_ALPHA).region,
            stream_for(Dataset::Taxi, taxi_objects, cfg.seed),
        ),
    ];

    let mut rows = Vec::new();
    for (workload, windows, region, stream) in workloads {
        // Reference expansion, collected once for the bit-identity check.
        let mut reference: Vec<surge_core::Event> = Vec::new();
        {
            let mut eng = SlidingWindowEngine::new(windows);
            let mut batch = EventBatch::new();
            for obj in stream.iter().copied() {
                eng.push_into(obj, &mut batch);
            }
            eng.finish_into(&mut batch);
            reference.extend_from_slice(batch.as_slice());
        }

        // Monolithic baseline row (lanes = 0).
        let mut eng = SlidingWindowEngine::new(windows);
        let t0 = std::time::Instant::now();
        let (events, transitions, base_checksum) = expand_run(&stream, &mut eng);
        let base_elapsed = t0.elapsed();
        assert_eq!(events as usize, reference.len());
        rows.push(WindowBenchRow {
            workload,
            lanes: 0,
            objects: stream.len() as u64,
            events,
            transitions,
            max_lane_transitions: transitions,
            elapsed_ms: base_elapsed.as_secs_f64() * 1e3,
            events_per_sec: events as f64 / base_elapsed.as_secs_f64().max(1e-9),
            speedup: 1.0,
        });

        for lanes in [1usize, 2, 4, 8] {
            // Identity pass: the merged lane stream must be bit-identical
            // to the monolithic expansion — benchmarks must not time a
            // divergent pipeline.
            {
                let mut eng = ShardedWindowEngine::new(windows, region, lanes);
                let mut batch = EventBatch::new();
                for obj in stream.iter().copied() {
                    eng.push_into(obj, &mut batch);
                }
                eng.finish_into(&mut batch);
                assert_eq!(batch.len(), reference.len(), "{workload} lanes {lanes}");
                for (i, (a, b)) in batch.iter().zip(reference.iter()).enumerate() {
                    assert!(
                        a.kind == b.kind
                            && a.at == b.at
                            && a.object.id == b.object.id
                            && a.object.weight.to_bits() == b.object.weight.to_bits()
                            && a.object.pos.x.to_bits() == b.object.pos.x.to_bits()
                            && a.object.pos.y.to_bits() == b.object.pos.y.to_bits(),
                        "window-bench divergence at {workload}, lanes={lanes}, event {i}"
                    );
                }
            }

            // Timed pass.
            let mut eng = ShardedWindowEngine::new(windows, region, lanes);
            let t0 = std::time::Instant::now();
            let (events, transitions, checksum) = expand_run(&stream, &mut eng);
            let elapsed = t0.elapsed();
            assert_eq!(checksum, base_checksum, "checksum diverged");
            rows.push(WindowBenchRow {
                workload,
                lanes,
                objects: stream.len() as u64,
                events,
                transitions,
                max_lane_transitions: eng.max_lane_transitions(),
                elapsed_ms: elapsed.as_secs_f64() * 1e3,
                events_per_sec: events as f64 / elapsed.as_secs_f64().max(1e-9),
                speedup: base_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Checkpoint & recovery experiment
// ---------------------------------------------------------------------------

/// One row of the checkpoint/recovery experiment.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointBenchRow {
    /// Workload label: `"uniform"` or `"taxi"`.
    pub workload: &'static str,
    /// WAL fsync policy label ([`surge_checkpoint::SyncPolicy::name`]).
    pub sync: &'static str,
    /// Objects driven through the pipeline.
    pub objects: u64,
    /// Flushes executed.
    pub slides: u64,
    /// Wall-clock ms for the in-memory `drive_incremental` baseline (no
    /// durability at all).
    pub baseline_ms: f64,
    /// Wall-clock ms for the checkpointed run (WAL + periodic snapshots).
    pub checkpointed_ms: f64,
    /// Durability overhead: `checkpointed_ms / baseline_ms`.
    pub overhead: f64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Median snapshot stall in microseconds.
    pub stall_p50_us: f64,
    /// p99 snapshot stall in microseconds.
    pub stall_p99_us: f64,
    /// Worst snapshot stall in microseconds.
    pub stall_max_us: f64,
    /// Objects appended to the WAL.
    pub wal_appends: u64,
    /// Wall-clock ms to recover after a crash at end-of-stream: load the
    /// newest snapshot, rebuild, replay the WAL tail, terminal drain.
    pub recovery_ms: f64,
    /// Objects the recovery replayed from the WAL tail.
    pub replayed: u64,
    /// Wall-clock ms to reach the same state by re-ingesting the whole
    /// stream from t = 0 (what a restart costs without checkpoints).
    pub replay_from_zero_ms: f64,
    /// `replay_from_zero_ms / recovery_ms`.
    pub recovery_speedup: f64,
}

/// Runs the checkpointing driver against the in-memory incremental driver
/// on the uniform and taxi workloads, asserting recovery **bit-identity**
/// before timing anything (`surge_exp checkpoint-bench` →
/// `BENCH_checkpoint.json`): snapshot cost (stall percentiles), WAL append
/// overhead, and recovery time vs. replay-from-zero — one row per
/// [`surge_checkpoint::SyncPolicy`] tier, quantifying what each durability
/// step costs.
pub fn checkpoint_bench(cfg: &ExpConfig) -> Vec<CheckpointBenchRow> {
    use surge_checkpoint::{
        recover, run_checkpointed, CheckpointConfig, CheckpointPolicy, DetectorSpec, SyncPolicy,
        Tail,
    };
    use surge_exact::{BoundMode, CellCspot};
    use surge_stream::drive_incremental;

    let slide = 256;
    let mut rows = Vec::new();

    let taxi_windows = Dataset::Taxi.spec().default_windows;
    let taxi_objects = objects_for(Dataset::Taxi, taxi_windows, cfg.objects, cfg.max_objects);
    let uniform_windows = WindowConfig::equal(60_000);
    let workloads: [(&'static str, WindowConfig, SurgeQuery, Vec<SpatialObject>); 2] = [
        (
            "uniform",
            uniform_windows,
            SurgeQuery::whole_space(RegionSize::new(0.3, 0.3), uniform_windows, DEFAULT_ALPHA),
            surge_testkit::uniform_stream(cfg.objects.clamp(4_000, 200_000), cfg.seed),
        ),
        (
            "taxi",
            taxi_windows,
            query_for(Dataset::Taxi, taxi_windows, 1.0, DEFAULT_ALPHA),
            stream_for(Dataset::Taxi, taxi_objects, cfg.seed),
        ),
    ];

    for (workload, windows, query, stream) in workloads {
        let spec = DetectorSpec::Cell {
            bound: BoundMode::Combined,
            sweep: cfg.sweep_mode,
            shards: DEFAULT_SHARDS,
        };
        let base = std::env::temp_dir().join(format!(
            "surge-ckpt-bench-{workload}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);

        // In-memory baseline (no durability) — shared by every sync tier.
        let mut det =
            CellCspot::with_sweep_mode(query, BoundMode::Combined, cfg.sweep_mode, DEFAULT_SHARDS);
        let t0 = std::time::Instant::now();
        let baseline = drive_incremental(&mut det, windows, stream.iter().copied(), slide, 1);
        let baseline_elapsed = t0.elapsed();

        // Replay-from-zero: what the restart costs without checkpoints.
        let mut det =
            CellCspot::with_sweep_mode(query, BoundMode::Combined, cfg.sweep_mode, DEFAULT_SHARDS);
        let t0 = std::time::Instant::now();
        let _ = drive_incremental(&mut det, windows, stream.iter().copied(), slide, 1);
        let replay_elapsed = t0.elapsed();

        for sync in [
            SyncPolicy::OsFlush,
            SyncPolicy::FsyncPerSnapshot,
            SyncPolicy::FsyncPerSlide,
        ] {
            let config = CheckpointConfig {
                query,
                windows,
                spec,
                slide_objects: slide,
                threads: 1,
                policy: CheckpointPolicy {
                    snapshot_every_slides: 8,
                    wal_segment_objects: 8_192,
                    keep_snapshots: 2,
                    sync,
                },
            };

            // Checkpointed run.
            let full_dir = base.join(format!("full-{}", sync.name().replace('/', "-")));
            let t0 = std::time::Instant::now();
            let full = run_checkpointed(&config, &full_dir, stream.iter().copied(), Tail::Finish)
                .expect("checkpointed run");
            let checkpointed_elapsed = t0.elapsed();

            // Benchmarks must not time a divergent pipeline: the
            // checkpointed answers must be bit-identical to the in-memory
            // driver's, at every durability tier.
            let got = full.single_answers();
            assert_eq!(got.len(), baseline.answers.len(), "{workload}");
            for (i, (a, b)) in got.iter().zip(baseline.answers.iter()).enumerate() {
                match (a, b) {
                    (Some(x), Some(y)) => assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "checkpoint-bench divergence at {workload}, slide {i}"
                    ),
                    (None, None) => {}
                    other => {
                        panic!("checkpoint-bench divergence at {workload}, slide {i}: {other:?}")
                    }
                }
            }

            // Crash at end-of-stream, then recover: snapshot restore + WAL
            // tail replay + terminal drain, bit-identity asserted.
            let crash_dir = base.join(format!("crash-{}", sync.name().replace('/', "-")));
            run_checkpointed(&config, &crash_dir, stream.iter().copied(), Tail::Crash)
                .expect("crashed run");
            let t0 = std::time::Instant::now();
            let resumed = recover(&config, &crash_dir, stream.iter().copied(), Tail::Finish)
                .expect("recovery");
            let recovery_elapsed = t0.elapsed();
            assert_eq!(resumed.answers.len(), full.answers.len(), "{workload}");
            for (i, (a, b)) in resumed.answers.iter().zip(full.answers.iter()).enumerate() {
                assert_eq!(a.len(), b.len(), "{workload} flush {i}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "recovery divergence at {workload}, flush {i}"
                    );
                }
            }

            rows.push(CheckpointBenchRow {
                workload,
                sync: sync.name(),
                objects: full.objects,
                slides: full.slides,
                baseline_ms: baseline_elapsed.as_secs_f64() * 1e3,
                checkpointed_ms: checkpointed_elapsed.as_secs_f64() * 1e3,
                overhead: checkpointed_elapsed.as_secs_f64()
                    / baseline_elapsed.as_secs_f64().max(1e-9),
                snapshots: full.snapshots_written,
                stall_p50_us: full.pause.p50_us,
                stall_p99_us: full.pause.p99_us,
                stall_max_us: full.pause.max_us,
                wal_appends: full.wal_appends,
                recovery_ms: recovery_elapsed.as_secs_f64() * 1e3,
                replayed: resumed.replayed_from_wal,
                replay_from_zero_ms: replay_elapsed.as_secs_f64() * 1e3,
                recovery_speedup: replay_elapsed.as_secs_f64()
                    / recovery_elapsed.as_secs_f64().max(1e-9),
            });
        }
        std::fs::remove_dir_all(&base).ok();
    }
    rows
}

// ---------------------------------------------------------------------------
// Multi-query serving experiment
// ---------------------------------------------------------------------------

/// One row of the serving experiment: one subscription count, comparing a
/// shared [`surge_serve::SurgeServer`] against the aggregate cost of one
/// dedicated single-query run per subscription.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchRow {
    /// Live subscriptions registered on the server.
    pub queries: usize,
    /// Deduped detector groups the registry collapsed them into.
    pub groups: usize,
    /// `(queries - groups) / queries`: the fraction of subscriptions served
    /// without their own detector.
    pub dedup_hit_rate: f64,
    /// Objects in the stream.
    pub objects: u64,
    /// Flushes each subscription received (slides + terminal).
    pub slides: u64,
    /// Wall-clock ms for `queries` dedicated single-query runs — what N
    /// independent processes pay in aggregate ingest work.
    pub independent_ms: f64,
    /// Wall-clock ms for the one shared server run.
    pub served_ms: f64,
    /// `independent_ms / served_ms`.
    pub speedup: f64,
    /// Answer flushes delivered across all subscriptions per second of
    /// served wall-clock.
    pub answers_per_sec: f64,
    /// `answers_per_sec / queries`.
    pub per_query_answers_per_sec: f64,
}

/// Runs the multi-query serving experiment (`surge_exp serve-bench` →
/// `BENCH_serve.json`): subscription counts 1/2/4/8 with bitwise-duplicate
/// pairs mixed in, the shared server timed against the aggregate of N
/// dedicated runs — **after** asserting every subscription's channel is
/// bit-identical to its dedicated run. Reports the dedup hit-rate and
/// per-query answer throughput alongside the speedup.
pub fn serve_bench(cfg: &ExpConfig) -> Vec<ServeBenchRow> {
    use surge_checkpoint::{DetectorSpec, SpecDetector};
    use surge_core::RegionAnswer;
    use surge_exact::BoundMode;
    use surge_serve::{ServeConfig, SurgeServer};
    use surge_stream::QueryRuntime;

    let slide = 256;
    let windows = WindowConfig::equal(60_000);
    let stream = surge_testkit::uniform_stream(cfg.objects.clamp(4_000, 120_000), cfg.seed);
    let spec = DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: cfg.sweep_mode,
        shards: DEFAULT_SHARDS,
    };

    let mut rows = Vec::new();
    for q in [1usize, 2, 4, 8] {
        // Consecutive pairs are bitwise-identical queries, so half of every
        // multi-query panel dedupes; distinct pairs vary region and α.
        let queries: Vec<SurgeQuery> = (0..q)
            .map(|i| {
                let v = i / 2;
                SurgeQuery::whole_space(
                    RegionSize::new(0.25 + 0.05 * (v % 4) as f64, 0.25 + 0.04 * (v % 3) as f64),
                    windows,
                    0.3 + 0.1 * (v % 4) as f64,
                )
            })
            .collect();

        // The aggregate cost of dedicated processes: one full single-query
        // run per subscription, duplicates included (each independent
        // process pays even for a query someone else already runs).
        let mut dedicated: Vec<Vec<Vec<RegionAnswer>>> = Vec::new();
        let t0 = std::time::Instant::now();
        for query in &queries {
            let det = SpecDetector::build(&spec, *query).expect("servable spec");
            let mut rt = QueryRuntime::new(det, windows, slide, 1);
            let mut answers = Vec::new();
            rt.run(stream.iter().copied(), |_seq, a| answers.push(a));
            dedicated.push(answers);
        }
        let independent_elapsed = t0.elapsed();

        // The shared server: register everything, ingest once.
        let mut server = SurgeServer::new(ServeConfig {
            slide_objects: slide,
            threads: 1,
            engine_lanes: 1,
        });
        let subs: Vec<_> = queries
            .iter()
            .map(|query| server.subscribe(*query, spec).expect("servable"))
            .collect();
        let stats = server.stats();
        let t0 = std::time::Instant::now();
        for obj in &stream {
            server.ingest(*obj);
        }
        server.finish();
        let served_elapsed = t0.elapsed();

        // Benchmarks must not time a divergent pipeline: every channel is
        // bit-identical to its dedicated run before any number is reported.
        let mut delivered = 0usize;
        for (sub, want) in subs.iter().zip(&dedicated) {
            let got = server.drain(*sub).expect("live channel");
            assert_eq!(
                got.len(),
                want.len(),
                "serve-bench divergence at {q} queries"
            );
            for ((seq, a), b) in got.iter().zip(want) {
                assert_eq!(a.len(), b.len(), "serve-bench divergence at flush {seq}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "serve-bench divergence at {q} queries, flush {seq}"
                    );
                }
            }
            delivered += got.len();
        }

        let served_s = served_elapsed.as_secs_f64().max(1e-9);
        let speedup = independent_elapsed.as_secs_f64() / served_s;
        if q >= 2 {
            // Sharing the engine and deduping detectors must beat paying
            // for N independent ingest paths.
            assert!(
                speedup > 1.0,
                "shared serving slower than {q} dedicated runs ({speedup:.2}x)"
            );
        }
        rows.push(ServeBenchRow {
            queries: q,
            groups: stats.groups,
            dedup_hit_rate: stats.dedup_hit_rate(),
            objects: server.objects_ingested(),
            slides: dedicated[0].len() as u64,
            independent_ms: independent_elapsed.as_secs_f64() * 1e3,
            served_ms: served_elapsed.as_secs_f64() * 1e3,
            speedup,
            answers_per_sec: delivered as f64 / served_s,
            per_query_answers_per_sec: delivered as f64 / q as f64 / served_s,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Overload-degradation (autopilot) experiment
// ---------------------------------------------------------------------------

/// One row of the overload-degradation experiment: one run of the flash-
/// crowd stream, either pinned to the exact tier or under the autopilot.
#[derive(Debug, Clone, Copy)]
pub struct DegradeBenchRow {
    /// `"exact-only"` or `"autopilot"`.
    pub mode: &'static str,
    /// Objects driven through the pipeline.
    pub objects: u64,
    /// Slides executed (including the terminal flush).
    pub slides: u64,
    /// The per-slide latency SLO in microseconds, derived from the
    /// exact-only run (geometric mean of its p50 and p99).
    pub slo_budget_us: u64,
    /// Median slide latency in microseconds.
    pub p50_us: f64,
    /// p99 slide latency in microseconds.
    pub p99_us: f64,
    /// Worst slide latency in microseconds.
    pub max_us: f64,
    /// Whether the run's p99 stayed within the SLO budget.
    pub within_slo: bool,
    /// Non-empty answers produced per tier (exact, MGAPS, GAPS).
    pub answers_in_tier: [u64; 3],
    /// Slides served per tier (exact, MGAPS, GAPS).
    pub slides_in_tier: [u64; 3],
    /// Wall-clock milliseconds spent per tier (exact, MGAPS, GAPS).
    pub time_in_tier_ms: [f64; 3],
    /// Tier transitions performed.
    pub transitions: u64,
    /// The tier active when the run ended.
    pub final_tier: &'static str,
    /// Answers compared offline against the exact per-slide optimum.
    pub answers_checked: u64,
    /// Answers whose score fell below their stamped
    /// `error_bound × OPT` guarantee (must be 0).
    pub bound_violations: u64,
}

/// Runs the flash-crowd overload scenario twice (`surge_exp degrade-bench`
/// → `BENCH_degrade.json`): once pinned to the exact tier to measure the
/// blowout and derive a per-slide latency SLO that the crowd demonstrably
/// breaks, then once under the [`surge_stream::AutopilotDetector`] with
/// that SLO plus a deterministic residency ceiling.
///
/// Three contract assertions run inline before any row is reported:
///
/// 1. every autopilot answer satisfies its stamped quality bound against
///    the exact per-slide optimum replayed offline (`score ≥ error_bound ×
///    OPT`, Theorems 3–4),
/// 2. the autopilot's slide-latency p99 stays within the SLO the
///    exact-only run exceeds, and
/// 3. the controller walks back to the exact tier once the crowd passes.
pub fn degrade_bench(cfg: &ExpConfig) -> Vec<DegradeBenchRow> {
    use surge_core::RegionAnswer;
    use surge_stream::{
        drive_autopilot, AnswerQuality, AutopilotDetector, AutopilotReport, SloPolicy, Tier,
    };

    // Stream shape: quiet half, flash crowd for a quarter, quiet tail.
    // Background arrivals advance 5 ms, crowd arrivals 1 ms, so the
    // 2 500 ms window holds ~500 residents when quiet and up to ~2 500
    // while the crowd passes — a deterministic 5× overload on top of the
    // wall-clock pressure the dense cluster puts on the exact sweep.
    let n = (cfg.objects * 3).clamp(12_000, 120_000);
    let crowd_start = n / 2;
    let crowd_len = n / 4;
    let slide = (n / 400).max(1);
    let stream = surge_testkit::flash_crowd_stream(n, crowd_start, crowd_len, 5, 1, cfg.seed);
    let windows = WindowConfig::equal(2_500);
    let query = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, DEFAULT_ALPHA);

    // Exact-only baseline: the autopilot with every signal disabled stays
    // pinned to the exact tier but shares the slide loop, so latencies and
    // per-slide answers are directly comparable.
    let mut exact = AutopilotDetector::new(query, SloPolicy::disabled());
    let mut engine = SlidingWindowEngine::new(windows);
    let exact_report = drive_autopilot(&mut exact, &mut engine, stream.iter().copied(), slide);
    let exact_latency = exact_report.latency_summary();

    // Derive the SLO between the quiet-phase typical slide (p50) and the
    // crowd-phase tail (p99): the exact-only run must exceed it, a healthy
    // detector must clear it.
    let budget_us = (exact_latency.p50_us.max(1.0) * exact_latency.p99_us.max(1.0))
        .sqrt()
        .ceil() as u64;
    assert!(
        exact_latency.p99_us > budget_us as f64,
        "the flash crowd must push the exact-only p99 ({:.0}us) over the derived \
         SLO ({budget_us}us); the crowd phase did not overload the exact tier",
        exact_latency.p99_us
    );

    // Degrade on the *first* over-SLO slide: while the crowd ramps, slide
    // latency hovers around the budget, so a 2-streak would keep resetting
    // and let over-budget slides pile into the p99 before tripping. The
    // long cooldown + upgrade streak matter on the way back: a degraded
    // tier masks the latency signal, so until the crowd's residency climbs
    // past the drain point the controller would otherwise probe-upgrade
    // into the crowd and eat an over-budget exact slide per probe. The
    // residency ceiling (900; the quiet phase sits at ~500) is the
    // deterministic backstop, and its 70% drain point (630) re-arms the
    // upgrade path once the crowd has expired from the window.
    let policy = SloPolicy {
        slide_latency_budget_us: budget_us,
        max_residents: 900,
        degrade_after: 1,
        upgrade_after: 6,
        cooldown_slides: 8,
        drain_percent: 70,
    };
    let mut auto = AutopilotDetector::new(query, policy);
    let mut engine = SlidingWindowEngine::new(windows);
    let auto_report = drive_autopilot(&mut auto, &mut engine, stream.iter().copied(), slide);
    let auto_latency = auto_report.latency_summary();

    // Wall-clock contract assertions below can only be diagnosed with the
    // per-tier latency split; `DEGRADE_DEBUG=1` dumps it before they run.
    if std::env::var("DEGRADE_DEBUG").is_ok() {
        eprintln!("exact  : {exact_latency}");
        eprintln!("auto   : {auto_latency}");
        for (i, h) in auto_report.tier_latency.iter().enumerate() {
            eprintln!("tier {i}: {}", h.summary());
        }
        eprintln!(
            "slides_in_tier={:?} transitions={} final={:?} budget={budget_us}",
            auto_report.slides_in_tier, auto_report.transitions, auto_report.final_tier
        );
    }
    assert!(
        auto_latency.p99_us <= budget_us as f64,
        "autopilot p99 ({:.0}us) must stay within the SLO ({budget_us}us) the \
         exact-only run exceeds",
        auto_latency.p99_us
    );
    assert_eq!(
        auto_report.final_tier,
        Tier::Exact,
        "the controller must walk back to the exact tier after the crowd passes"
    );
    assert!(
        auto_report.transitions >= 2,
        "the crowd must force at least one degrade + one recovery transition"
    );

    // Offline bound verification: every autopilot answer against the exact
    // per-slide optimum from the baseline run (same slide partitioning).
    // The epsilon absorbs summation-order float drift between the grid
    // accumulators and the exact sweep.
    let mut answers_checked = 0u64;
    let mut bound_violations = 0u64;
    for ((ans, quality), (opt, _)) in auto_report.answers.iter().zip(exact_report.answers.iter()) {
        let Some(opt) = opt else { continue };
        if opt.score <= SCORE_EPS {
            continue;
        }
        answers_checked += 1;
        let floor = quality.error_bound * opt.score - (1e-9 + opt.score.abs() * 1e-6);
        match ans {
            None => bound_violations += 1,
            Some(a) if a.score < floor => bound_violations += 1,
            Some(_) => {}
        }
    }
    assert_eq!(
        bound_violations, 0,
        "every stamped error bound must hold offline ({bound_violations}/{answers_checked} \
         answers below error_bound x OPT)"
    );

    fn answers_in_tier(answers: &[(Option<RegionAnswer>, AnswerQuality)]) -> [u64; 3] {
        let mut counts = [0u64; 3];
        for (ans, quality) in answers {
            if ans.is_some() {
                counts[quality.tier.index()] += 1;
            }
        }
        counts
    }
    fn time_in_tier_ms(report: &AutopilotReport) -> [f64; 3] {
        std::array::from_fn(|i| {
            let h = &report.tier_latency[i];
            h.mean_ns() * h.count() as f64 / 1e6
        })
    }
    let row = |mode: &'static str, report: &AutopilotReport, checked: u64, violations: u64| {
        let latency = report.latency_summary();
        DegradeBenchRow {
            mode,
            objects: report.objects,
            slides: report.slides,
            slo_budget_us: budget_us,
            p50_us: latency.p50_us,
            p99_us: latency.p99_us,
            max_us: latency.max_us,
            within_slo: latency.p99_us <= budget_us as f64,
            answers_in_tier: answers_in_tier(report.answers.retained()),
            slides_in_tier: report.slides_in_tier,
            time_in_tier_ms: time_in_tier_ms(report),
            transitions: report.transitions,
            final_tier: report.final_tier.name(),
            answers_checked: checked,
            bound_violations: violations,
        }
    };
    vec![
        row("exact-only", &exact_report, 0, 0),
        row("autopilot", &auto_report, answers_checked, bound_violations),
    ]
}

// ---------------------------------------------------------------------------
// Observability-overhead experiment
// ---------------------------------------------------------------------------

/// One row of the observability-overhead experiment: one driver family,
/// timed either with [`surge_observe::Observe::off`] or with a live
/// registry + flight recorders.
#[derive(Debug, Clone, Copy)]
pub struct ObserveBenchRow {
    /// Driver family: `"incremental"`, `"sharded"` or `"elastic"`.
    pub driver: &'static str,
    /// `"off"` (disabled handle) or `"on"` (live registry).
    pub mode: &'static str,
    /// Objects driven through the pipeline.
    pub objects: u64,
    /// Window-transition events processed.
    pub events: u64,
    /// Dirty-cell sweeps — identical across modes (non-invasiveness).
    pub sweeps: u64,
    /// Sweeps as totalled by the registry (0 on `off` rows; asserted equal
    /// to `sweeps` on `on` rows before anything is reported).
    pub registry_sweeps: u64,
    /// Best-of-N wall-clock milliseconds for the run.
    pub elapsed_ms: f64,
    /// Throughput in objects per second (from the best run).
    pub objects_per_sec: f64,
    /// Observability cost on `on` rows (0 on `off` rows): the ratio of the
    /// two modes' best-of-N elapsed floors, as a percentage. The
    /// acceptance bar for the layer is ≤ 5% on every driver.
    pub overhead_pct: f64,
}

/// Times every threaded driver family with observability off vs on
/// (`surge_exp observe-bench` → `BENCH_observe.json`) — **after** asserting
/// the two runs' per-slide answers are bit-identical and the enabled run's
/// registry totals are conserved against the legacy report counters.
/// Off/on trials are interleaved and the overhead column compares the two
/// modes' best-of-N elapsed floors, so it measures the layer rather
/// than host drift. Returns the rows plus the enabled runs' shared
/// registry snapshot (the bench JSON embeds its
/// [`surge_observe::RegistrySnapshot::to_json`] export verbatim — the
/// bench emission path rides the registry export, not a parallel format).
pub fn observe_bench(cfg: &ExpConfig) -> (Vec<ObserveBenchRow>, surge_observe::RegistrySnapshot) {
    use surge_core::RegionAnswer;
    use surge_observe::Observe;
    use surge_stream::{
        drive_elastic_observed, drive_incremental_observed, drive_sharded_observed, BalancerPolicy,
        RetainAll,
    };

    let slide = 256;
    let windows = WindowConfig::equal(60_000);
    let query = SurgeQuery::whole_space(RegionSize::new(0.3, 0.3), windows, DEFAULT_ALPHA);
    let stream = uniform_stream(cfg.objects.clamp(2_000, 50_000), cfg.seed);
    let policy = BalancerPolicy {
        skew_percent: 25,
        patience: 2,
        max_shards: 8,
        min_load: 4,
    };
    const TRIALS: usize = 7;

    // The registry all enabled runs share: each driver publishes under its
    // own scope, so the final snapshot carries every family side by side.
    let shared = Observe::enabled();

    // (answers, sweeps-analog, objects, events, registry-total-checker)
    type RunOutcome = (Vec<Option<RegionAnswer>>, u64, u64, u64);
    type DriverRun<'a> = Box<dyn Fn(&Observe) -> RunOutcome + 'a>;
    let drivers: Vec<(&'static str, DriverRun)> = vec![
        (
            "incremental",
            Box::new(|obs: &Observe| {
                let mut det = CellCspot::with_sweep_mode(
                    query,
                    BoundMode::Combined,
                    cfg.sweep_mode,
                    DEFAULT_SHARDS,
                );
                let r = drive_incremental_observed(
                    &mut det,
                    windows,
                    stream.iter().copied(),
                    slide,
                    2,
                    &mut RetainAll,
                    obs,
                );
                (r.answers.retained().to_vec(), r.jobs, r.objects, r.events)
            }),
        ),
        (
            "sharded",
            Box::new(|obs: &Observe| {
                let mut det =
                    CellCspot::with_sweep_mode(query, BoundMode::Combined, cfg.sweep_mode, 2);
                let r = drive_sharded_observed(
                    &mut det,
                    windows,
                    stream.iter().copied(),
                    slide,
                    &mut RetainAll,
                    obs,
                );
                (r.answers.retained().to_vec(), r.sweeps, r.objects, r.events)
            }),
        ),
        (
            "elastic",
            Box::new(|obs: &Observe| {
                let mut det =
                    CellCspot::with_sweep_mode(query, BoundMode::Combined, cfg.sweep_mode, 2);
                let r = drive_elastic_observed(
                    &mut det,
                    windows,
                    stream.iter().copied(),
                    slide,
                    policy,
                    &mut RetainAll,
                    obs,
                );
                (r.answers.retained().to_vec(), r.sweeps, r.objects, r.events)
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (driver, run) in &drivers {
        // Interleaved off/on trials: host drift (thermal, page cache,
        // co-tenants) hits both modes alike, so best-of-N per mode
        // measures the layer, not which mode ran second.
        let off_handle = Observe::off();
        let mut off_s = f64::INFINITY;
        let mut on_s = f64::INFINITY;
        let mut off_outcome = None;
        let mut on_outcome = None;
        for _ in 0..TRIALS {
            let t0 = std::time::Instant::now();
            off_outcome = Some(run(&off_handle));
            let off_trial = t0.elapsed().as_secs_f64();
            let t0 = std::time::Instant::now();
            on_outcome = Some(run(&shared));
            let on_trial = t0.elapsed().as_secs_f64();
            off_s = off_s.min(off_trial);
            on_s = on_s.min(on_trial);
        }
        // The overhead estimate compares the best-of-N minima: each mode's
        // minimum converges on its noise-free floor, so transient host
        // drift (which only ever inflates a trial) drops out of both sides.
        let floor_ratio = on_s / off_s.max(1e-9);
        let (off_answers, off_sweeps, objects, events) = off_outcome.expect("trials ran");
        let (on_answers, on_sweeps, _, _) = on_outcome.expect("trials ran");

        // Non-invasiveness gate: no timing is reported for a divergent run.
        assert_slides_bitwise(
            &on_answers,
            &off_answers,
            &format!("observe-bench {driver}"),
        );
        assert_eq!(
            on_sweeps, off_sweeps,
            "observe-bench {driver}: sweep counters diverged"
        );
        // Conservation gate: the registry's totals must be the report's.
        // The shared handle accumulated TRIALS enabled runs per driver.
        let snap = shared.snapshot();
        let registry_sweeps = snap
            .counter(&format!("{driver}/sweeps"))
            .or_else(|| snap.counter(&format!("{driver}/jobs")))
            .expect("driver published sweep totals");
        assert_eq!(
            registry_sweeps,
            on_sweeps * TRIALS as u64,
            "observe-bench {driver}: registry total != report counter x trials"
        );

        let overhead_pct = (floor_ratio - 1.0) * 100.0;
        rows.push(ObserveBenchRow {
            driver,
            mode: "off",
            objects,
            events,
            sweeps: off_sweeps,
            registry_sweeps: 0,
            elapsed_ms: off_s * 1e3,
            objects_per_sec: objects as f64 / off_s.max(1e-9),
            overhead_pct: 0.0,
        });
        rows.push(ObserveBenchRow {
            driver,
            mode: "on",
            objects,
            events,
            sweeps: on_sweeps,
            registry_sweeps: registry_sweeps / TRIALS as u64,
            elapsed_ms: on_s * 1e3,
            objects_per_sec: objects as f64 / on_s.max(1e-9),
            overhead_pct,
        });
    }
    (rows, shared.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            objects: 600,
            heavy_objects: 300,
            naive_objects: 100,
            seed: 7,
            quality_stride: 20,
            max_objects: 5_000,
            max_heavy_objects: 2_000,
            sweep_mode: SweepMode::Persistent,
        }
    }

    #[test]
    fn table1_reports_all_datasets() {
        let rows = table1(&tiny());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.objects, 600);
            assert!(r.rate_per_hour > 0.0);
            assert!(r.lon_range.0 <= r.lon_range.1);
        }
    }

    #[test]
    fn fig5_produces_grid_of_points() {
        let rows = fig5(&[Dataset::Taxi], SweepAxis::Rect, &tiny());
        // 4 rect sizes x 4 algorithms
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|r| r.time_per_object_us >= 0.0));
    }

    #[test]
    fn fig6_produces_grid_of_points() {
        let rows = fig6(&[Dataset::Taxi], SweepAxis::Window, &tiny());
        assert_eq!(rows.len(), 10); // 5 windows x 2 algos
    }

    #[test]
    fn table2_ccs_triggers_less_than_bccs() {
        let rows = table2(&[Dataset::Taxi], &tiny());
        assert_eq!(rows.len(), 5);
        // Per-window ratios can invert by noise on tiny streams; the
        // dominance that Table II shows is an aggregate property.
        let ccs: f64 = rows.iter().map(|r| r.ccs_ratio).sum();
        let bccs: f64 = rows.iter().map(|r| r.bccs_ratio).sum();
        assert!(
            ccs <= bccs + 0.05,
            "aggregate CCS trigger ratio {ccs} should not exceed B-CCS {bccs}"
        );
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.ccs_ratio));
            assert!((0.0..=1.0).contains(&r.bccs_ratio));
        }
    }

    #[test]
    fn table34_ratios_within_bounds() {
        let mut cfg = tiny();
        cfg.objects = 800;
        let rows = table4(&[Dataset::Taxi], &cfg);
        // Short test streams cannot stabilize the longer windows; require at
        // least the shortest window to produce checkpoints, and validate the
        // bounds wherever checkpoints exist.
        assert!(rows.iter().any(|r| r.checkpoints > 0));
        for r in rows.iter().filter(|r| r.checkpoints > 0) {
            assert!((0.0..=1.0 + 1e-9).contains(&r.gaps_ratio));
            assert!(
                r.mgaps_ratio >= r.gaps_ratio - 0.05,
                "MGAPS should be ~>= GAPS"
            );
        }
    }

    #[test]
    fn fig8_produces_rate_curves() {
        let rows = fig8(&[Dataset::Taxi], &tiny());
        assert_eq!(rows.len(), 10); // 5 rates x 2 algos
    }

    #[test]
    fn fig9_k_axis() {
        let rows = fig9(&[Dataset::Taxi], SweepAxis::K, &tiny());
        assert_eq!(rows.len(), 12); // 4 k values x 3 algos
    }

    #[test]
    fn latency_table_covers_all_algos() {
        let rows = latency_table(Dataset::Taxi, &tiny());
        assert_eq!(rows.len(), 6);
        let exact: Vec<f64> = rows
            .iter()
            .filter(|r| ["CCS", "B-CCS", "Base", "aG2"].contains(&r.algo))
            .map(|r| r.final_score)
            .collect();
        for w in exact.windows(2) {
            assert!(
                (w[0] - w[1]).abs() <= 1e-9 * w[0].abs().max(1e-12),
                "exact rows disagree: {exact:?}"
            );
        }
        for r in &rows {
            assert!(r.summary.count > 0, "{} recorded no samples", r.algo);
            assert!(r.summary.max_us >= r.summary.p50_us);
        }
    }

    #[test]
    fn roadnet_sweep_reports_all_lengths() {
        let rows = roadnet_sweep(&tiny());
        assert_eq!(rows.len(), 4);
        // Finer segmentation induces more candidate segments.
        for w in rows.windows(2) {
            assert!(w[0].segments >= w[1].segments);
        }
        // At sane segment lengths the rush street is found most of the time.
        assert!(
            rows.iter().any(|r| r.hit_rate > 0.6),
            "no segment length localizes the rush: {rows:?}"
        );
    }

    #[test]
    fn sweep_bench_rows_cross_check() {
        // One tiny size is enough for the test suite; correctness of the
        // timed implementations is asserted inside the runner itself.
        let mut cfg = tiny();
        cfg.seed = 11;
        let rows = sweep_bench(&cfg);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.naive_us > 0.0 && r.segtree_us > 0.0);
            assert!(r.tree_flat_us > 0.0 && r.tree_recursive_us > 0.0);
        }
    }

    #[test]
    fn persistent_bench_reports_both_modes_and_less_rebuild_work() {
        let rows = persistent_bench(&tiny());
        // Three workloads (uniform, taxi, redeliver) x {rebuild, persistent};
        // bit-identity is asserted inside the runner before any row is
        // emitted, and the redeliver runner additionally asserts the
        // persistent mode answers replayed batches from the epoch cache.
        assert_eq!(rows.len(), 6);
        for chunk in rows.chunks(2) {
            let (rebuild, persistent) = (&chunk[0], &chunk[1]);
            assert_eq!(rebuild.mode, "rebuild");
            assert_eq!(persistent.mode, "persistent");
            assert_eq!(rebuild.workload, persistent.workload);
            assert_eq!(rebuild.objects, persistent.objects);
            // Same searches, different maintenance profile: the rebuild
            // path re-sorts on every search, the persistent path only on
            // threshold crossings.
            assert_eq!(rebuild.searches, persistent.searches);
            assert_eq!(rebuild.churn_ops, 0);
            assert_eq!(rebuild.full_rebuilds, rebuild.searches);
            // Epoch hits and plan reuses are persistent-mode concepts.
            assert_eq!(rebuild.epoch_hits, 0);
            assert_eq!(rebuild.plan_reuses, 0);
            assert!(
                persistent.rebuilt_leaves < rebuild.rebuilt_leaves,
                "{}: persistent rebuilt {} leaves vs rebuild {}",
                rebuild.workload,
                persistent.rebuilt_leaves,
                rebuild.rebuilt_leaves
            );
        }
        let redeliver = rows
            .iter()
            .find(|r| r.workload == "redeliver" && r.mode == "persistent")
            .expect("redeliver persistent row");
        assert!(redeliver.epoch_hits > 0);
    }

    #[test]
    fn window_bench_reports_baseline_and_lane_rows() {
        let rows = window_bench(&tiny());
        // Two workloads x (baseline + lanes {1, 2, 4, 8}); the runner
        // itself asserts bit-identical event streams before timing.
        assert_eq!(rows.len(), 10);
        for chunk in rows.chunks(5) {
            assert_eq!(chunk[0].lanes, 0);
            assert_eq!(chunk[0].speedup, 1.0);
            assert_eq!(chunk[0].max_lane_transitions, chunk[0].transitions);
            for w in chunk.windows(2) {
                assert_eq!(w[0].workload, w[1].workload);
                assert_eq!(w[0].objects, w[1].objects);
                // Lane count never changes what is expanded.
                assert_eq!(w[0].events, w[1].events);
                assert_eq!(w[0].transitions, w[1].transitions);
            }
            for r in &chunk[1..] {
                assert_eq!(r.lanes.count_ones(), 1);
                assert!(r.events_per_sec > 0.0);
                assert!(r.max_lane_transitions <= r.transitions);
                // The expansion critical path must shrink with lanes.
                if r.lanes >= 4 && r.transitions > 100 {
                    assert!(
                        r.max_lane_transitions < r.transitions,
                        "{}x{} did not distribute transitions",
                        r.workload,
                        r.lanes
                    );
                }
            }
        }
    }

    #[test]
    fn elastic_bench_gates_and_reports() {
        let rows = elastic_bench(&tiny());
        assert_eq!(rows.len(), 6, "seq/static/elastic rows for two workloads");
        let hot: Vec<_> = rows.iter().filter(|r| r.workload == "hotspot").collect();
        let stat = hot.iter().find(|r| r.mode == "static").unwrap();
        let ela = hot.iter().find(|r| r.mode == "elastic").unwrap();
        assert_eq!(stat.sweeps, ela.sweeps, "stealing must conserve sweeps");
        assert!(
            ela.max_shard_sweeps * 2 <= stat.max_shard_sweeps,
            "acceptance: elastic {} vs static {}",
            ela.max_shard_sweeps,
            stat.max_shard_sweeps
        );
        assert!(ela.stolen > 0, "worst-case skew must trigger steals");
        assert!(ela.reshards >= 1, "worst-case skew must split the mesh");
        assert!(ela.final_shards > ela.shards);
    }

    #[test]
    fn shard_bench_reports_baseline_and_shard_rows() {
        let rows = shard_bench(&tiny());
        // Two workloads x (baseline + shards {1, 2, 4, 8}); the runner
        // itself asserts bit-identical answers before timing anything.
        assert_eq!(rows.len(), 10);
        for chunk in rows.chunks(5) {
            assert_eq!(chunk[0].shards, 0);
            assert_eq!(chunk[0].speedup, 1.0);
            for w in chunk.windows(2) {
                assert_eq!(w[0].workload, w[1].workload);
                assert_eq!(w[0].objects, w[1].objects);
                assert_eq!(w[0].events, w[1].events);
                assert_eq!(w[0].sweeps, w[1].sweeps);
            }
            for r in &chunk[1..] {
                assert_eq!(r.shards.count_ones(), 1);
                assert!(r.objects_per_sec > 0.0);
                assert!(r.max_shard_sweeps <= r.sweeps);
                // The critical path must shrink with sharding (allowing some
                // hash-imbalance headroom over the ideal sweeps/shards).
                if r.shards >= 4 && r.sweeps > 100 {
                    assert!(
                        r.max_shard_sweeps < r.sweeps,
                        "{}x{} did not distribute sweeps",
                        r.workload,
                        r.shards
                    );
                }
            }
        }
        assert_eq!(rows[0].workload, "uniform");
        assert_eq!(rows[5].workload, "taxi");
    }

    #[test]
    fn case_study_localizes_burst() {
        let mut cfg = tiny();
        cfg.objects = 12_000;
        let r = case_study(&cfg);
        assert!(r.checkpoints_during > 0);
        assert!(
            r.hit_rate_during > 0.6,
            "burst should be localized most of the time: {r:?}"
        );
        assert!(
            r.hit_rate_before < 0.2,
            "quiet spot should rarely be reported before the burst: {r:?}"
        );
    }
}
