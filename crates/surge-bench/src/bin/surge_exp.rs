//! `surge-exp` — regenerates the SURGE paper's tables and figures.
//!
//! ```text
//! surge-exp <command> [options]
//!
//! Commands:
//!   table1                 Table I   dataset statistics
//!   fig5   [--axis A]      Fig. 5    exact runtime (A = window | rect)
//!   table2                 Table II  search trigger ratios (CCS vs B-CCS)
//!   fig6   [--axis A]      Fig. 6    approximate runtime (A = window | rect)
//!   fig7                   Fig. 7    runtime vs alpha (US)
//!   table3                 Table III approximation ratio vs alpha (US)
//!   table4                 Table IV  approximation ratio vs window
//!   fig8                   Fig. 8    scalability vs arrival rate
//!   fig9   [--axis A]      Fig. 9    top-k runtime (A = window | k)
//!   case-study             §VII-G    burst localization
//!   latency                extension: per-event tail-latency table
//!   roadnet                extension: road-network segment-length sweep
//!   sweep-bench            naive vs segment-tree sweep, flat vs recursive
//!                          segment tree, persistent vs rebuild cell
//!                          sweeps; writes BENCH_sweep.json
//!   shard-bench            sharded ingest vs sequential driver; writes
//!                          BENCH_shard.json
//!   window-bench           window-lane expansion vs monolithic engine;
//!                          writes BENCH_window.json
//!   checkpoint-bench       checkpointed driver vs in-memory driver +
//!                          recovery vs replay-from-zero (bit-identity
//!                          asserted first), one row per WAL fsync
//!                          policy; writes BENCH_checkpoint.json
//!   degrade-bench          flash-crowd overload: exact-only vs the
//!                          degradation autopilot (SLO, bound, and
//!                          return-to-exact contracts asserted); writes
//!                          BENCH_degrade.json
//!   serve-bench            multi-query serving: one shared server vs N
//!                          dedicated runs (bit-identity asserted first),
//!                          dedup hit-rate and per-query answer
//!                          throughput; writes BENCH_serve.json
//!   elastic-bench          elastic mesh: work-stealing + live resharding
//!                          vs static shards vs sequential (bit-identity
//!                          and the >=2x max_shard_sweeps drop asserted
//!                          first); writes BENCH_elastic.json
//!   observe-bench          observability overhead: every threaded driver
//!                          with the surge-observe layer off vs on
//!                          (bit-identity and registry conservation
//!                          asserted first, overhead column, registry
//!                          export embedded); writes BENCH_observe.json
//!   all                    everything above
//!
//! Options:
//!   --objects N     objects per run for fast algorithms   [default 20000]
//!   --heavy N       objects per run for Base/B-CCS/aG2    [default 6000]
//!   --naive N       objects per run for naive top-k       [default 1200]
//!   --seed S        workload seed                         [default 42]
//!   --datasets D    comma list of uk,us,taxi              [default all]
//!   --fast          smoke-scale preset
//!   --paper         paper-scale preset (1M objects; slow)
//!   --persistent M  cell-sweep mode for the exact detectors: on (default,
//!                   persistent cross-sweep state) or off (rebuild per
//!                   search — the pre-persistence cost profile; answers
//!                   are bit-identical either way)
//! ```

use std::process::ExitCode;

use surge_bench::{experiments, print, Algo, ExpConfig, SweepAxis};
use surge_stream::Dataset;

struct Args {
    command: String,
    axis: Option<String>,
    cfg: ExpConfig,
    datasets: Vec<Dataset>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut cfg = ExpConfig::default();
    let mut axis = None;
    let mut datasets = Dataset::ALL.to_vec();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--axis" => axis = Some(args.next().ok_or("--axis needs a value")?),
            "--objects" => {
                cfg.objects = args
                    .next()
                    .ok_or("--objects needs a value")?
                    .parse()
                    .map_err(|e| format!("--objects: {e}"))?
            }
            "--heavy" => {
                cfg.heavy_objects = args
                    .next()
                    .ok_or("--heavy needs a value")?
                    .parse()
                    .map_err(|e| format!("--heavy: {e}"))?
            }
            "--naive" => {
                cfg.naive_objects = args
                    .next()
                    .ok_or("--naive needs a value")?
                    .parse()
                    .map_err(|e| format!("--naive: {e}"))?
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--datasets" => {
                let list = args.next().ok_or("--datasets needs a value")?;
                datasets = list
                    .split(',')
                    .map(|d| match d.trim().to_lowercase().as_str() {
                        "uk" => Ok(Dataset::Uk),
                        "us" => Ok(Dataset::Us),
                        "taxi" => Ok(Dataset::Taxi),
                        other => Err(format!("unknown dataset {other}")),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            // The scale presets replace every scale knob but must not
            // silently undo a `--persistent` toggle given in any order:
            // sweep mode changes *what* is measured, not how much.
            "--fast" => {
                let sweep_mode = cfg.sweep_mode;
                cfg = ExpConfig::fast();
                cfg.sweep_mode = sweep_mode;
            }
            "--paper" => {
                let sweep_mode = cfg.sweep_mode;
                cfg = ExpConfig::paper();
                cfg.sweep_mode = sweep_mode;
            }
            "--persistent" => {
                cfg.sweep_mode = match args
                    .next()
                    .ok_or("--persistent needs on|off")?
                    .to_lowercase()
                    .as_str()
                {
                    "on" => surge_exact::SweepMode::Persistent,
                    "off" => surge_exact::SweepMode::Rebuild,
                    other => return Err(format!("--persistent: expected on|off, got {other}")),
                }
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        axis,
        cfg,
        datasets,
    })
}

fn usage() -> String {
    "usage: surge-exp <table1|fig5|table2|fig6|fig7|table3|table4|fig8|fig9|case-study|latency|roadnet|sweep-bench|shard-bench|window-bench|checkpoint-bench|degrade-bench|serve-bench|elastic-bench|observe-bench|all> \
     [--axis window|rect|k] [--objects N] [--heavy N] [--naive N] [--seed S] \
     [--datasets uk,us,taxi] [--fast] [--paper] [--persistent on|off]"
        .to_string()
}

/// Runs the naive-vs-segtree sweep comparison plus the persistent-vs-
/// rebuild cell-sweep comparison, printing both tables and writing
/// `BENCH_sweep.json` to the working directory.
fn run_sweep_bench(cfg: &ExpConfig) -> Result<(), String> {
    let rows = experiments::sweep_bench(cfg);
    print!("{}", print::sweep_bench(&rows));
    let prows = experiments::persistent_bench(cfg);
    print!("{}", print::persistent_bench(&prows));
    let json = print::sweep_bench_json(&rows, &prows);
    let path = "BENCH_sweep.json";
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    Ok(())
}

/// Runs the shard-scaling experiment, printing the table and writing
/// `BENCH_shard.json` to the working directory.
fn run_shard_bench(cfg: &ExpConfig) -> Result<(), String> {
    let rows = experiments::shard_bench(cfg);
    print!("{}", print::shard_bench(&rows));
    let json = print::shard_bench_json(&rows);
    let path = "BENCH_shard.json";
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    Ok(())
}

/// Runs the elastic-mesh experiment (work-stealing + balancer-driven
/// resharding vs the static mesh and the sequential baseline), printing
/// the table and writing `BENCH_elastic.json` to the working directory.
/// Bit-identity across every configuration *and* the >=2x
/// `max_shard_sweeps` improvement on the hotspot workload are asserted
/// inside the experiment before anything is timed, so a successful exit
/// is the smoke check.
fn run_elastic_bench(cfg: &ExpConfig) -> Result<(), String> {
    let rows = experiments::elastic_bench(cfg);
    print!("{}", print::elastic_bench(&rows));
    let json = print::elastic_bench_json(&rows);
    let path = "BENCH_elastic.json";
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    Ok(())
}

/// Runs the window-lane scaling experiment, printing the table and writing
/// `BENCH_window.json` to the working directory.
fn run_window_bench(cfg: &ExpConfig) -> Result<(), String> {
    let rows = experiments::window_bench(cfg);
    print!("{}", print::window_bench(&rows));
    let json = print::window_bench_json(&rows);
    let path = "BENCH_window.json";
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    Ok(())
}

/// Runs the checkpoint/recovery experiment, printing the table and writing
/// `BENCH_checkpoint.json` to the working directory.
fn run_checkpoint_bench(cfg: &ExpConfig) -> Result<(), String> {
    let rows = experiments::checkpoint_bench(cfg);
    print!("{}", print::checkpoint_bench(&rows));
    let json = print::checkpoint_bench_json(&rows);
    let path = "BENCH_checkpoint.json";
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    Ok(())
}

/// Runs the overload-degradation experiment (flash crowd, exact-only vs
/// autopilot), printing the table and writing `BENCH_degrade.json` to the
/// working directory. The SLO/bound/recovery contract assertions run
/// inside the experiment itself, so a successful exit is the smoke check.
fn run_degrade_bench(cfg: &ExpConfig) -> Result<(), String> {
    let rows = experiments::degrade_bench(cfg);
    print!("{}", print::degrade_bench(&rows));
    let json = print::degrade_bench_json(&rows);
    let path = "BENCH_degrade.json";
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    Ok(())
}

/// Runs the multi-query serving experiment, printing the table and writing
/// `BENCH_serve.json` to the working directory. Bit-identity of every
/// subscription channel against its dedicated run is asserted inside the
/// experiment before anything is timed, so a successful exit is the smoke
/// check.
fn run_serve_bench(cfg: &ExpConfig) -> Result<(), String> {
    let rows = experiments::serve_bench(cfg);
    print!("{}", print::serve_bench(&rows));
    let json = print::serve_bench_json(&rows);
    let path = "BENCH_serve.json";
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    Ok(())
}

/// Runs the observability-overhead experiment (every threaded driver with
/// the surge-observe layer off vs on), printing the table and writing
/// `BENCH_observe.json` to the working directory. Bit-identity of the
/// observed runs and conservation of the registry totals against the
/// legacy report counters are asserted inside the experiment before
/// anything is timed, so a successful exit is the smoke check; the JSON
/// embeds the registry's own `to_json` export.
fn run_observe_bench(cfg: &ExpConfig) -> Result<(), String> {
    let (rows, registry) = experiments::observe_bench(cfg);
    print!("{}", print::observe_bench(&rows));
    let json = print::observe_bench_json(&rows, &registry);
    let path = "BENCH_observe.json";
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    Ok(())
}

fn parse_axis(axis: &Option<String>, default: SweepAxis) -> Result<SweepAxis, String> {
    match axis.as_deref() {
        None => Ok(default),
        Some("window") => Ok(SweepAxis::Window),
        Some("rect") => Ok(SweepAxis::Rect),
        Some("k") => Ok(SweepAxis::K),
        Some(other) => Err(format!("unknown axis {other} (window|rect|k)")),
    }
}

fn run(args: &Args) -> Result<(), String> {
    let cfg = &args.cfg;
    let ds = &args.datasets;
    eprintln!(
        "# scale: objects={} heavy={} naive={} seed={}",
        cfg.objects, cfg.heavy_objects, cfg.naive_objects, cfg.seed
    );
    match args.command.as_str() {
        "table1" => print!("{}", print::table1(&experiments::table1(cfg))),
        "fig5" => {
            let axis = parse_axis(&args.axis, SweepAxis::Window)?;
            let title = match axis {
                SweepAxis::Window => "Fig.5(a-c): exact runtime vs window",
                _ => "Fig.5(d-f): exact runtime vs rect size",
            };
            print!(
                "{}",
                print::runtime(title, &experiments::fig5(ds, axis, cfg))
            );
            eprintln!(
                "# note: {} run on {} objects; CCS on {}",
                Algo::EXACT_SET
                    .iter()
                    .filter(|a| a.is_heavy())
                    .map(|a| a.name())
                    .collect::<Vec<_>>()
                    .join("/"),
                cfg.heavy_objects,
                cfg.objects
            );
        }
        "table2" => print!("{}", print::table2(&experiments::table2(ds, cfg))),
        "fig6" => {
            let axis = parse_axis(&args.axis, SweepAxis::Window)?;
            let title = match axis {
                SweepAxis::Window => "Fig.6(a-c): approx runtime vs window",
                _ => "Fig.6(d-f): approx runtime vs rect size",
            };
            print!(
                "{}",
                print::runtime(title, &experiments::fig6(ds, axis, cfg))
            );
        }
        "fig7" => print!("{}", print::fig7(&experiments::fig7(cfg))),
        "table3" => print!(
            "{}",
            print::ratios(
                "Table III: approximation ratio vs alpha (US)",
                &experiments::table3(cfg)
            )
        ),
        "table4" => print!(
            "{}",
            print::ratios(
                "Table IV: approximation ratio vs window",
                &experiments::table4(ds, cfg)
            )
        ),
        "fig8" => print!("{}", print::fig8(&experiments::fig8(ds, cfg))),
        "fig9" => {
            let axis = parse_axis(&args.axis, SweepAxis::Window)?;
            print!("{}", print::fig9(&experiments::fig9(ds, axis, cfg)));
        }
        "case-study" => print!("{}", print::case_study(&experiments::case_study(cfg))),
        "latency" => {
            let d = ds.first().copied().unwrap_or(Dataset::Taxi);
            print!(
                "{}",
                print::latency(d.spec().name, &experiments::latency_table(d, cfg))
            );
        }
        "roadnet" => print!("{}", print::roadnet(&experiments::roadnet_sweep(cfg))),
        "sweep-bench" => run_sweep_bench(cfg)?,
        "shard-bench" => run_shard_bench(cfg)?,
        "window-bench" => run_window_bench(cfg)?,
        "checkpoint-bench" => run_checkpoint_bench(cfg)?,
        "degrade-bench" => run_degrade_bench(cfg)?,
        "serve-bench" => run_serve_bench(cfg)?,
        "elastic-bench" => run_elastic_bench(cfg)?,
        "observe-bench" => run_observe_bench(cfg)?,
        "all" => {
            print!("{}", print::table1(&experiments::table1(cfg)));
            print!(
                "{}",
                print::runtime(
                    "Fig.5(a-c): exact runtime vs window",
                    &experiments::fig5(ds, SweepAxis::Window, cfg)
                )
            );
            print!(
                "{}",
                print::runtime(
                    "Fig.5(d-f): exact runtime vs rect size",
                    &experiments::fig5(ds, SweepAxis::Rect, cfg)
                )
            );
            print!("{}", print::table2(&experiments::table2(ds, cfg)));
            print!(
                "{}",
                print::runtime(
                    "Fig.6(a-c): approx runtime vs window",
                    &experiments::fig6(ds, SweepAxis::Window, cfg)
                )
            );
            print!(
                "{}",
                print::runtime(
                    "Fig.6(d-f): approx runtime vs rect size",
                    &experiments::fig6(ds, SweepAxis::Rect, cfg)
                )
            );
            print!("{}", print::fig7(&experiments::fig7(cfg)));
            print!(
                "{}",
                print::ratios(
                    "Table III: approximation ratio vs alpha (US)",
                    &experiments::table3(cfg)
                )
            );
            print!(
                "{}",
                print::ratios(
                    "Table IV: approximation ratio vs window",
                    &experiments::table4(ds, cfg)
                )
            );
            print!("{}", print::fig8(&experiments::fig8(ds, cfg)));
            print!(
                "{}",
                print::fig9(&experiments::fig9(ds, SweepAxis::Window, cfg))
            );
            print!("{}", print::fig9(&experiments::fig9(ds, SweepAxis::K, cfg)));
            print!("{}", print::case_study(&experiments::case_study(cfg)));
            let d = ds.first().copied().unwrap_or(Dataset::Taxi);
            print!(
                "{}",
                print::latency(d.spec().name, &experiments::latency_table(d, cfg))
            );
            print!("{}", print::roadnet(&experiments::roadnet_sweep(cfg)));
            run_sweep_bench(cfg)?;
            run_shard_bench(cfg)?;
            run_elastic_bench(cfg)?;
            run_window_bench(cfg)?;
            run_checkpoint_bench(cfg)?;
            run_degrade_bench(cfg)?;
            run_serve_bench(cfg)?;
            run_observe_bench(cfg)?;
        }
        other => return Err(format!("unknown command {other}\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
