//! Plain-text table rendering for the `surge-exp` binary.

use std::collections::BTreeMap;

use crate::experiments::{
    AlphaPoint, CaseStudyResult, RatioRow, RuntimePoint, ScalePoint, Table1Row, Table2Row,
    TopKPoint,
};

/// Renders a generic matrix: rows keyed by `param`, one column per algorithm.
fn matrix<R>(
    title: &str,
    rows: &[R],
    dataset: impl Fn(&R) -> String,
    param: impl Fn(&R) -> String,
    algo: impl Fn(&R) -> String,
    value: impl Fn(&R) -> String,
) -> String {
    let mut out = String::new();
    // group by dataset
    let mut by_dataset: BTreeMap<String, Vec<&R>> = BTreeMap::new();
    for r in rows {
        by_dataset.entry(dataset(r)).or_default().push(r);
    }
    for (ds, rs) in by_dataset {
        out.push_str(&format!("\n== {title} — {ds} ==\n"));
        let mut algos: Vec<String> = Vec::new();
        let mut params: Vec<String> = Vec::new();
        let mut cells: BTreeMap<(String, String), String> = BTreeMap::new();
        for r in rs {
            let a = algo(r);
            let p = param(r);
            if !algos.contains(&a) {
                algos.push(a.clone());
            }
            if !params.contains(&p) {
                params.push(p.clone());
            }
            cells.insert((p, a), value(r));
        }
        out.push_str(&format!("{:>10}", ""));
        for a in &algos {
            out.push_str(&format!("{a:>14}"));
        }
        out.push('\n');
        for p in &params {
            out.push_str(&format!("{p:>10}"));
            for a in &algos {
                let v = cells
                    .get(&(p.clone(), a.clone()))
                    .map(String::as_str)
                    .unwrap_or("-");
                out.push_str(&format!("{v:>14}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Table I.
pub fn table1(rows: &[Table1Row]) -> String {
    let mut out = String::from("\n== Table I: Datasets ==\n");
    out.push_str(&format!(
        "{:>8}{:>12}{:>16}{:>24}{:>24}\n",
        "Dataset", "#Objects", "Rate(/hour)", "Latitude range", "Longitude range"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8}{:>12}{:>16.0}{:>24}{:>24}\n",
            r.dataset,
            r.objects,
            r.rate_per_hour,
            format!("{:.2} .. {:.2}", r.lat_range.0, r.lat_range.1),
            format!("{:.2} .. {:.2}", r.lon_range.0, r.lon_range.1),
        ));
    }
    out
}

/// Figs. 5/6 panels.
pub fn runtime(title: &str, rows: &[RuntimePoint]) -> String {
    matrix(
        title,
        rows,
        |r| r.dataset.clone(),
        |r| r.param.clone(),
        |r| r.algo.to_string(),
        |r| {
            // `*` marks full-run fallback timing (window never filled within
            // the object budget).
            let star = if r.stable { "" } else { "*" };
            format!("{:.2}us{star}", r.time_per_object_us)
        },
    )
}

/// Table II.
pub fn table2(rows: &[Table2Row]) -> String {
    let mut out = String::from("\n== Table II: events triggering a search ==\n");
    out.push_str(&format!(
        "{:>8}{:>10}{:>12}{:>12}\n",
        "Dataset", "Window", "CCS", "B-CCS"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8}{:>10}{:>11.2}%{:>11.2}%\n",
            r.dataset,
            r.window,
            r.ccs_ratio * 100.0,
            r.bccs_ratio * 100.0
        ));
    }
    out
}

/// Fig. 7.
pub fn fig7(rows: &[AlphaPoint]) -> String {
    matrix(
        "Fig.7: runtime vs alpha (US)",
        rows,
        |_| "US".to_string(),
        |r| format!("{:.1}", r.alpha),
        |r| r.algo.to_string(),
        |r| format!("{:.2}us", r.time_per_object_us),
    )
}

/// Tables III/IV.
pub fn ratios(title: &str, rows: &[RatioRow]) -> String {
    let mut out = format!("\n== {title} ==\n");
    out.push_str(&format!(
        "{:>8}{:>10}{:>10}{:>10}{:>8}\n",
        "Dataset", "Param", "GAPS", "MGAPS", "N"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8}{:>10}{:>9.2}%{:>9.2}%{:>8}\n",
            r.dataset,
            r.param,
            r.gaps_ratio * 100.0,
            r.mgaps_ratio * 100.0,
            r.checkpoints
        ));
    }
    out
}

/// Fig. 8.
pub fn fig8(rows: &[ScalePoint]) -> String {
    matrix(
        "Fig.8: scalability (seconds per stream-hour)",
        rows,
        |r| r.dataset.clone(),
        |r| format!("{}M/day", r.rate_mpd),
        |r| r.algo.to_string(),
        |r| format!("{:.4}s", r.seconds_per_stream_hour),
    )
}

/// Fig. 9.
pub fn fig9(rows: &[TopKPoint]) -> String {
    matrix(
        "Fig.9: top-k runtime",
        rows,
        |r| r.dataset.clone(),
        |r| r.param.clone(),
        |r| r.algo.to_string(),
        |r| format!("{:.2}us", r.time_per_object_us),
    )
}

/// Case study.
pub fn case_study(r: &CaseStudyResult) -> String {
    format!(
        "\n== Case study: burst localization (Taxi) ==\n\
         injected burst center : ({:.3}, {:.3})\n\
         active interval (ms)  : {} .. {}\n\
         hit rate during burst : {:.1}% ({} checkpoints)\n\
         hit rate before burst : {:.1}%\n",
        r.burst_center.0,
        r.burst_center.1,
        r.burst_interval.0,
        r.burst_interval.1,
        r.hit_rate_during * 100.0,
        r.checkpoints_during,
        r.hit_rate_before * 100.0,
    )
}

/// Tail-latency table (extension).
pub fn latency(dataset: &str, rows: &[crate::experiments::LatencyRow]) -> String {
    let mut out = format!(
        "\n== Tail latency per event ({dataset}) ==\n{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "algo", "mean(us)", "p50(us)", "p95(us)", "p99(us)", "max(us)"
    );
    for r in rows {
        let s = r.summary;
        out.push_str(&format!(
            "{:<8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
            r.algo, s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.max_us
        ));
    }
    out
}

/// Road-network segment-length sweep (extension).
pub fn roadnet(rows: &[crate::experiments::RoadnetRow]) -> String {
    let mut out = format!(
        "\n== Road-network SURGE: segment-length sweep ==\n{:<10} {:>10} {:>14} {:>10}\n",
        "L (m)", "segments", "us/object", "hit rate"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>10} {:>14.3} {:>9.1}%\n",
            r.segment_len,
            r.segments,
            r.time_per_object_us,
            r.hit_rate * 100.0
        ));
    }
    out
}

/// Sweep micro-benchmark: naive vs segment-tree SL-CSPOT.
pub fn sweep_bench(rows: &[crate::experiments::SweepBenchRow]) -> String {
    let mut out = format!(
        "\n== SL-CSPOT sweep: naive O(n²) vs segment-tree O(n log n); flat vs recursive tree; fused vs split burst lanes ==\n{:<8} {:>14} {:>14} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}\n",
        "n", "naive (us)", "segtree (us)", "speedup", "flat (us)", "recur (us)", "tree spd",
        "fused (us)", "split (us)", "burst spd"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>14.1} {:>14.1} {:>9.1}x {:>12.1} {:>12.1} {:>9.2}x {:>12.1} {:>12.1} {:>9.2}x\n",
            r.n,
            r.naive_us,
            r.segtree_us,
            r.speedup,
            r.tree_flat_us,
            r.tree_recursive_us,
            r.tree_speedup,
            r.burst_fused_us,
            r.burst_split_us,
            r.burst_speedup
        ));
    }
    out
}

/// The persistent-vs-rebuild cell-sweep experiment as a console table.
/// `rebuilt_leaves` is the hardware-independent work metric; wall-clock is
/// informative only on a 1-CPU container.
pub fn persistent_bench(rows: &[crate::experiments::PersistentBenchRow]) -> String {
    let mut out = format!(
        "\n== Cell sweeps: persistent cross-sweep state vs rebuild-per-search ==\n{:<10} {:<12} {:>9} {:>10} {:>13} {:>10} {:>10} {:>10} {:>12} {:>9}\n",
        "workload", "mode", "searches", "churn", "rebuilt-lvs", "rebuilds", "epoch-hit", "plan-reuse",
        "elapsed(ms)", "speedup"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<12} {:>9} {:>10} {:>13} {:>10} {:>10} {:>10} {:>12.1} {:>8.2}x\n",
            r.workload,
            r.mode,
            r.searches,
            r.churn_ops,
            r.rebuilt_leaves,
            r.full_rebuilds,
            r.epoch_hits,
            r.plan_reuses,
            r.elapsed_ms,
            r.speedup
        ));
    }
    out
}

/// The sweep micro-benchmark plus the persistent-vs-rebuild comparison as a
/// `BENCH_sweep.json` document (hand-rolled: the offline build has no
/// serde).
pub fn sweep_bench_json(
    rows: &[crate::experiments::SweepBenchRow],
    persistent: &[crate::experiments::PersistentBenchRow],
) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"sl_cspot_sweep\",\n  \"unit\": \"us_per_sweep\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"naive_us\": {:.3}, \"segtree_us\": {:.3}, \"speedup\": {:.3}, \"tree_flat_us\": {:.3}, \"tree_recursive_us\": {:.3}, \"tree_speedup\": {:.3}, \"burst_fused_us\": {:.3}, \"burst_split_us\": {:.3}, \"burst_speedup\": {:.3}}}{}\n",
            r.n,
            r.naive_us,
            r.segtree_us,
            r.speedup,
            r.tree_flat_us,
            r.tree_recursive_us,
            r.tree_speedup,
            r.burst_fused_us,
            r.burst_split_us,
            r.burst_speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"persistent\": [\n");
    for (i, r) in persistent.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"objects\": {}, \"searches\": {}, \"churn_ops\": {}, \"rebuilt_leaves\": {}, \"full_rebuilds\": {}, \"epoch_hits\": {}, \"plan_reuses\": {}, \"elapsed_ms\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.workload,
            r.mode,
            r.objects,
            r.searches,
            r.churn_ops,
            r.rebuilt_leaves,
            r.full_rebuilds,
            r.epoch_hits,
            r.plan_reuses,
            r.elapsed_ms,
            r.speedup,
            if i + 1 < persistent.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The shard-scaling experiment as a console table. The `shards = 0` row is
/// the sequential `drive_incremental` baseline.
pub fn shard_bench(rows: &[crate::experiments::ShardBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "\n== Sharded ingest: drive_sharded vs sequential drive_incremental ({cpus} cpu) ==\n{:<10} {:<12} {:>10} {:>8} {:>10} {:>12} {:>12} {:>9}\n",
        "workload", "config", "objects", "sweeps", "max-shard", "elapsed(ms)", "obj/s", "speedup"
    );
    for r in rows {
        let label = if r.shards == 0 {
            "seq-1t".to_string()
        } else {
            format!("shards={}", r.shards)
        };
        out.push_str(&format!(
            "{:<10} {:<12} {:>10} {:>8} {:>10} {:>12.1} {:>12.0} {:>8.2}x\n",
            r.workload,
            label,
            r.objects,
            r.sweeps,
            r.max_shard_sweeps,
            r.elapsed_ms,
            r.objects_per_sec,
            r.speedup
        ));
    }
    out
}

/// The shard-scaling experiment as a `BENCH_shard.json` document
/// (hand-rolled: the offline build has no serde).
pub fn shard_bench_json(rows: &[crate::experiments::ShardBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out =
        format!("{{\n  \"benchmark\": \"sharded_ingest\",\n  \"cpus\": {cpus},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"shards\": {}, \"objects\": {}, \"events\": {}, \"sweeps\": {}, \"max_shard_sweeps\": {}, \"elapsed_ms\": {:.3}, \"objects_per_sec\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.workload,
            r.shards,
            r.objects,
            r.events,
            r.sweeps,
            r.max_shard_sweeps,
            r.elapsed_ms,
            r.objects_per_sec,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The elastic-mesh experiment as a console table. The `seq` row is the
/// unsharded baseline; `static` is `drive_sharded` at fixed ownership;
/// `elastic` adds work-stealing and balancer-driven splits. All three are
/// bit-identity-gated before timing; `max-shard` (the sweep critical path)
/// is the scaling signal on a single-core host.
pub fn elastic_bench(rows: &[crate::experiments::ElasticBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "\n== Elastic mesh: steal + split vs static shards vs sequential ({cpus} cpu) ==\n{:<9} {:<8} {:>7} {:>8} {:>8} {:>8} {:>8} {:>10} {:>12} {:>9}\n",
        "workload",
        "mode",
        "shards",
        "final",
        "sweeps",
        "stolen",
        "splits",
        "max-shard",
        "elapsed(ms)",
        "speedup"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<8} {:>7} {:>8} {:>8} {:>8} {:>8} {:>10} {:>12.1} {:>8.2}x\n",
            r.workload,
            r.mode,
            r.shards,
            r.final_shards,
            r.sweeps,
            r.stolen,
            r.reshards,
            r.max_shard_sweeps,
            r.elapsed_ms,
            r.speedup
        ));
    }
    out
}

/// The elastic-mesh experiment as a `BENCH_elastic.json` document
/// (hand-rolled: the offline build has no serde).
pub fn elastic_bench_json(rows: &[crate::experiments::ElasticBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out =
        format!("{{\n  \"benchmark\": \"elastic_mesh\",\n  \"cpus\": {cpus},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"shards\": {}, \"final_shards\": {}, \"objects\": {}, \"events\": {}, \"sweeps\": {}, \"stolen\": {}, \"reshards\": {}, \"max_shard_sweeps\": {}, \"elapsed_ms\": {:.3}, \"objects_per_sec\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.workload,
            r.mode,
            r.shards,
            r.final_shards,
            r.objects,
            r.events,
            r.sweeps,
            r.stolen,
            r.reshards,
            r.max_shard_sweeps,
            r.elapsed_ms,
            r.objects_per_sec,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The window-lane scaling experiment as a console table. The `lanes = 0`
/// row is the monolithic `SlidingWindowEngine` baseline.
pub fn window_bench(rows: &[crate::experiments::WindowBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "\n== Window lanes: ShardedWindowEngine vs monolithic expansion ({cpus} cpu) ==\n{:<10} {:<10} {:>10} {:>10} {:>12} {:>10} {:>12} {:>12} {:>9}\n",
        "workload",
        "config",
        "objects",
        "events",
        "transitions",
        "max-lane",
        "elapsed(ms)",
        "events/s",
        "speedup"
    );
    for r in rows {
        let label = if r.lanes == 0 {
            "mono".to_string()
        } else {
            format!("lanes={}", r.lanes)
        };
        out.push_str(&format!(
            "{:<10} {:<10} {:>10} {:>10} {:>12} {:>10} {:>12.1} {:>12.0} {:>8.2}x\n",
            r.workload,
            label,
            r.objects,
            r.events,
            r.transitions,
            r.max_lane_transitions,
            r.elapsed_ms,
            r.events_per_sec,
            r.speedup
        ));
    }
    out
}

/// The window-lane scaling experiment as a `BENCH_window.json` document
/// (hand-rolled: the offline build has no serde).
pub fn window_bench_json(rows: &[crate::experiments::WindowBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out =
        format!("{{\n  \"benchmark\": \"window_lanes\",\n  \"cpus\": {cpus},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"lanes\": {}, \"objects\": {}, \"events\": {}, \"transitions\": {}, \"max_lane_transitions\": {}, \"elapsed_ms\": {:.3}, \"events_per_sec\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.workload,
            r.lanes,
            r.objects,
            r.events,
            r.transitions,
            r.max_lane_transitions,
            r.elapsed_ms,
            r.events_per_sec,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The checkpoint/recovery experiment as a console table: durability
/// overhead, snapshot-stall percentiles (p50/p99/max) and recovery time
/// against replay-from-zero.
pub fn checkpoint_bench(rows: &[crate::experiments::CheckpointBenchRow]) -> String {
    let mut out = format!(
        "\n== Checkpoint & recovery: WAL + snapshots vs in-memory, recovery vs replay-from-zero ==\n{:<10} {:<15} {:>8} {:>8} {:>9} {:>9} {:>9} {:>6} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9}\n",
        "workload",
        "sync",
        "objects",
        "slides",
        "base(ms)",
        "ckpt(ms)",
        "overhead",
        "snaps",
        "p50(us)",
        "p99(us)",
        "max(us)",
        "recov(ms)",
        "replay(ms)",
        "speedup"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<15} {:>8} {:>8} {:>9.1} {:>9.1} {:>8.2}x {:>6} {:>9.0} {:>9.0} {:>9.0} {:>10.1} {:>10.1} {:>8.2}x\n",
            r.workload,
            r.sync,
            r.objects,
            r.slides,
            r.baseline_ms,
            r.checkpointed_ms,
            r.overhead,
            r.snapshots,
            r.stall_p50_us,
            r.stall_p99_us,
            r.stall_max_us,
            r.recovery_ms,
            r.replay_from_zero_ms,
            r.recovery_speedup
        ));
    }
    out
}

/// The checkpoint/recovery experiment as a `BENCH_checkpoint.json` document
/// (hand-rolled: the offline build has no serde).
pub fn checkpoint_bench_json(rows: &[crate::experiments::CheckpointBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "{{\n  \"benchmark\": \"checkpoint_recovery\",\n  \"cpus\": {cpus},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"sync\": \"{}\", \"objects\": {}, \"slides\": {}, \"baseline_ms\": {:.3}, \"checkpointed_ms\": {:.3}, \"overhead\": {:.3}, \"snapshots\": {}, \"stall_p50_us\": {:.1}, \"stall_p99_us\": {:.1}, \"stall_max_us\": {:.1}, \"wal_appends\": {}, \"recovery_ms\": {:.3}, \"replayed_from_wal\": {}, \"replay_from_zero_ms\": {:.3}, \"recovery_speedup\": {:.3}}}{}\n",
            r.workload,
            r.sync,
            r.objects,
            r.slides,
            r.baseline_ms,
            r.checkpointed_ms,
            r.overhead,
            r.snapshots,
            r.stall_p50_us,
            r.stall_p99_us,
            r.stall_max_us,
            r.wal_appends,
            r.recovery_ms,
            r.replayed,
            r.replay_from_zero_ms,
            r.recovery_speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The multi-query serving experiment as a console table: shared-server
/// cost against the aggregate of N dedicated runs, with the dedup hit-rate
/// and answer throughput.
pub fn serve_bench(rows: &[crate::experiments::ServeBenchRow]) -> String {
    let mut out = format!(
        "\n== Multi-query serving: one shared engine vs N dedicated runs (bit-identity asserted) ==\n{:<8} {:<7} {:>6} {:>8} {:>7} {:>10} {:>10} {:>8} {:>12} {:>12}\n",
        "queries",
        "groups",
        "dedup",
        "objects",
        "slides",
        "indep(ms)",
        "serve(ms)",
        "speedup",
        "ans/s",
        "ans/s/query"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<7} {:>5.0}% {:>8} {:>7} {:>10.1} {:>10.1} {:>7.2}x {:>12.0} {:>12.0}\n",
            r.queries,
            r.groups,
            r.dedup_hit_rate * 100.0,
            r.objects,
            r.slides,
            r.independent_ms,
            r.served_ms,
            r.speedup,
            r.answers_per_sec,
            r.per_query_answers_per_sec
        ));
    }
    out
}

/// The multi-query serving experiment as a `BENCH_serve.json` document
/// (hand-rolled: the offline build has no serde).
pub fn serve_bench_json(rows: &[crate::experiments::ServeBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "{{\n  \"benchmark\": \"multi_query_serving\",\n  \"cpus\": {cpus},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"queries\": {}, \"groups\": {}, \"dedup_hit_rate\": {:.4}, \"objects\": {}, \"slides\": {}, \"independent_ms\": {:.3}, \"served_ms\": {:.3}, \"speedup\": {:.3}, \"answers_per_sec\": {:.1}, \"per_query_answers_per_sec\": {:.1}}}{}\n",
            r.queries,
            r.groups,
            r.dedup_hit_rate,
            r.objects,
            r.slides,
            r.independent_ms,
            r.served_ms,
            r.speedup,
            r.answers_per_sec,
            r.per_query_answers_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The observability-overhead experiment as a console table. Paired rows:
/// each driver family timed with the layer off, then on, with the overhead
/// column on the `on` row (the acceptance bar is ≤ 5%).
pub fn observe_bench(rows: &[crate::experiments::ObserveBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "\n== Observability overhead: registry + flight recorders vs Observe::off ({cpus} cpu) ==\n{:<12} {:<5} {:>9} {:>9} {:>9} {:>13} {:>12} {:>12} {:>10}\n",
        "driver",
        "mode",
        "objects",
        "events",
        "sweeps",
        "registry",
        "elapsed(ms)",
        "objects/s",
        "overhead"
    );
    for r in rows {
        let registry = if r.mode == "on" {
            r.registry_sweeps.to_string()
        } else {
            "-".to_string()
        };
        let overhead = if r.mode == "on" {
            format!("{:+.1}%", r.overhead_pct)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{:<12} {:<5} {:>9} {:>9} {:>9} {:>13} {:>12.1} {:>12.0} {:>10}\n",
            r.driver,
            r.mode,
            r.objects,
            r.events,
            r.sweeps,
            registry,
            r.elapsed_ms,
            r.objects_per_sec,
            overhead
        ));
    }
    out
}

/// The observability-overhead experiment as a `BENCH_observe.json`
/// document. The enabled runs' registry is embedded verbatim via
/// [`surge_observe::RegistrySnapshot::to_json`] under `"registry"` — the
/// bench JSON emission rides the registry's own export, not a parallel
/// hand-maintained encoding of the same counters.
pub fn observe_bench_json(
    rows: &[crate::experiments::ObserveBenchRow],
    registry: &surge_observe::RegistrySnapshot,
) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out =
        format!("{{\n  \"benchmark\": \"observe_overhead\",\n  \"cpus\": {cpus},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"driver\": \"{}\", \"mode\": \"{}\", \"objects\": {}, \"events\": {}, \"sweeps\": {}, \"registry_sweeps\": {}, \"elapsed_ms\": {:.3}, \"objects_per_sec\": {:.1}, \"overhead_pct\": {:.2}}}{}\n",
            r.driver,
            r.mode,
            r.objects,
            r.events,
            r.sweeps,
            r.registry_sweeps,
            r.elapsed_ms,
            r.objects_per_sec,
            r.overhead_pct,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"registry\": ");
    out.push_str(registry.to_json().trim_end());
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod observe_tests {
    use super::*;

    #[test]
    fn observe_bench_json_embeds_registry_export() {
        let rows = vec![
            crate::experiments::ObserveBenchRow {
                driver: "sharded",
                mode: "off",
                objects: 10_000,
                events: 40_000,
                sweeps: 300,
                registry_sweeps: 0,
                elapsed_ms: 12.0,
                objects_per_sec: 800_000.0,
                overhead_pct: 0.0,
            },
            crate::experiments::ObserveBenchRow {
                driver: "sharded",
                mode: "on",
                objects: 10_000,
                events: 40_000,
                sweeps: 300,
                registry_sweeps: 300,
                elapsed_ms: 12.3,
                objects_per_sec: 790_000.0,
                overhead_pct: 2.5,
            },
        ];
        let obs = surge_observe::Observe::enabled();
        obs.counter("sharded/sweeps").add(300);
        let json = observe_bench_json(&rows, &obs.snapshot());
        assert!(json.contains("\"benchmark\": \"observe_overhead\""));
        assert!(json.contains("\"overhead_pct\": 2.50"));
        // The registry export is embedded, not re-encoded.
        assert!(json.contains("\"surge-observe-registry-v1\""));
        assert!(json.contains("\"sharded/sweeps\": 300"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
        let table = observe_bench(&rows);
        assert!(table.contains("overhead"));
        assert!(table.contains("+2.5%"));
    }
}

#[cfg(test)]
mod serve_tests {
    use super::*;

    #[test]
    fn serve_bench_json_is_wellformed() {
        let rows = vec![crate::experiments::ServeBenchRow {
            queries: 4,
            groups: 2,
            dedup_hit_rate: 0.5,
            objects: 20_000,
            slides: 79,
            independent_ms: 400.0,
            served_ms: 150.0,
            speedup: 2.67,
            answers_per_sec: 2000.0,
            per_query_answers_per_sec: 500.0,
        }];
        let json = serve_bench_json(&rows);
        assert!(json.contains("\"benchmark\": \"multi_query_serving\""));
        assert!(json.contains("\"dedup_hit_rate\": 0.5000"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = serve_bench(&rows);
        assert!(table.contains("speedup"));
        assert!(table.contains("2.67x"));
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;

    #[test]
    fn checkpoint_bench_json_is_wellformed() {
        let rows = vec![crate::experiments::CheckpointBenchRow {
            workload: "uniform",
            sync: "os-flush",
            objects: 1000,
            slides: 5,
            baseline_ms: 10.0,
            checkpointed_ms: 12.0,
            overhead: 1.2,
            snapshots: 2,
            stall_p50_us: 800.0,
            stall_p99_us: 1200.0,
            stall_max_us: 1500.0,
            wal_appends: 1000,
            recovery_ms: 3.0,
            replayed: 200,
            replay_from_zero_ms: 10.0,
            recovery_speedup: 3.3,
        }];
        let json = checkpoint_bench_json(&rows);
        assert!(json.contains("\"benchmark\": \"checkpoint_recovery\""));
        assert!(json.contains("\"stall_p99_us\": 1200.0"));
        assert!(!json.contains("},\n  ]"));
        let table = checkpoint_bench(&rows);
        assert!(table.contains("uniform"));
        assert!(table.contains("p99"));
    }
}

/// The overload-degradation experiment as a console table: slide-latency
/// percentiles against the derived SLO, time/answers per tier, transition
/// count, and the offline bound-verification tally.
pub fn degrade_bench(rows: &[crate::experiments::DegradeBenchRow]) -> String {
    let mut out = format!(
        "\n== Overload autopilot: flash crowd, exact-only vs degradation controller ==\n{:<11} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>4} {:>22} {:>22} {:>6} {:>6} {:>12}\n",
        "mode",
        "objects",
        "slides",
        "slo(us)",
        "p50(us)",
        "p99(us)",
        "max(us)",
        "slo?",
        "slides e/m/g",
        "time(ms) e/m/g",
        "trans",
        "final",
        "bounds"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:>8} {:>7} {:>9} {:>9.0} {:>9.0} {:>9.0} {:>4} {:>22} {:>22} {:>6} {:>6} {:>12}\n",
            r.mode,
            r.objects,
            r.slides,
            r.slo_budget_us,
            r.p50_us,
            r.p99_us,
            r.max_us,
            if r.within_slo { "ok" } else { "OVER" },
            format!(
                "{}/{}/{}",
                r.slides_in_tier[0], r.slides_in_tier[1], r.slides_in_tier[2]
            ),
            format!(
                "{:.0}/{:.0}/{:.0}",
                r.time_in_tier_ms[0], r.time_in_tier_ms[1], r.time_in_tier_ms[2]
            ),
            r.transitions,
            r.final_tier,
            format!("{}/{} viol", r.bound_violations, r.answers_checked),
        ));
    }
    out
}

/// The overload-degradation experiment as a `BENCH_degrade.json` document
/// (hand-rolled: the offline build has no serde).
pub fn degrade_bench_json(rows: &[crate::experiments::DegradeBenchRow]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "{{\n  \"benchmark\": \"degrade_autopilot\",\n  \"cpus\": {cpus},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"objects\": {}, \"slides\": {}, \"slo_budget_us\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}, \"within_slo\": {}, \"answers_in_tier\": [{}, {}, {}], \"slides_in_tier\": [{}, {}, {}], \"time_in_tier_ms\": [{:.3}, {:.3}, {:.3}], \"transitions\": {}, \"final_tier\": \"{}\", \"answers_checked\": {}, \"bound_violations\": {}}}{}\n",
            r.mode,
            r.objects,
            r.slides,
            r.slo_budget_us,
            r.p50_us,
            r.p99_us,
            r.max_us,
            r.within_slo,
            r.answers_in_tier[0],
            r.answers_in_tier[1],
            r.answers_in_tier[2],
            r.slides_in_tier[0],
            r.slides_in_tier[1],
            r.slides_in_tier[2],
            r.time_in_tier_ms[0],
            r.time_in_tier_ms[1],
            r.time_in_tier_ms[2],
            r.transitions,
            r.final_tier,
            r.answers_checked,
            r.bound_violations,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod degrade_tests {
    use super::*;

    #[test]
    fn degrade_bench_json_is_wellformed() {
        let rows = vec![
            crate::experiments::DegradeBenchRow {
                mode: "exact-only",
                objects: 60_000,
                slides: 401,
                slo_budget_us: 900,
                p50_us: 300.0,
                p99_us: 2_700.0,
                max_us: 4_000.0,
                within_slo: false,
                answers_in_tier: [401, 0, 0],
                slides_in_tier: [401, 0, 0],
                time_in_tier_ms: [350.0, 0.0, 0.0],
                transitions: 0,
                final_tier: "exact",
                answers_checked: 0,
                bound_violations: 0,
            },
            crate::experiments::DegradeBenchRow {
                mode: "autopilot",
                objects: 60_000,
                slides: 401,
                slo_budget_us: 900,
                p50_us: 290.0,
                p99_us: 600.0,
                max_us: 820.0,
                within_slo: true,
                answers_in_tier: [297, 8, 96],
                slides_in_tier: [297, 8, 96],
                time_in_tier_ms: [120.0, 2.0, 10.0],
                transitions: 4,
                final_tier: "exact",
                answers_checked: 380,
                bound_violations: 0,
            },
        ];
        let json = degrade_bench_json(&rows);
        assert!(json.contains("\"benchmark\": \"degrade_autopilot\""));
        assert!(json.contains("\"within_slo\": false"));
        assert!(json.contains("\"within_slo\": true"));
        assert!(json.contains("\"final_tier\": \"exact\""));
        assert!(!json.contains("},\n  ]"));
        let table = degrade_bench(&rows);
        assert!(table.contains("autopilot"));
        assert!(table.contains("OVER"));
        assert!(table.contains("ok"));
    }
}

#[cfg(test)]
mod elastic_tests {
    use super::*;

    #[test]
    fn elastic_bench_json_is_wellformed() {
        let rows = vec![
            crate::experiments::ElasticBenchRow {
                workload: "hotspot",
                mode: "static",
                shards: 2,
                final_shards: 2,
                objects: 2000,
                events: 6000,
                sweeps: 96,
                stolen: 0,
                reshards: 0,
                max_shard_sweeps: 96,
                elapsed_ms: 4.0,
                objects_per_sec: 500_000.0,
                speedup: 1.0,
            },
            crate::experiments::ElasticBenchRow {
                workload: "hotspot",
                mode: "elastic",
                shards: 2,
                final_shards: 8,
                objects: 2000,
                events: 6000,
                sweeps: 96,
                stolen: 40,
                reshards: 2,
                max_shard_sweeps: 30,
                elapsed_ms: 4.2,
                objects_per_sec: 480_000.0,
                speedup: 0.95,
            },
        ];
        let json = elastic_bench_json(&rows);
        assert!(json.contains("\"benchmark\": \"elastic_mesh\""));
        assert!(json.contains("\"mode\": \"elastic\""));
        assert!(json.contains("\"final_shards\": 8"));
        assert!(json.contains("\"reshards\": 2"));
        assert!(!json.contains("},\n  ]"));
        let table = elastic_bench(&rows);
        assert!(table.contains("elastic"));
        assert!(table.contains("max-shard"));
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;

    #[test]
    fn window_bench_json_is_wellformed() {
        let rows = vec![
            crate::experiments::WindowBenchRow {
                workload: "uniform",
                lanes: 0,
                objects: 1000,
                events: 3000,
                transitions: 2000,
                max_lane_transitions: 2000,
                elapsed_ms: 5.0,
                events_per_sec: 600_000.0,
                speedup: 1.0,
            },
            crate::experiments::WindowBenchRow {
                workload: "uniform",
                lanes: 8,
                objects: 1000,
                events: 3000,
                transitions: 2000,
                max_lane_transitions: 260,
                elapsed_ms: 5.5,
                events_per_sec: 545_454.0,
                speedup: 0.9,
            },
        ];
        let json = window_bench_json(&rows);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"lanes\":").count(), 2);
        assert_eq!(json.matches("\"max_lane_transitions\":").count(), 2);
        let table = window_bench(&rows);
        assert!(table.contains("mono"));
        assert!(table.contains("lanes=8"));
        assert!(table.contains("0.90x"));
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;

    #[test]
    fn shard_bench_json_is_wellformed() {
        let rows = vec![
            crate::experiments::ShardBenchRow {
                workload: "uniform",
                shards: 0,
                objects: 1000,
                events: 2500,
                sweeps: 40,
                elapsed_ms: 12.0,
                objects_per_sec: 83_333.0,
                speedup: 1.0,
                max_shard_sweeps: 40,
            },
            crate::experiments::ShardBenchRow {
                workload: "uniform",
                shards: 4,
                objects: 1000,
                events: 2500,
                sweeps: 40,
                elapsed_ms: 6.0,
                objects_per_sec: 166_666.0,
                speedup: 2.0,
                max_shard_sweeps: 12,
            },
        ];
        let json = shard_bench_json(&rows);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"shards\":").count(), 2);
        let table = shard_bench(&rows);
        assert!(table.contains("seq-1t"));
        assert!(table.contains("shards=4"));
        assert!(table.contains("2.00x"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_bench_json_is_wellformed() {
        let rows = vec![
            crate::experiments::SweepBenchRow {
                n: 64,
                naive_us: 100.0,
                segtree_us: 20.0,
                speedup: 5.0,
                tree_flat_us: 10.0,
                tree_recursive_us: 15.0,
                tree_speedup: 1.5,
                burst_fused_us: 8.0,
                burst_split_us: 12.0,
                burst_speedup: 1.5,
            },
            crate::experiments::SweepBenchRow {
                n: 256,
                naive_us: 1000.0,
                segtree_us: 100.0,
                speedup: 10.0,
                tree_flat_us: 40.0,
                tree_recursive_us: 80.0,
                tree_speedup: 2.0,
                burst_fused_us: 30.0,
                burst_split_us: 45.0,
                burst_speedup: 1.5,
            },
        ];
        let prows = vec![
            crate::experiments::PersistentBenchRow {
                workload: "uniform",
                mode: "rebuild",
                objects: 600,
                searches: 40,
                churn_ops: 0,
                rebuilt_leaves: 4_000,
                full_rebuilds: 40,
                elapsed_ms: 12.0,
                speedup: 1.0,
                epoch_hits: 0,
                plan_reuses: 0,
            },
            crate::experiments::PersistentBenchRow {
                workload: "uniform",
                mode: "persistent",
                objects: 600,
                searches: 40,
                churn_ops: 900,
                rebuilt_leaves: 300,
                full_rebuilds: 3,
                elapsed_ms: 8.0,
                speedup: 1.5,
                epoch_hits: 5,
                plan_reuses: 12,
            },
        ];
        let json = sweep_bench_json(&rows, &prows);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"n\":").count(), 2);
        assert_eq!(json.matches("\"tree_speedup\":").count(), 2);
        assert_eq!(json.matches("\"rebuilt_leaves\":").count(), 2);
        assert_eq!(json.matches("\"mode\": \"persistent\"").count(), 1);
        assert!(sweep_bench(&rows).contains("5.0x"));
        assert!(sweep_bench(&rows).contains("1.50x"));
        let table = persistent_bench(&prows);
        assert!(table.contains("persistent"));
        assert!(table.contains("rebuild"));
        assert!(table.contains("4000"));
    }

    #[test]
    fn latency_table_renders() {
        let rows = vec![crate::experiments::LatencyRow {
            algo: "CCS",
            summary: surge_stream::LatencySummary {
                count: 10,
                mean_us: 1.0,
                p50_us: 0.8,
                p95_us: 2.0,
                p99_us: 3.0,
                max_us: 9.0,
            },
            final_score: 1.25,
        }];
        let text = latency("Taxi", &rows);
        assert!(text.contains("CCS"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn roadnet_table_renders() {
        let rows = vec![crate::experiments::RoadnetRow {
            segment_len: 50.0,
            segments: 1_000,
            time_per_object_us: 2.5,
            hit_rate: 0.91,
        }];
        let text = roadnet(&rows);
        assert!(text.contains("50"));
        assert!(text.contains("91.0%"));
    }

    #[test]
    fn runtime_matrix_renders_all_cells() {
        let rows = vec![
            RuntimePoint {
                dataset: "Taxi".into(),
                param: "1min".into(),
                algo: "CCS",
                time_per_object_us: 1.5,
                objects: 100,
                stable: true,
            },
            RuntimePoint {
                dataset: "Taxi".into(),
                param: "1min".into(),
                algo: "Base",
                time_per_object_us: 9.0,
                objects: 100,
                stable: false,
            },
        ];
        let s = runtime("Fig.5", &rows);
        assert!(s.contains("CCS"));
        assert!(s.contains("Base"));
        assert!(s.contains("1.50us"));
        assert!(s.contains("9.00us*"));
    }

    #[test]
    fn table2_formats_percentages() {
        let s = table2(&[Table2Row {
            dataset: "UK".into(),
            window: "1h".into(),
            ccs_ratio: 0.0027,
            bccs_ratio: 0.2823,
        }]);
        assert!(s.contains("0.27%"));
        assert!(s.contains("28.23%"));
    }
}
