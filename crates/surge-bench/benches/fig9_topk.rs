//! Criterion bench for Fig. 9: top-k detector runtime vs k (kCCS, kGAPS,
//! kMGAPS) and the naive greedy strawman.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use surge_bench::experiments::DEFAULT_ALPHA;
use surge_core::{RegionSize, SurgeQuery, TopKDetector, WindowConfig};
use surge_stream::{drive_topk, Dataset, SlidingWindowEngine, StreamGenerator};
use surge_topk::{KCellCspot, KGapSurge, KMgapSurge, NaiveTopK};

const SEED: u64 = 42;

fn setup(objects: usize) -> (SurgeQuery, Vec<surge_core::SpatialObject>, WindowConfig) {
    let dataset = Dataset::Taxi;
    let windows = WindowConfig::equal_minutes(2);
    let q = dataset.default_region();
    let query = SurgeQuery::new(
        dataset.spec().extent,
        RegionSize::new(q.width, q.height),
        windows,
        DEFAULT_ALPHA,
    );
    let stream = StreamGenerator::new(dataset.workload(objects, SEED)).generate();
    (query, stream, windows)
}

fn run<D: TopKDetector>(mut det: D, stream: &[surge_core::SpatialObject], windows: WindowConfig) {
    let mut engine = SlidingWindowEngine::new(windows);
    drive_topk(&mut det, &mut engine, stream.iter().copied());
}

fn bench_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_k");
    g.sample_size(10);
    for k in [3usize, 5, 9] {
        let (query, stream, windows) = setup(2_000);
        g.bench_with_input(BenchmarkId::new("kCCS", k), &k, |b, &k| {
            b.iter(|| run(KCellCspot::new(query, k), &stream, windows))
        });
        let (query, stream, windows) = setup(10_000);
        g.bench_with_input(BenchmarkId::new("kGAPS", k), &k, |b, &k| {
            b.iter(|| run(KGapSurge::new(query, k), &stream, windows))
        });
        g.bench_with_input(BenchmarkId::new("kMGAPS", k), &k, |b, &k| {
            b.iter(|| run(KMgapSurge::new(query, k), &stream, windows))
        });
    }
    g.finish();
}

fn bench_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_naive");
    g.sample_size(10);
    let (query, stream, windows) = setup(300);
    g.bench_function("Naive_k3", |b| {
        b.iter(|| run(NaiveTopK::new(query, 3), &stream, windows))
    });
    g.finish();
}

criterion_group!(benches, bench_k, bench_naive);
criterion_main!(benches);
