//! Criterion bench for Fig. 5: exact-solution runtime (CCS, B-CCS, Base,
//! aG2) per processed stream, on the Taxi model, across window lengths and
//! rectangle sizes. Reduced scale so `cargo bench` completes quickly; the
//! `surge-exp fig5` harness produces the paper-layout tables at full scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use surge_bench::experiments::{run_algo, Algo, DEFAULT_ALPHA};
use surge_core::WindowConfig;
use surge_stream::Dataset;

const OBJECTS: usize = 2_500;
const SEED: u64 = 42;

fn bench_window_axis(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_window");
    g.sample_size(10);
    for minutes in [1u64, 5] {
        let windows = WindowConfig::equal_minutes(minutes);
        for algo in Algo::EXACT_SET {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{minutes}min")),
                &windows,
                |b, &w| {
                    b.iter(|| run_algo(algo, Dataset::Taxi, w, 1.0, DEFAULT_ALPHA, OBJECTS, SEED))
                },
            );
        }
    }
    g.finish();
}

fn bench_rect_axis(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_rect");
    g.sample_size(10);
    let windows = WindowConfig::equal_minutes(2);
    for scale in [0.5f64, 1.0, 3.0] {
        for algo in Algo::EXACT_SET {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{scale}q")),
                &scale,
                |b, &s| {
                    b.iter(|| {
                        run_algo(
                            algo,
                            Dataset::Taxi,
                            windows,
                            s,
                            DEFAULT_ALPHA,
                            OBJECTS,
                            SEED,
                        )
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_window_axis, bench_rect_axis);
criterion_main!(benches);
