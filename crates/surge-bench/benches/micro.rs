//! Micro-benchmarks for the building blocks: the SL-CSPOT sweep, the sliding
//! window engine, and the workload generator. These are not paper figures;
//! they quantify the substrate costs that the end-to-end figures build on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use surge_core::{BurstParams, Rect, SpatialObject, WindowConfig, WindowKind};
use surge_exact::{maxrs_sweep, sl_cspot, sl_cspot_naive, SweepRect};
use surge_stream::{Dataset, SlidingWindowEngine, StreamGenerator};

fn make_rects(n: usize) -> Vec<SweepRect> {
    // Deterministic LCG scene with ~50% overlap density and mixed windows.
    let mut state = 0x12345678u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / ((1u64 << 31) as f64)
    };
    (0..n)
        .map(|i| {
            let x0 = next() * 10.0;
            let y0 = next() * 10.0;
            SweepRect {
                rect: Rect::new(x0, y0, x0 + 1.0, y0 + 1.0),
                weight: 1.0 + next(),
                kind: if i % 3 == 0 {
                    WindowKind::Past
                } else {
                    WindowKind::Current
                },
            }
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sl_cspot");
    let params = BurstParams {
        alpha: 0.5,
        current_norm: 1.0,
        past_norm: 1.0,
    };
    let area = Rect::new(0.0, 0.0, 50.0, 50.0);
    for n in [16usize, 64, 256] {
        let rects = make_rects(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &rects, |b, r| {
            b.iter(|| sl_cspot(r, &area, &params))
        });
    }
    g.finish();
}

/// The PR's headline comparison: the `O(n log n)` segment-tree sweep vs the
/// retained `O(n²)` naive sweep on identical scenes. `surge_exp sweep-bench`
/// emits the same comparison as `BENCH_sweep.json`.
fn bench_sweep_segtree_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    let params = BurstParams {
        alpha: 0.5,
        current_norm: 1.0,
        past_norm: 1.0,
    };
    let area = Rect::new(0.0, 0.0, 50.0, 50.0);
    for n in [64usize, 256, 1024, 4096] {
        let rects = make_rects(n);
        g.bench_with_input(BenchmarkId::new("sweep_segtree", n), &rects, |b, r| {
            b.iter(|| sl_cspot(r, &area, &params))
        });
        // The naive sweep at n = 4096 touches ~(4n)² slab×interval pairs;
        // keep scenes identical so the ratio is the speedup.
        g.bench_with_input(BenchmarkId::new("sweep_naive", n), &rects, |b, r| {
            b.iter(|| sl_cspot_naive(r, &area, &params))
        });
    }
    g.finish();
}

/// Ablation: the O(n log n) α=0 MaxRS sweep vs the general O(n²) sweep on
/// the same scenes (the general sweep is what the detectors use; this
/// quantifies what an α=0 fast path would buy).
fn bench_maxrs_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("maxrs_vs_general");
    let params = BurstParams {
        alpha: 0.0,
        current_norm: 1.0,
        past_norm: 1.0,
    };
    let area = Rect::new(0.0, 0.0, 50.0, 50.0);
    for n in [64usize, 256] {
        let rects = make_rects(n);
        g.bench_with_input(BenchmarkId::new("general", n), &rects, |b, r| {
            b.iter(|| sl_cspot(r, &area, &params))
        });
        g.bench_with_input(BenchmarkId::new("maxrs_fast", n), &rects, |b, r| {
            b.iter(|| maxrs_sweep(r, &area, &params))
        });
    }
    g.finish();
}

fn bench_window_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_engine");
    g.sample_size(20);
    let stream: Vec<SpatialObject> =
        StreamGenerator::new(Dataset::Taxi.workload(50_000, 1)).generate();
    g.bench_function("push_50k", |b| {
        b.iter(|| {
            let mut eng = SlidingWindowEngine::new(WindowConfig::equal_minutes(5));
            let mut events = 0usize;
            for o in &stream {
                events += eng.push(*o).len();
            }
            events
        })
    });
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.sample_size(20);
    g.bench_function("taxi_50k", |b| {
        b.iter(|| StreamGenerator::new(Dataset::Taxi.workload(50_000, 1)).generate())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sweep,
    bench_sweep_segtree_vs_naive,
    bench_maxrs_ablation,
    bench_window_engine,
    bench_generator
);
criterion_main!(benches);
