//! Criterion bench for Fig. 8: scalability of CCS and GAPS as the stream is
//! stretched to higher arrival rates (more resident objects per window).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use surge_bench::experiments::DEFAULT_ALPHA;
use surge_core::{RegionSize, SurgeQuery, WindowConfig};
use surge_stream::{drive, Dataset, SlidingWindowEngine, StreamGenerator};

use surge_approx::GapSurge;
use surge_exact::CellCspot;

const OBJECTS: usize = 8_000;
const SEED: u64 = 42;

fn run(rate_mpd: f64, exact: bool) {
    let dataset = Dataset::Taxi;
    // A short window keeps resident counts proportional to rate while the
    // total object budget stays bench-sized.
    let windows = WindowConfig::equal_minutes(2);
    let q = dataset.default_region();
    let query = SurgeQuery::new(
        dataset.spec().extent,
        RegionSize::new(q.width, q.height),
        windows,
        DEFAULT_ALPHA,
    );
    let workload = dataset
        .workload(OBJECTS, SEED)
        .stretched_to_rate(rate_mpd * 1e6);
    let stream = StreamGenerator::new(workload).generate();
    let mut engine = SlidingWindowEngine::new(windows);
    if exact {
        let mut d = CellCspot::new(query);
        drive(&mut d, &mut engine, stream.into_iter());
    } else {
        let mut d = GapSurge::new(query);
        drive(&mut d, &mut engine, stream.into_iter());
    }
}

fn bench_rates(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_rate");
    g.sample_size(10);
    for rate in [2.0f64, 6.0, 10.0] {
        g.bench_with_input(
            BenchmarkId::new("CCS", format!("{rate}M")),
            &rate,
            |b, &r| b.iter(|| run(r, true)),
        );
        g.bench_with_input(
            BenchmarkId::new("GAPS", format!("{rate}M")),
            &rate,
            |b, &r| b.iter(|| run(r, false)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_rates);
criterion_main!(benches);
