//! Criterion bench for Fig. 7: runtime vs the balance parameter α (the paper
//! finds α has almost no effect on efficiency — flat curves here confirm it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use surge_bench::experiments::{run_algo, Algo};
use surge_core::WindowConfig;
use surge_stream::Dataset;

const SEED: u64 = 42;

fn bench_alpha(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_alpha");
    g.sample_size(10);
    let windows = WindowConfig::equal_minutes(2);
    for alpha in [0.1f64, 0.5, 0.9] {
        for (algo, objects) in [
            (Algo::Ccs, 2_500usize),
            (Algo::Ag2, 1_000),
            (Algo::Gaps, 20_000),
            (Algo::Mgaps, 20_000),
        ] {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("a{alpha}")),
                &alpha,
                |b, &a| b.iter(|| run_algo(algo, Dataset::Us, windows, 1.0, a, objects, SEED)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_alpha);
criterion_main!(benches);
