//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `ablation_bounds` — the value of the upper-bound machinery: CCS
//!   (static + dynamic bounds + candidate points) vs B-CCS (static only)
//!   vs Base (none); the cost gap is the paper's Table II / Fig. 5 story.
//! * `ablation_ag2_cell` — sensitivity of the adapted aG2 baseline to its
//!   grid-cell factor (the paper fixes 10q; this shows the choice matters).
//! * `ablation_sweep` — the generic SL-CSPOT sweep vs the `O(n log n)`
//!   segment-tree MaxRS sweep on the α = 0 special case.
//! * `ablation_roadnet_segment` — road-network detector cost vs segment
//!   length (finer segments = more candidates, colder per-segment state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use surge_baseline::Ag2;
use surge_bench::experiments::{run_algo, Algo, DEFAULT_ALPHA};
use surge_core::{
    BurstDetector, BurstParams, Point, Rect, RegionSize, SpatialObject, SurgeQuery, WindowConfig,
    WindowKind,
};
use surge_exact::{maxrs_sweep, sl_cspot, SweepRect};
use surge_roadnet::{grid_city, GridCityConfig, NetGapSurge};
use surge_stream::{Dataset, SlidingWindowEngine, StreamGenerator};

const OBJECTS: usize = 2_500;
const SEED: u64 = 42;

fn bench_bound_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bounds");
    g.sample_size(10);
    let windows = WindowConfig::equal_minutes(2);
    for algo in [Algo::Ccs, Algo::Bccs, Algo::Base] {
        g.bench_function(algo.name(), |b| {
            b.iter(|| {
                run_algo(
                    algo,
                    Dataset::Taxi,
                    windows,
                    1.0,
                    DEFAULT_ALPHA,
                    OBJECTS,
                    SEED,
                )
            })
        });
    }
    g.finish();
}

fn bench_ag2_cell_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ag2_cell");
    g.sample_size(10);
    let dataset = Dataset::Taxi;
    let q = dataset.default_region();
    let windows = WindowConfig::equal_minutes(2);
    let query = SurgeQuery::new(
        dataset.spec().extent,
        RegionSize::new(q.width, q.height),
        windows,
        DEFAULT_ALPHA,
    );
    let stream = StreamGenerator::new(dataset.workload(OBJECTS, SEED)).generate();
    for factor in [2.0f64, 5.0, 10.0, 20.0] {
        g.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            b.iter(|| {
                let mut det = Ag2::with_cell_factor(query, f);
                let mut engine = SlidingWindowEngine::new(windows);
                for obj in stream.iter().copied() {
                    for ev in engine.push(obj) {
                        det.on_event(&ev);
                    }
                }
                det.current().map(|a| a.score).unwrap_or(0.0)
            })
        });
    }
    g.finish();
}

/// A deterministic snapshot of current-window sweep rectangles.
fn snapshot(n: usize) -> Vec<SweepRect> {
    (0..n)
        .map(|i| {
            let x = (i * 37 % 199) as f64 * 0.5;
            let y = (i * 61 % 173) as f64 * 0.5;
            SweepRect {
                rect: Rect::new(x, y, x + 4.0, y + 4.0),
                weight: 1.0 + (i % 7) as f64,
                kind: WindowKind::Current,
            }
        })
        .collect()
}

fn bench_sweep_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sweep");
    g.sample_size(10);
    let area = Rect::new(
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::INFINITY,
    );
    let params = BurstParams::new(0.0, WindowConfig::equal(1_000));
    for n in [200usize, 800, 2_000] {
        let rects = snapshot(n);
        g.bench_with_input(BenchmarkId::new("sl_cspot", n), &rects, |b, r| {
            b.iter(|| sl_cspot(r, &area, &params).map(|s| s.score))
        });
        g.bench_with_input(BenchmarkId::new("maxrs_tree", n), &rects, |b, r| {
            b.iter(|| maxrs_sweep(r, &area, &params).map(|s| s.score))
        });
    }
    g.finish();
}

fn bench_roadnet_segment_len(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_roadnet_segment");
    g.sample_size(10);
    let city = grid_city(&GridCityConfig {
        nx: 14,
        ny: 14,
        spacing: 100.0,
        jitter: 0.1,
        drop_fraction: 0.1,
        seed: 7,
    });
    let windows = WindowConfig::equal(30_000);
    let params = BurstParams::new(DEFAULT_ALPHA, windows);
    let stream: Vec<SpatialObject> = (0..6_000u64)
        .map(|i| {
            SpatialObject::new(
                i,
                1.0 + (i % 5) as f64,
                Point::new((i * 131 % 1_300) as f64, (i * 71 % 1_300) as f64),
                i * 40,
            )
        })
        .collect();
    for seg_len in [25.0f64, 50.0, 100.0, 200.0] {
        g.bench_with_input(BenchmarkId::from_parameter(seg_len), &seg_len, |b, &l| {
            b.iter(|| {
                let mut det = NetGapSurge::new(city.clone(), l, params, 80.0);
                let mut engine = SlidingWindowEngine::new(windows);
                for obj in stream.iter().copied() {
                    for ev in engine.push(obj) {
                        det.on_event(&ev);
                    }
                }
                det.current().map(|a| a.score).unwrap_or(0.0)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bound_ablation,
    bench_ag2_cell_factor,
    bench_sweep_variants,
    bench_roadnet_segment_len
);
criterion_main!(benches);
