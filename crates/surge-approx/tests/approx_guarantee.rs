//! Approximation-guarantee property tests (Theorems 3 and 4): at every
//! snapshot of a random stream, the regions returned by GAPS and MGAPS must
//! score within `[(1−α)/4 · OPT, OPT]`, where OPT is the exact detector's
//! score. Also checks that the *reported* score equals the true burst score
//! of the reported region.

use proptest::prelude::*;

use surge_approx::{GapSurge, MgapSurge};
use surge_core::{BurstDetector, Point, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
use surge_exact::{score_of_region, snapshot_bursty_region};
use surge_stream::SlidingWindowEngine;

/// Objects in *generic position*: a small irrational-ish offset keeps every
/// coordinate off the grid lines. The `(1−α)/4` guarantee (like the paper's
/// proof) assumes no object sits exactly on a cell boundary — with grid-line
/// data, half-open cell assignment and closed-region scoring can disagree on
/// a measure-zero set.
fn object_stream(max_len: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec((0u64..25, 0u64..25, 1u64..5, 0u64..30), 1..max_len).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, dt))| {
                t += dt;
                SpatialObject::new(
                    i as u64,
                    w as f64,
                    Point::new(x as f64 / 10.0 + 0.0101, y as f64 / 10.0 + 0.0073),
                    t,
                )
            })
            .collect()
    })
}

fn check_guarantee(objects: &[SpatialObject], alpha: f64, use_mgaps: bool) {
    let query = SurgeQuery::whole_space(RegionSize::new(0.5, 0.5), WindowConfig::equal(100), alpha);
    let params = query.burst_params();
    let ratio = params.grid_approx_ratio();
    let mut engine = SlidingWindowEngine::new(query.windows);
    let mut gaps = GapSurge::new(query);
    let mut mgaps = MgapSurge::new(query);

    for (step, obj) in objects.iter().enumerate() {
        for ev in engine.push(*obj) {
            gaps.on_event(&ev);
            mgaps.on_event(&ev);
        }
        let current: Vec<SpatialObject> = engine.current_objects().copied().collect();
        let past: Vec<SpatialObject> = engine.past_objects().copied().collect();
        let Some(opt) = snapshot_bursty_region(&current, &past, &query) else {
            continue;
        };
        let got = if use_mgaps {
            mgaps.current()
        } else {
            gaps.current()
        };
        let Some(ans) = got else {
            assert!(
                opt.score <= 1e-12,
                "step {step}: approx empty but OPT = {}",
                opt.score
            );
            continue;
        };
        // In generic position the half-open cell and the closed region hold
        // the same objects, so the reported score is the true burst score.
        let true_score = score_of_region(&current, &past, &ans.region, &params);
        assert!(
            (true_score - ans.score).abs() <= 1e-9 * true_score.abs().max(1e-12),
            "step {step}: reported {} but true region score {}",
            ans.score,
            true_score
        );
        // Guarantee: ratio * OPT <= score <= OPT.
        assert!(
            ans.score <= opt.score + 1e-9 * opt.score.abs().max(1e-12),
            "step {step}: approx {} exceeds OPT {}",
            ans.score,
            opt.score
        );
        assert!(
            ans.score >= ratio * opt.score - 1e-9,
            "step {step}: approx {} below guarantee {} (OPT {}, ratio {})",
            ans.score,
            ratio * opt.score,
            opt.score,
            ratio
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gaps_respects_guarantee(objects in object_stream(40), alpha in 0.0f64..0.95) {
        check_guarantee(&objects, alpha, false);
    }

    #[test]
    fn mgaps_respects_guarantee(objects in object_stream(40), alpha in 0.0f64..0.95) {
        check_guarantee(&objects, alpha, true);
    }

    #[test]
    fn mgaps_never_worse_than_gaps(objects in object_stream(40), alpha in 0.0f64..0.95) {
        let query = SurgeQuery::whole_space(
            RegionSize::new(0.5, 0.5),
            WindowConfig::equal(100),
            alpha,
        );
        let mut engine = SlidingWindowEngine::new(query.windows);
        let mut gaps = GapSurge::new(query);
        let mut mgaps = MgapSurge::new(query);
        for obj in &objects {
            for ev in engine.push(*obj) {
                gaps.on_event(&ev);
                mgaps.on_event(&ev);
            }
            let g = gaps.current().map(|a| a.score).unwrap_or(0.0);
            let m = mgaps.current().map(|a| a.score).unwrap_or(0.0);
            prop_assert!(m >= g - 1e-12, "MGAPS {m} < GAPS {g}");
        }
    }
}

/// The paper's tightness example (Lemma 7): four unit-weight current objects
/// at the four corners of a cell intersection, with four past objects — one
/// per surrounding cell. OPT covers all four current objects (score 4·u);
/// every cell holds one current + one past object (score (1−α)·u).
#[test]
fn lemma7_tight_instance() {
    let alpha = 0.5;
    let query =
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), alpha);
    let mut engine = SlidingWindowEngine::new(query.windows);
    let mut gaps = GapSurge::new(query);

    // Past objects: one per surrounding cell, far enough from the corner
    // that an optimal region (e.g. [0.5,1.5]²) avoids all of them.
    let past_pts = [(0.25, 0.25), (1.75, 0.25), (0.25, 1.75), (1.75, 1.75)];
    // Current objects: tight cluster around the grid corner (1,1), one per cell.
    let cur_pts = [(0.9, 0.9), (1.1, 0.9), (0.9, 1.1), (1.1, 1.1)];

    let mut id = 0;
    for (x, y) in past_pts {
        for ev in engine.push(SpatialObject::new(id, 1.0, Point::new(x, y), 0)) {
            gaps.on_event(&ev);
        }
        id += 1;
    }
    // Push the past objects out of the current window, then add the cluster.
    for (x, y) in cur_pts {
        for ev in engine.push(SpatialObject::new(id, 1.0, Point::new(x, y), 1_500)) {
            gaps.on_event(&ev);
        }
        id += 1;
    }

    let current: Vec<SpatialObject> = engine.current_objects().copied().collect();
    let past: Vec<SpatialObject> = engine.past_objects().copied().collect();
    assert_eq!(current.len(), 4);
    assert_eq!(past.len(), 4);

    let opt = snapshot_bursty_region(&current, &past, &query).unwrap();
    let got = gaps.current().unwrap();
    let u = 1.0 / 1_000.0;
    assert!((opt.score - 4.0 * u).abs() < 1e-12, "OPT {}", opt.score);
    assert!(
        (got.score - (1.0 - alpha) * u).abs() < 1e-12,
        "GAPS {}",
        got.score
    );
    // Exactly the tight ratio (1-alpha)/4.
    assert!((got.score / opt.score - (1.0 - alpha) / 4.0).abs() < 1e-12);
}
