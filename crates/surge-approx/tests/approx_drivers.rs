//! Driver-equivalence differentials for the approx detectors: GAPS and
//! MGAPS must produce **bit-identical** per-slide answer sequences under
//! the sequential incremental driver and the sharded driver, at every
//! shard count — the same contract the exact detector family carries.
//! Streams come from `surge-testkit`'s collision-heavy lattice generator
//! (snapped positions, tied weights), the worst case for tie-breaking.

use proptest::prelude::*;
use surge_approx::{GapSurge, MgapSurge};
use surge_core::{RegionAnswer, RegionSize, SurgeQuery, WindowConfig};
use surge_stream::{drive_incremental, drive_sharded};
use surge_testkit::arb_lattice_stream;

fn assert_bitwise(a: &[Option<RegionAnswer>], b: &[Option<RegionAnswer>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: slide counts differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        match (x, y) {
            (None, None) => {}
            (Some(p), Some(q)) => {
                assert_eq!(
                    p.score.to_bits(),
                    q.score.to_bits(),
                    "{ctx}: slide {i} score"
                );
                assert_eq!(
                    p.point.x.to_bits(),
                    q.point.x.to_bits(),
                    "{ctx}: slide {i} x"
                );
                assert_eq!(
                    p.point.y.to_bits(),
                    q.point.y.to_bits(),
                    "{ctx}: slide {i} y"
                );
                assert_eq!(p.region, q.region, "{ctx}: slide {i} region");
            }
            _ => panic!("{ctx}: slide {i} presence differs ({x:?} vs {y:?})"),
        }
    }
}

fn query(windows: WindowConfig, alpha: f64) -> SurgeQuery {
    SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, alpha)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gaps_sharded_matches_incremental(
        objects in arb_lattice_stream(60),
        window_len in 4u64..120,
        alpha in 0.0f64..0.95,
        slide in 1usize..9,
        shard_pick in 0usize..4,
    ) {
        let shards = [1usize, 2, 4, 8][shard_pick];
        let windows = WindowConfig::equal(window_len);
        let q = query(windows, alpha);
        let mut seq = GapSurge::new(q);
        let base = drive_incremental(&mut seq, windows, objects.iter().copied(), slide, 2);
        let mut sharded = GapSurge::with_shards(q, shards);
        let got = drive_sharded(&mut sharded, windows, objects.iter().copied(), slide);
        assert_bitwise(base.answers.retained(), got.answers.retained(), &format!("GAPS @{shards} shards"));
    }

    #[test]
    fn mgaps_sharded_matches_incremental(
        objects in arb_lattice_stream(60),
        window_len in 4u64..120,
        alpha in 0.0f64..0.95,
        slide in 1usize..9,
        shard_pick in 0usize..3,
    ) {
        let shards = [1usize, 2, 4][shard_pick];
        let windows = WindowConfig::equal(window_len);
        let q = query(windows, alpha);
        let mut seq = MgapSurge::new(q);
        let base = drive_incremental(&mut seq, windows, objects.iter().copied(), slide, 2);
        let mut sharded = MgapSurge::with_shards(q, shards);
        let got = drive_sharded(&mut sharded, windows, objects.iter().copied(), slide);
        assert_bitwise(base.answers.retained(), got.answers.retained(), &format!("MGAPS @{shards} shards"));
    }

    #[test]
    fn gaps_shard_counts_agree_with_each_other(
        objects in arb_lattice_stream(50),
        window_len in 4u64..80,
        slide in 1usize..6,
    ) {
        let windows = WindowConfig::equal(window_len);
        let q = query(windows, 0.5);
        let mut base = GapSurge::with_shards(q, 1);
        let a = drive_sharded(&mut base, windows, objects.iter().copied(), slide);
        for shards in [2usize, 8] {
            let mut det = GapSurge::with_shards(q, shards);
            let b = drive_sharded(&mut det, windows, objects.iter().copied(), slide);
            assert_bitwise(a.answers.retained(), b.answers.retained(), &format!("GAPS 1 vs {shards} shards"));
        }
    }
}
