//! # surge-approx
//!
//! Approximate SURGE solutions with an O(log n) per-event cost and a
//! `(1 − α)/4` burst-score guarantee (Theorems 3 and 4):
//!
//! * [`gaps`] — GAP-SURGE (Algorithm 3): query-sized grid cells as candidate
//!   regions, score-ordered heap.
//! * [`mgaps`] — MGAP-SURGE (Algorithm 5): four half-cell-shifted GAP-SURGE
//!   instances; reports the best of the four.
//!
//! Both detectors implement the full production surface: sequential
//! [`surge_core::BurstDetector`], sharded ingest, the (trivially empty)
//! incremental-sweep contract, and bit-identical checkpoint capture/restore
//! — so they can stand in for the exact detector anywhere in the pipeline,
//! including under the overload autopilot in `surge-stream`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gaps;
pub mod mgaps;

pub use gaps::{GapShardWorker, GapSurge};
pub use mgaps::{MgapShardWorker, MgapSurge};
