//! # surge-approx
//!
//! Approximate SURGE solutions with an O(log n) per-event cost and a
//! `(1 − α)/4` burst-score guarantee (Theorems 3 and 4):
//!
//! * [`gaps`] — GAP-SURGE (Algorithm 3): query-sized grid cells as candidate
//!   regions, score-ordered heap.
//! * [`mgaps`] — MGAP-SURGE (Algorithm 5): four half-cell-shifted GAP-SURGE
//!   instances; reports the best of the four.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gaps;
pub mod mgaps;

pub use gaps::GapSurge;
pub use mgaps::MgapSurge;
