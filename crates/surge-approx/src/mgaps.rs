//! MGAP-SURGE: the multi-grid approximate solution (§V-B, Algorithm 5).
//!
//! GAP-SURGE's quality depends on where the grid lines fall relative to the
//! true bursty region. MGAP-SURGE runs four GAP-SURGE instances on grids
//! shifted by half a cell in x and/or y and reports the best of the four
//! answers, which markedly improves empirical quality (Table IV) while
//! keeping the same O(log n) update cost and the same `1−α/4` worst-case
//! guarantee (Theorem 4).

use surge_core::{
    BurstDetector, DetectorStats, Event, GridSpec, Rect, RegionAnswer, SurgeQuery, TotalF64,
};

use crate::gaps::GapSurge;

/// The multi-grid approximate detector (MGAPS).
#[derive(Debug)]
pub struct MgapSurge {
    grids: [GapSurge; 4],
    stats_events: u64,
    stats_new: u64,
}

impl MgapSurge {
    /// Creates the four shifted GAPS instances for `query`.
    pub fn new(query: SurgeQuery) -> Self {
        let specs = GridSpec::mgap_grids(query.region.width, query.region.height);
        MgapSurge {
            grids: specs.map(|g| GapSurge::with_grid(query, g)),
            stats_events: 0,
            stats_new: 0,
        }
    }

    /// Access to the four underlying grids (in the paper's Grid 1–4 order).
    pub fn instances(&self) -> &[GapSurge; 4] {
        &self.grids
    }

    /// Top-k per Algorithm 7: take the top `4k` cells from each grid, merge
    /// the up-to-`16k` candidates, and greedily keep the best `k` pairwise
    /// non-overlapping cells.
    pub fn topk(&self, k: usize) -> Vec<RegionAnswer> {
        let mut candidates: Vec<RegionAnswer> =
            self.grids.iter().flat_map(|g| g.topk(4 * k)).collect();
        candidates.sort_by_key(|c| std::cmp::Reverse(TotalF64(c.score)));
        let mut chosen: Vec<RegionAnswer> = Vec::with_capacity(k);
        for cand in candidates {
            if chosen.len() == k {
                break;
            }
            let overlaps = chosen
                .iter()
                .any(|c| c.region.interior_intersects(&cand.region));
            if !overlaps {
                chosen.push(cand);
            }
        }
        chosen
    }
}

impl BurstDetector for MgapSurge {
    fn on_event(&mut self, event: &Event) {
        self.stats_events += 1;
        if event.kind == surge_core::EventKind::New {
            self.stats_new += 1;
        }
        for g in &mut self.grids {
            g.on_event(event);
        }
    }

    fn current(&mut self) -> Option<RegionAnswer> {
        let mut best: Option<RegionAnswer> = None;
        for g in &mut self.grids {
            if let Some(ans) = g.current() {
                if best.as_ref().is_none_or(|b| ans.score > b.score) {
                    best = Some(ans);
                }
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "MGAPS"
    }

    fn stats(&self) -> DetectorStats {
        DetectorStats {
            events: self.stats_events,
            new_events: self.stats_new,
            searches: 0,
            events_triggering_search: 0,
        }
    }
}

/// Convenience: whether two answers report regions with disjoint interiors.
pub fn regions_disjoint(a: &Rect, b: &Rect) -> bool {
    !a.interior_intersects(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::{Point, RegionSize, SpatialObject, WindowConfig};

    fn query(alpha: f64) -> SurgeQuery {
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), alpha)
    }

    fn obj(id: u64, w: f64, x: f64, y: f64, t: u64) -> SpatialObject {
        SpatialObject::new(id, w, Point::new(x, y), t)
    }

    #[test]
    fn empty_returns_none() {
        assert!(MgapSurge::new(query(0.5)).current().is_none());
    }

    #[test]
    fn beats_or_equals_single_grid() {
        // Objects straddling the anchored grid line x=1: the shifted grid
        // captures both, so MGAPS >= GAPS.
        let q = query(0.0);
        let mut mgaps = MgapSurge::new(q);
        let mut gaps = crate::gaps::GapSurge::new(q);
        for (i, (x, y)) in [(0.9, 0.5), (1.1, 0.5), (0.95, 0.6)].iter().enumerate() {
            let e = Event::new_arrival(obj(i as u64, 1.0, *x, *y, 0));
            mgaps.on_event(&e);
            gaps.on_event(&e);
        }
        let m = mgaps.current().unwrap().score;
        let g = gaps.current().unwrap().score;
        assert!(m >= g);
        assert!(
            (m - 3.0 / 1_000.0).abs() < 1e-12,
            "shifted grid holds all 3"
        );
    }

    #[test]
    fn all_four_grids_receive_events() {
        let mut d = MgapSurge::new(query(0.5));
        d.on_event(&Event::new_arrival(obj(0, 1.0, 0.75, 0.75, 0)));
        for g in d.instances() {
            assert_eq!(g.cell_count(), 1);
        }
    }

    #[test]
    fn lifecycle_cleans_up() {
        let mut d = MgapSurge::new(query(0.5));
        let o = obj(0, 1.0, 0.75, 0.75, 0);
        d.on_event(&Event::new_arrival(o));
        d.on_event(&Event::grown(o, 1_000));
        d.on_event(&Event::expired(o, 2_000));
        assert!(d.current().is_none());
    }

    #[test]
    fn topk_cells_are_non_overlapping() {
        let mut d = MgapSurge::new(query(0.0));
        // Dense cluster plus two satellites.
        let pts = [(0.4, 0.4), (0.6, 0.6), (0.5, 0.5), (3.2, 3.2), (7.8, 7.8)];
        for (i, (x, y)) in pts.iter().enumerate() {
            d.on_event(&Event::new_arrival(obj(i as u64, 1.0, *x, *y, 0)));
        }
        let top = d.topk(3);
        assert!(top.len() >= 2);
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                assert!(
                    regions_disjoint(&top[i].region, &top[j].region),
                    "{:?} overlaps {:?}",
                    top[i].region,
                    top[j].region
                );
            }
        }
        // best-first order
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
