//! MGAP-SURGE: the multi-grid approximate solution (§V-B, Algorithm 5).
//!
//! GAP-SURGE's quality depends on where the grid lines fall relative to the
//! true bursty region. MGAP-SURGE runs four GAP-SURGE instances on grids
//! shifted by half a cell in x and/or y and reports the best of the four
//! answers, which markedly improves empirical quality (Table IV) while
//! keeping the same O(log n) update cost and the same `(1−α)/4` worst-case
//! guarantee (Theorem 4).
//!
//! Like [`GapSurge`], the detector participates in the sharded-ingest and
//! checkpoint pipelines. Each [`MgapShardWorker`] owns shard *s* of all four
//! grids; ties between grids are broken toward the lower-numbered grid on
//! every path (the worker encodes the grid's priority in the
//! [`ShardAnswer`] `bound` field so the merged maximum picks the same
//! winner the sequential scan does, bit for bit).

use surge_core::{
    BurstDetector, CheckpointableDetector, DetectorState, DetectorStats, Event, EventKind,
    GridSpec, IncrementalDetector, Rect, RegionAnswer, RegionSize, RestoreError, ShardAnswer,
    ShardRunStats, ShardWorker, ShardWorkerStats, ShardedIngest, SurgeQuery, TotalF64,
};

use crate::gaps::{GapShardWorker, GapSurge};

/// The multi-grid approximate detector (MGAPS).
#[derive(Debug)]
pub struct MgapSurge {
    query: SurgeQuery,
    grids: [GapSurge; 4],
    stats_events: u64,
    stats_new: u64,
}

impl MgapSurge {
    /// Creates the four shifted GAPS instances for `query`.
    pub fn new(query: SurgeQuery) -> Self {
        Self::with_shards(query, 1)
    }

    /// Creates the four shifted GAPS instances, each with `shards` cell
    /// shards (a power of two). Shard count is structural only: answers are
    /// bit-identical for every shard count.
    pub fn with_shards(query: SurgeQuery, shards: usize) -> Self {
        let specs = GridSpec::mgap_grids(query.region.width, query.region.height);
        MgapSurge {
            query,
            grids: specs.map(|g| GapSurge::with_grid_shards(query, g, shards)),
            stats_events: 0,
            stats_new: 0,
        }
    }

    /// Access to the four underlying grids (in the paper's Grid 1–4 order).
    pub fn instances(&self) -> &[GapSurge; 4] {
        &self.grids
    }

    /// Number of non-empty cells across all four grids.
    pub fn cell_count(&self) -> usize {
        self.grids.iter().map(|g| g.cell_count()).sum()
    }

    /// Top-k per Algorithm 7: take the top `4k` cells from each grid, merge
    /// the up-to-`16k` candidates, and greedily keep the best `k` pairwise
    /// non-overlapping cells.
    pub fn topk(&self, k: usize) -> Vec<RegionAnswer> {
        let mut candidates: Vec<RegionAnswer> =
            self.grids.iter().flat_map(|g| g.topk(4 * k)).collect();
        candidates.sort_by_key(|c| std::cmp::Reverse(TotalF64(c.score)));
        let mut chosen: Vec<RegionAnswer> = Vec::with_capacity(k);
        for cand in candidates {
            if chosen.len() == k {
                break;
            }
            let overlaps = chosen
                .iter()
                .any(|c| c.region.interior_intersects(&cand.region));
            if !overlaps {
                chosen.push(cand);
            }
        }
        chosen
    }
}

impl BurstDetector for MgapSurge {
    fn on_event(&mut self, event: &Event) {
        self.stats_events += 1;
        if event.kind == EventKind::New {
            self.stats_new += 1;
        }
        for g in &mut self.grids {
            g.on_event(event);
        }
    }

    fn current(&mut self) -> Option<RegionAnswer> {
        let mut best: Option<RegionAnswer> = None;
        for g in &mut self.grids {
            if let Some(ans) = g.current() {
                // Strict > with a total order: on equal score bits the
                // earlier grid wins, matching the merged shard answers'
                // grid-priority bound.
                if best
                    .as_ref()
                    .is_none_or(|b| TotalF64(ans.score) > TotalF64(b.score))
                {
                    best = Some(ans);
                }
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "MGAPS"
    }

    fn stats(&self) -> DetectorStats {
        DetectorStats {
            events: self.stats_events,
            new_events: self.stats_new,
            searches: 0,
            events_triggering_search: 0,
        }
    }
}

/// MGAPS under the incremental driver: as with GAPS, every cell is kept
/// fresh by the events themselves, so the job surface is empty.
impl IncrementalDetector for MgapSurge {
    type Job = ();
    type Outcome = ();
    type Scratch = ();

    fn snapshot_dirty_jobs(&self) -> Vec<()> {
        Vec::new()
    }

    fn run_job(&self, _job: &()) {}

    fn install_outcomes(&mut self, _outcomes: Vec<()>) {}

    fn shard_count(&self) -> usize {
        IncrementalDetector::shard_count(&self.grids[0])
    }

    fn sweep_dirty(&mut self, _threads: usize) -> u64 {
        0
    }
}

/// Shard *s* of all four grids under one ingest handle. Flush reports the
/// best of the four shard-local bests; `bound` carries the grid priority
/// (grid 0 → 3.0 … grid 3 → 0.0) so the cross-shard `(score, bound, cell)`
/// maximum breaks score ties toward the lower-numbered grid — exactly the
/// sequential [`MgapSurge::current`] tie-break.
#[derive(Debug)]
pub struct MgapShardWorker<'a> {
    inner: [GapShardWorker<'a>; 4],
}

impl ShardWorker for MgapShardWorker<'_> {
    fn on_event(&mut self, event: &Event) {
        for w in &mut self.inner {
            w.on_event(event);
        }
    }

    fn flush(&mut self) -> Option<ShardAnswer> {
        let mut best: Option<ShardAnswer> = None;
        for (gi, w) in self.inner.iter_mut().enumerate() {
            if let Some(a) = w.flush() {
                let prioritized = ShardAnswer {
                    bound: (3 - gi) as f64,
                    ..a
                };
                if best
                    .as_ref()
                    .is_none_or(|b| prioritized.merge_key() > b.merge_key())
                {
                    best = Some(prioritized);
                }
            }
        }
        best
    }

    fn stats(&self) -> ShardWorkerStats {
        let mut out = ShardWorkerStats::default();
        for w in &self.inner {
            let s = w.stats();
            out.cell_touches += s.cell_touches;
            out.sweeps += s.sweeps;
        }
        out
    }
}

impl ShardedIngest for MgapSurge {
    type Worker<'a> = MgapShardWorker<'a>;

    fn ingest_workers(&mut self) -> Vec<MgapShardWorker<'_>> {
        let mut per_grid: Vec<_> = self
            .grids
            .iter_mut()
            .map(|g| g.ingest_workers().into_iter())
            .collect();
        let shard_count = per_grid[0].len();
        (0..shard_count)
            .map(|_| MgapShardWorker {
                inner: std::array::from_fn(|gi| {
                    per_grid[gi].next().expect("grids share a shard count")
                }),
            })
            .collect()
    }

    fn absorb_shard_run(&mut self, run: ShardRunStats) {
        self.stats_events += run.events;
        self.stats_new += run.new_events;
    }

    fn region_size(&self) -> RegionSize {
        self.query.region
    }
}

impl CheckpointableDetector for MgapSurge {
    fn capture_state(&self) -> DetectorState {
        let mut grid_cells = Vec::with_capacity(self.cell_count());
        for (gi, g) in self.grids.iter().enumerate() {
            crate::gaps::capture_grid_cells(&mut grid_cells, gi as u32, g.shards());
        }
        DetectorState {
            name: self.name().to_string(),
            levels: 4,
            cells: Vec::new(),
            rects: Vec::new(),
            incumbents: Vec::new(),
            grid_cells,
            controller: None,
            stats: self.stats(),
        }
    }

    fn restore_state(&mut self, state: &DetectorState) -> Result<(), RestoreError> {
        if self.cell_count() != 0 {
            return Err(RestoreError::new(
                "restore requires a freshly constructed MGAPS detector",
            ));
        }
        if state.name != self.name() {
            return Err(RestoreError::new(format!(
                "detector name mismatch: snapshot has {:?}, restoring into {:?}",
                state.name,
                self.name()
            )));
        }
        let mut at = 0usize;
        for gi in 0..4u32 {
            let start = at;
            while at < state.grid_cells.len() && state.grid_cells[at].grid == gi {
                at += 1;
            }
            let g = &mut self.grids[gi as usize];
            let params = *g.params();
            crate::gaps::restore_grid_cells(g.shards_mut(), &params, &state.grid_cells[start..at])?;
        }
        if at != state.grid_cells.len() {
            return Err(RestoreError::new(format!(
                "grid index out of order or beyond 3 at cell {at}"
            )));
        }
        self.stats_events = state.stats.events;
        self.stats_new = state.stats.new_events;
        Ok(())
    }
}

/// Convenience: whether two answers report regions with disjoint interiors.
pub fn regions_disjoint(a: &Rect, b: &Rect) -> bool {
    !a.interior_intersects(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::{Point, RegionSize, SpatialObject, WindowConfig};

    fn query(alpha: f64) -> SurgeQuery {
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), alpha)
    }

    fn obj(id: u64, w: f64, x: f64, y: f64, t: u64) -> SpatialObject {
        SpatialObject::new(id, w, Point::new(x, y), t)
    }

    #[test]
    fn empty_returns_none() {
        assert!(MgapSurge::new(query(0.5)).current().is_none());
    }

    #[test]
    fn beats_or_equals_single_grid() {
        // Objects straddling the anchored grid line x=1: the shifted grid
        // captures both, so MGAPS >= GAPS.
        let q = query(0.0);
        let mut mgaps = MgapSurge::new(q);
        let mut gaps = crate::gaps::GapSurge::new(q);
        for (i, (x, y)) in [(0.9, 0.5), (1.1, 0.5), (0.95, 0.6)].iter().enumerate() {
            let e = Event::new_arrival(obj(i as u64, 1.0, *x, *y, 0));
            mgaps.on_event(&e);
            gaps.on_event(&e);
        }
        let m = mgaps.current().unwrap().score;
        let g = gaps.current().unwrap().score;
        assert!(m >= g);
        assert!(
            (m - 3.0 / 1_000.0).abs() < 1e-12,
            "shifted grid holds all 3"
        );
    }

    #[test]
    fn all_four_grids_receive_events() {
        let mut d = MgapSurge::new(query(0.5));
        d.on_event(&Event::new_arrival(obj(0, 1.0, 0.75, 0.75, 0)));
        for g in d.instances() {
            assert_eq!(g.cell_count(), 1);
        }
    }

    #[test]
    fn lifecycle_cleans_up() {
        let mut d = MgapSurge::new(query(0.5));
        let o = obj(0, 1.0, 0.75, 0.75, 0);
        d.on_event(&Event::new_arrival(o));
        d.on_event(&Event::grown(o, 1_000));
        d.on_event(&Event::expired(o, 2_000));
        assert!(d.current().is_none());
        assert_eq!(d.cell_count(), 0);
    }

    #[test]
    fn topk_cells_are_non_overlapping() {
        let mut d = MgapSurge::new(query(0.0));
        // Dense cluster plus two satellites.
        let pts = [(0.4, 0.4), (0.6, 0.6), (0.5, 0.5), (3.2, 3.2), (7.8, 7.8)];
        for (i, (x, y)) in pts.iter().enumerate() {
            d.on_event(&Event::new_arrival(obj(i as u64, 1.0, *x, *y, 0)));
        }
        let top = d.topk(3);
        assert!(top.len() >= 2);
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                assert!(
                    regions_disjoint(&top[i].region, &top[j].region),
                    "{:?} overlaps {:?}",
                    top[i].region,
                    top[j].region
                );
            }
        }
        // best-first order
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    /// Equal-score ties across grids resolve to the same grid on the
    /// sequential path and through the grid-priority bound.
    #[test]
    fn score_ties_prefer_lower_grid() {
        let mut d = MgapSurge::new(query(0.0));
        // One object: all four grids score its cell identically, so
        // current() must report grid 0's (anchored) cell.
        d.on_event(&Event::new_arrival(obj(0, 2.0, 0.2, 0.2, 0)));
        let ans = d.current().unwrap();
        assert_eq!(ans.region.x0, 0.0);
        assert_eq!(ans.region.y0, 0.0);
    }

    /// Capture → restore into a fresh detector → identical answers and
    /// identical re-capture, across shard counts.
    #[test]
    fn checkpoint_roundtrip_is_bit_identical() {
        let q = query(0.6);
        let mut d = MgapSurge::with_shards(q, 2);
        let mut t = 0;
        for i in 0..96u64 {
            t += i % 4;
            d.on_event(&Event::new_arrival(obj(
                i,
                1.0 + (i % 5) as f64,
                (i % 13) as f64 * 0.45,
                (i % 7) as f64 * 0.45,
                t,
            )));
        }
        let state = d.capture_state();
        assert!(state.grid_cells.iter().any(|c| c.grid == 3));
        let mut restored = MgapSurge::with_shards(q, 4);
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.capture_state(), state);
        let (a, b) = (d.current().unwrap(), restored.current().unwrap());
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.point.x.to_bits(), b.point.x.to_bits());
        assert_eq!(a.point.y.to_bits(), b.point.y.to_bits());
        assert_eq!(d.stats(), restored.stats());
        assert!(restored.restore_state(&state).is_err());
    }
}
