//! GAP-SURGE: the grid-based approximate solution (Algorithm 3).
//!
//! The space is divided into query-sized cells; each cell is a *candidate
//! region*. Events update the containing cell's window scores in O(1), and a
//! score-ordered set yields the best cell in O(log n). Theorem 3 guarantees
//! the returned cell's burst score is at least `(1 − α)/4` of the optimal
//! region's.
//!
//! Note: the paper's Algorithm 3 pseudocode writes the cell score without
//! `α`; we follow Definition 1 (the burst score with `α`), which is what the
//! approximation guarantee (Theorem 3) and the experiments use.
//!
//! Since the overload-autopilot work the detector is a first-class citizen
//! of the production pipeline: its cells partition into `2^k` shards by the
//! same deterministic spatial hash the exact detectors use
//! (`shard_of_cell`), so it runs under `drive_sharded` with one
//! [`GapShardWorker`] per shard, runs under `drive_incremental` (events keep
//! every cell fresh, so the dirty-sweep is a no-op), and checkpoints through
//! [`CheckpointableDetector`] — weight sums captured bit-for-bit, rank keys
//! recomputed on restore (a pure function of the sums).

use std::collections::{BTreeSet, HashMap};

use surge_core::{
    shard_of_cell, BurstDetector, BurstParams, CellId, CheckpointableDetector, DetectorState,
    DetectorStats, Event, EventKind, GridCellState, GridSpec, IncrementalDetector, Point,
    RegionAnswer, RegionSize, RestoreError, ShardAnswer, ShardRunStats, ShardWorker,
    ShardWorkerStats, ShardedIngest, SurgeQuery, TotalF64,
};

#[derive(Debug, Clone, Copy)]
struct GapCell {
    /// Raw current-window weight sum.
    wc: f64,
    /// Raw past-window weight sum.
    wp: f64,
    /// Objects resident in either window.
    count: u32,
    /// Key under which the cell sits in the ranked set.
    key: TotalF64,
}

/// One shard's slice of the counting grid: its cells plus the shard-local
/// rank order. A cell never changes shards, so the global best is the
/// maximum of the per-shard `(key, id)` maxima — exactly the single-set
/// `next_back` of the unsharded detector.
#[derive(Debug, Default)]
pub(crate) struct GapShard {
    cells: HashMap<CellId, GapCell>,
    ranked: BTreeSet<(TotalF64, CellId)>,
}

/// Applies one in-area event to the cell `id` of `shard`. Shared verbatim by
/// the sequential `on_event` and the per-shard ingest workers so both paths
/// accumulate the weight sums in the identical order.
fn apply_to_shard(params: &BurstParams, shard: &mut GapShard, id: CellId, event: &Event) {
    let cell = shard.cells.entry(id).or_insert(GapCell {
        wc: 0.0,
        wp: 0.0,
        count: 0,
        key: TotalF64(f64::NEG_INFINITY),
    });
    let w = event.object.weight;
    match event.kind {
        EventKind::New => {
            cell.wc += w;
            cell.count += 1;
        }
        EventKind::Grown => {
            cell.wc -= w;
            cell.wp += w;
        }
        EventKind::Expired => {
            cell.wp -= w;
            cell.count = cell.count.saturating_sub(1);
        }
    }
    let old_key = cell.key;
    if cell.count == 0 {
        shard.ranked.remove(&(old_key, id));
        shard.cells.remove(&id);
        return;
    }
    let new_key = TotalF64(params.score_weights(cell.wc, cell.wp));
    cell.key = new_key;
    if new_key != old_key || !shard.ranked.contains(&(new_key, id)) {
        shard.ranked.remove(&(old_key, id));
        shard.ranked.insert((new_key, id));
    }
}

/// The grid-based approximate detector (GAPS).
///
/// # Example
///
/// ```
/// use surge_core::{BurstDetector, Event, Point, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
/// use surge_approx::GapSurge;
///
/// let query = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), 0.5);
/// let mut gaps = GapSurge::new(query);
/// gaps.on_event(&Event::new_arrival(SpatialObject::new(0, 2.0, Point::new(3.2, 3.7), 0)));
/// let ans = gaps.current().unwrap();
/// assert!(ans.region.contains(Point::new(3.2, 3.7)));
/// ```
#[derive(Debug)]
pub struct GapSurge {
    query: SurgeQuery,
    params: BurstParams,
    grid: GridSpec,
    shards: Vec<GapShard>,
    stats: DetectorStats,
}

impl GapSurge {
    /// Creates a GAPS detector on the origin-anchored grid (Grid 1).
    pub fn new(query: SurgeQuery) -> Self {
        Self::with_shards(query, 1)
    }

    /// Creates a GAPS detector on the origin-anchored grid with `shards`
    /// cell shards (a power of two).
    pub fn with_shards(query: SurgeQuery, shards: usize) -> Self {
        Self::with_grid_shards(
            query,
            GridSpec::anchored(query.region.width, query.region.height),
            shards,
        )
    }

    /// Creates a GAPS detector on an explicit (possibly shifted) grid; the
    /// grid's cell size must equal the query-region size.
    pub fn with_grid(query: SurgeQuery, grid: GridSpec) -> Self {
        Self::with_grid_shards(query, grid, 1)
    }

    /// Creates a GAPS detector on an explicit grid with `shards` cell
    /// shards (a power of two). Shard count is structural only: answers are
    /// bit-identical for every shard count.
    pub fn with_grid_shards(query: SurgeQuery, grid: GridSpec, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        assert!(
            (grid.cell_w - query.region.width).abs()
                < f64::EPSILON * query.region.width.abs().max(1.0)
                && (grid.cell_h - query.region.height).abs()
                    < f64::EPSILON * query.region.height.abs().max(1.0),
            "GAPS grid cells must match the query-region size"
        );
        GapSurge {
            params: query.burst_params(),
            grid,
            query,
            shards: (0..shards).map(|_| GapShard::default()).collect(),
            stats: DetectorStats::default(),
        }
    }

    /// The grid this instance maintains.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.shards.iter().map(|s| s.cells.len()).sum()
    }

    /// The best `(key, id)` entry across all shards — the entry the
    /// unsharded detector's single ranked set would yield from `next_back`.
    fn best_entry(&self) -> Option<(TotalF64, CellId)> {
        self.shards
            .iter()
            .filter_map(|s| s.ranked.iter().next_back().copied())
            .max()
    }

    /// The canonical answer for a ranked entry: every production path
    /// (sequential `current`, merged [`ShardAnswer`]s, checkpoint decode)
    /// reconstructs the region from the cell's top-right corner and the
    /// query-region size, so the answers are bit-identical across paths.
    fn answer_entry(&self, key: TotalF64, id: CellId) -> RegionAnswer {
        let rect = self.grid.cell_rect(id);
        RegionAnswer::from_point(Point::new(rect.x1, rect.y1), self.query.region, key.get())
    }

    /// The top-`k` cells by burst score, best first (the kGAPS extension,
    /// Algorithm 6). Cells on one grid are disjoint, so the greedy exclusion
    /// of Definition 9 is automatic.
    pub fn topk(&self, k: usize) -> Vec<RegionAnswer> {
        // The global top-k is contained in the union of the per-shard
        // top-k prefixes; merge those and keep the k best.
        let mut entries: Vec<(TotalF64, CellId)> = self
            .shards
            .iter()
            .flat_map(|s| s.ranked.iter().rev().take(k).copied())
            .collect();
        entries.sort_unstable_by(|a, b| b.cmp(a));
        entries.truncate(k);
        entries
            .into_iter()
            .map(|(key, id)| self.answer_entry(key, id))
            .collect()
    }
}

impl BurstDetector for GapSurge {
    fn on_event(&mut self, event: &Event) {
        self.stats.events += 1;
        if event.kind == EventKind::New {
            self.stats.new_events += 1;
        }
        if !self.query.accepts(event.object.pos) {
            return;
        }
        let id = self.grid.cell_of(event.object.pos);
        let shard = shard_of_cell(id, self.shards.len());
        apply_to_shard(&self.params, &mut self.shards[shard], id, event);
    }

    fn current(&mut self) -> Option<RegionAnswer> {
        let (key, id) = self.best_entry()?;
        Some(self.answer_entry(key, id))
    }

    fn name(&self) -> &'static str {
        "GAPS"
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }
}

/// GAPS under the incremental driver: events keep every cell's score fresh
/// (there is no deferred per-cell search), so the dirty-cell job surface is
/// empty and `sweep_dirty` has nothing to do — `current()` is always ready.
impl IncrementalDetector for GapSurge {
    type Job = ();
    type Outcome = ();
    type Scratch = ();

    fn snapshot_dirty_jobs(&self) -> Vec<()> {
        Vec::new()
    }

    fn run_job(&self, _job: &()) {}

    fn install_outcomes(&mut self, _outcomes: Vec<()>) {}

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn sweep_dirty(&mut self, _threads: usize) -> u64 {
        0
    }
}

/// One shard's exclusive ingest handle (see [`ShardedIngest`]): applies the
/// event stream to its own cells and reports the shard-local best at flush
/// boundaries. GAPS has no flush-time sweep work, so `flush` is a read of
/// the shard's ranked set.
#[derive(Debug)]
pub struct GapShardWorker<'a> {
    shard: usize,
    shard_count: usize,
    query: SurgeQuery,
    params: BurstParams,
    grid: GridSpec,
    state: &'a mut GapShard,
    stats: ShardWorkerStats,
}

impl GapShardWorker<'_> {
    /// The shard's best entry as a [`ShardAnswer`]. `bound` repeats the
    /// score (a GAPS cell's rank key *is* its score, there is no separate
    /// upper bound), so the merged `(score, bound, cell)` maximum reduces to
    /// the `(key, id)` maximum of the sequential scan.
    fn shard_answer(&self) -> Option<ShardAnswer> {
        let (key, id) = self.state.ranked.iter().next_back().copied()?;
        let rect = self.grid.cell_rect(id);
        Some(ShardAnswer {
            point: Point::new(rect.x1, rect.y1),
            score: key.get(),
            bound: key.get(),
            cell: id,
        })
    }
}

impl ShardWorker for GapShardWorker<'_> {
    fn on_event(&mut self, event: &Event) {
        if !self.query.accepts(event.object.pos) {
            return;
        }
        let id = self.grid.cell_of(event.object.pos);
        if shard_of_cell(id, self.shard_count) == self.shard {
            apply_to_shard(&self.params, self.state, id, event);
            self.stats.cell_touches += 1;
        }
    }

    fn flush(&mut self) -> Option<ShardAnswer> {
        self.shard_answer()
    }

    fn stats(&self) -> ShardWorkerStats {
        self.stats
    }
}

impl ShardedIngest for GapSurge {
    type Worker<'a> = GapShardWorker<'a>;

    fn ingest_workers(&mut self) -> Vec<GapShardWorker<'_>> {
        let (query, params, grid) = (self.query, self.params, self.grid);
        let shard_count = self.shards.len();
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(shard, state)| GapShardWorker {
                shard,
                shard_count,
                query,
                params,
                grid,
                state,
                stats: ShardWorkerStats::default(),
            })
            .collect()
    }

    fn absorb_shard_run(&mut self, run: ShardRunStats) {
        self.stats.events += run.events;
        self.stats.new_events += run.new_events;
        self.stats.searches += run.searches;
    }

    fn region_size(&self) -> RegionSize {
        self.query.region
    }
}

/// Captures/restores a set of grid shards into the flat `grid_cells` list.
/// Shared with MGAPS (which captures four grids under one state).
pub(crate) fn capture_grid_cells(
    out: &mut Vec<GridCellState>,
    grid_index: u32,
    shards: &[GapShard],
) {
    let start = out.len();
    for shard in shards {
        out.extend(shard.cells.iter().map(|(&id, c)| GridCellState {
            grid: grid_index,
            id,
            wc: c.wc,
            wp: c.wp,
            count: c.count,
        }));
    }
    out[start..].sort_unstable_by_key(|c| c.id);
}

/// Rebuilds one grid's shards from its captured cells. The rank key is a
/// pure function of the captured `(wc, wp)` bits, so the restored ranked
/// sets equal the uninterrupted detector's exactly.
pub(crate) fn restore_grid_cells(
    shards: &mut [GapShard],
    params: &BurstParams,
    cells: &[GridCellState],
) -> Result<(), RestoreError> {
    let mut last: Option<CellId> = None;
    for c in cells {
        if last.is_some_and(|p| p >= c.id) {
            return Err(RestoreError::new(format!(
                "grid cells out of order or duplicated at {:?}",
                c.id
            )));
        }
        last = Some(c.id);
        if c.count == 0 {
            return Err(RestoreError::new(format!(
                "grid cell {:?} captured with zero residents",
                c.id
            )));
        }
        let key = TotalF64(params.score_weights(c.wc, c.wp));
        let shard = &mut shards[shard_of_cell(c.id, shards.len())];
        shard.cells.insert(
            c.id,
            GapCell {
                wc: c.wc,
                wp: c.wp,
                count: c.count,
                key,
            },
        );
        shard.ranked.insert((key, c.id));
    }
    Ok(())
}

impl GapSurge {
    pub(crate) fn shards(&self) -> &[GapShard] {
        &self.shards
    }

    pub(crate) fn shards_mut(&mut self) -> &mut [GapShard] {
        &mut self.shards
    }

    pub(crate) fn params(&self) -> &BurstParams {
        &self.params
    }
}

impl CheckpointableDetector for GapSurge {
    fn capture_state(&self) -> DetectorState {
        let mut grid_cells = Vec::with_capacity(self.cell_count());
        capture_grid_cells(&mut grid_cells, 0, &self.shards);
        DetectorState {
            name: self.name().to_string(),
            levels: 1,
            cells: Vec::new(),
            rects: Vec::new(),
            incumbents: Vec::new(),
            grid_cells,
            controller: None,
            stats: self.stats,
        }
    }

    fn restore_state(&mut self, state: &DetectorState) -> Result<(), RestoreError> {
        if self.cell_count() != 0 {
            return Err(RestoreError::new(
                "restore requires a freshly constructed GAPS detector",
            ));
        }
        if state.name != self.name() {
            return Err(RestoreError::new(format!(
                "detector name mismatch: snapshot has {:?}, restoring into {:?}",
                state.name,
                self.name()
            )));
        }
        if state.grid_cells.iter().any(|c| c.grid != 0) {
            return Err(RestoreError::new("GAPS snapshot carries multi-grid cells"));
        }
        restore_grid_cells(&mut self.shards, &self.params, &state.grid_cells)?;
        self.stats = state.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::{Point, RegionSize, SpatialObject, WindowConfig};

    fn query(alpha: f64) -> SurgeQuery {
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), alpha)
    }

    fn obj(id: u64, w: f64, x: f64, y: f64, t: u64) -> SpatialObject {
        SpatialObject::new(id, w, Point::new(x, y), t)
    }

    #[test]
    fn empty_returns_none() {
        assert!(GapSurge::new(query(0.5)).current().is_none());
    }

    #[test]
    fn single_object_scores_cell() {
        let mut d = GapSurge::new(query(0.5));
        d.on_event(&Event::new_arrival(obj(0, 5.0, 2.5, 2.5, 0)));
        let ans = d.current().unwrap();
        assert!((ans.score - 5.0 / 1_000.0).abs() < 1e-12);
        assert_eq!(ans.region.x0, 2.0);
        assert_eq!(ans.region.y0, 2.0);
    }

    #[test]
    fn objects_in_same_cell_accumulate() {
        let mut d = GapSurge::new(query(0.0));
        d.on_event(&Event::new_arrival(obj(0, 1.0, 0.1, 0.1, 0)));
        d.on_event(&Event::new_arrival(obj(1, 2.0, 0.9, 0.9, 0)));
        assert!((d.current().unwrap().score - 3.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn objects_split_by_cell_boundary_do_not_accumulate() {
        // Unlike the exact solution, GAPS cannot combine objects at 0.9 and
        // 1.1 even though one 1x1 region could cover both.
        let mut d = GapSurge::new(query(0.0));
        d.on_event(&Event::new_arrival(obj(0, 1.0, 0.9, 0.5, 0)));
        d.on_event(&Event::new_arrival(obj(1, 1.0, 1.1, 0.5, 0)));
        assert!((d.current().unwrap().score - 1.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn grown_moves_weight_to_past_window() {
        let mut d = GapSurge::new(query(0.5));
        let o = obj(0, 4.0, 0.5, 0.5, 0);
        d.on_event(&Event::new_arrival(o));
        d.on_event(&Event::grown(o, 1_000));
        // fc = 0, fp = 4/1000 -> burst score 0.
        let ans = d.current().unwrap();
        assert!(ans.score.abs() < 1e-15);
        d.on_event(&Event::expired(o, 2_000));
        assert!(d.current().is_none());
        assert_eq!(d.cell_count(), 0);
    }

    #[test]
    fn area_filter_applies() {
        let q = SurgeQuery::new(
            surge_core::Rect::new(0.0, 0.0, 10.0, 10.0),
            RegionSize::new(1.0, 1.0),
            WindowConfig::equal(1_000),
            0.5,
        );
        let mut d = GapSurge::new(q);
        d.on_event(&Event::new_arrival(obj(0, 100.0, 50.0, 50.0, 0)));
        assert!(d.current().is_none());
    }

    #[test]
    fn shifted_grid_can_beat_anchored_grid() {
        // Two objects at 0.9 and 1.1: the anchored grid splits them; the
        // half-shifted grid's cell [0.5, 1.5) holds both.
        let q = query(0.0);
        let mut anchored = GapSurge::new(q);
        let shifted = GridSpec::with_origin(0.5, 0.0, 1.0, 1.0);
        let mut half = GapSurge::with_grid(q, shifted);
        for d in [&mut anchored, &mut half] {
            d.on_event(&Event::new_arrival(obj(0, 1.0, 0.9, 0.5, 0)));
            d.on_event(&Event::new_arrival(obj(1, 1.0, 1.1, 0.5, 0)));
        }
        assert!(half.current().unwrap().score > anchored.current().unwrap().score);
    }

    #[test]
    fn topk_returns_descending_disjoint_cells() {
        let mut d = GapSurge::new(query(0.0));
        d.on_event(&Event::new_arrival(obj(0, 3.0, 0.5, 0.5, 0)));
        d.on_event(&Event::new_arrival(obj(1, 2.0, 5.5, 5.5, 0)));
        d.on_event(&Event::new_arrival(obj(2, 1.0, 9.5, 9.5, 0)));
        let top = d.topk(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].score >= top[1].score && top[1].score >= top[2].score);
        assert!(!top[0].region.interior_intersects(&top[1].region));
    }

    #[test]
    #[should_panic(expected = "cells must match")]
    fn wrong_grid_size_rejected() {
        let _ = GapSurge::with_grid(query(0.5), GridSpec::anchored(2.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = GapSurge::with_shards(query(0.5), 3);
    }

    /// Shard count is structural only: identical event streams produce
    /// bit-identical answers and top-k lists at every shard count.
    #[test]
    fn shard_count_is_structural_only() {
        let q = query(0.3);
        let mut one = GapSurge::with_shards(q, 1);
        let mut four = GapSurge::with_shards(q, 4);
        let mut t = 0;
        for i in 0..200u64 {
            t += (i % 7) * 3;
            let o = obj(
                i,
                1.0 + (i % 4) as f64,
                (i % 13) as f64 * 0.5,
                (i % 9) as f64 * 0.5,
                t,
            );
            let e = Event::new_arrival(o);
            one.on_event(&e);
            four.on_event(&e);
            if i % 3 == 0 {
                let g = Event::grown(o, t);
                one.on_event(&g);
                four.on_event(&g);
            }
            let (a, b) = (one.current(), four.current());
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                    assert_eq!(x.point.x.to_bits(), y.point.x.to_bits());
                    assert_eq!(x.point.y.to_bits(), y.point.y.to_bits());
                }
                (None, None) => {}
                other => panic!("divergence: {other:?}"),
            }
            let (ta, tb) = (one.topk(3), four.topk(3));
            assert_eq!(ta.len(), tb.len());
            for (x, y) in ta.iter().zip(&tb) {
                assert_eq!(x.score.to_bits(), y.score.to_bits());
                assert_eq!(x.point.x.to_bits(), y.point.x.to_bits());
            }
        }
        assert!(four.cell_count() > 0);
    }

    /// Capture → restore into a fresh detector → identical answers and
    /// identical re-capture.
    #[test]
    fn checkpoint_roundtrip_is_bit_identical() {
        let q = query(0.4);
        let mut d = GapSurge::with_shards(q, 2);
        for i in 0..64u64 {
            d.on_event(&Event::new_arrival(obj(
                i,
                1.0 + (i % 3) as f64,
                (i % 11) as f64 * 0.5,
                (i % 5) as f64 * 0.5,
                i * 10,
            )));
        }
        let state = d.capture_state();
        let mut restored = GapSurge::with_shards(q, 2);
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.capture_state(), state);
        let (a, b) = (d.current().unwrap(), restored.current().unwrap());
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.point.x.to_bits(), b.point.x.to_bits());
        // Restoring into a non-empty detector is rejected.
        assert!(restored.restore_state(&state).is_err());
        // Restoring under a different shard count still yields the same
        // answers (shards are structural).
        let mut other = GapSurge::with_shards(q, 8);
        other.restore_state(&state).unwrap();
        let c = other.current().unwrap();
        assert_eq!(a.score.to_bits(), c.score.to_bits());
    }
}
