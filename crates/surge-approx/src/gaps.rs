//! GAP-SURGE: the grid-based approximate solution (Algorithm 3).
//!
//! The space is divided into query-sized cells; each cell is a *candidate
//! region*. Events update the containing cell's window scores in O(1), and a
//! score-ordered set yields the best cell in O(log n). Theorem 3 guarantees
//! the returned cell's burst score is at least `(1 − α)/4` of the optimal
//! region's.
//!
//! Note: the paper's Algorithm 3 pseudocode writes the cell score without
//! `α`; we follow Definition 1 (the burst score with `α`), which is what the
//! approximation guarantee (Theorem 3) and the experiments use.

use std::collections::{BTreeSet, HashMap};

use surge_core::{
    BurstDetector, BurstParams, CellId, DetectorStats, Event, EventKind, GridSpec, RegionAnswer,
    SurgeQuery, TotalF64,
};

#[derive(Debug, Clone, Copy)]
struct GapCell {
    /// Raw current-window weight sum.
    wc: f64,
    /// Raw past-window weight sum.
    wp: f64,
    /// Objects resident in either window.
    count: u32,
    /// Key under which the cell sits in the ranked set.
    key: TotalF64,
}

/// The grid-based approximate detector (GAPS).
///
/// # Example
///
/// ```
/// use surge_core::{BurstDetector, Event, Point, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
/// use surge_approx::GapSurge;
///
/// let query = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), 0.5);
/// let mut gaps = GapSurge::new(query);
/// gaps.on_event(&Event::new_arrival(SpatialObject::new(0, 2.0, Point::new(3.2, 3.7), 0)));
/// let ans = gaps.current().unwrap();
/// assert!(ans.region.contains(Point::new(3.2, 3.7)));
/// ```
#[derive(Debug)]
pub struct GapSurge {
    query: SurgeQuery,
    params: BurstParams,
    grid: GridSpec,
    cells: HashMap<CellId, GapCell>,
    ranked: BTreeSet<(TotalF64, CellId)>,
    stats: DetectorStats,
}

impl GapSurge {
    /// Creates a GAPS detector on the origin-anchored grid (Grid 1).
    pub fn new(query: SurgeQuery) -> Self {
        Self::with_grid(
            query,
            GridSpec::anchored(query.region.width, query.region.height),
        )
    }

    /// Creates a GAPS detector on an explicit (possibly shifted) grid; the
    /// grid's cell size must equal the query-region size.
    pub fn with_grid(query: SurgeQuery, grid: GridSpec) -> Self {
        assert!(
            (grid.cell_w - query.region.width).abs()
                < f64::EPSILON * query.region.width.abs().max(1.0)
                && (grid.cell_h - query.region.height).abs()
                    < f64::EPSILON * query.region.height.abs().max(1.0),
            "GAPS grid cells must match the query-region size"
        );
        GapSurge {
            params: query.burst_params(),
            grid,
            query,
            cells: HashMap::new(),
            ranked: BTreeSet::new(),
            stats: DetectorStats::default(),
        }
    }

    /// The grid this instance maintains.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The top-`k` cells by burst score, best first (the kGAPS extension,
    /// Algorithm 6). Cells on one grid are disjoint, so the greedy exclusion
    /// of Definition 9 is automatic.
    pub fn topk(&self, k: usize) -> Vec<RegionAnswer> {
        self.ranked
            .iter()
            .rev()
            .take(k)
            .map(|&(key, id)| RegionAnswer::from_region(self.grid.cell_rect(id), key.get()))
            .collect()
    }
}

impl BurstDetector for GapSurge {
    fn on_event(&mut self, event: &Event) {
        self.stats.events += 1;
        if event.kind == EventKind::New {
            self.stats.new_events += 1;
        }
        if !self.query.accepts(event.object.pos) {
            return;
        }
        let id = self.grid.cell_of(event.object.pos);
        let cell = self.cells.entry(id).or_insert(GapCell {
            wc: 0.0,
            wp: 0.0,
            count: 0,
            key: TotalF64(f64::NEG_INFINITY),
        });
        let w = event.object.weight;
        match event.kind {
            EventKind::New => {
                cell.wc += w;
                cell.count += 1;
            }
            EventKind::Grown => {
                cell.wc -= w;
                cell.wp += w;
            }
            EventKind::Expired => {
                cell.wp -= w;
                cell.count = cell.count.saturating_sub(1);
            }
        }
        let old_key = cell.key;
        if cell.count == 0 {
            self.ranked.remove(&(old_key, id));
            self.cells.remove(&id);
            return;
        }
        let new_key = TotalF64(self.params.score_weights(cell.wc, cell.wp));
        cell.key = new_key;
        if new_key != old_key || !self.ranked.contains(&(new_key, id)) {
            self.ranked.remove(&(old_key, id));
            self.ranked.insert((new_key, id));
        }
    }

    fn current(&mut self) -> Option<RegionAnswer> {
        let (key, id) = self.ranked.iter().next_back().copied()?;
        Some(RegionAnswer::from_region(
            self.grid.cell_rect(id),
            key.get(),
        ))
    }

    fn name(&self) -> &'static str {
        "GAPS"
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::{Point, RegionSize, SpatialObject, WindowConfig};

    fn query(alpha: f64) -> SurgeQuery {
        SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(1_000), alpha)
    }

    fn obj(id: u64, w: f64, x: f64, y: f64, t: u64) -> SpatialObject {
        SpatialObject::new(id, w, Point::new(x, y), t)
    }

    #[test]
    fn empty_returns_none() {
        assert!(GapSurge::new(query(0.5)).current().is_none());
    }

    #[test]
    fn single_object_scores_cell() {
        let mut d = GapSurge::new(query(0.5));
        d.on_event(&Event::new_arrival(obj(0, 5.0, 2.5, 2.5, 0)));
        let ans = d.current().unwrap();
        assert!((ans.score - 5.0 / 1_000.0).abs() < 1e-12);
        assert_eq!(ans.region.x0, 2.0);
        assert_eq!(ans.region.y0, 2.0);
    }

    #[test]
    fn objects_in_same_cell_accumulate() {
        let mut d = GapSurge::new(query(0.0));
        d.on_event(&Event::new_arrival(obj(0, 1.0, 0.1, 0.1, 0)));
        d.on_event(&Event::new_arrival(obj(1, 2.0, 0.9, 0.9, 0)));
        assert!((d.current().unwrap().score - 3.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn objects_split_by_cell_boundary_do_not_accumulate() {
        // Unlike the exact solution, GAPS cannot combine objects at 0.9 and
        // 1.1 even though one 1x1 region could cover both.
        let mut d = GapSurge::new(query(0.0));
        d.on_event(&Event::new_arrival(obj(0, 1.0, 0.9, 0.5, 0)));
        d.on_event(&Event::new_arrival(obj(1, 1.0, 1.1, 0.5, 0)));
        assert!((d.current().unwrap().score - 1.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn grown_moves_weight_to_past_window() {
        let mut d = GapSurge::new(query(0.5));
        let o = obj(0, 4.0, 0.5, 0.5, 0);
        d.on_event(&Event::new_arrival(o));
        d.on_event(&Event::grown(o, 1_000));
        // fc = 0, fp = 4/1000 -> burst score 0.
        let ans = d.current().unwrap();
        assert!(ans.score.abs() < 1e-15);
        d.on_event(&Event::expired(o, 2_000));
        assert!(d.current().is_none());
        assert_eq!(d.cell_count(), 0);
    }

    #[test]
    fn area_filter_applies() {
        let q = SurgeQuery::new(
            surge_core::Rect::new(0.0, 0.0, 10.0, 10.0),
            RegionSize::new(1.0, 1.0),
            WindowConfig::equal(1_000),
            0.5,
        );
        let mut d = GapSurge::new(q);
        d.on_event(&Event::new_arrival(obj(0, 100.0, 50.0, 50.0, 0)));
        assert!(d.current().is_none());
    }

    #[test]
    fn shifted_grid_can_beat_anchored_grid() {
        // Two objects at 0.9 and 1.1: the anchored grid splits them; the
        // half-shifted grid's cell [0.5, 1.5) holds both.
        let q = query(0.0);
        let mut anchored = GapSurge::new(q);
        let shifted = GridSpec::with_origin(0.5, 0.0, 1.0, 1.0);
        let mut half = GapSurge::with_grid(q, shifted);
        for d in [&mut anchored, &mut half] {
            d.on_event(&Event::new_arrival(obj(0, 1.0, 0.9, 0.5, 0)));
            d.on_event(&Event::new_arrival(obj(1, 1.0, 1.1, 0.5, 0)));
        }
        assert!(half.current().unwrap().score > anchored.current().unwrap().score);
    }

    #[test]
    fn topk_returns_descending_disjoint_cells() {
        let mut d = GapSurge::new(query(0.0));
        d.on_event(&Event::new_arrival(obj(0, 3.0, 0.5, 0.5, 0)));
        d.on_event(&Event::new_arrival(obj(1, 2.0, 5.5, 5.5, 0)));
        d.on_event(&Event::new_arrival(obj(2, 1.0, 9.5, 9.5, 0)));
        let top = d.topk(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].score >= top[1].score && top[1].score >= top[2].score);
        assert!(!top[0].region.interior_intersects(&top[1].region));
    }

    #[test]
    #[should_panic(expected = "cells must match")]
    fn wrong_grid_size_rejected() {
        let _ = GapSurge::with_grid(query(0.5), GridSpec::anchored(2.0, 2.0));
    }
}
