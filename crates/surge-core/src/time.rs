//! Logical time and the dual sliding-window configuration.
//!
//! SURGE maintains two consecutive time-based sliding windows: the *current*
//! window `W_c = (t − |W|, t]` and the *past* window `W_p = (t − 2|W|,
//! t − |W|]`. The paper assumes equal lengths for simplicity; this
//! implementation supports distinct lengths for the two windows (the paper
//! notes the solutions carry over unchanged).

/// Logical timestamp in milliseconds. Streams must be ingested in
/// non-decreasing timestamp order.
pub type Timestamp = u64;

/// A span of logical time in milliseconds.
pub type Duration = u64;

/// Number of milliseconds in one hour, for readability of configurations.
pub const MILLIS_PER_HOUR: Duration = 3_600_000;

/// Number of milliseconds in one minute.
pub const MILLIS_PER_MINUTE: Duration = 60_000;

/// Configuration of the current and past sliding windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Length of the current window `|W_c|` in milliseconds.
    pub current_len: Duration,
    /// Length of the past window `|W_p|` in milliseconds.
    pub past_len: Duration,
}

impl WindowConfig {
    /// Equal-length windows of `len` milliseconds each (the paper's default).
    #[inline]
    pub fn equal(len: Duration) -> Self {
        assert!(len > 0, "window length must be positive");
        WindowConfig {
            current_len: len,
            past_len: len,
        }
    }

    /// Distinct current/past window lengths.
    ///
    /// `past_len` may be 0: objects then expire the instant they grow (the
    /// past window is always empty — grow and expire transitions coincide,
    /// and the engine emits the `Grown` before the `Expired`). The current
    /// window length must be positive (scores normalize by it).
    #[inline]
    pub fn new(current_len: Duration, past_len: Duration) -> Self {
        assert!(current_len > 0, "current window length must be positive");
        WindowConfig {
            current_len,
            past_len,
        }
    }

    /// Windows of `minutes` minutes each.
    #[inline]
    pub fn equal_minutes(minutes: u64) -> Self {
        Self::equal(minutes * MILLIS_PER_MINUTE)
    }

    /// Windows of `hours` hours each.
    #[inline]
    pub fn equal_hours(hours: u64) -> Self {
        Self::equal(hours * MILLIS_PER_HOUR)
    }

    /// At observation time `now`, the instant at which an object created at
    /// `tc` leaves the current window and enters the past window.
    #[inline]
    pub fn grow_time(&self, tc: Timestamp) -> Timestamp {
        tc + self.current_len
    }

    /// The instant at which an object created at `tc` leaves the past window.
    #[inline]
    pub fn expire_time(&self, tc: Timestamp) -> Timestamp {
        tc + self.current_len + self.past_len
    }

    /// Whether an object created at `tc` is inside the current window at
    /// observation time `now` (`now − |W_c| < tc ≤ now`).
    #[inline]
    pub fn in_current(&self, tc: Timestamp, now: Timestamp) -> bool {
        tc <= now && now < self.grow_time(tc)
    }

    /// Whether an object created at `tc` is inside the past window at
    /// observation time `now`.
    #[inline]
    pub fn in_past(&self, tc: Timestamp, now: Timestamp) -> bool {
        self.grow_time(tc) <= now && now < self.expire_time(tc)
    }

    /// The normalizing divisor for current-window scores, in milliseconds.
    ///
    /// The paper's score `f(r, W)` divides the weight sum by `|W|`. Any
    /// consistent unit works; we keep milliseconds so exact and approximate
    /// detectors agree bit-for-bit.
    #[inline]
    pub fn current_norm(&self) -> f64 {
        self.current_len as f64
    }

    /// The normalizing divisor for past-window scores, in milliseconds.
    ///
    /// A zero-length past window normalizes by 1 ms: the window is always
    /// empty, so the past weight sum is 0 and the score stays 0 instead of
    /// becoming `0/0`.
    #[inline]
    pub fn past_norm(&self) -> f64 {
        if self.past_len == 0 {
            1.0
        } else {
            self.past_len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_windows() {
        let w = WindowConfig::equal(1_000);
        assert_eq!(w.current_len, 1_000);
        assert_eq!(w.past_len, 1_000);
    }

    #[test]
    fn helpers_convert_units() {
        assert_eq!(WindowConfig::equal_minutes(5).current_len, 300_000);
        assert_eq!(WindowConfig::equal_hours(2).current_len, 7_200_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = WindowConfig::equal(0);
    }

    #[test]
    fn transition_times() {
        let w = WindowConfig::new(100, 250);
        assert_eq!(w.grow_time(1_000), 1_100);
        assert_eq!(w.expire_time(1_000), 1_350);
    }

    #[test]
    fn membership_boundaries() {
        let w = WindowConfig::equal(100);
        // Object created at t=1000: current for now in [1000, 1100),
        // past for now in [1100, 1200), gone at now >= 1200.
        assert!(w.in_current(1_000, 1_000));
        assert!(w.in_current(1_000, 1_099));
        assert!(!w.in_current(1_000, 1_100));
        assert!(w.in_past(1_000, 1_100));
        assert!(w.in_past(1_000, 1_199));
        assert!(!w.in_past(1_000, 1_200));
        assert!(!w.in_current(1_000, 999)); // not yet created
    }

    #[test]
    fn norms_match_lengths() {
        let w = WindowConfig::new(500, 2_000);
        assert_eq!(w.current_norm(), 500.0);
        assert_eq!(w.past_norm(), 2_000.0);
    }

    #[test]
    fn zero_length_past_window_is_allowed() {
        let w = WindowConfig::new(100, 0);
        assert_eq!(w.grow_time(1_000), w.expire_time(1_000));
        // The past window is empty at every instant...
        for now in [1_000u64, 1_099, 1_100, 1_200] {
            assert!(!w.in_past(1_000, now));
        }
        // ...and scores normalize by 1 ms instead of dividing by zero.
        assert_eq!(w.past_norm(), 1.0);
    }

    #[test]
    #[should_panic(expected = "current window length must be positive")]
    fn zero_current_window_rejected() {
        let _ = WindowConfig::new(0, 100);
    }
}
