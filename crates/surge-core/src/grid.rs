//! The cell grid shared by the exact and approximate solutions.
//!
//! Paper Definition 6: the grid is the set of lines `x = i·a`, `y = i·b`
//! (cell size = query-rectangle size), so that any query-sized rectangle
//! overlaps at most four cells (Lemma 1). The approximate MGAP-SURGE solution
//! uses four copies of this grid shifted by half a cell in x and/or y
//! (paper §V-B), which [`GridSpec`] supports via an origin offset.

use crate::geom::{Point, Rect};

/// Integer coordinates of a grid cell: `(column, row)`.
pub type CellId = (i64, i64);

/// A uniform grid over the plane with a configurable origin offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// x-coordinate of the grid origin (a vertical grid line).
    pub origin_x: f64,
    /// y-coordinate of the grid origin (a horizontal grid line).
    pub origin_y: f64,
    /// Cell width (the query rectangle's width).
    pub cell_w: f64,
    /// Cell height (the query rectangle's height).
    pub cell_h: f64,
}

impl GridSpec {
    /// Grid with cells of `cell_w × cell_h` anchored at the coordinate origin
    /// (the paper's Grid 1).
    pub fn anchored(cell_w: f64, cell_h: f64) -> Self {
        Self::with_origin(0.0, 0.0, cell_w, cell_h)
    }

    /// Grid with an explicit origin offset (the paper's shifted Grids 2–4).
    pub fn with_origin(origin_x: f64, origin_y: f64, cell_w: f64, cell_h: f64) -> Self {
        assert!(
            cell_w > 0.0 && cell_w.is_finite(),
            "cell width must be positive and finite"
        );
        assert!(
            cell_h > 0.0 && cell_h.is_finite(),
            "cell height must be positive and finite"
        );
        GridSpec {
            origin_x,
            origin_y,
            cell_w,
            cell_h,
        }
    }

    /// The four shifted grids of MGAP-SURGE for a query-sized cell: offsets
    /// `(0,0)`, `(w/2,0)`, `(0,h/2)`, `(w/2,h/2)`.
    pub fn mgap_grids(cell_w: f64, cell_h: f64) -> [GridSpec; 4] {
        [
            GridSpec::with_origin(0.0, 0.0, cell_w, cell_h),
            GridSpec::with_origin(cell_w / 2.0, 0.0, cell_w, cell_h),
            GridSpec::with_origin(0.0, cell_h / 2.0, cell_w, cell_h),
            GridSpec::with_origin(cell_w / 2.0, cell_h / 2.0, cell_w, cell_h),
        ]
    }

    /// The cell containing point `p`. Points exactly on a grid line belong to
    /// the cell to the right/above (half-open cells `[i·w, (i+1)·w)`).
    #[inline]
    pub fn cell_of(&self, p: Point) -> CellId {
        (
            ((p.x - self.origin_x) / self.cell_w).floor() as i64,
            ((p.y - self.origin_y) / self.cell_h).floor() as i64,
        )
    }

    /// The closed rectangle spanned by cell `(i, j)`.
    #[inline]
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let x0 = self.origin_x + cell.0 as f64 * self.cell_w;
        let y0 = self.origin_y + cell.1 as f64 * self.cell_h;
        Rect::new(x0, y0, x0 + self.cell_w, y0 + self.cell_h)
    }

    /// The inclusive column/row bounds of the cells whose closed extent
    /// intersects the closed rectangle `r`: `((i0, i1), (j0, j1))`.
    #[inline]
    pub fn cell_bounds(&self, r: &Rect) -> ((i64, i64), (i64, i64)) {
        // Cell i spans [i·w, (i+1)·w]; it intersects [x0, x1] iff
        // i ≥ x0/w − 1 and i ≤ x1/w (in grid-relative coordinates).
        let i0 = ((r.x0 - self.origin_x) / self.cell_w - 1.0).ceil() as i64;
        let i1 = ((r.x1 - self.origin_x) / self.cell_w).floor() as i64;
        let j0 = ((r.y0 - self.origin_y) / self.cell_h - 1.0).ceil() as i64;
        let j1 = ((r.y1 - self.origin_y) / self.cell_h).floor() as i64;
        ((i0, i1), (j0, j1))
    }

    /// All cells whose **closed** extent intersects the closed rectangle `r`
    /// (shared boundary counts), in column-major order, without allocating.
    ///
    /// The exact detectors rely on this invariant: for any point `p` inside a
    /// cell's closed extent, *every* rectangle covering `p` intersects that
    /// cell's closed extent and is therefore in the cell's rectangle list —
    /// cell-local sweeps compute true burst scores even for points on cell
    /// boundaries. For a query-sized rectangle in generic position this
    /// yields at most four cells (Lemma 1); edge-aligned rectangles can touch
    /// up to nine.
    #[inline]
    pub fn cells_overlapping_iter(&self, r: &Rect) -> impl Iterator<Item = CellId> {
        let ((i0, i1), (j0, j1)) = self.cell_bounds(r);
        (i0..=i1).flat_map(move |i| (j0..=j1).map(move |j| (i, j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_basic() {
        let g = GridSpec::anchored(2.0, 3.0);
        assert_eq!(g.cell_of(Point::new(0.5, 0.5)), (0, 0));
        assert_eq!(g.cell_of(Point::new(2.0, 3.0)), (1, 1));
        assert_eq!(g.cell_of(Point::new(-0.1, -0.1)), (-1, -1));
    }

    #[test]
    fn cell_of_respects_origin_offset() {
        let g = GridSpec::with_origin(1.0, 1.5, 2.0, 3.0);
        assert_eq!(g.cell_of(Point::new(1.0, 1.5)), (0, 0));
        assert_eq!(g.cell_of(Point::new(0.9, 1.5)), (-1, 0));
    }

    #[test]
    fn cell_rect_roundtrip() {
        let g = GridSpec::anchored(2.0, 3.0);
        let r = g.cell_rect((1, -1));
        assert_eq!(r, Rect::new(2.0, -3.0, 4.0, 0.0));
        // interior points map back
        assert_eq!(g.cell_of(r.center()), (1, -1));
    }

    #[test]
    fn lemma1_query_rect_overlaps_at_most_four_cells_generic_position() {
        let g = GridSpec::anchored(2.0, 3.0);
        // A 2x3 rect in generic position (corners strictly inside cells).
        let r = Rect::from_corner_size(Point::new(0.7, 0.4), 2.0, 3.0);
        let cells: Vec<CellId> = g.cells_overlapping_iter(&r).collect();
        assert_eq!(cells.len(), 4);
    }

    #[test]
    fn aligned_rect_touches_nine_cells() {
        let g = GridSpec::anchored(2.0, 3.0);
        // Exactly one cell's extent: closed semantics include all eight
        // boundary-touching neighbours, so boundary points are scored with
        // their full covering set in every cell that can see them.
        let r = Rect::new(2.0, 3.0, 4.0, 6.0);
        let cells: Vec<CellId> = g.cells_overlapping_iter(&r).collect();
        assert_eq!(cells.len(), 9);
        for i in 0..=2 {
            for j in 0..=2 {
                assert!(cells.contains(&(i, j)), "missing ({i},{j})");
            }
        }
    }

    #[test]
    fn closed_intersection_invariant_holds() {
        // For any point p in a cell's closed rect, every rectangle containing
        // p must be assigned to that cell.
        let g = GridSpec::with_origin(0.5, -0.25, 1.25, 0.75);
        let rects = [
            Rect::new(0.5, 0.5, 1.75, 1.25), // edges on grid lines
            Rect::new(0.6, 0.4, 1.1, 0.9),   // generic position
            Rect::new(-1.0, -1.0, 4.0, 3.0), // large
        ];
        for r in &rects {
            let cells: Vec<CellId> = g.cells_overlapping_iter(r).collect();
            // sample points of r, including all corners
            for &(fx, fy) in &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (0.5, 0.5)] {
                let p = Point::new(r.x0 + fx * r.width(), r.y0 + fy * r.height());
                // every cell whose closed rect contains p must be in `cells`
                let owner = g.cell_of(p);
                for di in -1..=1i64 {
                    for dj in -1..=1i64 {
                        let c = (owner.0 + di, owner.1 + dj);
                        if g.cell_rect(c).contains(p) {
                            assert!(
                                cells.contains(&c),
                                "rect {r:?} misses cell {c:?} for point {p:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mgap_grids_are_half_shifted() {
        let gs = GridSpec::mgap_grids(2.0, 4.0);
        assert_eq!(gs[0].origin_x, 0.0);
        assert_eq!(gs[1].origin_x, 1.0);
        assert_eq!(gs[2].origin_y, 2.0);
        assert_eq!(gs[3].origin_x, 1.0);
        assert_eq!(gs[3].origin_y, 2.0);
    }

    #[test]
    fn iter_matches_cell_bounds_and_is_column_major() {
        let grids = [
            GridSpec::anchored(2.0, 3.0),
            GridSpec::with_origin(0.5, -0.25, 1.25, 0.75),
        ];
        let rects = [
            Rect::new(0.7, 0.4, 2.7, 3.4),
            Rect::new(2.0, 3.0, 4.0, 6.0), // edge-aligned
            Rect::new(-1.0, -1.0, 4.0, 3.0),
            Rect::new(1.0, 1.0, 1.0, 1.0), // degenerate point
        ];
        for g in &grids {
            for r in &rects {
                let iter: Vec<CellId> = g.cells_overlapping_iter(r).collect();
                let ((i0, i1), (j0, j1)) = g.cell_bounds(r);
                let expect: Vec<CellId> = (i0..=i1)
                    .flat_map(|i| (j0..=j1).map(move |j| (i, j)))
                    .collect();
                assert_eq!(iter, expect, "grid {g:?} rect {r:?}");
                assert_eq!(iter.len() as i64, (i1 - i0 + 1) * (j1 - j0 + 1));
            }
        }
    }

    #[test]
    fn overlap_cells_cover_every_contained_point() {
        let g = GridSpec::with_origin(0.25, -0.5, 1.5, 1.0);
        let r = Rect::new(-1.0, -1.0, 2.0, 2.0);
        let cells: Vec<CellId> = g.cells_overlapping_iter(&r).collect();
        // sample points inside r must be inside one of the returned cells
        for &(px, py) in &[(-1.0, -1.0), (0.0, 0.0), (1.99, 1.99), (2.0, 2.0)] {
            let c = g.cell_of(Point::new(px, py));
            assert!(cells.contains(&c), "missing cell {c:?} for ({px},{py})");
        }
    }
}
