//! Spatial objects and rectangle objects.

use crate::geom::{Point, Rect};
use crate::time::Timestamp;

/// A stable identifier for a spatial object within a stream.
///
/// Identifiers are assigned by the stream source in arrival order, which
/// keeps hash maps and event logs cheap to key.
pub type ObjectId = u64;

/// Which sliding window an object currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// The current window `W_c` — contributes positively to the burst score.
    Current,
    /// The past window `W_p` — contributes non-positively.
    Past,
}

/// A weighted, timestamped point object `o = ⟨w, ρ, t_c⟩` (paper §III-A).
///
/// The weight models application relevance: keyword relevance for tweets,
/// passenger count or fare for ride requests. The paper's experiments draw it
/// uniformly from `[1, 100]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialObject {
    /// Stream-assigned identifier.
    pub id: ObjectId,
    /// Non-negative weight `w`.
    pub weight: f64,
    /// Location `ρ`.
    pub pos: Point,
    /// Creation time `t_c` in milliseconds.
    pub created: Timestamp,
}

impl SpatialObject {
    /// Creates a new spatial object.
    #[inline]
    pub fn new(id: ObjectId, weight: f64, pos: Point, created: Timestamp) -> Self {
        debug_assert!(weight >= 0.0, "object weight must be non-negative");
        SpatialObject {
            id,
            weight,
            pos,
            created,
        }
    }
}

/// A rectangle object `g = ⟨w, ρ, t_c⟩` (paper Definition 3) produced by the
/// SURGE→cSPOT reduction: an `a×b` rectangle whose bottom-left corner is the
/// originating spatial object's location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectObject {
    /// Identifier inherited from the originating spatial object.
    pub id: ObjectId,
    /// Weight inherited from the originating spatial object.
    pub weight: f64,
    /// The rectangle extent.
    pub rect: Rect,
    /// Creation time inherited from the originating spatial object.
    pub created: Timestamp,
}

impl RectObject {
    /// Creates a new rectangle object.
    #[inline]
    pub fn new(id: ObjectId, weight: f64, rect: Rect, created: Timestamp) -> Self {
        RectObject {
            id,
            weight,
            rect,
            created,
        }
    }

    /// Whether the (closed) rectangle covers point `p`.
    #[inline]
    pub fn covers(&self, p: Point) -> bool {
        self.rect.contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_object_fields() {
        let o = SpatialObject::new(7, 3.5, Point::new(1.0, 2.0), 42);
        assert_eq!(o.id, 7);
        assert_eq!(o.weight, 3.5);
        assert_eq!(o.created, 42);
    }

    #[test]
    fn rect_object_covers_boundary() {
        let g = RectObject::new(1, 1.0, Rect::new(0.0, 0.0, 2.0, 1.0), 0);
        assert!(g.covers(Point::new(2.0, 1.0)));
        assert!(g.covers(Point::new(0.0, 0.0)));
        assert!(!g.covers(Point::new(2.1, 0.5)));
    }

    #[test]
    fn window_kind_is_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(WindowKind::Current);
        s.insert(WindowKind::Past);
        s.insert(WindowKind::Current);
        assert_eq!(s.len(), 2);
    }
}
