//! Totally-ordered `f64` wrapper for priority structures.

use std::cmp::Ordering;

/// An `f64` with a total order (via [`f64::total_cmp`]), usable as a
/// `BTreeSet`/`BTreeMap` key.
///
/// Detectors keep cells in `BTreeSet<(TotalF64, CellId)>` ordered by upper
/// bound or burst score; re-prioritizing a cell is a `remove` + `insert` with
/// the *stored* key, which avoids both stale-entry growth (lazy heaps) and
/// float-recomputation mismatches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl TotalF64 {
    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for TotalF64 {
    #[inline]
    fn from(v: f64) -> Self {
        TotalF64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn orders_like_f64() {
        let mut s = BTreeSet::new();
        s.insert(TotalF64(3.0));
        s.insert(TotalF64(-1.0));
        s.insert(TotalF64(2.5));
        let v: Vec<f64> = s.iter().map(|t| t.0).collect();
        assert_eq!(v, vec![-1.0, 2.5, 3.0]);
    }

    #[test]
    fn handles_infinity() {
        let mut s = BTreeSet::new();
        s.insert(TotalF64(f64::INFINITY));
        s.insert(TotalF64(0.0));
        assert_eq!(s.iter().next_back().unwrap().0, f64::INFINITY);
    }

    #[test]
    fn exact_removal_with_stored_key() {
        let mut s = BTreeSet::new();
        let key = TotalF64(0.1 + 0.2); // not representable as 0.3
        s.insert((key, 7u64));
        assert!(s.remove(&(key, 7u64)));
        assert!(s.is_empty());
    }

    #[test]
    fn zero_signs_are_distinct_but_ordered() {
        // total_cmp puts -0.0 < +0.0; both stay retrievable.
        let mut s = BTreeSet::new();
        s.insert(TotalF64(-0.0));
        s.insert(TotalF64(0.0));
        assert_eq!(s.len(), 2);
    }
}
