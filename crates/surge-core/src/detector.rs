//! Detector traits implemented by every SURGE algorithm.

use crate::event::Event;
use crate::geom::Point;
use crate::grid::CellId;
use crate::ordered::TotalF64;
use crate::query::{RegionAnswer, RegionSize};

/// Counters exposed by detectors for the paper's instrumentation (Table II
/// reports the fraction of rectangle events that trigger a cell search).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Number of events processed.
    pub events: u64,
    /// Number of `New` events processed (rectangle messages in Table II).
    pub new_events: u64,
    /// Number of times an inner exhaustive search (SL-CSPOT or equivalent)
    /// was invoked.
    pub searches: u64,
    /// Number of events whose processing invoked at least one inner search.
    pub events_triggering_search: u64,
}

impl DetectorStats {
    /// Fraction of events that triggered at least one search, in `[0, 1]`.
    pub fn trigger_ratio(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.events_triggering_search as f64 / self.events as f64
        }
    }
}

/// A continuous single-region bursty detector.
///
/// Implementations ingest the shared `New`/`Grown`/`Expired` event stream and
/// can report the current bursty region at any time. `current` is expected to
/// be cheap relative to `on_event` for the exact detectors (the answer is
/// maintained incrementally), and O(log n) for the heap-backed approximate
/// detectors.
pub trait BurstDetector {
    /// Processes one window-transition event.
    fn on_event(&mut self, event: &Event);

    /// The current bursty region, or `None` when both windows are empty of
    /// in-area objects.
    fn current(&mut self) -> Option<RegionAnswer>;

    /// A short human-readable algorithm name (e.g. `"CCS"`).
    fn name(&self) -> &'static str;

    /// Instrumentation counters.
    fn stats(&self) -> DetectorStats {
        DetectorStats::default()
    }
}

/// Hot-path reuse counters a detector's persistent sweep layer may expose:
/// how often a dirty cell's search was answered from its epoch cache
/// without touching the tree, and how often a retained kinetic y-sweep
/// plan was replayed instead of re-deriving the sweep inputs. Detectors
/// without a persistent sweep layer report all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCacheStats {
    /// Searches answered from the epoch cache (churn epoch unchanged since
    /// the cached outcome — no tree work at all).
    pub epoch_hits: u64,
    /// Searches that had to sweep: cold cache or the epoch advanced.
    pub epoch_misses: u64,
    /// Kinetic y-sweep plans compiled from scratch.
    pub plan_builds: u64,
    /// Sweeps that replayed a retained plan instead of re-sorting and
    /// re-clipping the cell's rectangles.
    pub plan_reuses: u64,
}

/// A [`BurstDetector`] whose per-cell maintenance is *incremental*: events
/// only mark the touched cells dirty, and the expensive per-cell searches
/// can be snapshotted as pure jobs, executed out-of-band (in particular on
/// worker threads — see `surge-stream`'s parallel dirty-cell sweeper) and
/// installed back.
///
/// The contract mirrors `snapshot → compute → install`:
///
/// 1. [`snapshot_dirty_jobs`](Self::snapshot_dirty_jobs) captures every
///    stale cell as self-contained data, in deterministic order;
/// 2. [`run_job`](Self::run_job) computes one job's outcome **without
///    mutating the detector** (it must be safe to call from many threads —
///    implementations are `Sync` reads of immutable parameters);
/// 3. [`install_outcomes`](Self::install_outcomes) writes the outcomes back,
///    after which [`BurstDetector::current`] finds every cell fresh and the
///    answer without further searching.
///
/// No events may be processed between the snapshot and the install, and the
/// sequence must produce state identical to letting `current()` run the
/// searches itself — parallelism may only change wall-clock time.
pub trait IncrementalDetector: BurstDetector {
    /// A self-contained unit of deferred per-cell work (shared read-only
    /// with worker threads during the sweep).
    type Job: Send + Sync;
    /// The outcome of one job.
    type Outcome: Send;
    /// Per-worker scratch space reused across jobs (e.g. a sweep arena).
    /// Detectors without reusable buffers use `()`.
    type Scratch: Default + Send;

    /// Captures every dirty cell as a pure job, in deterministic order.
    fn snapshot_dirty_jobs(&self) -> Vec<Self::Job>;

    /// Computes one job's outcome. Must not observe or mutate any state that
    /// [`BurstDetector::on_event`] changes.
    fn run_job(&self, job: &Self::Job) -> Self::Outcome;

    /// [`run_job`](Self::run_job) over per-worker scratch space: identical
    /// outcome, but a worker thread running many jobs reuses one
    /// [`Scratch`](Self::Scratch) instead of allocating per job.
    fn run_job_with(&self, scratch: &mut Self::Scratch, job: &Self::Job) -> Self::Outcome {
        let _ = scratch;
        self.run_job(job)
    }

    /// Installs outcomes produced by [`run_job`](Self::run_job) for the jobs
    /// of the most recent snapshot.
    ///
    /// Outcomes are per-cell and commute across cells, so per-shard batches
    /// (see [`snapshot_dirty_jobs_shard`](Self::snapshot_dirty_jobs_shard))
    /// may be installed in any order and produce identical state.
    fn install_outcomes(&mut self, outcomes: Vec<Self::Outcome>);

    /// Number of cell shards this detector partitions its state into.
    /// Unsharded detectors report 1.
    fn shard_count(&self) -> usize {
        1
    }

    /// Captures the dirty cells of one shard as pure jobs, in deterministic
    /// order. Concatenating over all shards yields exactly the jobs of
    /// [`snapshot_dirty_jobs`](Self::snapshot_dirty_jobs) (possibly
    /// reordered across shards — never within one).
    fn snapshot_dirty_jobs_shard(&self, shard: usize) -> Vec<Self::Job> {
        if shard == 0 {
            self.snapshot_dirty_jobs()
        } else {
            Vec::new()
        }
    }

    /// Sweeps every dirty cell **in place**, fanning out across up to
    /// `threads` workers, and returns the number of cells swept. After it
    /// returns, [`BurstDetector::current`] finds every cell fresh.
    ///
    /// Detectors with *persistent* per-cell sweep state override this: the
    /// snapshot→compute→install path of [`snapshot_dirty_jobs`]
    /// (which clones each dirty cell's rectangles into a pure job and
    /// rebuilds the sweep from them) stays available as the
    /// rebuild-per-search reference, but the hot path mutates the
    /// persistent state where it lives — per-cell work is independent, so
    /// results must be identical to the job path bit for bit, for any
    /// `threads`.
    ///
    /// The default implementation routes through the job API sequentially
    /// (`threads` is a hint; honoring it is optional).
    ///
    /// Cumulative hot-path reuse counters of the persistent sweep layer
    /// backing [`sweep_dirty`](Self::sweep_dirty) (epoch-cache hits/misses,
    /// kinetic plan builds/reuses). The default reports all zeros, which is
    /// correct for detectors that rebuild their sweeps per search.
    fn sweep_cache_stats(&self) -> SweepCacheStats {
        SweepCacheStats::default()
    }

    /// [`snapshot_dirty_jobs`]: Self::snapshot_dirty_jobs
    fn sweep_dirty(&mut self, threads: usize) -> u64 {
        let _ = threads;
        let jobs = self.snapshot_dirty_jobs();
        let n = jobs.len() as u64;
        let mut scratch = Self::Scratch::default();
        let outcomes = jobs
            .iter()
            .map(|j| self.run_job_with(&mut scratch, j))
            .collect();
        self.install_outcomes(outcomes);
        n
    }
}

/// The best candidate one shard reports at a flush boundary, carrying the
/// tie-break keys needed to merge shard answers into *exactly* the answer
/// the unsharded detector's own scan would produce.
///
/// The sequential best-first scan visits cells in descending
/// `(bound, cell)` order and replaces its incumbent only on strictly greater
/// score, so the global winner is the maximum under the lexicographic
/// `(score, bound, cell)` order — which is [`merge_key`](Self::merge_key).
/// Shard answers merged by `merge_key` are therefore bit-identical to the
/// sequential answer, independent of shard count and thread scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardAnswer {
    /// The bursty point of the winning cell's candidate.
    pub point: Point,
    /// The candidate's burst score.
    pub score: f64,
    /// The queue key (upper bound) of the winning cell — sequential
    /// tie-break 1.
    pub bound: f64,
    /// The winning cell — sequential tie-break 2.
    pub cell: CellId,
}

impl ShardAnswer {
    /// Total-order key for merging shard answers: maximize score, then
    /// bound, then cell id.
    #[inline]
    pub fn merge_key(&self) -> (TotalF64, TotalF64, CellId) {
        (TotalF64(self.score), TotalF64(self.bound), self.cell)
    }

    /// Converts the winning point into the continuous-query answer.
    #[inline]
    pub fn answer(&self, region: RegionSize) -> RegionAnswer {
        RegionAnswer::from_point(self.point, region, self.score)
    }
}

/// Counters a [`ShardWorker`] accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardWorkerStats {
    /// Cell updates this shard applied (an event touching k cells of the
    /// shard counts k).
    pub cell_touches: u64,
    /// SL-CSPOT sweeps this shard ran across all flushes.
    pub sweeps: u64,
}

/// Aggregate counters of one sharded run, folded back into the detector's
/// [`DetectorStats`] by [`ShardedIngest::absorb_shard_run`] (shard workers
/// cannot touch the shared stats while they hold the shard borrows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Events broadcast to the shard workers.
    pub events: u64,
    /// `New` events among them.
    pub new_events: u64,
    /// Total sweeps across all shards and flushes.
    pub searches: u64,
}

/// One shard's exclusive ingest handle: applies the event stream to its own
/// cells, sweeps its own dirty cells at flush boundaries, and reports its
/// local best. Obtained from [`ShardedIngest::ingest_workers`]; the handles
/// borrow the detector's shards disjointly, so each can live on its own
/// thread for the duration of a run.
pub trait ShardWorker {
    /// Applies one event to the cells of this shard (cells owned by other
    /// shards are skipped). Every worker must see every event, in stream
    /// order.
    fn on_event(&mut self, event: &Event);

    /// Sweeps this shard's dirty cells and returns the shard's best
    /// candidate (`None` when the shard holds no scoring cell). After a
    /// flush every cell in the shard is fresh.
    fn flush(&mut self) -> Option<ShardAnswer>;

    /// This worker's lifetime counters.
    fn stats(&self) -> ShardWorkerStats;
}

/// A detector whose ingest can fan out across per-shard workers.
///
/// The contract extends [`IncrementalDetector`]'s snapshot→compute→install
/// discipline to the *whole pipeline*: workers partition the cell state by
/// [`crate::store::shard_of_cell`], every worker observes the full event
/// stream in order (applying only its own cells), and flush answers merged
/// by [`ShardAnswer::merge_key`] are bit-identical to the sequential
/// detector's answer at the same stream position.
pub trait ShardedIngest: BurstDetector {
    /// The per-shard handle type (borrows the detector mutably).
    type Worker<'a>: ShardWorker + Send
    where
        Self: 'a;

    /// Splits the detector into one ingest worker per shard.
    fn ingest_workers(&mut self) -> Vec<Self::Worker<'_>>;

    /// Folds a completed sharded run's counters back into
    /// [`BurstDetector::stats`].
    fn absorb_shard_run(&mut self, run: ShardRunStats);

    /// The query-region size (needed to turn merged [`ShardAnswer`]s into
    /// [`RegionAnswer`]s while the workers still borrow the detector).
    fn region_size(&self) -> RegionSize;
}

/// A [`ShardWorker`] that can participate in driver-coordinated work
/// stealing at flush boundaries.
///
/// The steal protocol splits [`ShardWorker::flush`] into phases the driver
/// sequences across the whole mesh:
///
/// 1. [`dirty_count`](Self::dirty_count) — how many dirty cells this shard
///    would sweep now;
/// 2. [`export_jobs`](Self::export_jobs) — surrender the *tail* `k` of the
///    shard's ascending dirty-cell list as self-contained jobs (the cells
///    stay home; only their sweeps travel). Exported cells are remembered
///    and skipped by the next [`sweep_kept`](Self::sweep_kept);
/// 3. [`run_jobs`](Self::run_jobs) — sweep cells stolen *from peers*
///    (counted in this worker's `sweeps`: the thief did the work);
/// 4. [`sweep_kept`](Self::sweep_kept) — sweep the cells this shard kept,
///    in place;
/// 5. [`install_and_best`](Self::install_and_best) — install outcomes
///    routed home by the driver **without counting them** (the thief
///    already did), clear the export list, and report the shard's best.
///
/// Cells are independent and job execution uses the rebuild-per-search
/// reference path, which is bit-identical to the in-place persistent sweep
/// — so any steal schedule yields the same merged answer and the same
/// total sweep count as the un-stolen flush.
pub trait ElasticWorker: ShardWorker {
    /// A stolen cell's sweep, self-contained enough to run on any worker.
    type Job: Send;
    /// The outcome of one stolen sweep, routed home by the driver.
    type Outcome: Send;

    /// Number of dirty cells this shard would sweep at the next flush.
    fn dirty_count(&self) -> u64;

    /// Exports the tail `k` dirty cells as jobs and marks them exported
    /// (skipped by [`sweep_kept`](Self::sweep_kept), cleared by
    /// [`install_and_best`](Self::install_and_best)). `k` never exceeds
    /// the last reported [`dirty_count`](Self::dirty_count).
    fn export_jobs(&mut self, k: usize) -> Vec<Self::Job>;

    /// Runs jobs stolen from peers, counting each in this worker's
    /// `sweeps`.
    fn run_jobs(&mut self, jobs: Vec<Self::Job>) -> Vec<Self::Outcome>;

    /// Sweeps the dirty cells this shard kept (everything not exported),
    /// in place, counting them in this worker's `sweeps`.
    fn sweep_kept(&mut self);

    /// Installs outcomes of this shard's exported cells (computed by the
    /// thieves — not counted again here), clears the export list and
    /// returns the shard's best candidate.
    fn install_and_best(&mut self, outcomes: Vec<Self::Outcome>) -> Option<ShardAnswer>;
}

/// A [`ShardedIngest`] detector whose mesh is *elastic*: flushes can steal
/// work across shards and the shard count can change at a pause boundary
/// without losing state.
///
/// [`reshard`](Self::reshard) re-homes every cell under the new
/// [`crate::store::shard_of_cell`] mapping by capturing the detector's
/// logical state and restoring it into a fresh store — the same
/// machine-independent path checkpointing uses, so the answer stream after
/// a reshard is bit-identical to a detector built at the new count from
/// the start.
pub trait ElasticIngest: ShardedIngest {
    /// Stolen-sweep job (matches the worker's).
    type Job: Send;
    /// Stolen-sweep outcome (matches the worker's).
    type Outcome: Send;
    /// The per-shard elastic handle type.
    type EWorker<'a>: ElasticWorker<Job = Self::Job, Outcome = Self::Outcome> + Send
    where
        Self: 'a;

    /// Splits the detector into one steal-capable worker per shard.
    fn elastic_workers(&mut self) -> Vec<Self::EWorker<'_>>;

    /// Current shard count of the mesh.
    fn mesh_shards(&self) -> usize;

    /// Re-homes every cell under `shard_of_cell(id, shards)`. `shards` is
    /// rounded up to a power of two by the store. Must be called only
    /// between flushes (no dirty state in flight is required — dirty
    /// marks survive via the captured per-cell state).
    fn reshard(&mut self, shards: usize);

    /// The home cell of an outcome — the driver routes each stolen
    /// outcome back to `shard_of_cell(outcome_cell, n)`.
    fn outcome_cell(outcome: &Self::Outcome) -> CellId;
}

/// A continuous top-k bursty-region detector (paper §VI).
pub trait TopKDetector {
    /// Processes one window-transition event.
    fn on_event(&mut self, event: &Event);

    /// The current top-k bursty regions, best first. May return fewer than
    /// `k` answers when the windows hold fewer occupied regions.
    fn current_topk(&mut self) -> Vec<RegionAnswer>;

    /// The configured `k`.
    fn k(&self) -> usize;

    /// A short human-readable algorithm name (e.g. `"kCCS"`).
    fn name(&self) -> &'static str;

    /// Instrumentation counters.
    fn stats(&self) -> DetectorStats {
        DetectorStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_ratio_empty_is_zero() {
        assert_eq!(DetectorStats::default().trigger_ratio(), 0.0);
    }

    #[test]
    fn trigger_ratio_counts_events() {
        let s = DetectorStats {
            events: 200,
            new_events: 100,
            searches: 30,
            events_triggering_search: 10,
        };
        assert!((s.trigger_ratio() - 0.05).abs() < 1e-12);
    }
}
