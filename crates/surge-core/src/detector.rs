//! Detector traits implemented by every SURGE algorithm.

use crate::event::Event;
use crate::query::RegionAnswer;

/// Counters exposed by detectors for the paper's instrumentation (Table II
/// reports the fraction of rectangle events that trigger a cell search).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Number of events processed.
    pub events: u64,
    /// Number of `New` events processed (rectangle messages in Table II).
    pub new_events: u64,
    /// Number of times an inner exhaustive search (SL-CSPOT or equivalent)
    /// was invoked.
    pub searches: u64,
    /// Number of events whose processing invoked at least one inner search.
    pub events_triggering_search: u64,
}

impl DetectorStats {
    /// Fraction of events that triggered at least one search, in `[0, 1]`.
    pub fn trigger_ratio(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.events_triggering_search as f64 / self.events as f64
        }
    }
}

/// A continuous single-region bursty detector.
///
/// Implementations ingest the shared `New`/`Grown`/`Expired` event stream and
/// can report the current bursty region at any time. `current` is expected to
/// be cheap relative to `on_event` for the exact detectors (the answer is
/// maintained incrementally), and O(log n) for the heap-backed approximate
/// detectors.
pub trait BurstDetector {
    /// Processes one window-transition event.
    fn on_event(&mut self, event: &Event);

    /// The current bursty region, or `None` when both windows are empty of
    /// in-area objects.
    fn current(&mut self) -> Option<RegionAnswer>;

    /// A short human-readable algorithm name (e.g. `"CCS"`).
    fn name(&self) -> &'static str;

    /// Instrumentation counters.
    fn stats(&self) -> DetectorStats {
        DetectorStats::default()
    }
}

/// A continuous top-k bursty-region detector (paper §VI).
pub trait TopKDetector {
    /// Processes one window-transition event.
    fn on_event(&mut self, event: &Event);

    /// The current top-k bursty regions, best first. May return fewer than
    /// `k` answers when the windows hold fewer occupied regions.
    fn current_topk(&mut self) -> Vec<RegionAnswer>;

    /// The configured `k`.
    fn k(&self) -> usize;

    /// A short human-readable algorithm name (e.g. `"kCCS"`).
    fn name(&self) -> &'static str;

    /// Instrumentation counters.
    fn stats(&self) -> DetectorStats {
        DetectorStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_ratio_empty_is_zero() {
        assert_eq!(DetectorStats::default().trigger_ratio(), 0.0);
    }

    #[test]
    fn trigger_ratio_counts_events() {
        let s = DetectorStats {
            events: 200,
            new_events: 100,
            searches: 30,
            events_triggering_search: 10,
        };
        assert!((s.trigger_ratio() - 0.05).abs() < 1e-12);
    }
}
