//! Detector traits implemented by every SURGE algorithm.

use crate::event::Event;
use crate::query::RegionAnswer;

/// Counters exposed by detectors for the paper's instrumentation (Table II
/// reports the fraction of rectangle events that trigger a cell search).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Number of events processed.
    pub events: u64,
    /// Number of `New` events processed (rectangle messages in Table II).
    pub new_events: u64,
    /// Number of times an inner exhaustive search (SL-CSPOT or equivalent)
    /// was invoked.
    pub searches: u64,
    /// Number of events whose processing invoked at least one inner search.
    pub events_triggering_search: u64,
}

impl DetectorStats {
    /// Fraction of events that triggered at least one search, in `[0, 1]`.
    pub fn trigger_ratio(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.events_triggering_search as f64 / self.events as f64
        }
    }
}

/// A continuous single-region bursty detector.
///
/// Implementations ingest the shared `New`/`Grown`/`Expired` event stream and
/// can report the current bursty region at any time. `current` is expected to
/// be cheap relative to `on_event` for the exact detectors (the answer is
/// maintained incrementally), and O(log n) for the heap-backed approximate
/// detectors.
pub trait BurstDetector {
    /// Processes one window-transition event.
    fn on_event(&mut self, event: &Event);

    /// The current bursty region, or `None` when both windows are empty of
    /// in-area objects.
    fn current(&mut self) -> Option<RegionAnswer>;

    /// A short human-readable algorithm name (e.g. `"CCS"`).
    fn name(&self) -> &'static str;

    /// Instrumentation counters.
    fn stats(&self) -> DetectorStats {
        DetectorStats::default()
    }
}

/// A [`BurstDetector`] whose per-cell maintenance is *incremental*: events
/// only mark the touched cells dirty, and the expensive per-cell searches
/// can be snapshotted as pure jobs, executed out-of-band (in particular on
/// worker threads — see `surge-stream`'s parallel dirty-cell sweeper) and
/// installed back.
///
/// The contract mirrors `snapshot → compute → install`:
///
/// 1. [`snapshot_dirty_jobs`](Self::snapshot_dirty_jobs) captures every
///    stale cell as self-contained data, in deterministic order;
/// 2. [`run_job`](Self::run_job) computes one job's outcome **without
///    mutating the detector** (it must be safe to call from many threads —
///    implementations are `Sync` reads of immutable parameters);
/// 3. [`install_outcomes`](Self::install_outcomes) writes the outcomes back,
///    after which [`BurstDetector::current`] finds every cell fresh and the
///    answer without further searching.
///
/// No events may be processed between the snapshot and the install, and the
/// sequence must produce state identical to letting `current()` run the
/// searches itself — parallelism may only change wall-clock time.
pub trait IncrementalDetector: BurstDetector {
    /// A self-contained unit of deferred per-cell work (shared read-only
    /// with worker threads during the sweep).
    type Job: Send + Sync;
    /// The outcome of one job.
    type Outcome: Send;

    /// Captures every dirty cell as a pure job, in deterministic order.
    fn snapshot_dirty_jobs(&self) -> Vec<Self::Job>;

    /// Computes one job's outcome. Must not observe or mutate any state that
    /// [`BurstDetector::on_event`] changes.
    fn run_job(&self, job: &Self::Job) -> Self::Outcome;

    /// Installs outcomes produced by [`run_job`](Self::run_job) for the jobs
    /// of the most recent snapshot.
    fn install_outcomes(&mut self, outcomes: Vec<Self::Outcome>);
}

/// A continuous top-k bursty-region detector (paper §VI).
pub trait TopKDetector {
    /// Processes one window-transition event.
    fn on_event(&mut self, event: &Event);

    /// The current top-k bursty regions, best first. May return fewer than
    /// `k` answers when the windows hold fewer occupied regions.
    fn current_topk(&mut self) -> Vec<RegionAnswer>;

    /// The configured `k`.
    fn k(&self) -> usize;

    /// A short human-readable algorithm name (e.g. `"kCCS"`).
    fn name(&self) -> &'static str;

    /// Instrumentation counters.
    fn stats(&self) -> DetectorStats {
        DetectorStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_ratio_empty_is_zero() {
        assert_eq!(DetectorStats::default().trigger_ratio(), 0.0);
    }

    #[test]
    fn trigger_ratio_counts_events() {
        let s = DetectorStats {
            events: 200,
            new_events: 100,
            searches: 30,
            events_triggering_search: 10,
        };
        assert!((s.trigger_ratio() - 0.05).abs() < 1e-12);
    }
}
