//! Planar geometry primitives.
//!
//! All SURGE algorithms work in a flat 2-D coordinate space. Geographic
//! coordinates (longitude = x, latitude = y) are used directly; the paper's
//! region sizes are small enough that planar treatment is faithful.

/// A point in the plane. `x` is longitude-like, `y` latitude-like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a new point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }
}

/// An axis-aligned closed rectangle `[x0, x1] × [y0, y1]`.
///
/// Rectangles are *closed*: boundary points are contained. This matters for
/// the SURGE→cSPOT reduction, where a region of size `a×b` whose top-right
/// corner sits exactly on the edge of a generated rectangle object still
/// encloses the originating spatial object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the rectangle is inverted (`x1 < x0` or
    /// `y1 < y0`).
    #[inline]
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        debug_assert!(x0 <= x1, "inverted rect: x0={x0} > x1={x1}");
        debug_assert!(y0 <= y1, "inverted rect: y0={y0} > y1={y1}");
        Rect { x0, y0, x1, y1 }
    }

    /// Creates a rectangle from its bottom-left corner and a size.
    #[inline]
    pub fn from_corner_size(corner: Point, width: f64, height: f64) -> Self {
        Rect::new(corner.x, corner.y, corner.x + width, corner.y + height)
    }

    /// The width `x1 − x0`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// The height `y1 − y0`.
    #[inline]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// The area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Whether the closed rectangle contains `p` (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.x0 <= p.x && p.x <= self.x1 && self.y0 <= p.y && p.y <= self.y1
    }

    /// Whether two closed rectangles intersect (shared boundary counts).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Whether the *interiors* of two rectangles intersect (shared boundary
    /// alone does not count). Used by top-k non-overlap selection.
    #[inline]
    pub fn interior_intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// The intersection of two closed rectangles, or `None` if disjoint.
    ///
    /// A degenerate (zero width/height) intersection is still returned,
    /// because closed rectangles sharing only an edge have common points.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        if x0 <= x1 && y0 <= y1 {
            Some(Rect { x0, y0, x1, y1 })
        } else {
            None
        }
    }

    /// The smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Whether `other` lies entirely within `self` (boundary inclusive).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && other.x1 <= self.x1 && self.y0 <= other.y0 && other.y1 <= self.y1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        let p = Point::new(1.5, -2.25);
        assert_eq!(p.x, 1.5);
        assert_eq!(p.y, -2.25);
    }

    #[test]
    fn rect_dimensions() {
        let r = Rect::new(0.0, 1.0, 4.0, 3.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.center(), Point::new(2.0, 2.0));
    }

    #[test]
    fn rect_from_corner_size() {
        let r = Rect::from_corner_size(Point::new(1.0, 2.0), 3.0, 4.0);
        assert_eq!(r, Rect::new(1.0, 2.0, 4.0, 6.0));
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(0.5, 1.0)));
        assert!(!r.contains(Point::new(1.0 + 1e-12, 0.5)));
        assert!(!r.contains(Point::new(0.5, -1e-12)));
    }

    #[test]
    fn intersects_shared_edge_counts() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.interior_intersects(&b));
        let c = Rect::new(1.0 + 1e-9, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn interior_intersects_requires_area_overlap() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        assert!(a.interior_intersects(&b));
        let corner_touch = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert!(a.intersects(&corner_touch));
        assert!(!a.interior_intersects(&corner_touch));
    }

    #[test]
    fn intersection_basic() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(Rect::new(1.0, 1.0, 2.0, 2.0)));
    }

    #[test]
    fn intersection_degenerate_edge() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.25, 2.0, 0.75);
        let i = a.intersection(&b).expect("edge touch intersects");
        assert_eq!(i.width(), 0.0);
        assert_eq!(i, Rect::new(1.0, 0.25, 1.0, 0.75));
    }

    #[test]
    fn intersection_disjoint() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&b), None);
    }

    #[test]
    fn union_bbox_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, -1.0, 6.0, 0.5);
        let u = a.union_bbox(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0.0, -1.0, 6.0, 1.0));
    }

    #[test]
    fn contains_rect_inclusive() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains_rect(&Rect::new(0.0, 0.0, 10.0, 10.0)));
        assert!(outer.contains_rect(&Rect::new(2.0, 2.0, 3.0, 3.0)));
        assert!(!outer.contains_rect(&Rect::new(-0.1, 0.0, 1.0, 1.0)));
    }
}
