//! The SURGE → cSPOT reduction (paper §IV-A, Theorem 1).
//!
//! Every spatial object `o` inside the preferred area is mapped to a
//! rectangle object `g` of the query size whose **bottom-left** corner is
//! `o.ρ`. A query-sized region `r` encloses `o` iff `g` covers `r`'s
//! **top-right** corner. Hence the bursty point of the rectangle stream is the
//! top-right corner of the bursty region, with identical burst score.

use crate::geom::{Point, Rect};
use crate::object::{RectObject, SpatialObject};
use crate::query::RegionSize;

/// Maps a spatial object to its rectangle object for a given query size.
#[inline]
pub fn object_to_rect(o: &SpatialObject, region: RegionSize) -> RectObject {
    RectObject::new(
        o.id,
        o.weight,
        Rect::from_corner_size(o.pos, region.width, region.height),
        o.created,
    )
}

/// The query-sized region whose top-right corner is the bursty point `p`
/// (Theorem 1).
#[inline]
pub fn region_for_point(p: Point, region: RegionSize) -> Rect {
    Rect::new(p.x - region.width, p.y - region.height, p.x, p.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_has_object_at_bottom_left() {
        let o = SpatialObject::new(3, 2.0, Point::new(1.0, 2.0), 10);
        let g = object_to_rect(&o, RegionSize::new(0.5, 0.25));
        assert_eq!(g.rect, Rect::new(1.0, 2.0, 1.5, 2.25));
        assert_eq!(g.id, 3);
        assert_eq!(g.weight, 2.0);
        assert_eq!(g.created, 10);
    }

    #[test]
    fn theorem1_containment_equivalence() {
        // Region r with top-right corner p encloses o  <=>  g covers p.
        let size = RegionSize::new(2.0, 1.0);
        let o = SpatialObject::new(0, 1.0, Point::new(5.0, 5.0), 0);
        let g = object_to_rect(&o, size);
        // Sample a lattice of candidate corner points.
        for ix in 0..40 {
            for iy in 0..40 {
                let p = Point::new(3.0 + ix as f64 * 0.2, 3.5 + iy as f64 * 0.15);
                let region = region_for_point(p, size);
                assert_eq!(
                    region.contains(o.pos),
                    g.covers(p),
                    "mismatch at p=({}, {})",
                    p.x,
                    p.y
                );
            }
        }
    }

    #[test]
    fn region_for_point_has_query_size() {
        let r = region_for_point(Point::new(10.0, 20.0), RegionSize::new(3.0, 4.0));
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.x1, 10.0);
        assert_eq!(r.y1, 20.0);
    }
}
