//! Logical checkpoint state: capture/restore contracts for engines and
//! detectors.
//!
//! A production deployment of continuous detection cannot afford to replay
//! the stream from t = 0 after a process restart. The checkpoint subsystem
//! (`surge-checkpoint`) periodically persists a **logical snapshot** of the
//! pipeline — window residency, per-cell detector state, pending per-slide
//! answers, top-k incumbents — plus a write-ahead log of raw arrivals, and
//! recovery reconstructs the exact pipeline state and replays the log tail.
//!
//! The types here are the *logical* state model that snapshot: they carry
//! no derived structures (segment trees, sorted edge multisets, shard
//! queues). Everything derived is rebuilt deterministically on restore —
//! the persistent-sweep structures are defined by total orders over the
//! restored rectangle sets, so a restored detector's future searches are
//! **bit-identical** to the uninterrupted run's (the same argument, and the
//! same proptests, that back the persistent-vs-rebuild sweep differential).
//! What floating-point history *cannot* be re-derived bitwise — candidate
//! weight sums maintained incrementally under Lemma 4, dynamic bounds,
//! per-cell static-bound accumulators — is captured verbatim, bit for bit.
//!
//! The serialization of this model (checksummed sections, CRC footer,
//! atomic write) lives in `surge-io`/`surge-checkpoint`; this module is
//! only the in-memory contract, so detector crates can implement
//! [`CheckpointableDetector`] without an I/O dependency.

use std::fmt;

use crate::detector::DetectorStats;
use crate::geom::{Point, Rect};
use crate::grid::CellId;
use crate::object::{ObjectId, SpatialObject, WindowKind};
use crate::time::{Timestamp, WindowConfig};

/// The logical state of a dual sliding-window engine: the resident objects
/// (in creation order, front first) plus the clock fields an engine needs to
/// keep emitting the exact transition sequence it would have emitted
/// uninterrupted.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// The window configuration the engine was built with.
    pub windows: WindowConfig,
    /// The engine clock (largest timestamp observed).
    pub now: Timestamp,
    /// The largest arrival timestamp observed.
    pub last_created: Timestamp,
    /// Whether the stream had become stable (at least one expiry seen).
    pub started: bool,
    /// The most recent arrival's `(timestamp, id)` — the lane decomposition
    /// needs it to keep enforcing the equal-timestamp increasing-id
    /// contract across a restore.
    pub last_arrival: Option<(Timestamp, ObjectId)>,
    /// Objects resident in the current window, oldest first.
    pub current: Vec<SpatialObject>,
    /// Objects resident in the past window, oldest first.
    pub past: Vec<SpatialObject>,
}

/// One resident rectangle of a cell (or of a top-k detector's global
/// rectangle set): the reduced rectangle, its originating object id and
/// weight, which window it currently belongs to, and — for top-k detectors —
/// its visibility level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectState {
    /// Originating object id.
    pub id: ObjectId,
    /// The full (unclipped) reduced rectangle.
    pub rect: Rect,
    /// Object weight.
    pub weight: f64,
    /// Current or past window.
    pub kind: WindowKind,
    /// Top-k visibility level (`lvl` in Algorithm 4); 0 for single-region
    /// detectors, which have no levels.
    pub level: u32,
}

/// A cell's cached candidate for one cSPOT problem, captured bit-for-bit.
///
/// `Valid` carries the incrementally maintained weight sums (Lemma 4): they
/// are floating-point accumulations whose exact bits depend on event
/// history, so they must be restored verbatim rather than recomputed — a
/// fresh sweep could legitimately sum the same weights in a different
/// order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CandidateState {
    /// The candidate was invalidated (or never computed); the next answer
    /// scan re-searches the cell.
    Stale,
    /// A maintained candidate guaranteed to attain the cell's maximum.
    Valid {
        /// The candidate bursty point.
        point: Point,
        /// Current-window weight sum at `point` (raw, unnormalized).
        wc: f64,
        /// Past-window weight sum at `point` (raw, unnormalized).
        wp: f64,
    },
    /// The cell's feasible point domain is empty; it can never answer.
    Infeasible,
    /// The cell was searched and found to contain no in-domain rectangle
    /// (a fresh "no candidate" outcome, distinct from `Stale`).
    Absent,
}

/// The logical state of one grid cell, across the detector's cSPOT levels
/// (`len == 1` for single-region detectors, `k` for top-k).
#[derive(Debug, Clone, PartialEq)]
pub struct CellState {
    /// The cell's grid coordinates.
    pub id: CellId,
    /// Resident rectangles in ascending object-id order. Top-k detectors
    /// keep their rectangles globally (see [`DetectorState::rects`]) and
    /// leave this empty.
    pub rects: Vec<RectState>,
    /// Per-level unnormalized static-bound accumulators (Definition 7),
    /// captured bit-for-bit.
    pub us: Vec<f64>,
    /// Per-level dynamic bounds in score units (Eqn. 3; ∞ until first
    /// searched), captured bit-for-bit.
    pub ud: Vec<f64>,
    /// Per-level candidate states.
    pub cand: Vec<CandidateState>,
}

/// The logical state of one counting-grid cell of an approximate detector
/// (GAPS keeps one grid, MGAPS four half-shifted ones). The weight sums are
/// floating-point accumulations over the event history, so — exactly like
/// [`CandidateState::Valid`] — they are captured bit-for-bit; the derived
/// rank key is a pure function of `(wc, wp)` and is recomputed on restore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCellState {
    /// Which grid instance owns the cell (0 for GAPS; 0..4 for MGAPS).
    pub grid: u32,
    /// The cell's grid coordinates.
    pub id: CellId,
    /// Current-window weight sum (raw, unnormalized), bit-for-bit.
    pub wc: f64,
    /// Past-window weight sum (raw, unnormalized), bit-for-bit.
    pub wp: f64,
    /// Resident current-window object count (cells vanish at 0).
    pub count: u32,
}

/// The logical state of the overload autopilot's degradation controller:
/// the active tier plus the hysteresis counters, so a crash mid-degradation
/// restores the controller exactly where it was (same tier, same pending
/// escalation/drain progress).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerState {
    /// The active tier (0 = exact, 1 = MGAPS, 2 = GAPS).
    pub tier: u8,
    /// Consecutive over-SLO slides observed so far.
    pub over: u32,
    /// Consecutive drained slides observed so far.
    pub under: u32,
    /// Slides remaining before another transition is allowed.
    pub cooldown: u32,
    /// Total tier transitions performed.
    pub transitions: u64,
    /// Slides spent in each tier (exact, MGAPS, GAPS).
    pub slides_in_tier: [u64; 3],
    /// Detector counters accumulated by tiers that were since torn down
    /// (the active tier's live counters are added on top).
    pub base_stats: DetectorStats,
}

/// The logical state of a detector: everything needed to rebuild it so that
/// its future answers (and the searches behind them) are bit-identical to
/// the uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorState {
    /// The detector's [`crate::BurstDetector::name`]-style identifier,
    /// recorded for sanity checks at restore time.
    pub name: String,
    /// Number of cSPOT levels (1 for single-region detectors, k for top-k).
    pub levels: u32,
    /// Per-cell state, in ascending cell-id order.
    pub cells: Vec<CellState>,
    /// The global rectangle set with visibility levels (top-k detectors
    /// only; empty for cell-local detectors, whose rectangles live in
    /// [`CellState::rects`]).
    pub rects: Vec<RectState>,
    /// The current incumbent answers, best first: the top-k bursty points
    /// with their scores. Single-region detectors leave this empty (their
    /// incumbent is derived from cell candidates on the next scan).
    pub incumbents: Vec<Option<(Point, f64)>>,
    /// Counting-grid cells (approximate detectors only; empty for exact
    /// detectors), in ascending `(grid, id)` order.
    pub grid_cells: Vec<GridCellState>,
    /// Degradation-controller state (autopilot detectors only).
    pub controller: Option<ControllerState>,
    /// Instrumentation counters, restored so post-recovery stats continue
    /// the uninterrupted sequence.
    pub stats: DetectorStats,
}

/// Why a [`CheckpointableDetector::restore_state`] call was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError(pub String);

impl RestoreError {
    /// Builds an error from anything displayable.
    pub fn new(msg: impl fmt::Display) -> Self {
        RestoreError(msg.to_string())
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// A detector whose logical state can be captured into a [`DetectorState`]
/// and restored into a freshly constructed instance.
///
/// # Contract
///
/// * `capture_state` is deterministic: capturing the same detector twice
///   yields equal states, with cells in ascending id order and rectangles
///   in ascending object-id order (snapshot files must be byte-stable).
/// * `restore_state` requires `self` to be **freshly constructed** with the
///   same configuration (query, bound/sweep mode, shard count, k) the
///   captured detector had; restoring into a non-empty detector is an
///   error.
/// * After a successful restore, feeding the detector the identical event
///   suffix produces bit-identical answers, and the same per-cell searches,
///   as the uninterrupted original — candidate weight sums, dynamic bounds
///   and static-bound accumulators are restored bit-for-bit, and every
///   derived structure is rebuilt from total orders (see the module docs).
pub trait CheckpointableDetector {
    /// Captures the detector's logical state.
    fn capture_state(&self) -> DetectorState;

    /// Restores a captured state into this freshly constructed detector.
    fn restore_state(&mut self, state: &DetectorState) -> Result<(), RestoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_error_displays_message() {
        let e = RestoreError::new("levels mismatch");
        assert!(e.to_string().contains("levels mismatch"));
    }

    #[test]
    fn candidate_state_equality_is_bitwise_friendly() {
        let a = CandidateState::Valid {
            point: Point::new(1.0, 2.0),
            wc: 3.0,
            wp: 0.5,
        };
        assert_eq!(a, a);
        assert_ne!(a, CandidateState::Stale);
        assert_ne!(CandidateState::Absent, CandidateState::Stale);
    }

    #[test]
    fn engine_state_roundtrips_through_clone() {
        let s = EngineState {
            windows: WindowConfig::equal(100),
            now: 42,
            last_created: 40,
            started: true,
            last_arrival: Some((40, 7)),
            current: vec![SpatialObject::new(7, 1.0, Point::new(0.0, 0.0), 40)],
            past: vec![],
        };
        assert_eq!(s.clone(), s);
    }
}
