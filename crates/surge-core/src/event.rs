//! Window-transition events (paper §IV-C).
//!
//! Three events can change the bursty region:
//!
//! * **New** — an object enters the current window (it just arrived).
//! * **Grown** — an object leaves the current window and enters the past
//!   window (its age exceeded `|W_c|`).
//! * **Expired** — an object leaves the past window entirely.
//!
//! The sliding-window engine in `surge-stream` emits these in transition-time
//! order; every detector consumes the same event stream.

use crate::object::SpatialObject;
use crate::time::Timestamp;

/// The kind of window transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Object enters the current window.
    New,
    /// Object moves from the current window to the past window.
    Grown,
    /// Object leaves the past window.
    Expired,
}

/// A window-transition event `e = ⟨o, l⟩`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// The transition kind.
    pub kind: EventKind,
    /// The object undergoing the transition.
    pub object: SpatialObject,
    /// The logical time at which the transition takes effect.
    pub at: Timestamp,
}

impl Event {
    /// Creates a `New` event at the object's creation time.
    #[inline]
    pub fn new_arrival(object: SpatialObject) -> Self {
        Event {
            kind: EventKind::New,
            at: object.created,
            object,
        }
    }

    /// Creates a `Grown` event at transition time `at`.
    #[inline]
    pub fn grown(object: SpatialObject, at: Timestamp) -> Self {
        Event {
            kind: EventKind::Grown,
            object,
            at,
        }
    }

    /// Creates an `Expired` event at transition time `at`.
    #[inline]
    pub fn expired(object: SpatialObject, at: Timestamp) -> Self {
        Event {
            kind: EventKind::Expired,
            object,
            at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    fn obj() -> SpatialObject {
        SpatialObject::new(1, 2.0, Point::new(0.0, 0.0), 500)
    }

    #[test]
    fn new_arrival_uses_creation_time() {
        let e = Event::new_arrival(obj());
        assert_eq!(e.kind, EventKind::New);
        assert_eq!(e.at, 500);
    }

    #[test]
    fn grown_and_expired_carry_transition_time() {
        let g = Event::grown(obj(), 1_500);
        assert_eq!(g.kind, EventKind::Grown);
        assert_eq!(g.at, 1_500);
        let x = Event::expired(obj(), 2_500);
        assert_eq!(x.kind, EventKind::Expired);
        assert_eq!(x.at, 2_500);
    }
}
