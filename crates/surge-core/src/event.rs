//! Window-transition events (paper §IV-C).
//!
//! Three events can change the bursty region:
//!
//! * **New** — an object enters the current window (it just arrived).
//! * **Grown** — an object leaves the current window and enters the past
//!   window (its age exceeded `|W_c|`).
//! * **Expired** — an object leaves the past window entirely.
//!
//! The sliding-window engine in `surge-stream` emits these in transition-time
//! order; every detector consumes the same event stream.

use crate::object::SpatialObject;
use crate::time::Timestamp;

/// The kind of window transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Object enters the current window.
    New,
    /// Object moves from the current window to the past window.
    Grown,
    /// Object leaves the past window.
    Expired,
}

impl EventKind {
    /// Rank of this kind in the engine's canonical tie order at equal
    /// transition times: all `Grown` transitions due at `t` are emitted
    /// before all `Expired` transitions due at `t` (the engine's grow branch
    /// wins ties), and `New` arrivals at `t` come last (pending transitions
    /// are drained before an arrival is admitted).
    #[inline]
    pub const fn rank(self) -> u8 {
        match self {
            EventKind::Grown => 0,
            EventKind::Expired => 1,
            EventKind::New => 2,
        }
    }
}

/// A window-transition event `e = ⟨o, l⟩`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// The transition kind.
    pub kind: EventKind,
    /// The object undergoing the transition.
    pub object: SpatialObject,
    /// The logical time at which the transition takes effect.
    pub at: Timestamp,
}

impl Event {
    /// Creates a `New` event at the object's creation time.
    #[inline]
    pub fn new_arrival(object: SpatialObject) -> Self {
        Event {
            kind: EventKind::New,
            at: object.created,
            object,
        }
    }

    /// Creates a `Grown` event at transition time `at`.
    #[inline]
    pub fn grown(object: SpatialObject, at: Timestamp) -> Self {
        Event {
            kind: EventKind::Grown,
            object,
            at,
        }
    }

    /// Creates an `Expired` event at transition time `at`.
    #[inline]
    pub fn expired(object: SpatialObject, at: Timestamp) -> Self {
        Event {
            kind: EventKind::Expired,
            object,
            at,
        }
    }

    /// The canonical total order of the event stream:
    /// `(transition_time, kind_rank, object_id)`.
    ///
    /// A single sliding-window engine emits events in exactly this order
    /// whenever equal-timestamp arrivals carry increasing object ids (the
    /// streaming contract: ids are unique and assigned on arrival). It is
    /// therefore the merge key for recombining per-lane event streams — a
    /// k-way merge of lane streams by `order_key` is bit-identical to the
    /// monolithic engine's emission, independent of lane count.
    #[inline]
    pub fn order_key(&self) -> (Timestamp, u8, crate::object::ObjectId) {
        (self.at, self.kind.rank(), self.object.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    fn obj() -> SpatialObject {
        SpatialObject::new(1, 2.0, Point::new(0.0, 0.0), 500)
    }

    #[test]
    fn new_arrival_uses_creation_time() {
        let e = Event::new_arrival(obj());
        assert_eq!(e.kind, EventKind::New);
        assert_eq!(e.at, 500);
    }

    #[test]
    fn grown_and_expired_carry_transition_time() {
        let g = Event::grown(obj(), 1_500);
        assert_eq!(g.kind, EventKind::Grown);
        assert_eq!(g.at, 1_500);
        let x = Event::expired(obj(), 2_500);
        assert_eq!(x.kind, EventKind::Expired);
        assert_eq!(x.at, 2_500);
    }

    #[test]
    fn kind_ranks_follow_engine_tie_order() {
        assert!(EventKind::Grown.rank() < EventKind::Expired.rank());
        assert!(EventKind::Expired.rank() < EventKind::New.rank());
    }

    #[test]
    fn order_key_sorts_time_then_kind_then_id() {
        let o = obj();
        let grown = Event::grown(o, 1_000);
        let expired = Event::expired(o, 1_000);
        let arrival = Event::new_arrival(SpatialObject::new(9, 1.0, o.pos, 1_000));
        assert!(grown.order_key() < expired.order_key());
        assert!(expired.order_key() < arrival.order_key());
        // Time dominates kind.
        assert!(arrival.order_key() < Event::grown(o, 1_001).order_key());
        // Id breaks full ties.
        let a = Event::grown(SpatialObject::new(1, 1.0, o.pos, 0), 700);
        let b = Event::grown(SpatialObject::new(2, 1.0, o.pos, 0), 700);
        assert!(a.order_key() < b.order_key());
    }
}
