//! # surge-core
//!
//! Core data model for the SURGE system (Feng et al., *SURGE: Continuous
//! Detection of Bursty Regions Over a Stream of Spatial Objects*, ICDE 2018).
//!
//! This crate defines the vocabulary shared by every SURGE detector:
//!
//! * [`geom`] — planar geometry primitives ([`Point`], [`Rect`]).
//! * [`object`] — weighted, timestamped [`SpatialObject`]s and the
//!   [`RectObject`]s produced by the SURGE→cSPOT reduction.
//! * [`time`] — logical timestamps and the dual sliding-window configuration.
//! * [`score`] — the burst score `S = α·max(f_c − f_p, 0) + (1−α)·f_c`.
//! * [`event`] — the `New` / `Grown` / `Expired` window-transition events that
//!   drive every detector.
//! * [`query`] — the continuous query descriptor `q = ⟨A, a×b, |W|⟩`.
//! * [`grid`] — the cell grid used by the exact and approximate solutions.
//! * [`store`] — sharded per-cell storage (spatial-hash sharding by cell id)
//!   behind the parallel-ingest pipeline.
//! * [`reduction`] — the SURGE→cSPOT mapping (Theorem 1 of the paper).
//! * [`detector`] — the [`BurstDetector`] / [`TopKDetector`] traits every
//!   algorithm implements.
//! * [`checkpoint`] — the logical state model behind durable snapshots:
//!   [`EngineState`] for the window engines and the
//!   [`CheckpointableDetector`] capture/restore contract for detectors
//!   (serialized by `surge-io`/`surge-checkpoint`).
//!
//! Downstream crates (`surge-exact`, `surge-approx`, `surge-baseline`,
//! `surge-topk`) implement the paper's algorithms on top of this model, and
//! `surge-stream` turns raw object streams into the event stream consumed
//! here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod detector;
pub mod event;
pub mod geom;
pub mod grid;
pub mod object;
pub mod ordered;
pub mod query;
pub mod reduction;
pub mod score;
pub mod store;
pub mod time;

pub use checkpoint::{
    CandidateState, CellState, CheckpointableDetector, ControllerState, DetectorState, EngineState,
    GridCellState, RectState, RestoreError,
};
pub use detector::{
    BurstDetector, DetectorStats, ElasticIngest, ElasticWorker, IncrementalDetector, ShardAnswer,
    ShardRunStats, ShardWorker, ShardWorkerStats, ShardedIngest, SweepCacheStats, TopKDetector,
};
pub use event::{Event, EventKind};
pub use geom::{Point, Rect};
pub use grid::{CellId, GridSpec};
pub use object::{ObjectId, RectObject, SpatialObject, WindowKind};
pub use ordered::TotalF64;
pub use query::{QueryKey, QueryKeyError, RegionAnswer, RegionSize, SurgeQuery};
pub use reduction::{object_to_rect, region_for_point};
pub use score::{burst_score, BurstParams, ScorePair, SCORE_EPS};
pub use store::{shard_of_cell, CellStore, LaneRouter, ShardedCellStore};
pub use time::{Duration, Timestamp, WindowConfig};
