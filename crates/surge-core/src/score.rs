//! The burst score function (paper Definition 1).
//!
//! For a region `r` (or, after the reduction, a point `p`),
//!
//! ```text
//! S(r) = α · max(f(r, W_c) − f(r, W_p), 0) + (1 − α) · f(r, W_c)
//! ```
//!
//! where `f(r, W) = Σ_{o ∈ O(r,W)} o.w / |W|` is the window-normalized weight
//! sum. `α ∈ [0, 1)` balances *burstiness* (the increase between windows)
//! against *significance* (the current-window score).

use crate::time::WindowConfig;

/// Threshold below which a burst score is treated as zero ("nothing bursty").
///
/// `max(fc − fp, 0)` involves a cancellation: when the two windows hold the
/// same weight, the difference is pure rounding noise (~1e-18 at typical
/// magnitudes) whose sign is arbitrary. Detectors and oracles that filter for
/// "positively scored" answers must agree on a cutoff, otherwise they can
/// disagree on whether a k-th answer exists. Real scores are many orders of
/// magnitude above this (weight ≥ 1 over an hour-long window gives ~2.8e-7).
pub const SCORE_EPS: f64 = 1e-12;

/// Parameters of the burst score function: the balance parameter `α` and the
/// window normalizers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstParams {
    /// Balance parameter `α ∈ [0, 1)`.
    pub alpha: f64,
    /// Divisor for current-window weight sums (`|W_c|`).
    pub current_norm: f64,
    /// Divisor for past-window weight sums (`|W_p|`).
    pub past_norm: f64,
}

impl BurstParams {
    /// Creates burst-score parameters from `α` and a window configuration.
    ///
    /// # Panics
    ///
    /// Panics if `α ∉ [0, 1)`.
    pub fn new(alpha: f64, windows: WindowConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha),
            "alpha must be in [0, 1), got {alpha}"
        );
        BurstParams {
            alpha,
            current_norm: windows.current_norm(),
            past_norm: windows.past_norm(),
        }
    }

    /// The burst score for raw weight sums `wc` (current window) and `wp`
    /// (past window).
    #[inline]
    pub fn score_weights(&self, wc: f64, wp: f64) -> f64 {
        let fc = wc / self.current_norm;
        let fp = wp / self.past_norm;
        burst_score(fc, fp, self.alpha)
    }

    /// The burst score for already-normalized scores `fc`, `fp`.
    #[inline]
    pub fn score_normalized(&self, fc: f64, fp: f64) -> f64 {
        burst_score(fc, fp, self.alpha)
    }

    /// The theoretical approximation ratio `(1 − α) / 4` of the grid-based
    /// solutions (paper Theorems 3 and 4).
    #[inline]
    pub fn grid_approx_ratio(&self) -> f64 {
        (1.0 - self.alpha) / 4.0
    }
}

/// A pair of normalized window scores for one region/point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScorePair {
    /// `f(·, W_c)` — normalized current-window score.
    pub fc: f64,
    /// `f(·, W_p)` — normalized past-window score.
    pub fp: f64,
}

impl ScorePair {
    /// Evaluates the burst score for this pair.
    #[inline]
    pub fn burst(&self, alpha: f64) -> f64 {
        burst_score(self.fc, self.fp, alpha)
    }
}

/// Evaluates `α · max(fc − fp, 0) + (1 − α) · fc`.
#[inline]
pub fn burst_score(fc: f64, fp: f64, alpha: f64) -> f64 {
    alpha * (fc - fp).max(0.0) + (1.0 - alpha) * fc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::WindowConfig;

    #[test]
    fn score_matches_paper_example3() {
        // Figure 2 / Example 3: three unit-weight rectangles in W_c, |W_c|=1.
        // The intersection point has S = 3 regardless of alpha (fp = 0).
        for alpha in [0.0, 0.25, 0.5, 0.9] {
            assert!((burst_score(3.0, 0.0, alpha) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn score_clamps_negative_increase() {
        // fc = 1, fp = 5: the max() clamps the burstiness term to zero.
        let s = burst_score(1.0, 5.0, 0.5);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_pure_significance() {
        assert_eq!(burst_score(2.0, 17.0, 0.0), 2.0);
        assert_eq!(burst_score(2.0, 0.0, 0.0), 2.0);
    }

    #[test]
    fn params_normalize_by_window_length() {
        let p = BurstParams::new(0.5, WindowConfig::new(100, 200));
        // wc=100 -> fc=1; wp=400 -> fp=2; S = 0.5*0 + 0.5*1 = 0.5
        assert!((p.score_weights(100.0, 400.0) - 0.5).abs() < 1e-12);
        // wc=200 -> fc=2; wp=200 -> fp=1; S = 0.5*1 + 0.5*2 = 1.5
        assert!((p.score_weights(200.0, 200.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_one_rejected() {
        let _ = BurstParams::new(1.0, WindowConfig::equal(10));
    }

    #[test]
    fn grid_ratio() {
        let p = BurstParams::new(0.2, WindowConfig::equal(10));
        assert!((p.grid_approx_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn score_pair_burst() {
        let sp = ScorePair { fc: 4.0, fp: 1.0 };
        assert!((sp.burst(0.5) - (0.5 * 3.0 + 0.5 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn lemma5_containment_bound_holds_for_samples() {
        // Lemma 5: S(r2) >= (1-alpha) S(r1) for r1 ⊆ r2. With containment,
        // fc2 >= fc1 and fp2 >= fp1; check the inequality over a small sweep.
        for alpha in [0.1, 0.5, 0.9] {
            for &(fc1, fp1, extra_c, extra_p) in &[
                (1.0, 0.5, 0.5, 2.0),
                (2.0, 0.0, 0.0, 3.0),
                (0.0, 1.0, 1.0, 0.0),
            ] {
                let s1 = burst_score(fc1, fp1, alpha);
                let s2 = burst_score(fc1 + extra_c, fp1 + extra_p, alpha);
                assert!(
                    s2 >= (1.0 - alpha) * s1 - 1e-12,
                    "alpha={alpha} fc1={fc1} fp1={fp1}"
                );
            }
        }
    }
}
