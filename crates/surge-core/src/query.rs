//! The continuous SURGE query `q = ⟨A, a×b, |W|⟩` and detector answers.

use crate::geom::{Point, Rect};
use crate::score::BurstParams;
use crate::time::WindowConfig;

/// The size `a × b` of the query rectangle.
///
/// The paper writes `a × b` without fixing which side is horizontal; here
/// `width` is the x-extent and `height` the y-extent, removing the ambiguity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSize {
    /// Horizontal extent of the query rectangle.
    pub width: f64,
    /// Vertical extent of the query rectangle.
    pub height: f64,
}

impl RegionSize {
    /// Creates a region size.
    ///
    /// # Panics
    ///
    /// Panics if either extent is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "region width must be positive and finite"
        );
        assert!(
            height > 0.0 && height.is_finite(),
            "region height must be positive and finite"
        );
        RegionSize { width, height }
    }

    /// Scales both extents by `factor` (used for the paper's 0.5q–3q sweeps).
    pub fn scaled(&self, factor: f64) -> Self {
        RegionSize::new(self.width * factor, self.height * factor)
    }
}

/// A continuous bursty-region query (paper Definition 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgeQuery {
    /// The preferred area `A`; objects outside it are ignored.
    pub area: Rect,
    /// The query rectangle size `a × b`.
    pub region: RegionSize,
    /// The sliding-window configuration `|W|`.
    pub windows: WindowConfig,
    /// The burst-score balance parameter `α ∈ [0, 1)`.
    pub alpha: f64,
}

impl SurgeQuery {
    /// Creates a query; validates `α`.
    pub fn new(area: Rect, region: RegionSize, windows: WindowConfig, alpha: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha),
            "alpha must be in [0, 1), got {alpha}"
        );
        SurgeQuery {
            area,
            region,
            windows,
            alpha,
        }
    }

    /// A query over the whole plane (no preferred-area restriction), the
    /// paper's default setting.
    pub fn whole_space(region: RegionSize, windows: WindowConfig, alpha: f64) -> Self {
        Self::new(
            Rect::new(
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::INFINITY,
            ),
            region,
            windows,
            alpha,
        )
    }

    /// The burst-score parameters induced by this query.
    #[inline]
    pub fn burst_params(&self) -> BurstParams {
        BurstParams::new(self.alpha, self.windows)
    }

    /// The domain of feasible bursty points: `p` is feasible iff the region
    /// with top-right corner `p` lies entirely inside the preferred area.
    /// `None` when the area is narrower than the query rectangle.
    pub fn point_domain(&self) -> Option<Rect> {
        let x0 = self.area.x0 + self.region.width;
        let y0 = self.area.y0 + self.region.height;
        if x0 <= self.area.x1 && y0 <= self.area.y1 {
            Some(Rect::new(x0, y0, self.area.x1, self.area.y1))
        } else {
            None
        }
    }

    /// Whether a location is inside the preferred area.
    #[inline]
    pub fn accepts(&self, p: Point) -> bool {
        self.area.contains(p)
    }
}

/// The canonical identity of a [`SurgeQuery`] for reduction dedup: every
/// `f64` parameter is keyed by its IEEE-754 **bit pattern**, so two queries
/// share a key exactly when their SURGE→cSPOT reductions — and therefore
/// their detector states — evolve bit-identically over the same stream.
///
/// Bitwise keying is deliberate on both edges of float equality:
///
/// * `-0.0` and `0.0` compare equal as floats but have different bits; they
///   get **distinct** keys, because downstream arithmetic (`1/x`, sign-
///   sensitive sweeps) can distinguish them and sharing a detector would
///   break the bit-identity contract.
/// * `NaN` never equals itself, so a NaN parameter has no well-defined
///   dedup identity; [`QueryKey::new`] **rejects** it (the query
///   constructors already reject NaN α and region extents — this guards the
///   area rectangle too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Area rectangle `(x0, y0, x1, y1)` as bits.
    area: [u64; 4],
    /// Region extents `(width, height)` as bits.
    region: [u64; 2],
    /// Window lengths `(current, past)`.
    windows: [u64; 2],
    /// `α` as bits.
    alpha: u64,
}

impl QueryKey {
    /// Keys a query, rejecting any NaN parameter.
    pub fn new(q: &SurgeQuery) -> Result<Self, QueryKeyError> {
        let fields = [
            ("area.x0", q.area.x0),
            ("area.y0", q.area.y0),
            ("area.x1", q.area.x1),
            ("area.y1", q.area.y1),
            ("region.width", q.region.width),
            ("region.height", q.region.height),
            ("alpha", q.alpha),
        ];
        for (name, v) in fields {
            if v.is_nan() {
                return Err(QueryKeyError { field: name });
            }
        }
        Ok(QueryKey {
            area: [
                q.area.x0.to_bits(),
                q.area.y0.to_bits(),
                q.area.x1.to_bits(),
                q.area.y1.to_bits(),
            ],
            region: [q.region.width.to_bits(), q.region.height.to_bits()],
            windows: [q.windows.current_len, q.windows.past_len],
            alpha: q.alpha.to_bits(),
        })
    }

    /// The window configuration embedded in the key.
    pub fn windows(&self) -> WindowConfig {
        WindowConfig::new(self.windows[0], self.windows[1])
    }
}

impl TryFrom<&SurgeQuery> for QueryKey {
    type Error = QueryKeyError;
    fn try_from(q: &SurgeQuery) -> Result<Self, QueryKeyError> {
        QueryKey::new(q)
    }
}

/// A query parameter was NaN and therefore has no dedup identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryKeyError {
    /// Which parameter was NaN.
    pub field: &'static str,
}

impl core::fmt::Display for QueryKeyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "query parameter {} is NaN and cannot be keyed",
            self.field
        )
    }
}

impl std::error::Error for QueryKeyError {}

/// A detector's answer: the reported bursty region, the cSPOT point it was
/// derived from (the region's top-right corner, per Theorem 1), and its burst
/// score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionAnswer {
    /// The reported region of size `a × b`.
    pub region: Rect,
    /// The bursty point (top-right corner of `region` for reduction-based
    /// detectors; the region's top-right corner for grid detectors).
    pub point: Point,
    /// The region's burst score under the query's [`BurstParams`].
    pub score: f64,
}

impl RegionAnswer {
    /// Builds an answer from a bursty point and the query's region size,
    /// placing the region's top-right corner at the point (Theorem 1).
    pub fn from_point(point: Point, region: RegionSize, score: f64) -> Self {
        RegionAnswer {
            region: Rect::new(
                point.x - region.width,
                point.y - region.height,
                point.x,
                point.y,
            ),
            point,
            score,
        }
    }

    /// Builds an answer from an explicit region rectangle (grid detectors
    /// report whole cells).
    pub fn from_region(region: Rect, score: f64) -> Self {
        RegionAnswer {
            point: Point::new(region.x1, region.y1),
            region,
            score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_size_scaling() {
        let q = RegionSize::new(2.0, 4.0);
        let h = q.scaled(0.5);
        assert_eq!(h.width, 1.0);
        assert_eq!(h.height, 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_region_rejected() {
        let _ = RegionSize::new(0.0, 1.0);
    }

    #[test]
    fn query_accepts_area_filter() {
        let q = SurgeQuery::new(
            Rect::new(0.0, 0.0, 10.0, 10.0),
            RegionSize::new(1.0, 1.0),
            WindowConfig::equal(100),
            0.5,
        );
        assert!(q.accepts(Point::new(5.0, 5.0)));
        assert!(q.accepts(Point::new(10.0, 10.0)));
        assert!(!q.accepts(Point::new(10.5, 5.0)));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn query_validates_alpha() {
        let _ = SurgeQuery::new(
            Rect::new(0.0, 0.0, 1.0, 1.0),
            RegionSize::new(0.1, 0.1),
            WindowConfig::equal(100),
            -0.1,
        );
    }

    #[test]
    fn whole_space_accepts_everything() {
        let q = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(10), 0.3);
        assert!(q.accepts(Point::new(1e300, -1e300)));
        let d = q.point_domain().unwrap();
        assert_eq!(d.x0, f64::NEG_INFINITY);
        assert_eq!(d.x1, f64::INFINITY);
    }

    #[test]
    fn point_domain_shrinks_area() {
        let q = SurgeQuery::new(
            Rect::new(0.0, 0.0, 10.0, 10.0),
            RegionSize::new(2.0, 3.0),
            WindowConfig::equal(10),
            0.0,
        );
        assert_eq!(q.point_domain(), Some(Rect::new(2.0, 3.0, 10.0, 10.0)));
    }

    #[test]
    fn point_domain_empty_when_area_too_small() {
        let q = SurgeQuery::new(
            Rect::new(0.0, 0.0, 1.0, 1.0),
            RegionSize::new(2.0, 3.0),
            WindowConfig::equal(10),
            0.0,
        );
        assert_eq!(q.point_domain(), None);
    }

    #[test]
    fn answer_from_point_places_top_right_corner() {
        let a = RegionAnswer::from_point(Point::new(5.0, 5.0), RegionSize::new(2.0, 1.0), 3.0);
        assert_eq!(a.region, Rect::new(3.0, 4.0, 5.0, 5.0));
        assert_eq!(a.point, Point::new(5.0, 5.0));
    }

    #[test]
    fn answer_from_region_derives_point() {
        let a = RegionAnswer::from_region(Rect::new(0.0, 0.0, 2.0, 2.0), 1.0);
        assert_eq!(a.point, Point::new(2.0, 2.0));
    }

    fn keyed(area: Rect, alpha: f64) -> QueryKey {
        QueryKey::new(&SurgeQuery::new(
            area,
            RegionSize::new(1.0, 1.0),
            WindowConfig::equal(100),
            alpha,
        ))
        .expect("finite query keys")
    }

    #[test]
    fn query_key_equal_queries_share_keys() {
        let a = keyed(Rect::new(0.0, 0.0, 10.0, 10.0), 0.5);
        let b = keyed(Rect::new(0.0, 0.0, 10.0, 10.0), 0.5);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |k: &QueryKey| {
            let mut s = DefaultHasher::new();
            k.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
        assert_eq!(a.windows(), WindowConfig::equal(100));
    }

    #[test]
    fn query_key_distinguishes_negative_zero() {
        // -0.0 == 0.0 as floats, but the reductions they parameterize are
        // not interchangeable bit-for-bit — the keys must differ.
        let plus = keyed(Rect::new(0.0, 0.0, 10.0, 10.0), 0.5);
        let minus = keyed(Rect::new(-0.0, 0.0, 10.0, 10.0), 0.5);
        assert_ne!(plus, minus);
    }

    #[test]
    fn query_key_rejects_nan() {
        let q = SurgeQuery {
            area: Rect {
                x0: f64::NAN,
                y0: 0.0,
                x1: 1.0,
                y1: 1.0,
            },
            region: RegionSize::new(1.0, 1.0),
            windows: WindowConfig::equal(100),
            alpha: 0.5,
        };
        let err = QueryKey::new(&q).unwrap_err();
        assert_eq!(err.field, "area.x0");
        assert!(err.to_string().contains("NaN"));
    }

    #[test]
    fn query_key_separates_parameters() {
        let base = keyed(Rect::new(0.0, 0.0, 10.0, 10.0), 0.5);
        assert_ne!(base, keyed(Rect::new(0.0, 0.0, 10.0, 11.0), 0.5));
        assert_ne!(base, keyed(Rect::new(0.0, 0.0, 10.0, 10.0), 0.25));
        let other_windows = QueryKey::new(&SurgeQuery::new(
            Rect::new(0.0, 0.0, 10.0, 10.0),
            RegionSize::new(1.0, 1.0),
            WindowConfig::new(100, 50),
            0.5,
        ))
        .unwrap();
        assert_ne!(base, other_windows);
    }
}
