//! Sharded cell storage shared by the exact detectors.
//!
//! The detection pipeline keys all per-cell state by [`CellId`]. A single
//! `HashMap<CellId, C>` serializes ingest: every event mutates the one map,
//! so `on_event` cannot fan out across cores. [`ShardedCellStore`] splits the
//! cell universe into `2^k` disjoint shards by a **spatial hash** of the cell
//! coordinates ([`shard_of_cell`]); any two cells in different shards can be
//! mutated concurrently, which is what `surge-stream`'s sharded driver
//! exploits — each shard worker owns one shard's map exclusively for the
//! whole run.
//!
//! The hash is deterministic (no per-process seeding), so shard assignment —
//! and therefore every shard-ordered traversal — is reproducible across runs
//! and machines. Neighbouring cells land in unrelated shards on purpose:
//! hot spots cover a handful of *adjacent* cells (Lemma 1), and spreading
//! those across shards balances ingest load where a block-partition would
//! funnel a burst into one worker.
//!
//! [`CellStore`] is the map-shaped trait both the sharded store and a plain
//! `HashMap` (the unsharded baseline) implement; detector code written
//! against it is oblivious to the sharding.

use std::collections::HashMap;

use crate::grid::{CellId, GridSpec};
use crate::object::SpatialObject;
use crate::query::RegionSize;

/// The shard owning cell `id` in a store with `shard_count` shards.
///
/// `shard_count` must be a power of two. The mixer is Fibonacci hashing on
/// each coordinate with distinct odd multipliers, folded (`h ^ (h >> 32)`)
/// so the high-entropy upper bits reach the low bits the mask keeps —
/// small grid coordinates stay well spread.
#[inline]
pub fn shard_of_cell(id: CellId, shard_count: usize) -> usize {
    debug_assert!(shard_count.is_power_of_two(), "shard count must be 2^k");
    let h = (id.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((id.1 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    let mixed = h ^ (h >> 32);
    (mixed as usize) & (shard_count - 1)
}

/// Map-shaped access to per-cell state, implemented by both the sharded
/// store and a plain `HashMap` (the unsharded baseline).
///
/// Iteration order is unspecified for both implementations; callers needing
/// determinism must collect and sort ids (every dirty-snapshot path does).
pub trait CellStore<C> {
    /// Number of cells stored.
    fn len(&self) -> usize;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Whether `id` is present.
    fn contains(&self, id: CellId) -> bool;
    /// The cell `id`, if present.
    fn get(&self, id: CellId) -> Option<&C>;
    /// Mutable access to cell `id`, if present.
    fn get_mut(&mut self, id: CellId) -> Option<&mut C>;
    /// The cell `id`, inserting `default()` first if absent.
    fn get_or_insert_with(&mut self, id: CellId, default: impl FnOnce() -> C) -> &mut C;
    /// Removes and returns cell `id`.
    fn remove(&mut self, id: CellId) -> Option<C>;
    /// Visits every `(id, cell)` pair in unspecified order.
    fn for_each(&self, f: impl FnMut(CellId, &C));
}

impl<C> CellStore<C> for HashMap<CellId, C> {
    fn len(&self) -> usize {
        HashMap::len(self)
    }
    fn contains(&self, id: CellId) -> bool {
        self.contains_key(&id)
    }
    fn get(&self, id: CellId) -> Option<&C> {
        HashMap::get(self, &id)
    }
    fn get_mut(&mut self, id: CellId) -> Option<&mut C> {
        HashMap::get_mut(self, &id)
    }
    fn get_or_insert_with(&mut self, id: CellId, default: impl FnOnce() -> C) -> &mut C {
        self.entry(id).or_insert_with(default)
    }
    fn remove(&mut self, id: CellId) -> Option<C> {
        HashMap::remove(self, &id)
    }
    fn for_each(&self, mut f: impl FnMut(CellId, &C)) {
        for (id, c) in self {
            f(*id, c);
        }
    }
}

/// Routes stream objects to the window **lane** of their home shard.
///
/// The SURGE→cSPOT reduction maps an object to a query-sized rectangle whose
/// bottom-left corner is the object's position, so the rectangle's *anchor
/// cell* — the cell of the query-sized grid containing that corner — is a
/// deterministic function of the object alone. Hashing the anchor cell with
/// [`shard_of_cell`] assigns every object a home shard consistent with the
/// cell sharding of [`ShardedCellStore`]: per-object window state (the dual
/// sliding window is per-object — paper §IV-C) can then be partitioned into
/// one lane per shard, and each shard worker expands its own lane's
/// `Grown`/`Expired` transitions instead of receiving pre-expanded events.
///
/// Routing is pure and deterministic, so lane assignment is reproducible
/// across runs, machines and thread interleavings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneRouter {
    grid: GridSpec,
    lanes: usize,
}

impl LaneRouter {
    /// A router over `lanes` lanes (rounded up to a power of two, minimum 1)
    /// for a `region`-sized query: the grid is the query-sized grid anchored
    /// at the origin — the same grid every exact detector uses.
    pub fn new(region: RegionSize, lanes: usize) -> Self {
        LaneRouter {
            grid: GridSpec::anchored(region.width, region.height),
            lanes: lanes.max(1).next_power_of_two(),
        }
    }

    /// Number of lanes (a power of two).
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// The anchor cell of `object`'s reduced rectangle (the grid cell
    /// containing the rectangle's bottom-left corner, i.e. the object's
    /// position).
    #[inline]
    pub fn anchor_cell(&self, object: &SpatialObject) -> CellId {
        self.grid.cell_of(object.pos)
    }

    /// The home lane of `object`: [`shard_of_cell`] of its anchor cell.
    #[inline]
    pub fn lane_of(&self, object: &SpatialObject) -> usize {
        shard_of_cell(self.anchor_cell(object), self.lanes)
    }
}

/// Per-cell state partitioned into `2^k` spatial-hash shards.
///
/// [`shards_mut`](Self::shards_mut) exposes the shards as disjoint `&mut`
/// slices so per-shard workers can ingest concurrently under scoped threads;
/// all single-cell operations route through [`shard_of_cell`].
#[derive(Debug, Clone)]
pub struct ShardedCellStore<C> {
    shards: Vec<HashMap<CellId, C>>,
}

impl<C> ShardedCellStore<C> {
    /// A store with `shard_count` shards, rounded up to a power of two
    /// (minimum 1).
    pub fn new(shard_count: usize) -> Self {
        let n = shard_count.max(1).next_power_of_two();
        ShardedCellStore {
            shards: (0..n).map(|_| HashMap::new()).collect(),
        }
    }

    /// Number of shards (a power of two).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning cell `id`.
    #[inline]
    pub fn shard_of(&self, id: CellId) -> usize {
        shard_of_cell(id, self.shards.len())
    }

    /// Shard `s`'s cell map.
    #[inline]
    pub fn shard(&self, s: usize) -> &HashMap<CellId, C> {
        &self.shards[s]
    }

    /// Mutable access to shard `s`'s cell map.
    #[inline]
    pub fn shard_mut(&mut self, s: usize) -> &mut HashMap<CellId, C> {
        &mut self.shards[s]
    }

    /// All shards as a slice (read-only fan-out).
    #[inline]
    pub fn shards(&self) -> &[HashMap<CellId, C>] {
        &self.shards
    }

    /// All shards as disjoint mutable maps — the parallel-ingest entry
    /// point: hand each worker one element.
    #[inline]
    pub fn shards_mut(&mut self) -> &mut [HashMap<CellId, C>] {
        &mut self.shards
    }
}

impl<C> CellStore<C> for ShardedCellStore<C> {
    fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }
    fn contains(&self, id: CellId) -> bool {
        self.shards[self.shard_of(id)].contains_key(&id)
    }
    fn get(&self, id: CellId) -> Option<&C> {
        self.shards[self.shard_of(id)].get(&id)
    }
    fn get_mut(&mut self, id: CellId) -> Option<&mut C> {
        let s = self.shard_of(id);
        self.shards[s].get_mut(&id)
    }
    fn get_or_insert_with(&mut self, id: CellId, default: impl FnOnce() -> C) -> &mut C {
        let s = self.shard_of(id);
        self.shards[s].entry(id).or_insert_with(default)
    }
    fn remove(&mut self, id: CellId) -> Option<C> {
        let s = self.shard_of(id);
        self.shards[s].remove(&id)
    }
    fn for_each(&self, mut f: impl FnMut(CellId, &C)) {
        for shard in &self.shards {
            for (id, c) in shard {
                f(*id, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedCellStore::<u32>::new(0).shard_count(), 1);
        assert_eq!(ShardedCellStore::<u32>::new(1).shard_count(), 1);
        assert_eq!(ShardedCellStore::<u32>::new(3).shard_count(), 4);
        assert_eq!(ShardedCellStore::<u32>::new(8).shard_count(), 8);
    }

    #[test]
    fn shard_assignment_is_total_and_stable() {
        for count in [1usize, 2, 8, 64] {
            for i in -20..20i64 {
                for j in -20..20i64 {
                    let s = shard_of_cell((i, j), count);
                    assert!(s < count);
                    assert_eq!(s, shard_of_cell((i, j), count), "stable");
                }
            }
        }
    }

    #[test]
    fn adjacent_cells_spread_across_shards() {
        // A 16×16 block of adjacent cells should not collapse into a few of
        // 8 shards — the whole point of hashing over block partitioning.
        let mut counts = [0usize; 8];
        for i in 0..16i64 {
            for j in 0..16i64 {
                counts[shard_of_cell((i, j), 8)] += 1;
            }
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 0, "shard {s} empty over an adjacent block: {counts:?}");
        }
        let max = *counts.iter().max().unwrap();
        assert!(max <= 3 * (256 / 8), "skewed shard load: {counts:?}");
    }

    #[test]
    fn store_roundtrip_and_len() {
        let mut store: ShardedCellStore<u32> = ShardedCellStore::new(4);
        assert!(store.is_empty());
        for i in 0..50i64 {
            *store.get_or_insert_with((i, -i), || 0) += i as u32;
        }
        assert_eq!(store.len(), 50);
        assert!(store.contains((7, -7)));
        assert_eq!(store.get((7, -7)), Some(&7));
        *store.get_mut((7, -7)).unwrap() += 1;
        assert_eq!(store.remove((7, -7)), Some(8));
        assert_eq!(store.len(), 49);
        assert!(!store.contains((7, -7)));
        let mut seen = 0;
        store.for_each(|_, _| seen += 1);
        assert_eq!(seen, 49);
    }

    #[test]
    fn lane_router_matches_cell_shard_of_anchor_cell() {
        use crate::geom::Point;
        let region = RegionSize::new(0.5, 0.25);
        let router = LaneRouter::new(region, 8);
        assert_eq!(router.lane_count(), 8);
        for i in 0..50i64 {
            let o = SpatialObject::new(i as u64, 1.0, Point::new(i as f64 * 0.3, -i as f64), 0);
            let anchor = router.anchor_cell(&o);
            assert_eq!(
                anchor,
                GridSpec::anchored(region.width, region.height).cell_of(o.pos)
            );
            assert_eq!(router.lane_of(&o), shard_of_cell(anchor, 8));
            assert!(router.lane_of(&o) < 8);
        }
    }

    #[test]
    fn lane_router_rounds_lane_count_up() {
        let region = RegionSize::new(1.0, 1.0);
        assert_eq!(LaneRouter::new(region, 0).lane_count(), 1);
        assert_eq!(LaneRouter::new(region, 3).lane_count(), 4);
        assert_eq!(LaneRouter::new(region, 8).lane_count(), 8);
    }

    #[test]
    fn hashmap_impl_matches_sharded_behaviour() {
        let mut plain: HashMap<CellId, u32> = HashMap::new();
        let mut sharded: ShardedCellStore<u32> = ShardedCellStore::new(8);
        for i in 0..30i64 {
            *CellStore::get_or_insert_with(&mut plain, (i, i * 2), || 1) += 1;
            *sharded.get_or_insert_with((i, i * 2), || 1) += 1;
        }
        assert_eq!(CellStore::len(&plain), sharded.len());
        for i in 0..30i64 {
            assert_eq!(CellStore::get(&plain, (i, i * 2)), sharded.get((i, i * 2)));
        }
    }
}
