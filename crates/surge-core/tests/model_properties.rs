//! Randomized property tests over the core data model: the grid invariants
//! behind Lemma 1, the reduction behind Theorem 1, and the burst-score
//! inequalities behind Lemmas 2, 5 and 6.

use proptest::prelude::*;
use surge_core::{
    burst_score, object_to_rect, region_for_point, BurstParams, GridSpec, Point, Rect, RegionSize,
    SpatialObject, WindowConfig,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_size() -> impl Strategy<Value = RegionSize> {
    (0.01..100.0f64, 0.01..100.0f64).prop_map(|(w, h)| RegionSize::new(w, h))
}

fn arb_grid() -> impl Strategy<Value = GridSpec> {
    (-50.0..50.0f64, -50.0..50.0f64, 0.1..50.0f64, 0.1..50.0f64)
        .prop_map(|(ox, oy, w, h)| GridSpec::with_origin(ox, oy, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `cell_of` is consistent with `cell_rect`: every point lies inside its
    /// own cell's closed extent.
    #[test]
    fn cell_of_point_is_inside_cell_rect(grid in arb_grid(), p in arb_point()) {
        let cell = grid.cell_of(p);
        let r = grid.cell_rect(cell);
        prop_assert!(r.contains(p), "point {p:?} outside its cell rect {r:?}");
    }

    /// Lemma 1: a query-sized rectangle overlaps at most 4 cells of the
    /// query-sized grid in generic position, and never more than 9.
    #[test]
    fn lemma1_query_rect_overlap_counts(
        grid_origin in (-10.0..10.0f64, -10.0..10.0f64),
        size in arb_size(),
        corner in arb_point(),
    ) {
        let grid = GridSpec::with_origin(grid_origin.0, grid_origin.1, size.width, size.height);
        let r = Rect::from_corner_size(corner, size.width, size.height);
        let cells: Vec<surge_core::CellId> = grid.cells_overlapping_iter(&r).collect();
        prop_assert!(!cells.is_empty());
        prop_assert!(cells.len() <= 9, "query rect overlapped {} cells", cells.len());
        // In generic position (no edge exactly on a grid line) it is <= 4.
        let on_line = |v: f64, origin: f64, step: f64| ((v - origin) / step).fract() == 0.0;
        let generic = !on_line(r.x0, grid.origin_x, grid.cell_w)
            && !on_line(r.x1, grid.origin_x, grid.cell_w)
            && !on_line(r.y0, grid.origin_y, grid.cell_h)
            && !on_line(r.y1, grid.origin_y, grid.cell_h);
        if generic {
            prop_assert!(cells.len() <= 4, "generic-position rect overlapped {}", cells.len());
        }
    }

    /// The cells returned for a rectangle cover every point of it.
    #[test]
    fn overlap_cells_cover_rect_points(
        grid in arb_grid(),
        corner in arb_point(),
        dims in (0.01..200.0f64, 0.01..200.0f64),
        frac in (0.0..=1.0f64, 0.0..=1.0f64),
    ) {
        let r = Rect::from_corner_size(corner, dims.0, dims.1);
        let cells: Vec<surge_core::CellId> = grid.cells_overlapping_iter(&r).collect();
        let p = Point::new(r.x0 + frac.0 * r.width(), r.y0 + frac.1 * r.height());
        let owner = grid.cell_of(p);
        prop_assert!(cells.contains(&owner), "cell {owner:?} of {p:?} missing");
    }

    /// Theorem 1: region with top-right corner `p` encloses `o` iff the
    /// reduced rectangle object of `o` covers `p`.
    #[test]
    fn theorem1_reduction_equivalence(
        obj_pos in arb_point(),
        p in arb_point(),
        size in arb_size(),
        weight in 0.0..100.0f64,
    ) {
        let o = SpatialObject::new(0, weight, obj_pos, 0);
        let g = object_to_rect(&o, size);
        let region = region_for_point(p, size);
        prop_assert_eq!(region.contains(o.pos), g.covers(p));
        // The reduced rectangle preserves weight and times.
        prop_assert_eq!(g.weight, o.weight);
        prop_assert_eq!(g.created, o.created);
    }

    /// Lemma 2: `S(p) ≤ f(p, W_c)` — the static upper bound is sound.
    #[test]
    fn lemma2_static_bound(fc in 0.0..1e6f64, fp in 0.0..1e6f64, alpha in 0.0..0.999f64) {
        prop_assert!(burst_score(fc, fp, alpha) <= fc + 1e-9 * fc.max(1.0));
    }

    /// Lemma 5 (containment): if `r1 ⊆ r2` then `S(r2) ≥ (1−α)·S(r1)`.
    /// Containment means `fc2 ≥ fc1` and `fp2 ≥ fp1`.
    #[test]
    fn lemma5_containment(
        fc1 in 0.0..1e5f64,
        fp1 in 0.0..1e5f64,
        dc in 0.0..1e5f64,
        dp in 0.0..1e5f64,
        alpha in 0.0..0.999f64,
    ) {
        let s1 = burst_score(fc1, fp1, alpha);
        let s2 = burst_score(fc1 + dc, fp1 + dp, alpha);
        prop_assert!(s2 >= (1.0 - alpha) * s1 - 1e-9 * s1.max(1.0));
    }

    /// Lemma 6 (subadditivity): for disjoint `r1`, `r2`,
    /// `S(r1) + S(r2) ≥ S(r1 ∪ r2)`; union scores add per window.
    #[test]
    fn lemma6_subadditivity(
        fc1 in 0.0..1e5f64, fp1 in 0.0..1e5f64,
        fc2 in 0.0..1e5f64, fp2 in 0.0..1e5f64,
        alpha in 0.0..0.999f64,
    ) {
        let s1 = burst_score(fc1, fp1, alpha);
        let s2 = burst_score(fc2, fp2, alpha);
        let su = burst_score(fc1 + fc2, fp1 + fp2, alpha);
        prop_assert!(s1 + s2 >= su - 1e-9 * su.max(1.0));
    }

    /// The burst score is monotone in `fc` and antitone in `fp`.
    #[test]
    fn score_monotonicity(
        fc in 0.0..1e5f64, fp in 0.0..1e5f64,
        d in 0.0..1e5f64, alpha in 0.0..0.999f64,
    ) {
        let base = burst_score(fc, fp, alpha);
        prop_assert!(burst_score(fc + d, fp, alpha) >= base - 1e-12);
        prop_assert!(burst_score(fc, fp + d, alpha) <= base + 1e-12);
    }

    /// `BurstParams::score_weights` equals normalizing then scoring.
    #[test]
    fn params_normalization_consistency(
        wc in 0.0..1e6f64, wp in 0.0..1e6f64,
        alpha in 0.0..0.999f64,
        cur_len in 1u64..10_000_000,
        past_len in 1u64..10_000_000,
    ) {
        let params = BurstParams::new(alpha, WindowConfig::new(cur_len, past_len));
        let direct = params.score_weights(wc, wp);
        let manual = burst_score(wc / cur_len as f64, wp / past_len as f64, alpha);
        prop_assert_eq!(direct.to_bits(), manual.to_bits());
    }

    /// The four MGAP grids tile the plane consistently: each point belongs to
    /// exactly one cell per grid, and the four cells all contain it.
    #[test]
    fn mgap_grids_each_cover_every_point(size in arb_size(), p in arb_point()) {
        for grid in GridSpec::mgap_grids(size.width, size.height) {
            let r = grid.cell_rect(grid.cell_of(p));
            prop_assert!(r.contains(p));
            prop_assert!((r.width() - size.width).abs() < 1e-9 * size.width);
            prop_assert!((r.height() - size.height).abs() < 1e-9 * size.height);
        }
    }
}
