//! End-to-end road-network pipeline: synthetic city + timestamped object
//! stream → sliding-window engine → network detectors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surge_core::{BurstParams, Point, SpatialObject, WindowConfig};
use surge_roadnet::{grid_city, GridCityConfig, NetBallOracle, NetGapSurge};
use surge_stream::SlidingWindowEngine;

fn city() -> surge_roadnet::RoadNetwork {
    grid_city(&GridCityConfig {
        nx: 10,
        ny: 10,
        spacing: 100.0,
        jitter: 0.1,
        drop_fraction: 0.1,
        seed: 17,
    })
}

/// A stream of objects jittered around road junctions, with a mid-stream
/// burst concentrated near one junction.
fn stream_with_burst(
    n: usize,
    burst_center: Point,
    burst_start: u64,
    burst_end: u64,
    seed: u64,
) -> Vec<SpatialObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut objects = Vec::with_capacity(n);
    let mut t = 0u64;
    for i in 0..n {
        t += rng.gen_range(20..120);
        let bursting = t >= burst_start && t < burst_end && rng.gen::<f64>() < 0.6;
        let pos = if bursting {
            Point::new(
                burst_center.x + rng.gen_range(-30.0..30.0),
                burst_center.y + rng.gen_range(-8.0..8.0),
            )
        } else {
            Point::new(rng.gen_range(0.0..900.0), rng.gen_range(0.0..900.0))
        };
        objects.push(SpatialObject::new(
            i as u64,
            rng.gen_range(1.0..10.0),
            pos,
            t,
        ));
    }
    objects
}

#[test]
fn burst_on_a_street_is_detected_and_localized() {
    let windows = WindowConfig::equal(10_000);
    let params = BurstParams::new(0.6, windows);
    let burst_center = Point::new(400.0, 500.0);
    let mut det = NetGapSurge::new(city(), 80.0, params, 80.0);
    let mut engine = SlidingWindowEngine::new(windows);

    let mut localized = 0;
    let mut checked = 0;
    for obj in stream_with_burst(3_000, burst_center, 60_000, 120_000, 3) {
        let t = obj.created;
        for ev in engine.push(obj) {
            det.on_event(&ev);
        }
        // Check only while the burst is in full swing (one window deep).
        if t > 70_000 && t < 120_000 && checked < 200 {
            if let Some(a) = det.current() {
                checked += 1;
                let d = ((a.midpoint.x - burst_center.x).powi(2)
                    + (a.midpoint.y - burst_center.y).powi(2))
                .sqrt();
                if d < 150.0 {
                    localized += 1;
                }
            }
        }
    }
    assert!(checked > 50, "too few checkpoints: {checked}");
    assert!(
        localized as f64 / checked as f64 > 0.8,
        "burst localized in only {localized}/{checked} checkpoints"
    );
}

#[test]
fn heap_answer_matches_recompute_throughout_run() {
    let windows = WindowConfig::equal(5_000);
    let params = BurstParams::new(0.4, windows);
    let mut det = NetGapSurge::new(city(), 60.0, params, 80.0);
    let mut engine = SlidingWindowEngine::new(windows);
    for (i, obj) in stream_with_burst(1_500, Point::new(200.0, 200.0), 30_000, 60_000, 5)
        .into_iter()
        .enumerate()
    {
        for ev in engine.push(obj) {
            det.on_event(&ev);
        }
        if i % 50 == 0 {
            let heap = det.current().map(|a| a.score).unwrap_or(0.0);
            let table = det.recompute_best().map(|(_, s)| s).unwrap_or(0.0);
            assert!(
                (heap - table).abs() <= 1e-12 * heap.abs().max(1.0),
                "step {i}: heap {heap} vs recompute {table}"
            );
        }
    }
}

#[test]
fn ball_oracle_quality_bound_holds_at_snapshots() {
    let windows = WindowConfig::equal(8_000);
    let params = BurstParams::new(0.5, windows);
    let seg_len = 70.0;
    let net = city();
    let mut det = NetGapSurge::new(net.clone(), seg_len, params, 80.0);
    let mut oracle = NetBallOracle::new(net, params, 80.0);
    let mut engine = SlidingWindowEngine::new(windows);
    let mut snapshots = 0;
    for (i, obj) in stream_with_burst(1_200, Point::new(600.0, 300.0), 20_000, 50_000, 9)
        .into_iter()
        .enumerate()
    {
        for ev in engine.push(obj) {
            det.on_event(&ev);
            oracle.on_event(&ev);
        }
        if i % 300 == 299 {
            let seg_best = det.current().map(|a| a.score).unwrap_or(0.0);
            if seg_best <= 0.0 {
                continue;
            }
            // A length-L segment lies inside a ball of radius 1.5·L around
            // the nearest junction to its midpoint; by Lemma 5 the best ball
            // scores at least (1 − α)·S(best segment).
            let ball_best = oracle
                .best_ball(seg_len * 1.5)
                .map(|b| b.score)
                .unwrap_or(0.0);
            assert!(
                ball_best >= (1.0 - params.alpha) * seg_best - 1e-12,
                "step {i}: ball {ball_best} < bound from segment {seg_best}"
            );
            snapshots += 1;
        }
    }
    assert!(snapshots >= 3, "too few snapshots: {snapshots}");
}

#[test]
fn detector_is_deterministic_across_runs() {
    let windows = WindowConfig::equal(6_000);
    let params = BurstParams::new(0.3, windows);
    let run = || {
        let mut det = NetGapSurge::new(city(), 50.0, params, 80.0);
        let mut engine = SlidingWindowEngine::new(windows);
        let mut trace = Vec::new();
        for obj in stream_with_burst(800, Point::new(300.0, 700.0), 15_000, 40_000, 7) {
            for ev in engine.push(obj) {
                det.on_event(&ev);
            }
            if let Some(a) = det.current() {
                trace.push((a.segment, a.score.to_bits()));
            }
        }
        trace
    };
    assert_eq!(run(), run());
}
