//! Property tests for the road-network substrate: snapping correctness,
//! metric axioms for the network distance, segmentation tiling, and mass
//! conservation in the segment detector.

use proptest::prelude::*;
use surge_core::{BurstParams, Event, Point, SpatialObject, WindowConfig};
use surge_roadnet::{
    dijkstra_from_node, grid_city, network_distance, snap_bruteforce, EdgeIndex, EdgePos,
    GridCityConfig, NetGapSurge, NetMgapSurge, RoadNetwork, Segmentation,
};

fn arb_city() -> impl Strategy<Value = RoadNetwork> {
    (2usize..8, 2usize..8, 0u64..1_000, 0.0..0.25f64, 0.0..0.4f64).prop_map(
        |(nx, ny, seed, jitter, drop)| {
            grid_city(&GridCityConfig {
                nx,
                ny,
                spacing: 50.0,
                jitter,
                drop_fraction: drop,
                seed,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bucketed edge index and the brute-force scan agree on the snap
    /// distance for arbitrary probes.
    #[test]
    fn snap_index_matches_bruteforce(
        city in arb_city(),
        px in -100.0..500.0f64,
        py in -100.0..500.0f64,
    ) {
        let idx = EdgeIndex::build(&city).unwrap();
        let p = Point::new(px, py);
        let fast = idx.snap(&city, p);
        let slow = snap_bruteforce(&city, p).unwrap();
        prop_assert!(
            (fast.distance - slow.distance).abs() <= 1e-9,
            "index {} vs brute {}",
            fast.distance,
            slow.distance
        );
    }

    /// Truncated Dijkstra with an infinite radius satisfies the triangle
    /// inequality through any intermediate node.
    #[test]
    fn node_distances_satisfy_triangle_inequality(city in arb_city(), s in 0u32..4) {
        let n = city.node_count() as u32;
        let source = s % n;
        let d = dijkstra_from_node(&city, source, f64::INFINITY);
        for e in city.edges() {
            // Relaxation: d[b] <= d[a] + len and vice versa.
            prop_assert!(d[e.b as usize] <= d[e.a as usize] + e.length + 1e-9);
            prop_assert!(d[e.a as usize] <= d[e.b as usize] + e.length + 1e-9);
        }
    }

    /// The point-to-point network distance is symmetric and satisfies
    /// identity.
    #[test]
    fn network_distance_is_a_metric(city in arb_city()) {
        let take = |i: usize| EdgePos {
            edge: (i % city.edge_count()) as u32,
            offset: city.edge((i % city.edge_count()) as u32).length * 0.3,
        };
        let a = take(0);
        let b = take(city.edge_count() / 2);
        prop_assert_eq!(network_distance(&city, a, a, f64::INFINITY), 0.0);
        let ab = network_distance(&city, a, b, f64::INFINITY);
        let ba = network_distance(&city, b, a, f64::INFINITY);
        prop_assert!((ab - ba).abs() <= 1e-9, "{ab} vs {ba}");
        prop_assert!(ab >= 0.0);
    }

    /// Segmentation tiles every edge exactly and `segment_of` is consistent
    /// with the spans.
    #[test]
    fn segmentation_tiles_and_locates(
        city in arb_city(),
        target in 5.0..120.0f64,
        frac in 0.0..=1.0f64,
    ) {
        let seg = Segmentation::new(&city, target);
        let mut total = 0u32;
        for (eid, e) in city.edges().iter().enumerate() {
            let eid = eid as u32;
            let n = seg.segments_on_edge(eid);
            total += n;
            let mut end = 0.0;
            for index in 0..n {
                let id = surge_roadnet::SegmentId { edge: eid, index };
                let (s0, s1) = seg.segment_span(&city, id);
                prop_assert!((s0 - end).abs() < 1e-9);
                prop_assert!(seg.segment_len(&city, id) <= target + 1e-9);
                end = s1;
            }
            prop_assert!((end - e.length).abs() < 1e-9);
            // A probe at `frac` of the edge lands in the segment whose span
            // contains it.
            let pos = EdgePos { edge: eid, offset: frac * e.length };
            let found = seg.segment_of(&city, pos);
            let (s0, s1) = seg.segment_span(&city, found);
            prop_assert!(pos.offset >= s0 - 1e-9 && pos.offset <= s1 + 1e-9);
        }
        prop_assert_eq!(total, seg.segment_count());
    }

    /// The multi-segmentation detector never reports a worse score than the
    /// single-segmentation detector on identical event streams.
    #[test]
    fn multiseg_never_worse_than_single(
        city in arb_city(),
        arrivals in prop::collection::vec(
            (0.0..400.0f64, 0.0..400.0f64, 1.0..20.0f64),
            1..30
        ),
    ) {
        let params = BurstParams::new(0.5, WindowConfig::equal(1_000));
        let mut single = NetGapSurge::new(city.clone(), 40.0, params, 1e9);
        let mut multi = NetMgapSurge::new(city, 40.0, params, 1e9);
        for (i, &(x, y, w)) in arrivals.iter().enumerate() {
            let e = Event::new_arrival(SpatialObject::new(i as u64, w, Point::new(x, y), 0));
            single.on_event(&e);
            multi.on_event(&e);
        }
        let s = single.current().map(|a| a.score).unwrap_or(0.0);
        let m = multi.current().map(|a| a.score).unwrap_or(0.0);
        prop_assert!(m >= s - 1e-9 * s.max(1.0), "multi {m} < single {s}");
    }

    /// Mass conservation in the segment detector: after arbitrary event
    /// sequences, the recomputed best score is consistent with the heap, and
    /// fully expiring all objects returns the detector to empty.
    #[test]
    fn detector_mass_conservation(
        city in arb_city(),
        arrivals in prop::collection::vec(
            (0.0..400.0f64, 0.0..400.0f64, 1.0..20.0f64),
            1..40
        ),
        grow_mask in any::<u64>(),
    ) {
        let params = BurstParams::new(0.5, WindowConfig::equal(1_000));
        let mut det = NetGapSurge::new(city, 40.0, params, 1e9);
        let mut events: Vec<Event> = Vec::new();
        for (i, &(x, y, w)) in arrivals.iter().enumerate() {
            let o = SpatialObject::new(i as u64, w, Point::new(x, y), 0);
            events.push(Event::new_arrival(o));
            if grow_mask >> (i % 64) & 1 == 1 {
                events.push(Event::grown(o, 0));
            }
        }
        for e in &events {
            det.on_event(e);
        }
        let heap = det.current().map(|a| a.score).unwrap_or(0.0);
        let table = det.recompute_best().map(|(_, s)| s).unwrap_or(0.0);
        prop_assert!((heap - table).abs() <= 1e-9 * heap.abs().max(1.0));

        // Retire everything: grow the still-current objects, then expire all.
        for (i, &(x, y, w)) in arrivals.iter().enumerate() {
            let o = SpatialObject::new(i as u64, w, Point::new(x, y), 0);
            if grow_mask >> (i % 64) & 1 == 0 {
                det.on_event(&Event::grown(o, 1));
            }
            det.on_event(&Event::expired(o, 2));
        }
        prop_assert_eq!(det.recompute_best(), None);
        prop_assert!(det.current().is_none());
    }
}
