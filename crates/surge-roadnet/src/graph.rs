//! The road-network substrate: an undirected weighted graph embedded in the
//! plane.
//!
//! Nodes are junctions with planar coordinates; edges are road segments with
//! a travel length (by default the Euclidean distance between endpoints).
//! The SURGE road-network extension detects bursty *network regions* —
//! stretches of road, not free-floating rectangles — so every algorithm in
//! this crate works with positions of the form "edge `e`, `offset` meters
//! from endpoint `a`".

use surge_core::Point;

/// Index of a junction in a [`RoadNetwork`].
pub type NodeId = u32;

/// Index of a road segment in a [`RoadNetwork`].
pub type EdgeId = u32;

/// A junction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// Planar position.
    pub pos: Point,
}

/// An undirected road segment between two junctions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Travel length (same unit as node coordinates).
    pub length: f64,
}

/// A position on the network: `offset` along edge `edge`, measured from the
/// edge's `a` endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgePos {
    /// The edge carrying the position.
    pub edge: EdgeId,
    /// Distance from the edge's `a` endpoint, in `[0, edge.length]`.
    pub offset: f64,
}

/// An undirected planar road network.
///
/// Construct with [`RoadNetworkBuilder`]; the builder validates geometry and
/// connectivity invariants so the query algorithms can assume a well-formed
/// graph.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// For each node, the ids of its incident edges.
    adjacency: Vec<Vec<EdgeId>>,
    total_length: f64,
}

impl RoadNetwork {
    /// Number of junctions.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of road segments.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total length of all road segments.
    pub fn total_length(&self) -> f64 {
        self.total_length
    }

    /// The node with the given id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of the edges incident to `node`.
    #[inline]
    pub fn incident_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.adjacency[node as usize]
    }

    /// The endpoint of `edge` that is not `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of `edge`.
    #[inline]
    pub fn other_endpoint(&self, edge: EdgeId, node: NodeId) -> NodeId {
        let e = self.edge(edge);
        if e.a == node {
            e.b
        } else {
            assert_eq!(e.b, node, "node {node} is not an endpoint of edge {edge}");
            e.a
        }
    }

    /// The planar point corresponding to a network position (linear
    /// interpolation along the edge's chord).
    pub fn embed(&self, pos: EdgePos) -> Point {
        let e = self.edge(pos.edge);
        let pa = self.node(e.a).pos;
        let pb = self.node(e.b).pos;
        let t = if e.length > 0.0 {
            (pos.offset / e.length).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Point::new(pa.x + (pb.x - pa.x) * t, pa.y + (pb.y - pa.y) * t)
    }

    /// Distance from `pos` to each endpoint of its edge: `(to_a, to_b)`.
    #[inline]
    pub fn endpoint_distances(&self, pos: EdgePos) -> (f64, f64) {
        let e = self.edge(pos.edge);
        (pos.offset, e.length - pos.offset)
    }

    /// The bounding box of all node positions, or `None` for an empty graph.
    pub fn bounding_box(&self) -> Option<surge_core::Rect> {
        let first = self.nodes.first()?;
        let (mut x0, mut y0, mut x1, mut y1) = (first.pos.x, first.pos.y, first.pos.x, first.pos.y);
        for n in &self.nodes {
            x0 = x0.min(n.pos.x);
            y0 = y0.min(n.pos.y);
            x1 = x1.max(n.pos.x);
            y1 = y1.max(n.pos.y);
        }
        Some(surge_core::Rect::new(x0, y0, x1, y1))
    }
}

/// Errors detected while assembling a [`RoadNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node has a non-finite coordinate.
    BadNodePosition {
        /// Index of the offending node.
        node: NodeId,
    },
    /// An edge references a node id that does not exist.
    DanglingEndpoint {
        /// Index of the offending edge.
        edge: usize,
        /// The missing node id.
        node: NodeId,
    },
    /// An edge has a non-positive or non-finite length.
    BadEdgeLength {
        /// Index of the offending edge.
        edge: usize,
        /// The rejected length.
        length: f64,
    },
    /// An edge connects a node to itself.
    SelfLoop {
        /// Index of the offending edge.
        edge: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::BadNodePosition { node } => {
                write!(f, "node {node} has a non-finite coordinate")
            }
            GraphError::DanglingEndpoint { edge, node } => {
                write!(f, "edge {edge} references missing node {node}")
            }
            GraphError::BadEdgeLength { edge, length } => {
                write!(f, "edge {edge} has invalid length {length}")
            }
            GraphError::SelfLoop { edge } => write!(f, "edge {edge} is a self-loop"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`RoadNetwork`].
#[derive(Debug, Clone, Default)]
pub struct RoadNetworkBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a junction, returning its id.
    pub fn add_node(&mut self, pos: Point) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node { pos });
        id
    }

    /// Adds a road segment with the Euclidean length of its chord.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        let length = match (self.nodes.get(a as usize), self.nodes.get(b as usize)) {
            (Some(na), Some(nb)) => {
                ((na.pos.x - nb.pos.x).powi(2) + (na.pos.y - nb.pos.y).powi(2)).sqrt()
            }
            // Let build() report the dangling endpoint.
            _ => f64::NAN,
        };
        self.add_edge_with_length(a, b, length)
    }

    /// Adds a road segment with an explicit travel length (e.g. a curved
    /// road longer than its chord).
    pub fn add_edge_with_length(&mut self, a: NodeId, b: NodeId, length: f64) -> EdgeId {
        let id = self.edges.len() as EdgeId;
        self.edges.push(Edge { a, b, length });
        id
    }

    /// Validates and assembles the network.
    pub fn build(self) -> Result<RoadNetwork, GraphError> {
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.pos.x.is_finite() || !n.pos.y.is_finite() {
                return Err(GraphError::BadNodePosition { node: i as NodeId });
            }
        }
        let n = self.nodes.len() as u32;
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        let mut total_length = 0.0;
        for (i, e) in self.edges.iter().enumerate() {
            if e.a >= n {
                return Err(GraphError::DanglingEndpoint { edge: i, node: e.a });
            }
            if e.b >= n {
                return Err(GraphError::DanglingEndpoint { edge: i, node: e.b });
            }
            if e.a == e.b {
                return Err(GraphError::SelfLoop { edge: i });
            }
            if !(e.length > 0.0 && e.length.is_finite()) {
                return Err(GraphError::BadEdgeLength {
                    edge: i,
                    length: e.length,
                });
            }
            adjacency[e.a as usize].push(i as EdgeId);
            adjacency[e.b as usize].push(i as EdgeId);
            total_length += e.length;
        }
        Ok(RoadNetwork {
            nodes: self.nodes,
            edges: self.edges,
            adjacency,
            total_length,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(3.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 4.0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        b.add_edge(n2, n0);
        b.build().unwrap()
    }

    #[test]
    fn builds_triangle_with_euclidean_lengths() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!((g.edge(0).length - 3.0).abs() < 1e-12);
        assert!((g.edge(1).length - 5.0).abs() < 1e-12);
        assert!((g.edge(2).length - 4.0).abs() < 1e-12);
        assert!((g.total_length() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_lists_are_symmetric() {
        let g = triangle();
        for node in 0..g.node_count() as NodeId {
            for &e in g.incident_edges(node) {
                let edge = g.edge(e);
                assert!(edge.a == node || edge.b == node);
            }
            assert_eq!(g.incident_edges(node).len(), 2);
        }
    }

    #[test]
    fn other_endpoint_works() {
        let g = triangle();
        assert_eq!(g.other_endpoint(0, 0), 1);
        assert_eq!(g.other_endpoint(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_rejects_non_member() {
        let g = triangle();
        let _ = g.other_endpoint(0, 2);
    }

    #[test]
    fn embed_interpolates_along_edge() {
        let g = triangle();
        let p = g.embed(EdgePos {
            edge: 0,
            offset: 1.5,
        });
        assert!((p.x - 1.5).abs() < 1e-12);
        assert!(p.y.abs() < 1e-12);
    }

    #[test]
    fn endpoint_distances_sum_to_length() {
        let g = triangle();
        let (da, db) = g.endpoint_distances(EdgePos {
            edge: 1,
            offset: 2.0,
        });
        assert!((da - 2.0).abs() < 1e-12);
        assert!((da + db - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_covers_nodes() {
        let g = triangle();
        let bb = g.bounding_box().unwrap();
        assert_eq!((bb.x0, bb.y0, bb.x1, bb.y1), (0.0, 0.0, 3.0, 4.0));
    }

    #[test]
    fn empty_graph_has_no_bbox() {
        let g = RoadNetworkBuilder::new().build().unwrap();
        assert!(g.bounding_box().is_none());
        assert_eq!(g.total_length(), 0.0);
    }

    #[test]
    fn rejects_dangling_endpoint() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_edge_with_length(0, 7, 1.0);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DanglingEndpoint { edge: 0, node: 7 }
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_edge_with_length(0, 0, 1.0);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop { edge: 0 });
    }

    #[test]
    fn rejects_bad_length() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        b.add_edge_with_length(0, 1, 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::BadEdgeLength { .. }
        ));
    }

    #[test]
    fn rejects_nan_node() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(f64::NAN, 0.0));
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::BadNodePosition { node: 0 }
        );
    }

    #[test]
    fn dangling_edge_via_euclidean_helper_is_caught() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_edge(0, 3); // length computes to NaN; build flags the endpoint
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::DanglingEndpoint { .. }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::BadEdgeLength {
            edge: 2,
            length: -1.0,
        };
        assert!(e.to_string().contains("edge 2"));
    }
}
