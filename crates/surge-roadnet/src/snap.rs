//! Snapping planar objects onto the road network.
//!
//! Spatial objects in the stream carry free planar coordinates (GPS fixes are
//! never exactly on the road centerline). Algorithms over the network need
//! each object as an [`EdgePos`]. The [`EdgeIndex`] buckets edges into a
//! uniform grid over the network's bounding box so a snap is a local search
//! over nearby buckets instead of a scan of all edges.

use surge_core::{Point, Rect};

use crate::graph::{EdgeId, EdgePos, RoadNetwork};

/// Squared distance from point `p` to segment `ab`, plus the clamped
/// projection parameter `t ∈ [0, 1]`.
fn project_to_segment(p: Point, a: Point, b: Point) -> (f64, f64) {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len2 = dx * dx + dy * dy;
    let t = if len2 > 0.0 {
        (((p.x - a.x) * dx + (p.y - a.y) * dy) / len2).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let qx = a.x + dx * t;
    let qy = a.y + dy * t;
    let d2 = (p.x - qx).powi(2) + (p.y - qy).powi(2);
    (d2, t)
}

/// The result of snapping a planar point onto the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snap {
    /// The nearest network position.
    pub pos: EdgePos,
    /// Euclidean distance from the query point to that position.
    pub distance: f64,
}

/// A uniform-grid spatial index over a network's edges.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    bbox: Rect,
    cell: f64,
    nx: usize,
    ny: usize,
    /// Edge ids per grid bucket, row-major.
    buckets: Vec<Vec<EdgeId>>,
}

impl EdgeIndex {
    /// Builds an index for `net` with a target of a few edges per bucket.
    ///
    /// Returns `None` for an edgeless network.
    pub fn build(net: &RoadNetwork) -> Option<Self> {
        if net.edge_count() == 0 {
            return None;
        }
        let bbox = net.bounding_box()?;
        // Aim for roughly one bucket per edge, with sane bounds.
        let target = (net.edge_count() as f64).sqrt().ceil() as usize;
        let nx = target.clamp(1, 1024);
        let ny = target.clamp(1, 1024);
        let cell = ((bbox.width() / nx as f64).max(bbox.height() / ny as f64)).max(1e-12);
        let nx = (bbox.width() / cell).ceil().max(1.0) as usize;
        let ny = (bbox.height() / cell).ceil().max(1.0) as usize;
        let mut buckets = vec![Vec::new(); nx * ny];
        for (id, e) in net.edges().iter().enumerate() {
            let pa = net.node(e.a).pos;
            let pb = net.node(e.b).pos;
            let (ix0, iy0) = clamp_cell(bbox, cell, nx, ny, pa.x.min(pb.x), pa.y.min(pb.y));
            let (ix1, iy1) = clamp_cell(bbox, cell, nx, ny, pa.x.max(pb.x), pa.y.max(pb.y));
            for iy in iy0..=iy1 {
                for ix in ix0..=ix1 {
                    buckets[iy * nx + ix].push(id as EdgeId);
                }
            }
        }
        Some(EdgeIndex {
            bbox,
            cell,
            nx,
            ny,
            buckets,
        })
    }

    /// Number of buckets in the index.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Snaps `p` to the nearest network position.
    ///
    /// Searches buckets in expanding rings around `p`'s bucket and stops as
    /// soon as the best candidate is provably closer than any unexplored
    /// ring. Always returns a result (falls back to scanning everything if
    /// the rings exhaust the grid).
    pub fn snap(&self, net: &RoadNetwork, p: Point) -> Snap {
        let (cx, cy) = clamp_cell(self.bbox, self.cell, self.nx, self.ny, p.x, p.y);
        let mut best: Option<(f64, EdgePos)> = None;
        let max_ring = self.nx.max(self.ny);
        for ring in 0..=max_ring {
            // Any point in a bucket at Chebyshev ring `r` is at least
            // (r-1)·cell away, so once we have a hit closer than that we can
            // stop.
            if let Some((d2, _)) = best {
                let safe = (ring.saturating_sub(1)) as f64 * self.cell;
                if d2.sqrt() < safe {
                    break;
                }
            }
            for (ix, iy) in ring_cells(cx, cy, ring, self.nx, self.ny) {
                for &eid in &self.buckets[iy * self.nx + ix] {
                    let e = net.edge(eid);
                    let pa = net.node(e.a).pos;
                    let pb = net.node(e.b).pos;
                    let (d2, t) = project_to_segment(p, pa, pb);
                    if best.is_none_or(|(bd2, _)| d2 < bd2) {
                        best = Some((
                            d2,
                            EdgePos {
                                edge: eid,
                                offset: t * e.length,
                            },
                        ));
                    }
                }
            }
        }
        let (d2, pos) = best.expect("non-empty network always yields a snap");
        Snap {
            pos,
            distance: d2.sqrt(),
        }
    }
}

fn clamp_cell(bbox: Rect, cell: f64, nx: usize, ny: usize, x: f64, y: f64) -> (usize, usize) {
    let ix = ((x - bbox.x0) / cell).floor();
    let iy = ((y - bbox.y0) / cell).floor();
    (
        (ix.max(0.0) as usize).min(nx - 1),
        (iy.max(0.0) as usize).min(ny - 1),
    )
}

/// The buckets at Chebyshev distance exactly `ring` from `(cx, cy)`, clipped
/// to the grid.
fn ring_cells(
    cx: usize,
    cy: usize,
    ring: usize,
    nx: usize,
    ny: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let (cx, cy, r) = (cx as i64, cy as i64, ring as i64);
    let (nx, ny) = (nx as i64, ny as i64);
    let mut cells = Vec::new();
    if r == 0 {
        cells.push((cx, cy));
    } else {
        for dx in -r..=r {
            cells.push((cx + dx, cy - r));
            cells.push((cx + dx, cy + r));
        }
        for dy in (-r + 1)..r {
            cells.push((cx - r, cy + dy));
            cells.push((cx + r, cy + dy));
        }
    }
    cells
        .into_iter()
        .filter(move |&(x, y)| x >= 0 && y >= 0 && x < nx && y < ny)
        .map(|(x, y)| (x as usize, y as usize))
}

/// Brute-force snap over all edges — the oracle used in tests.
pub fn snap_bruteforce(net: &RoadNetwork, p: Point) -> Option<Snap> {
    let mut best: Option<(f64, EdgePos)> = None;
    for (id, e) in net.edges().iter().enumerate() {
        let pa = net.node(e.a).pos;
        let pb = net.node(e.b).pos;
        let (d2, t) = project_to_segment(p, pa, pb);
        if best.is_none_or(|(bd2, _)| d2 < bd2) {
            best = Some((
                d2,
                EdgePos {
                    edge: id as EdgeId,
                    offset: t * e.length,
                },
            ));
        }
    }
    best.map(|(d2, pos)| Snap {
        pos,
        distance: d2.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{grid_city, GridCityConfig};
    use crate::graph::RoadNetworkBuilder;

    fn line_graph() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(10.0, 0.0));
        let n2 = b.add_node(Point::new(10.0, 10.0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        b.build().unwrap()
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let (d2, t) = project_to_segment(
            Point::new(-5.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
        );
        assert_eq!(t, 0.0);
        assert!((d2 - 25.0).abs() < 1e-12);
    }

    #[test]
    fn projection_hits_interior() {
        let (d2, t) = project_to_segment(
            Point::new(3.0, 4.0),
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
        );
        assert!((t - 0.3).abs() < 1e-12);
        assert!((d2 - 16.0).abs() < 1e-12);
    }

    #[test]
    fn snap_finds_nearest_edge() {
        let g = line_graph();
        let idx = EdgeIndex::build(&g).unwrap();
        let s = idx.snap(&g, Point::new(5.0, 1.0));
        assert_eq!(s.pos.edge, 0);
        assert!((s.pos.offset - 5.0).abs() < 1e-9);
        assert!((s.distance - 1.0).abs() < 1e-9);

        let s = idx.snap(&g, Point::new(11.0, 5.0));
        assert_eq!(s.pos.edge, 1);
        assert!((s.pos.offset - 5.0).abs() < 1e-9);
    }

    #[test]
    fn snap_far_outside_bbox_still_works() {
        let g = line_graph();
        let idx = EdgeIndex::build(&g).unwrap();
        let s = idx.snap(&g, Point::new(-100.0, -100.0));
        assert_eq!(s.pos.edge, 0);
        assert_eq!(s.pos.offset, 0.0);
    }

    #[test]
    fn empty_network_has_no_index() {
        let g = RoadNetworkBuilder::new().build().unwrap();
        assert!(EdgeIndex::build(&g).is_none());
        assert!(snap_bruteforce(&g, Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn index_agrees_with_bruteforce_on_city() {
        let city = grid_city(&GridCityConfig {
            nx: 8,
            ny: 8,
            spacing: 100.0,
            jitter: 0.2,
            drop_fraction: 0.15,
            seed: 42,
        });
        let idx = EdgeIndex::build(&city).unwrap();
        // Deterministic probe lattice, including off-network points.
        for i in 0..20 {
            for j in 0..20 {
                let p = Point::new(i as f64 * 45.0 - 50.0, j as f64 * 45.0 - 50.0);
                let a = idx.snap(&city, p);
                let b = snap_bruteforce(&city, p).unwrap();
                assert!(
                    (a.distance - b.distance).abs() < 1e-9,
                    "probe {p:?}: index {} vs brute {}",
                    a.distance,
                    b.distance
                );
            }
        }
    }
}
