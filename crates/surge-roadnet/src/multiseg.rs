//! Multi-segmentation network detector — the road-network analog of
//! MGAP-SURGE.
//!
//! The planar MGAP-SURGE runs GAP-SURGE on four half-cell-shifted grids and
//! reports the best of the four answers, because a burst straddling a cell
//! boundary is split in one grid but whole in a shifted one. The network
//! analog is one-dimensional: a rush straddling a segment boundary along an
//! edge is split in the base segmentation but whole in a copy shifted by
//! half a segment. [`NetMgapSurge`] maintains both and reports the better
//! answer.
//!
//! The shifted segmentation moves every interior boundary by half a piece
//! along its edge ([`crate::segment::Segmentation::new_half_phase`]), leaving
//! two half-pieces at the edge ends. Edges shorter than `L` have a single
//! segment in both phases — there is no interior boundary to move, matching
//! the planar intuition that shifting cannot help once the whole candidate
//! region fits in one cell.

use surge_core::{BurstParams, DetectorStats, Event};

use crate::detector::{NetAnswer, NetGapSurge};
use crate::graph::RoadNetwork;

/// Two phase-shifted copies of [`NetGapSurge`]; answers are the better of
/// the two, so the result is never worse than the single-segmentation
/// detector and recovers the full score of any rush that straddles a base
/// segment boundary. (The planar Theorem-4 constant does not transfer
/// verbatim — a network "region" crossing a junction can touch arbitrarily
/// many segments — so result quality is validated empirically against the
/// network-ball oracle via the Lemma-5 containment bound in the tests.)
#[derive(Debug)]
pub struct NetMgapSurge {
    base: NetGapSurge,
    shifted: NetGapSurge,
}

impl NetMgapSurge {
    /// Creates a detector over `net` with segments of length at most
    /// `segment_len`, in two phases offset by half a segment.
    ///
    /// # Panics
    ///
    /// Panics if the network has no edges, or `snap_tolerance` is negative.
    pub fn new(
        net: RoadNetwork,
        segment_len: f64,
        params: BurstParams,
        snap_tolerance: f64,
    ) -> Self {
        let base = NetGapSurge::new(net.clone(), segment_len, params, snap_tolerance);
        let shifted = NetGapSurge::with_half_phase(net, segment_len, params, snap_tolerance);
        NetMgapSurge { base, shifted }
    }

    /// Processes one window-transition event (feeds both phases).
    pub fn on_event(&mut self, event: &Event) {
        self.base.on_event(event);
        self.shifted.on_event(event);
    }

    /// The better of the two phases' current answers.
    pub fn current(&self) -> Option<NetAnswer> {
        match (self.base.current(), self.shifted.current()) {
            (Some(a), Some(b)) => Some(if b.score > a.score { b } else { a }),
            (a, b) => a.or(b),
        }
    }

    /// Top-k across both phases, deduplicated by overlap: an answer from the
    /// shifted phase is dropped if it overlaps a better already-selected
    /// answer (mirrors the planar kMGAPS merge of Algorithm 7).
    pub fn current_topk(&self, k: usize) -> Vec<NetAnswer> {
        let mut merged: Vec<NetAnswer> = self.base.current_topk(2 * k);
        merged.extend(self.shifted.current_topk(2 * k));
        merged.sort_by(|a, b| b.score.total_cmp(&a.score));
        let mut out: Vec<NetAnswer> = Vec::with_capacity(k);
        for cand in merged {
            let overlaps = out.iter().any(|a| {
                a.segment.edge == cand.segment.edge
                    && a.span.0 < cand.span.1
                    && cand.span.0 < a.span.1
            });
            if !overlaps {
                out.push(cand);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Combined instrumentation counters (events are counted per phase).
    pub fn stats(&self) -> DetectorStats {
        let a = self.base.stats();
        let b = self.shifted.stats();
        DetectorStats {
            events: a.events + b.events,
            new_events: a.new_events + b.new_events,
            searches: a.searches + b.searches,
            events_triggering_search: a.events_triggering_search + b.events_triggering_search,
        }
    }

    /// The base-phase detector (for inspection).
    pub fn base(&self) -> &NetGapSurge {
        &self.base
    }

    /// The shifted-phase detector (for inspection).
    pub fn shifted(&self) -> &NetGapSurge {
        &self.shifted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{grid_city, GridCityConfig};
    use surge_core::{Point, SpatialObject, WindowConfig};

    fn city() -> RoadNetwork {
        grid_city(&GridCityConfig {
            nx: 6,
            ny: 6,
            spacing: 100.0,
            jitter: 0.0,
            drop_fraction: 0.0,
            seed: 0,
        })
    }

    fn params() -> BurstParams {
        BurstParams::new(0.5, WindowConfig::equal(1_000))
    }

    fn new_ev(id: u64, x: f64, y: f64, w: f64) -> Event {
        Event::new_arrival(SpatialObject::new(id, w, Point::new(x, y), 0))
    }

    #[test]
    fn empty_reports_nothing() {
        let det = NetMgapSurge::new(city(), 60.0, params(), 20.0);
        assert!(det.current().is_none());
        assert!(det.current_topk(3).is_empty());
    }

    #[test]
    fn never_worse_than_single_segmentation() {
        // A cluster straddling the midpoint of an edge: the base
        // segmentation (2 pieces of 50 on a 100 edge) splits it; the
        // shifted phase holds it in one piece.
        let mut single = NetGapSurge::new(city(), 60.0, params(), 20.0);
        let mut multi = NetMgapSurge::new(city(), 60.0, params(), 20.0);
        for (id, dx) in [-8.0f64, -4.0, 0.0, 4.0, 8.0].into_iter().enumerate() {
            let e = new_ev(id as u64, 150.0 + dx, 0.0, 1.0);
            single.on_event(&e);
            multi.on_event(&e);
        }
        let s = single.current().unwrap().score;
        let m = multi.current().unwrap().score;
        assert!(m >= s - 1e-12, "multi {m} worse than single {s}");
        // Here the straddle is real: the shifted phase strictly wins.
        assert!(m > s + 1e-12, "shifted phase should capture the straddle");
        // And the multi answer equals the full cluster's score.
        let expected = params().score_weights(5.0, 0.0);
        assert!((m - expected).abs() < 1e-12, "m = {m}, expected {expected}");
    }

    #[test]
    fn matches_single_when_cluster_is_interior() {
        // A cluster well inside one base segment: both phases see it whole.
        let mut single = NetGapSurge::new(city(), 60.0, params(), 20.0);
        let mut multi = NetMgapSurge::new(city(), 60.0, params(), 20.0);
        for (id, dx) in [0.0f64, 2.0, 4.0].iter().enumerate() {
            let e = new_ev(id as u64, 120.0 + dx, 0.0, 1.0);
            single.on_event(&e);
            multi.on_event(&e);
        }
        let s = single.current().unwrap().score;
        let m = multi.current().unwrap().score;
        assert!((s - m).abs() < 1e-12);
    }

    #[test]
    fn lifecycle_clears_both_phases() {
        let mut det = NetMgapSurge::new(city(), 60.0, params(), 20.0);
        let o = SpatialObject::new(0, 5.0, Point::new(150.0, 0.0), 0);
        det.on_event(&Event::new_arrival(o));
        assert!(det.current().is_some());
        det.on_event(&Event::grown(o, 1));
        assert!(det.current().is_none()); // only past mass remains
        det.on_event(&Event::expired(o, 2));
        assert!(det.current().is_none());
    }

    #[test]
    fn topk_merge_drops_overlapping_shifted_answers() {
        let mut det = NetMgapSurge::new(city(), 60.0, params(), 20.0);
        // Two separated clusters on the same long street.
        for (id, x) in [(0u64, 120.0f64), (1, 124.0), (2, 380.0), (3, 384.0)] {
            det.on_event(&new_ev(id, x, 0.0, 1.0));
        }
        let top = det.current_topk(4);
        assert!(top.len() >= 2);
        // No pair of reported answers overlaps on the same edge.
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                let (a, b) = (&top[i], &top[j]);
                if a.segment.edge == b.segment.edge {
                    assert!(
                        a.span.1 <= b.span.0 + 1e-12 || b.span.1 <= a.span.0 + 1e-12,
                        "overlapping answers {a:?} / {b:?}"
                    );
                }
            }
        }
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
    }

    #[test]
    fn stats_sum_phases() {
        let mut det = NetMgapSurge::new(city(), 60.0, params(), 20.0);
        det.on_event(&new_ev(0, 10.0, 0.0, 1.0));
        let s = det.stats();
        assert_eq!(s.events, 2);
        assert_eq!(s.new_events, 2);
    }

    #[test]
    fn ignores_offnetwork_in_both_phases() {
        let mut det = NetMgapSurge::new(city(), 60.0, params(), 5.0);
        det.on_event(&new_ev(0, 150.0, 48.0, 9.0));
        assert!(det.current().is_none());
    }

    #[test]
    fn phase_accessors_expose_internals() {
        let mut det = NetMgapSurge::new(city(), 60.0, params(), 20.0);
        det.on_event(&new_ev(0, 150.0, 0.0, 1.0));
        assert!(det.base().current().is_some());
        assert!(det.shifted().current().is_some());
    }

    /// Event churn keeps both phases' heaps consistent with recomputation.
    #[test]
    fn churn_keeps_phases_consistent() {
        let mut det = NetMgapSurge::new(city(), 45.0, params(), 60.0);
        let mut id = 0u64;
        for round in 0..6 {
            for i in 0..15 {
                let x = (i * 41 + round * 17) as f64 % 500.0;
                let y = (i * 73) as f64 % 500.0;
                let o = SpatialObject::new(id, 1.0 + (i % 3) as f64, Point::new(x, y), 0);
                det.on_event(&Event::new_arrival(o));
                if id.is_multiple_of(2) {
                    det.on_event(&Event::grown(o, 0));
                }
                if id.is_multiple_of(4) {
                    det.on_event(&Event::expired(o, 0));
                }
                id += 1;
            }
        }
        for phase in [det.base(), det.shifted()] {
            let heap = phase.current().map(|a| a.score).unwrap_or(0.0);
            let table = phase.recompute_best().map(|(_, s)| s).unwrap_or(0.0);
            assert!((heap - table).abs() <= 1e-12 * heap.abs().max(1.0));
        }
        // The merged answer is the max of the phases.
        let merged = det.current().map(|a| a.score).unwrap_or(0.0);
        let base = det.base().current().map(|a| a.score).unwrap_or(0.0);
        let shifted = det.shifted().current().map(|a| a.score).unwrap_or(0.0);
        assert!((merged - base.max(shifted)).abs() <= 1e-12);
    }
}
