//! Synthetic road-network generation.
//!
//! Real city road graphs (OpenStreetMap extracts) are not bundled with the
//! repository; this module generates Manhattan-style grid cities with
//! jittered junctions and randomly dropped street segments, which reproduces
//! the structural properties the detectors care about: bounded node degree,
//! roughly uniform segment lengths, and planar embedding. Generation is
//! deterministic in the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surge_core::Point;

use crate::graph::{RoadNetwork, RoadNetworkBuilder};

/// Parameters for [`grid_city`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCityConfig {
    /// Junction columns.
    pub nx: usize,
    /// Junction rows.
    pub ny: usize,
    /// Nominal distance between adjacent junctions.
    pub spacing: f64,
    /// Junction position jitter as a fraction of `spacing` (0 = perfect
    /// grid).
    pub jitter: f64,
    /// Fraction of street segments to remove (0 = full grid). Removal never
    /// disconnects the graph: a spanning set of streets is kept.
    pub drop_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridCityConfig {
    fn default() -> Self {
        GridCityConfig {
            nx: 16,
            ny: 16,
            spacing: 100.0,
            jitter: 0.15,
            drop_fraction: 0.1,
            seed: 0,
        }
    }
}

/// Generates a jittered grid city.
///
/// # Panics
///
/// Panics if `nx` or `ny` is zero, or if `drop_fraction ∉ [0, 1)`.
pub fn grid_city(cfg: &GridCityConfig) -> RoadNetwork {
    assert!(cfg.nx > 0 && cfg.ny > 0, "city must have at least one node");
    assert!(
        (0.0..1.0).contains(&cfg.drop_fraction),
        "drop_fraction must be in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = RoadNetworkBuilder::new();
    let id = |ix: usize, iy: usize| (iy * cfg.nx + ix) as u32;

    for iy in 0..cfg.ny {
        for ix in 0..cfg.nx {
            let jx = if cfg.jitter > 0.0 {
                rng.gen_range(-cfg.jitter..cfg.jitter) * cfg.spacing
            } else {
                0.0
            };
            let jy = if cfg.jitter > 0.0 {
                rng.gen_range(-cfg.jitter..cfg.jitter) * cfg.spacing
            } else {
                0.0
            };
            b.add_node(Point::new(
                ix as f64 * cfg.spacing + jx,
                iy as f64 * cfg.spacing + jy,
            ));
        }
    }

    // A spanning backbone that is never dropped: the bottom row plus every
    // vertical street, guaranteeing connectivity.
    for iy in 0..cfg.ny {
        for ix in 0..cfg.nx {
            if ix + 1 < cfg.nx {
                let keep = iy == 0 || rng.gen::<f64>() >= cfg.drop_fraction;
                if keep {
                    b.add_edge(id(ix, iy), id(ix + 1, iy));
                }
            }
            if iy + 1 < cfg.ny {
                b.add_edge(id(ix, iy), id(ix, iy + 1));
            }
        }
    }

    b.build().expect("generated city is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::dijkstra_from_node;

    #[test]
    fn default_city_builds() {
        let g = grid_city(&GridCityConfig::default());
        assert_eq!(g.node_count(), 256);
        assert!(g.edge_count() > 256);
        assert!(g.total_length() > 0.0);
    }

    #[test]
    fn perfect_grid_has_expected_edge_count() {
        let g = grid_city(&GridCityConfig {
            nx: 4,
            ny: 3,
            spacing: 1.0,
            jitter: 0.0,
            drop_fraction: 0.0,
            seed: 0,
        });
        assert_eq!(g.node_count(), 12);
        // Horizontal: 3 per row × 3 rows; vertical: 4 per column × 2 = 8.
        assert_eq!(g.edge_count(), 9 + 8);
        // Perfect grid: every edge has length 1.
        assert!(g.edges().iter().all(|e| (e.length - 1.0).abs() < 1e-12));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GridCityConfig {
            seed: 7,
            ..Default::default()
        };
        let a = grid_city(&cfg);
        let b = grid_city(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = grid_city(&GridCityConfig {
            seed: 1,
            ..Default::default()
        });
        let b = grid_city(&GridCityConfig {
            seed: 2,
            ..Default::default()
        });
        let same = a.nodes().iter().zip(b.nodes()).all(|(x, y)| x.pos == y.pos);
        assert!(!same);
    }

    #[test]
    fn dropping_edges_keeps_graph_connected() {
        let g = grid_city(&GridCityConfig {
            nx: 10,
            ny: 10,
            spacing: 50.0,
            jitter: 0.1,
            drop_fraction: 0.6,
            seed: 3,
        });
        let dist = dijkstra_from_node(&g, 0, f64::INFINITY);
        assert!(
            dist.iter().all(|d| d.is_finite()),
            "all nodes reachable from node 0"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_size_rejected() {
        let _ = grid_city(&GridCityConfig {
            nx: 0,
            ..Default::default()
        });
    }
}
