//! Partitioning the network into fixed-length segments.
//!
//! The planar GAP-SURGE algorithm imposes a grid of `a×b` cells and treats
//! each cell as a candidate region. The network analog partitions every edge
//! into stretches of length at most `L`; each stretch (a [`SegmentId`]) is a
//! candidate *network region*. An edge of length `ℓ` is split into
//! `⌈ℓ / L⌉` equal pieces, so every piece has length in `(L/2, L]` except
//! for edges shorter than `L`, which form a single segment.
//!
//! A *half-phase* segmentation shifts every interior boundary by half a
//! piece along the edge (yielding two half-pieces at the edge's ends) — the
//! one-dimensional analog of MGAP-SURGE's half-cell-shifted grids. A cluster
//! straddling a base boundary is interior to a shifted piece. Edges with a
//! single piece are left unshifted: there is no interior boundary to move.

use crate::graph::{EdgeId, EdgePos, RoadNetwork};

/// A segment identifier: `(edge, index along the edge)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId {
    /// The edge carrying the segment.
    pub edge: EdgeId,
    /// Zero-based index of the segment along the edge.
    pub index: u32,
}

/// The fixed-length segmentation of a network.
#[derive(Debug, Clone)]
pub struct Segmentation {
    /// Target segment length `L`.
    target_len: f64,
    /// Whether boundaries are shifted by half a piece.
    half_phase: bool,
    /// Per-edge piece count `n = ⌈ℓ/L⌉` (the number of *full* pieces; a
    /// half-phase edge with `n > 1` has `n + 1` segments).
    pieces: Vec<u32>,
    /// Per-edge segment count.
    counts: Vec<u32>,
    /// Prefix sums of `counts`, for dense segment numbering.
    offsets: Vec<u32>,
    total: u32,
}

impl Segmentation {
    /// Segments `net` into stretches of length at most `target_len`.
    ///
    /// # Panics
    ///
    /// Panics if `target_len` is not strictly positive and finite.
    pub fn new(net: &RoadNetwork, target_len: f64) -> Self {
        Self::build(net, target_len, false)
    }

    /// The half-phase (boundary-shifted) segmentation.
    pub fn new_half_phase(net: &RoadNetwork, target_len: f64) -> Self {
        Self::build(net, target_len, true)
    }

    fn build(net: &RoadNetwork, target_len: f64, half_phase: bool) -> Self {
        assert!(
            target_len > 0.0 && target_len.is_finite(),
            "segment length must be positive and finite"
        );
        let mut pieces = Vec::with_capacity(net.edge_count());
        let mut counts = Vec::with_capacity(net.edge_count());
        let mut offsets = Vec::with_capacity(net.edge_count() + 1);
        let mut total = 0u32;
        for e in net.edges() {
            offsets.push(total);
            let n = (e.length / target_len).ceil().max(1.0) as u32;
            let count = if half_phase && n > 1 { n + 1 } else { n };
            pieces.push(n);
            counts.push(count);
            total += count;
        }
        offsets.push(total);
        Segmentation {
            target_len,
            half_phase,
            pieces,
            counts,
            offsets,
            total,
        }
    }

    /// The target segment length `L`.
    pub fn target_len(&self) -> f64 {
        self.target_len
    }

    /// Whether this is the half-phase (shifted) segmentation.
    pub fn is_half_phase(&self) -> bool {
        self.half_phase
    }

    /// Total number of segments.
    pub fn segment_count(&self) -> u32 {
        self.total
    }

    /// Number of segments on `edge`.
    pub fn segments_on_edge(&self, edge: EdgeId) -> u32 {
        self.counts[edge as usize]
    }

    /// Whether this edge's boundaries are actually shifted (half-phase and
    /// more than one piece).
    fn shifted(&self, edge: EdgeId) -> bool {
        self.half_phase && self.pieces[edge as usize] > 1
    }

    /// The full-piece length of `edge`.
    fn piece_len(&self, net: &RoadNetwork, edge: EdgeId) -> f64 {
        net.edge(edge).length / self.pieces[edge as usize] as f64
    }

    /// The segment containing a network position.
    pub fn segment_of(&self, net: &RoadNetwork, pos: EdgePos) -> SegmentId {
        let n = self.counts[pos.edge as usize];
        let piece = self.piece_len(net, pos.edge);
        let mut index = if piece > 0.0 {
            if self.shifted(pos.edge) {
                // Boundaries at piece/2, 3·piece/2, …: segment 0 is the
                // leading half-piece.
                ((pos.offset + piece / 2.0) / piece).floor() as u32
            } else {
                (pos.offset / piece).floor() as u32
            }
        } else {
            0
        };
        // An offset exactly at the edge's far end belongs to the last piece.
        if index >= n {
            index = n - 1;
        }
        SegmentId {
            edge: pos.edge,
            index,
        }
    }

    /// Dense ordinal of a segment in `[0, segment_count)`, usable as a slice
    /// index.
    pub fn ordinal(&self, seg: SegmentId) -> u32 {
        self.offsets[seg.edge as usize] + seg.index
    }

    /// The `[start, end]` offset range of a segment along its edge.
    pub fn segment_span(&self, net: &RoadNetwork, seg: SegmentId) -> (f64, f64) {
        let piece = self.piece_len(net, seg.edge);
        let len = net.edge(seg.edge).length;
        if self.shifted(seg.edge) {
            let start = if seg.index == 0 {
                0.0
            } else {
                piece / 2.0 + (seg.index - 1) as f64 * piece
            };
            let end = (piece / 2.0 + seg.index as f64 * piece).min(len);
            (start, end)
        } else {
            (piece * seg.index as f64, piece * (seg.index + 1) as f64)
        }
    }

    /// The actual length of a segment.
    pub fn segment_len(&self, net: &RoadNetwork, seg: SegmentId) -> f64 {
        let (s, e) = self.segment_span(net, seg);
        e - s
    }

    /// The midpoint of a segment, as a network position.
    pub fn segment_midpoint(&self, net: &RoadNetwork, seg: SegmentId) -> EdgePos {
        let (s, e) = self.segment_span(net, seg);
        EdgePos {
            edge: seg.edge,
            offset: (s + e) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use surge_core::Point;

    fn two_edges() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(10.0, 0.0));
        let n2 = b.add_node(Point::new(10.0, 2.5));
        b.add_edge(n0, n1); // length 10
        b.add_edge(n1, n2); // length 2.5
        b.build().unwrap()
    }

    #[test]
    fn splits_long_edges_only() {
        let g = two_edges();
        let s = Segmentation::new(&g, 3.0);
        assert_eq!(s.segments_on_edge(0), 4); // ceil(10/3)
        assert_eq!(s.segments_on_edge(1), 1);
        assert_eq!(s.segment_count(), 5);
        assert!(!s.is_half_phase());
    }

    #[test]
    fn segment_lengths_bounded_by_target() {
        let g = two_edges();
        for s in [
            Segmentation::new(&g, 3.0),
            Segmentation::new_half_phase(&g, 3.0),
        ] {
            for edge in 0..2u32 {
                for index in 0..s.segments_on_edge(edge) {
                    let len = s.segment_len(&g, SegmentId { edge, index });
                    assert!(len <= 3.0 + 1e-12, "segment too long: {len}");
                    assert!(len > 0.0);
                }
            }
        }
    }

    #[test]
    fn segment_of_maps_offsets() {
        let g = two_edges();
        let s = Segmentation::new(&g, 3.0);
        // Edge 0 pieces are 2.5 long: [0,2.5), [2.5,5), [5,7.5), [7.5,10].
        let at = |offset| s.segment_of(&g, EdgePos { edge: 0, offset }).index;
        assert_eq!(at(0.0), 0);
        assert_eq!(at(2.49), 0);
        assert_eq!(at(2.5), 1);
        assert_eq!(at(9.99), 3);
        assert_eq!(at(10.0), 3); // far end clamps to last piece
    }

    #[test]
    fn half_phase_shifts_interior_boundaries() {
        let g = two_edges();
        let s = Segmentation::new_half_phase(&g, 3.0);
        // Edge 0: pieces of 2.5, shifted boundaries at 1.25, 3.75, 6.25,
        // 8.75 → five segments.
        assert_eq!(s.segments_on_edge(0), 5);
        let at = |offset| s.segment_of(&g, EdgePos { edge: 0, offset }).index;
        assert_eq!(at(0.0), 0);
        assert_eq!(at(1.24), 0);
        assert_eq!(at(1.25), 1);
        assert_eq!(at(2.5), 1); // base boundary is now interior
        assert_eq!(at(3.74), 1);
        assert_eq!(at(3.75), 2);
        assert_eq!(at(10.0), 4);
        // Edge 1 is a single piece: unshifted.
        assert_eq!(s.segments_on_edge(1), 1);
    }

    #[test]
    fn half_phase_spans_tile_each_edge() {
        let g = two_edges();
        let s = Segmentation::new_half_phase(&g, 3.0);
        let mut end = 0.0;
        for index in 0..s.segments_on_edge(0) {
            let (a, b) = s.segment_span(&g, SegmentId { edge: 0, index });
            assert!(
                (a - end).abs() < 1e-12,
                "gap at index {index}: {a} vs {end}"
            );
            assert!(b > a);
            end = b;
        }
        assert!((end - 10.0).abs() < 1e-12);
        // End half-pieces are half the full piece.
        assert!((s.segment_len(&g, SegmentId { edge: 0, index: 0 }) - 1.25).abs() < 1e-12);
        assert!((s.segment_len(&g, SegmentId { edge: 0, index: 4 }) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn ordinals_are_dense_and_unique() {
        let g = two_edges();
        for s in [
            Segmentation::new(&g, 3.0),
            Segmentation::new_half_phase(&g, 3.0),
        ] {
            let mut seen = vec![false; s.segment_count() as usize];
            for edge in 0..2u32 {
                for index in 0..s.segments_on_edge(edge) {
                    let o = s.ordinal(SegmentId { edge, index }) as usize;
                    assert!(!seen[o], "duplicate ordinal {o}");
                    seen[o] = true;
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn spans_tile_each_edge() {
        let g = two_edges();
        let s = Segmentation::new(&g, 3.0);
        let mut end = 0.0;
        for index in 0..s.segments_on_edge(0) {
            let (a, b) = s.segment_span(&g, SegmentId { edge: 0, index });
            assert!((a - end).abs() < 1e-12);
            assert!(b > a);
            end = b;
        }
        assert!((end - 10.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_inside_span() {
        let g = two_edges();
        for s in [
            Segmentation::new(&g, 3.0),
            Segmentation::new_half_phase(&g, 3.0),
        ] {
            for index in 0..s.segments_on_edge(0) {
                let seg = SegmentId { edge: 0, index };
                let (a, b) = s.segment_span(&g, seg);
                let m = s.segment_midpoint(&g, seg);
                assert!(m.offset > a && m.offset < b);
            }
        }
    }

    #[test]
    fn segment_of_is_consistent_with_spans_in_both_phases() {
        let g = two_edges();
        for s in [
            Segmentation::new(&g, 3.0),
            Segmentation::new_half_phase(&g, 3.0),
        ] {
            for i in 0..=100 {
                let offset = i as f64 * 0.1;
                let pos = EdgePos { edge: 0, offset };
                let seg = s.segment_of(&g, pos);
                let (a, b) = s.segment_span(&g, seg);
                assert!(
                    offset >= a - 1e-12 && offset <= b + 1e-12,
                    "offset {offset} outside span [{a}, {b}] of {seg:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        let g = two_edges();
        let _ = Segmentation::new(&g, 0.0);
    }
}
