//! # surge-roadnet
//!
//! Road-network extension of the SURGE system — the future-work direction the
//! paper names in its conclusion ("we intend to explore the SURGE problem in
//! the context of road network", §VIII).
//!
//! On a road network, a "region" is a stretch of road rather than a planar
//! rectangle: an Uber driver cares about a hot street, not a hot rectangle
//! that is mostly buildings. This crate provides:
//!
//! * [`graph`] — the road-network substrate: an undirected planar graph with
//!   validated construction ([`RoadNetworkBuilder`]) and on-network positions
//!   ([`EdgePos`]).
//! * [`generator`] — deterministic synthetic city generation
//!   ([`grid_city`]): jittered Manhattan grids with dropped segments.
//! * [`snap`] — bucketed nearest-edge snapping of free planar objects onto
//!   the network ([`EdgeIndex`]).
//! * [`path`] — truncated Dijkstra and network distances.
//! * [`segment`] — fixed-length edge segmentation: the network analog of the
//!   planar cell grid ([`Segmentation`]).
//! * [`detector`] — [`NetGapSurge`], the network analog of GAP-SURGE
//!   (`O(log n)` per event), and [`NetBallOracle`], a brute-force
//!   network-ball reference used to validate result quality.
//! * [`multiseg`] — [`NetMgapSurge`], the network analog of MGAP-SURGE:
//!   two half-piece-shifted segmentations, best answer wins.
//!
//! Detectors consume the same `New`/`Grown`/`Expired` event stream as the
//! planar algorithms, so the sliding-window engine from `surge-stream` drives
//! both without modification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod generator;
pub mod graph;
pub mod multiseg;
pub mod path;
pub mod segment;
pub mod snap;

pub use detector::{BallAnswer, NetAnswer, NetBallOracle, NetGapSurge};
pub use generator::{grid_city, GridCityConfig};
pub use graph::{Edge, EdgeId, EdgePos, GraphError, Node, NodeId, RoadNetwork, RoadNetworkBuilder};
pub use multiseg::NetMgapSurge;
pub use path::{dijkstra_from_node, dijkstra_from_pos, network_distance};
pub use segment::{SegmentId, Segmentation};
pub use snap::{snap_bruteforce, EdgeIndex, Snap};
