//! Bursty network-region detectors.
//!
//! Two detectors mirror the paper's planar pair on the road network:
//!
//! * [`NetGapSurge`] — the network analog of GAP-SURGE: every fixed-length
//!   edge segment is a candidate region with an incrementally maintained
//!   burst score; the best segment is reported in `O(log n)` per event.
//! * [`NetBallOracle`] — a brute-force reference that scores *network
//!   balls* (all objects within network distance `r` of a node) by truncated
//!   Dijkstra. It is the quality yardstick for [`NetGapSurge`]: a segment of
//!   length `L` is contained in the ball of radius `L` around its midpoint,
//!   so by the paper's Lemma 5 the best ball scores at least
//!   `(1 − α) · S(best segment)`.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};

use surge_core::{
    BurstParams, DetectorStats, Event, EventKind, ObjectId, Point, ScorePair, TotalF64, SCORE_EPS,
};

use crate::graph::{EdgePos, NodeId, RoadNetwork};
use crate::path::dijkstra_from_node;
use crate::segment::{SegmentId, Segmentation};
use crate::snap::EdgeIndex;

/// A detected bursty network region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetAnswer {
    /// The winning segment.
    pub segment: SegmentId,
    /// Offset range `[start, end]` of the segment along its edge.
    pub span: (f64, f64),
    /// Planar embedding of the segment midpoint (for display).
    pub midpoint: Point,
    /// The segment's burst score.
    pub score: f64,
}

/// Network GAP-SURGE: per-segment burst scores over the shared event stream.
///
/// Objects are snapped to the network on arrival; objects farther than
/// `snap_tolerance` from any road are ignored (off-network noise). Snaps are
/// cached by object id so the `Grown`/`Expired` events of an object reuse the
/// `New` snap.
///
/// # Example
///
/// ```
/// use surge_core::{BurstParams, Event, Point, SpatialObject, WindowConfig};
/// use surge_roadnet::{grid_city, GridCityConfig, NetGapSurge};
///
/// let city = grid_city(&GridCityConfig::default()); // 16x16 junctions
/// let params = BurstParams::new(0.5, WindowConfig::equal(60_000));
/// // Candidate regions: road segments of <= 150m; snap radius 80m.
/// let mut det = NetGapSurge::new(city, 150.0, params, 80.0);
///
/// // A pickup near the street between the first two junctions.
/// let pickup = SpatialObject::new(0, 3.0, Point::new(40.0, 5.0), 0);
/// det.on_event(&Event::new_arrival(pickup));
///
/// let hot = det.current().expect("one on-network object");
/// assert!(hot.score > 0.0);
/// ```
#[derive(Debug)]
pub struct NetGapSurge {
    net: RoadNetwork,
    seg: Segmentation,
    index: EdgeIndex,
    params: BurstParams,
    snap_tolerance: f64,
    /// Raw weight sums per segment ordinal.
    weights: Vec<ScorePair>,
    /// Updatable priority queue of `(score, ordinal)`.
    heap: BTreeSet<(TotalF64, u32)>,
    /// Score currently registered in the heap per ordinal.
    registered: Vec<f64>,
    /// Object id → segment ordinal (objects being tracked).
    placements: HashMap<ObjectId, u32>,
    stats: DetectorStats,
}

impl NetGapSurge {
    /// Creates a detector over `net` with segments of length at most
    /// `segment_len`.
    ///
    /// # Panics
    ///
    /// Panics if the network has no edges, or `snap_tolerance` is negative.
    pub fn new(
        net: RoadNetwork,
        segment_len: f64,
        params: BurstParams,
        snap_tolerance: f64,
    ) -> Self {
        Self::build(net, segment_len, params, snap_tolerance, false)
    }

    /// Like [`NetGapSurge::new`], but with the half-phase (boundary-shifted)
    /// segmentation — used by the multi-segmentation detector.
    pub fn with_half_phase(
        net: RoadNetwork,
        segment_len: f64,
        params: BurstParams,
        snap_tolerance: f64,
    ) -> Self {
        Self::build(net, segment_len, params, snap_tolerance, true)
    }

    fn build(
        net: RoadNetwork,
        segment_len: f64,
        params: BurstParams,
        snap_tolerance: f64,
        half_phase: bool,
    ) -> Self {
        assert!(snap_tolerance >= 0.0, "snap tolerance must be non-negative");
        let index = EdgeIndex::build(&net).expect("network must have at least one edge");
        let seg = if half_phase {
            Segmentation::new_half_phase(&net, segment_len)
        } else {
            Segmentation::new(&net, segment_len)
        };
        let n = seg.segment_count() as usize;
        NetGapSurge {
            net,
            seg,
            index,
            params,
            snap_tolerance,
            weights: vec![ScorePair::default(); n],
            heap: BTreeSet::new(),
            registered: vec![0.0; n],
            placements: HashMap::new(),
            stats: DetectorStats::default(),
        }
    }

    /// The segmentation in use.
    pub fn segmentation(&self) -> &Segmentation {
        &self.seg
    }

    /// The network in use.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    fn reheap(&mut self, ordinal: u32) {
        let idx = ordinal as usize;
        let old = self.registered[idx];
        if old != 0.0 {
            self.heap.remove(&(TotalF64(old), ordinal));
        }
        let score = self
            .params
            .score_normalized(self.weights[idx].fc, self.weights[idx].fp);
        // Scores below SCORE_EPS are pure float residue from add/remove
        // cycles of the same weights; treat them as "nothing here".
        if score > SCORE_EPS {
            self.heap.insert((TotalF64(score), ordinal));
            self.registered[idx] = score;
        } else {
            self.registered[idx] = 0.0;
        }
    }

    /// Processes one window-transition event.
    pub fn on_event(&mut self, event: &Event) {
        self.stats.events += 1;
        let ordinal = match event.kind {
            EventKind::New => {
                self.stats.new_events += 1;
                let snap = self.index.snap(&self.net, event.object.pos);
                if snap.distance > self.snap_tolerance {
                    return; // off-network object
                }
                let seg = self.seg.segment_of(&self.net, snap.pos);
                let ordinal = self.seg.ordinal(seg);
                match self.placements.entry(event.object.id) {
                    Entry::Vacant(v) => {
                        v.insert(ordinal);
                    }
                    Entry::Occupied(_) => {
                        // Duplicate id: drop rather than corrupt bookkeeping.
                        return;
                    }
                }
                ordinal
            }
            EventKind::Grown => match self.placements.get(&event.object.id) {
                Some(&o) => o,
                None => return,
            },
            EventKind::Expired => match self.placements.remove(&event.object.id) {
                Some(o) => o,
                None => return,
            },
        };
        let idx = ordinal as usize;
        let w = event.object.weight;
        match event.kind {
            EventKind::New => {
                self.weights[idx].fc += w / self.params.current_norm;
            }
            EventKind::Grown => {
                self.weights[idx].fc -= w / self.params.current_norm;
                self.weights[idx].fp += w / self.params.past_norm;
            }
            EventKind::Expired => {
                self.weights[idx].fp -= w / self.params.past_norm;
            }
        }
        self.reheap(ordinal);
    }

    /// The ordinal back to a [`SegmentId`]. Linear in the number of edges of
    /// the winning edge only in pathological cases; ordinals are resolved by
    /// binary search over the prefix-sum table.
    fn answer_for(&self, ordinal: u32, score: f64) -> NetAnswer {
        // Recover the SegmentId by scanning edges; the prefix-sum table in
        // Segmentation is private to it, so ask it via binary search.
        let seg = self.segment_from_ordinal(ordinal);
        let span = self.seg.segment_span(&self.net, seg);
        let midpoint = self.net.embed(self.seg.segment_midpoint(&self.net, seg));
        NetAnswer {
            segment: seg,
            span,
            midpoint,
            score,
        }
    }

    fn segment_from_ordinal(&self, ordinal: u32) -> SegmentId {
        // Binary search over edges: find the edge whose ordinal range
        // contains `ordinal`.
        let (mut lo, mut hi) = (0u32, self.net.edge_count() as u32);
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.seg.ordinal(SegmentId {
                edge: mid,
                index: 0,
            }) <= ordinal
            {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let base = self.seg.ordinal(SegmentId { edge: lo, index: 0 });
        SegmentId {
            edge: lo,
            index: ordinal - base,
        }
    }

    /// The current bursty network region, or `None` when no segment has a
    /// positive score.
    pub fn current(&self) -> Option<NetAnswer> {
        let &(score, ordinal) = self.heap.iter().next_back()?;
        Some(self.answer_for(ordinal, score.get()))
    }

    /// The current top-k network regions, best first (distinct segments, so
    /// inherently non-overlapping).
    pub fn current_topk(&self, k: usize) -> Vec<NetAnswer> {
        self.heap
            .iter()
            .rev()
            .take(k)
            .map(|&(score, ordinal)| self.answer_for(ordinal, score.get()))
            .collect()
    }

    /// Recomputes the best segment from the raw weight table — the oracle
    /// used in tests to validate heap maintenance.
    pub fn recompute_best(&self) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        for (i, sp) in self.weights.iter().enumerate() {
            let s = self.params.score_normalized(sp.fc, sp.fp);
            if s > SCORE_EPS && best.is_none_or(|(_, bs)| s > bs) {
                best = Some((i as u32, s));
            }
        }
        best
    }
}

/// A scored network ball: all tracked objects within network distance
/// `radius` of `center`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BallAnswer {
    /// The ball's center node.
    pub center: NodeId,
    /// The ball radius used.
    pub radius: f64,
    /// The ball's burst score.
    pub score: f64,
}

/// Brute-force network-ball scorer (test/quality oracle; not incremental).
#[derive(Debug)]
pub struct NetBallOracle {
    net: RoadNetwork,
    index: EdgeIndex,
    params: BurstParams,
    snap_tolerance: f64,
    /// Live snapped objects: id → (position, weight, in-past flag).
    objects: HashMap<ObjectId, (EdgePos, f64, bool)>,
}

impl NetBallOracle {
    /// Creates an oracle over `net`.
    pub fn new(net: RoadNetwork, params: BurstParams, snap_tolerance: f64) -> Self {
        let index = EdgeIndex::build(&net).expect("network must have at least one edge");
        NetBallOracle {
            net,
            index,
            params,
            snap_tolerance,
            objects: HashMap::new(),
        }
    }

    /// Processes one window-transition event.
    pub fn on_event(&mut self, event: &Event) {
        match event.kind {
            EventKind::New => {
                let snap = self.index.snap(&self.net, event.object.pos);
                if snap.distance <= self.snap_tolerance {
                    self.objects
                        .insert(event.object.id, (snap.pos, event.object.weight, false));
                }
            }
            EventKind::Grown => {
                if let Some(entry) = self.objects.get_mut(&event.object.id) {
                    entry.2 = true;
                }
            }
            EventKind::Expired => {
                self.objects.remove(&event.object.id);
            }
        }
    }

    /// Number of live tracked objects.
    pub fn live_objects(&self) -> usize {
        self.objects.len()
    }

    /// Scores the ball of network radius `radius` centered at `node`.
    pub fn score_ball(&self, node: NodeId, radius: f64) -> f64 {
        let dist = dijkstra_from_node(&self.net, node, radius);
        let mut wc = 0.0;
        let mut wp = 0.0;
        for &(pos, weight, in_past) in self.objects.values() {
            let e = self.net.edge(pos.edge);
            let (to_a, to_b) = self.net.endpoint_distances(pos);
            let d = (dist[e.a as usize] + to_a).min(dist[e.b as usize] + to_b);
            if d <= radius {
                if in_past {
                    wp += weight;
                } else {
                    wc += weight;
                }
            }
        }
        self.params.score_weights(wc, wp)
    }

    /// The best ball of radius `radius` over all node centers.
    pub fn best_ball(&self, radius: f64) -> Option<BallAnswer> {
        let mut best: Option<BallAnswer> = None;
        for node in 0..self.net.node_count() as NodeId {
            let score = self.score_ball(node, radius);
            if score > 0.0 && best.is_none_or(|b| score > b.score) {
                best = Some(BallAnswer {
                    center: node,
                    radius,
                    score,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{grid_city, GridCityConfig};
    use surge_core::{SpatialObject, WindowConfig};

    fn city() -> RoadNetwork {
        grid_city(&GridCityConfig {
            nx: 6,
            ny: 6,
            spacing: 100.0,
            jitter: 0.0,
            drop_fraction: 0.0,
            seed: 0,
        })
    }

    fn params() -> BurstParams {
        BurstParams::new(0.5, WindowConfig::equal(1_000))
    }

    fn ev(kind: EventKind, id: u64, x: f64, y: f64, w: f64) -> Event {
        let o = SpatialObject::new(id, w, Point::new(x, y), 0);
        match kind {
            EventKind::New => Event::new_arrival(o),
            EventKind::Grown => Event::grown(o, 0),
            EventKind::Expired => Event::expired(o, 0),
        }
    }

    #[test]
    fn empty_detector_reports_nothing() {
        let det = NetGapSurge::new(city(), 50.0, params(), 10.0);
        assert!(det.current().is_none());
        assert!(det.current_topk(3).is_empty());
    }

    #[test]
    fn single_object_creates_answer() {
        let mut det = NetGapSurge::new(city(), 50.0, params(), 10.0);
        det.on_event(&ev(EventKind::New, 0, 150.0, 0.0, 10.0));
        let a = det.current().expect("answer");
        // Object snaps to the bottom row between junctions 1 and 2.
        assert!(a.score > 0.0);
        assert!((a.midpoint.y).abs() < 50.0);
        assert!(a.midpoint.x > 50.0 && a.midpoint.x < 250.0);
    }

    #[test]
    fn off_network_objects_are_ignored() {
        let mut det = NetGapSurge::new(city(), 50.0, params(), 5.0);
        det.on_event(&ev(EventKind::New, 0, 150.0, 48.0, 10.0)); // 48 > 5 away
        assert!(det.current().is_none());
        // Its grown/expired events are ignored too (no panic, no effect).
        det.on_event(&ev(EventKind::Grown, 0, 150.0, 48.0, 10.0));
        det.on_event(&ev(EventKind::Expired, 0, 150.0, 48.0, 10.0));
        assert!(det.current().is_none());
    }

    #[test]
    fn lifecycle_clears_scores() {
        let mut det = NetGapSurge::new(city(), 50.0, params(), 10.0);
        det.on_event(&ev(EventKind::New, 0, 150.0, 0.0, 10.0));
        assert!(det.current().is_some());
        det.on_event(&ev(EventKind::Grown, 0, 150.0, 0.0, 10.0));
        // In the past window only: score is 0 (nothing current).
        assert!(det.current().is_none());
        det.on_event(&ev(EventKind::Expired, 0, 150.0, 0.0, 10.0));
        assert!(det.current().is_none());
        assert_eq!(det.recompute_best(), None);
    }

    #[test]
    fn duplicate_new_ids_are_dropped() {
        let mut det = NetGapSurge::new(city(), 50.0, params(), 10.0);
        det.on_event(&ev(EventKind::New, 0, 150.0, 0.0, 10.0));
        det.on_event(&ev(EventKind::New, 0, 350.0, 0.0, 99.0));
        let a = det.current().unwrap();
        // Second insert ignored: score reflects only the first object.
        let expected = params().score_weights(10.0, 0.0);
        assert!((a.score - expected).abs() < 1e-12);
    }

    #[test]
    fn heap_matches_recompute_after_churn() {
        let mut det = NetGapSurge::new(city(), 75.0, params(), 10.0);
        // A deterministic churn of arrivals/transitions across the city.
        let mut id = 0u64;
        for round in 0..8 {
            for i in 0..20 {
                let x = (i * 37 % 500) as f64;
                let y = ((i * 91 + round * 13) % 500) as f64;
                det.on_event(&ev(EventKind::New, id, x, y, 1.0 + (i % 5) as f64));
                if id.is_multiple_of(3) {
                    det.on_event(&ev(EventKind::Grown, id, x, y, 1.0 + (i % 5) as f64));
                }
                if id.is_multiple_of(6) {
                    det.on_event(&ev(EventKind::Expired, id, x, y, 1.0 + (i % 5) as f64));
                }
                id += 1;
            }
        }
        let heap_best = det.current().map(|a| a.score).unwrap_or(0.0);
        let table_best = det.recompute_best().map(|(_, s)| s).unwrap_or(0.0);
        assert!(
            (heap_best - table_best).abs() < 1e-12,
            "heap {heap_best} vs table {table_best}"
        );
    }

    #[test]
    fn topk_is_sorted_and_distinct() {
        let mut det = NetGapSurge::new(city(), 50.0, params(), 10.0);
        for i in 0..10u64 {
            det.on_event(&ev(
                EventKind::New,
                i,
                (i * 100) as f64 % 500.0,
                ((i / 5) * 100) as f64,
                (i + 1) as f64,
            ));
        }
        let top = det.current_topk(4);
        assert!(!top.is_empty());
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
            assert_ne!(w[0].segment, w[1].segment);
        }
    }

    #[test]
    fn burst_is_localized_to_hot_street() {
        let mut det = NetGapSurge::new(city(), 60.0, params(), 10.0);
        // Background: one object per junction row.
        for i in 0..6u64 {
            det.on_event(&ev(EventKind::New, i, 10.0, (i * 100) as f64, 1.0));
        }
        // Burst: many objects around (300, 200).
        for j in 0..15u64 {
            det.on_event(&ev(
                EventKind::New,
                100 + j,
                295.0 + (j % 3) as f64 * 4.0,
                200.0,
                2.0,
            ));
        }
        let a = det.current().unwrap();
        let d = ((a.midpoint.x - 300.0).powi(2) + (a.midpoint.y - 200.0).powi(2)).sqrt();
        assert!(d < 80.0, "burst localized {d} away at {:?}", a.midpoint);
    }

    #[test]
    fn ball_oracle_dominates_segments_lemma5() {
        let params = params();
        let net = city();
        let seg_len = 60.0;
        let mut det = NetGapSurge::new(net.clone(), seg_len, params, 10.0);
        let mut oracle = NetBallOracle::new(net, params, 10.0);
        for i in 0..60u64 {
            let e = ev(
                EventKind::New,
                i,
                (i * 83 % 500) as f64,
                (i * 47 % 500) as f64,
                1.0 + (i % 7) as f64,
            );
            det.on_event(&e);
            oracle.on_event(&e);
            if i % 4 == 0 {
                let g = Event::grown(e.object, 0);
                det.on_event(&g);
                oracle.on_event(&g);
            }
        }
        let seg_best = det.current().map(|a| a.score).unwrap_or(0.0);
        // Any segment of length <= L fits inside a ball of radius L centered
        // at its midpoint; Lemma 5 then bounds the ball's score from below.
        // Ball centers are nodes, so allow radius L + L/2 to cover the
        // distance from the midpoint to the nearest node.
        let ball_best = oracle
            .best_ball(seg_len * 1.5)
            .map(|b| b.score)
            .unwrap_or(0.0);
        assert!(
            ball_best >= (1.0 - params.alpha) * seg_best - 1e-12,
            "ball {ball_best} vs segment {seg_best}"
        );
    }

    #[test]
    fn ball_score_grows_with_radius() {
        let net = city();
        // On a 100-spacing grid every point is within 50 of a road; a
        // 60-unit tolerance keeps all probes.
        let mut oracle = NetBallOracle::new(net, params(), 60.0);
        for i in 0..30u64 {
            oracle.on_event(&ev(
                EventKind::New,
                i,
                (i * 67 % 500) as f64,
                (i * 29 % 500) as f64,
                1.0,
            ));
        }
        assert_eq!(oracle.live_objects(), 30);
        let s100 = oracle.best_ball(100.0).map(|b| b.score).unwrap_or(0.0);
        let s400 = oracle.best_ball(400.0).map(|b| b.score).unwrap_or(0.0);
        // With everything in the current window, score is monotone in the
        // covered weight, which is monotone in the radius.
        assert!(s400 >= s100);
    }

    #[test]
    fn stats_count_events() {
        let mut det = NetGapSurge::new(city(), 50.0, params(), 10.0);
        det.on_event(&ev(EventKind::New, 0, 0.0, 0.0, 1.0));
        det.on_event(&ev(EventKind::Grown, 0, 0.0, 0.0, 1.0));
        let s = det.stats();
        assert_eq!(s.events, 2);
        assert_eq!(s.new_events, 1);
    }
}
