//! Shortest-path primitives over the road network.
//!
//! The network-ball detector scores "all objects within network distance `r`
//! of a center"; that needs truncated single-source Dijkstra from nodes and
//! from arbitrary edge positions.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use surge_core::TotalF64;

use crate::graph::{EdgePos, NodeId, RoadNetwork};

/// Single-source shortest path distances from `source` to every node,
/// truncated at `radius` (unreached nodes get `f64::INFINITY`).
pub fn dijkstra_from_node(net: &RoadNetwork, source: NodeId, radius: f64) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; net.node_count()];
    if (source as usize) >= net.node_count() {
        return dist;
    }
    let mut heap: BinaryHeap<Reverse<(TotalF64, NodeId)>> = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Reverse((TotalF64(0.0), source)));
    while let Some(Reverse((d, node))) = heap.pop() {
        let d = d.get();
        if d > dist[node as usize] {
            continue; // stale entry
        }
        if d > radius {
            break;
        }
        for &eid in net.incident_edges(node) {
            let other = net.other_endpoint(eid, node);
            let nd = d + net.edge(eid).length;
            if nd < dist[other as usize] && nd <= radius {
                dist[other as usize] = nd;
                heap.push(Reverse((TotalF64(nd), other)));
            }
        }
    }
    dist
}

/// Shortest network distances from an arbitrary edge position to every node,
/// truncated at `radius`.
///
/// The source reaches the two endpoints of its edge at `offset` and
/// `length − offset`; from there ordinary Dijkstra proceeds.
pub fn dijkstra_from_pos(net: &RoadNetwork, source: EdgePos, radius: f64) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; net.node_count()];
    let e = net.edge(source.edge);
    let (to_a, to_b) = net.endpoint_distances(source);
    let mut heap: BinaryHeap<Reverse<(TotalF64, NodeId)>> = BinaryHeap::new();
    if to_a <= radius {
        dist[e.a as usize] = to_a;
        heap.push(Reverse((TotalF64(to_a), e.a)));
    }
    if to_b <= radius && to_b < dist[e.b as usize] {
        dist[e.b as usize] = to_b;
        heap.push(Reverse((TotalF64(to_b), e.b)));
    }
    while let Some(Reverse((d, node))) = heap.pop() {
        let d = d.get();
        if d > dist[node as usize] {
            continue;
        }
        for &eid in net.incident_edges(node) {
            let other = net.other_endpoint(eid, node);
            let nd = d + net.edge(eid).length;
            if nd < dist[other as usize] && nd <= radius {
                dist[other as usize] = nd;
                heap.push(Reverse((TotalF64(nd), other)));
            }
        }
    }
    dist
}

/// Network distance between two edge positions, truncated at `radius`
/// (`f64::INFINITY` when farther or disconnected).
pub fn network_distance(net: &RoadNetwork, a: EdgePos, b: EdgePos, radius: f64) -> f64 {
    // Same-edge direct travel is a candidate, but not necessarily the
    // shortest: a long edge can be undercut by a route through its endpoints,
    // so the Dijkstra candidates below are always considered too.
    let dist = dijkstra_from_pos(net, a, radius);
    let eb = net.edge(b.edge);
    let (b_to_a, b_to_b) = net.endpoint_distances(b);
    let via_a = dist[eb.a as usize] + b_to_a;
    let via_b = dist[eb.b as usize] + b_to_b;
    let mut best = via_a.min(via_b);
    if a.edge == b.edge {
        best = best.min((a.offset - b.offset).abs());
    }
    if best <= radius {
        best
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{grid_city, GridCityConfig};
    use crate::graph::RoadNetworkBuilder;
    use surge_core::Point;

    /// 0 --2-- 1 --3-- 2, plus a long detour 0 --10-- 2.
    fn path_graph() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(2.0, 0.0));
        let n2 = b.add_node(Point::new(5.0, 0.0));
        b.add_edge_with_length(n0, n1, 2.0);
        b.add_edge_with_length(n1, n2, 3.0);
        b.add_edge_with_length(n0, n2, 10.0);
        b.build().unwrap()
    }

    #[test]
    fn node_dijkstra_prefers_short_route() {
        let g = path_graph();
        let d = dijkstra_from_node(&g, 0, f64::INFINITY);
        assert_eq!(d, vec![0.0, 2.0, 5.0]);
    }

    #[test]
    fn node_dijkstra_truncates_at_radius() {
        let g = path_graph();
        let d = dijkstra_from_node(&g, 0, 2.5);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 2.0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn pos_dijkstra_reaches_both_endpoints() {
        let g = path_graph();
        // Midpoint of edge 0 (0--1, length 2): 1 from each endpoint.
        let d = dijkstra_from_pos(
            &g,
            EdgePos {
                edge: 0,
                offset: 1.0,
            },
            f64::INFINITY,
        );
        assert_eq!(d[0], 1.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 4.0);
    }

    #[test]
    fn network_distance_same_edge_is_offset_difference() {
        let g = path_graph();
        let a = EdgePos {
            edge: 1,
            offset: 0.5,
        };
        let b = EdgePos {
            edge: 1,
            offset: 2.5,
        };
        assert!((network_distance(&g, a, b, 100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn network_distance_across_edges() {
        let g = path_graph();
        let a = EdgePos {
            edge: 0,
            offset: 1.5,
        }; // 0.5 from node 1
        let b = EdgePos {
            edge: 1,
            offset: 1.0,
        }; // 1.0 from node 1
        assert!((network_distance(&g, a, b, 100.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn network_distance_respects_radius() {
        let g = path_graph();
        let a = EdgePos {
            edge: 0,
            offset: 0.0,
        };
        let b = EdgePos {
            edge: 1,
            offset: 3.0,
        }; // node 2, distance 5 from node 0
        assert!(network_distance(&g, a, b, 4.0).is_infinite());
        assert!((network_distance(&g, a, b, 5.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_on_city() {
        let g = grid_city(&GridCityConfig {
            nx: 6,
            ny: 6,
            spacing: 10.0,
            jitter: 0.1,
            drop_fraction: 0.2,
            seed: 5,
        });
        let probes = [
            EdgePos {
                edge: 0,
                offset: 1.0,
            },
            EdgePos {
                edge: (g.edge_count() / 2) as u32,
                offset: 0.5,
            },
            EdgePos {
                edge: (g.edge_count() - 1) as u32,
                offset: 2.0,
            },
        ];
        for &a in &probes {
            for &b in &probes {
                let ab = network_distance(&g, a, b, f64::INFINITY);
                let ba = network_distance(&g, b, a, f64::INFINITY);
                assert!(
                    (ab - ba).abs() < 1e-9,
                    "asymmetric: {a:?}→{b:?} = {ab}, reverse {ba}"
                );
            }
        }
    }

    #[test]
    fn long_edge_is_undercut_by_shortcut() {
        // Positions near opposite ends of the length-10 detour edge: direct
        // travel along the edge costs 9, but routing through nodes 0→1→2
        // costs 0.5 + 5 + 0.5 = 6.
        let g = path_graph();
        let a = EdgePos {
            edge: 2,
            offset: 0.5,
        };
        let b = EdgePos {
            edge: 2,
            offset: 9.5,
        };
        assert!((network_distance(&g, a, b, 100.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_source_yields_all_infinite() {
        let g = path_graph();
        let d = dijkstra_from_node(&g, 99, 10.0);
        assert!(d.iter().all(|x| x.is_infinite()));
    }
}
