//! The checkpointing driver and the recovery entry point.
//!
//! [`run_checkpointed`] is the durable face of the slide-batched drivers:
//! it appends every arrival to the WAL *before* the window engine sees it,
//! flushes the detector once per slide (exactly `drive_incremental`'s
//! cadence, so answers are bit-comparable), and every
//! [`CheckpointPolicy::snapshot_every_slides`] slides writes an atomic
//! logical snapshot and garbage-collects covered WAL segments.
//!
//! [`recover`] is the other half: it loads the newest valid snapshot
//! (skipping corrupt ones), rebuilds the engine and detector from logical
//! state, replays the WAL tail through the identical loop, then continues
//! with the live source — producing the answer sequence the uninterrupted
//! run would have produced, **bit for bit** (proptested in
//! `tests/crash_recovery.rs` across cut points, shard counts and sweep
//! modes).
//!
//! Snapshot pauses are recorded in a
//! [`surge_stream::LatencyHistogram`]; the report surfaces the
//! p50/p99/max snapshot-stall columns the benches print.

use std::path::PathBuf;
use std::time::Instant;

use surge_approx::{GapSurge, MgapSurge};
use surge_core::{
    BurstDetector, CheckpointableDetector, DetectorState, DetectorStats, Event,
    IncrementalDetector, RegionAnswer, RestoreError, SpatialObject, SurgeQuery, TopKDetector,
    WindowConfig,
};
use surge_exact::{BaseDetector, CellCspot};
use surge_io::{BlobStore, FsStore, IoError};
use surge_observe::{Flight, Histogram, Observe, TraceEvent};
use surge_stream::{
    AnswerLog, AnswerSink, AutopilotDetector, EventBatch, FlushOutcome, LatencyHistogram,
    LatencySummary, QueryCore, RetainAll, ShardBalancer, SlidingWindowEngine,
};
use surge_topk::KCellCspot;

use crate::state::{CheckpointMeta, CheckpointState, DetectorSpec, MeshState};
use crate::store::CheckpointDir;
use crate::wal::{Wal, WalWriter};

/// How aggressively the WAL is forced to stable storage.
///
/// Every tier syncs to the OS at each slide boundary (group commit), so a
/// process kill never loses a flushed slide. The tiers differ in what a
/// **power loss** can cost — and in write latency, which
/// `checkpoint-bench` quantifies per policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// OS flush only. A power loss can drop the OS-buffered WAL tail;
    /// recovery re-reads that stretch from the source, so it costs replay
    /// work, never correctness. The default.
    #[default]
    OsFlush,
    /// Additionally `fdatasync` the WAL before each snapshot: the records
    /// between two snapshots are on stable storage before the newer
    /// snapshot becomes the recovery anchor.
    FsyncPerSnapshot,
    /// `fdatasync` at every slide: each flushed slide survives power loss.
    /// The strongest — and slowest — tier.
    FsyncPerSlide,
}

impl SyncPolicy {
    /// Short name for bench tables.
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::OsFlush => "os-flush",
            SyncPolicy::FsyncPerSnapshot => "fsync/snapshot",
            SyncPolicy::FsyncPerSlide => "fsync/slide",
        }
    }
}

/// When to snapshot and how the WAL is segmented, retained and synced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Write a snapshot every N slides (0 disables snapshots; recovery then
    /// replays the whole WAL).
    pub snapshot_every_slides: u64,
    /// Rotate WAL segments every N objects.
    pub wal_segment_objects: u64,
    /// Keep the newest N snapshots (minimum 1); WAL segments fully covered
    /// by the oldest retained snapshot are deleted.
    pub keep_snapshots: usize,
    /// WAL durability tier.
    pub sync: SyncPolicy,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            snapshot_every_slides: 8,
            wal_segment_objects: 4096,
            keep_snapshots: 2,
            sync: SyncPolicy::OsFlush,
        }
    }
}

/// A checkpointed run's configuration: what to detect and at what cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointConfig {
    /// The continuous query.
    pub query: SurgeQuery,
    /// The window configuration the engine runs (usually `query.windows`).
    pub windows: WindowConfig,
    /// Which detector to drive.
    pub spec: DetectorSpec,
    /// Arrivals per slide.
    pub slide_objects: usize,
    /// Sweep worker threads per flush.
    pub threads: usize,
    /// Durability policy.
    pub policy: CheckpointPolicy,
}

/// How a run ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// Drain the window tails and run the terminal flush (the normal
    /// end-of-stream contract shared with every replay driver).
    Finish,
    /// Stop dead after the last object — no drain, no flush, WAL synced.
    /// This simulates a crash for the recovery tests; a real crash differs
    /// only in possibly losing the unsynced WAL tail, which recovery
    /// re-reads from the source instead.
    Crash,
}

/// Errors from the checkpoint subsystem.
#[derive(Debug)]
pub enum CheckpointError {
    /// A persistence failure (WAL or snapshot I/O, corrupt file).
    Io(IoError),
    /// A logical-state restore was rejected.
    Restore(RestoreError),
    /// The run configuration contradicts the on-disk state.
    Config(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Restore(e) => write!(f, "{e}"),
            CheckpointError::Config(msg) => write!(f, "checkpoint config error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<IoError> for CheckpointError {
    fn from(e: IoError) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<RestoreError> for CheckpointError {
    fn from(e: RestoreError) -> Self {
        CheckpointError::Restore(e)
    }
}

/// The outcome of a checkpointed run (or of a recovery + resume).
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// Objects processed in total (replayed WAL tail included).
    pub objects: u64,
    /// Flushes executed in total.
    pub slides: u64,
    /// Window-transition events processed (from the resume point onward
    /// for a recovered run).
    pub events: u64,
    /// The answer at every flush, in flush order: 0/1 entries per flush
    /// for single-region detectors, up to k for top-k. For a recovered run
    /// this includes the answers restored from the snapshot, so the full
    /// sequence is comparable to an uninterrupted run's. With the default
    /// [`RetainAll`] sink every flush stays retained (the historical `Vec`
    /// shape); a run wired to an acking consumer via
    /// [`run_checkpointed_with_sink`] retains only the unacked suffix.
    pub answers: AnswerLog<Vec<RegionAnswer>>,
    /// Snapshots written during this run.
    pub snapshots_written: u64,
    /// Objects appended to the WAL during this run.
    pub wal_appends: u64,
    /// Snapshot-stall latencies (capture + encode + atomic write).
    pub pause: LatencySummary,
    /// For a recovered run: the object index execution resumed from (the
    /// snapshot's position). `None` for a fresh run.
    pub resumed_at: Option<u64>,
    /// Objects replayed from the WAL tail during recovery.
    pub replayed_from_wal: u64,
    /// Bytes truncated off a torn WAL tail during recovery.
    pub wal_truncated_bytes: u64,
    /// For an autopilot run: the tier index the controller ended in
    /// (0 = exact, 1 = MGAPS, 2 = GAPS). `None` for every other detector.
    pub final_tier: Option<u8>,
    /// Final detector counters.
    pub stats: DetectorStats,
}

impl CheckpointReport {
    /// The retained answers as the single-region drivers report them —
    /// convenience for comparing against `drive_incremental`.
    pub fn single_answers(&self) -> Vec<Option<RegionAnswer>> {
        self.answers
            .iter()
            .map(|flush| flush.first().copied())
            .collect()
    }
}

/// The detector behind a checkpointed run: one variant per
/// [`DetectorSpec`], so every driver loop — the checkpoint runner and the
/// multi-query serving layer — is a single implementation.
///
/// Implements [`surge_stream::QueryCore`], which is how `surge-serve`
/// drives one of these per deduped detector group over a shared window
/// engine at the exact per-slide cadence the checkpoint runner uses.
pub enum SpecDetector {
    /// CCS / B-CCS ([`surge_exact::CellCspot`]).
    Cell(CellCspot),
    /// The baseline detector ([`surge_exact::BaseDetector`]).
    Base(BaseDetector),
    /// Continuous top-k ([`surge_topk::KCellCspot`]).
    TopK(KCellCspot),
    /// GAP-SURGE ([`surge_approx::GapSurge`]).
    Gaps(GapSurge),
    /// MGAP-SURGE ([`surge_approx::MgapSurge`]).
    Mgaps(Box<MgapSurge>),
    /// The overload autopilot ([`surge_stream::AutopilotDetector`]).
    Autopilot(Box<AutopilotDetector>),
    /// CCS under the elastic shard balancer: each flush feeds the
    /// per-shard dirty counts into the [`ShardBalancer`] and reshards the
    /// cell store in place when it recommends a split. The live shard
    /// count and balancer history travel in the snapshot's MESH section.
    Elastic(CellCspot, ShardBalancer),
}

impl SpecDetector {
    /// Builds an empty detector for `spec` over `query`.
    ///
    /// [`DetectorSpec::Serve`] is rejected: a serve registry is not a
    /// single detector — build a `surge-serve` server instead.
    pub fn build(spec: &DetectorSpec, query: SurgeQuery) -> Result<SpecDetector, CheckpointError> {
        Ok(match *spec {
            DetectorSpec::Cell {
                bound,
                sweep,
                shards,
            } => SpecDetector::Cell(CellCspot::with_sweep_mode(query, bound, sweep, shards)),
            DetectorSpec::Base { pruned } => SpecDetector::Base(if pruned {
                BaseDetector::with_pruning(query)
            } else {
                BaseDetector::new(query)
            }),
            DetectorSpec::TopK { k } => SpecDetector::TopK(KCellCspot::new(query, k)),
            DetectorSpec::Gaps { shards } => {
                SpecDetector::Gaps(GapSurge::with_shards(query, shards))
            }
            DetectorSpec::Mgaps { shards } => {
                SpecDetector::Mgaps(Box::new(MgapSurge::with_shards(query, shards)))
            }
            DetectorSpec::Autopilot { shards, policy } => SpecDetector::Autopilot(Box::new(
                AutopilotDetector::with_shards(query, policy, shards),
            )),
            DetectorSpec::Elastic {
                bound,
                sweep,
                shards,
                policy,
            } => SpecDetector::Elastic(
                CellCspot::with_sweep_mode(query, bound, sweep, shards),
                ShardBalancer::new(policy),
            ),
            DetectorSpec::Serve => {
                return Err(CheckpointError::Config(
                    "DetectorSpec::Serve is a registry marker, not a detector; \
                     drive it through surge-serve"
                        .into(),
                ))
            }
        })
    }

    /// Consumes one window-transition event.
    pub fn on_event(&mut self, ev: &Event) {
        match self {
            SpecDetector::Cell(d) => d.on_event(ev),
            SpecDetector::Base(d) => BurstDetector::on_event(d, ev),
            SpecDetector::TopK(d) => TopKDetector::on_event(d, ev),
            SpecDetector::Gaps(d) => BurstDetector::on_event(d, ev),
            SpecDetector::Mgaps(d) => BurstDetector::on_event(d.as_mut(), ev),
            SpecDetector::Autopilot(d) => BurstDetector::on_event(d.as_mut(), ev),
            SpecDetector::Elastic(d, _) => d.on_event(ev),
        }
    }

    /// The per-slide flush, matching each detector family's canonical
    /// cadence: CCS sweeps its dirty cells in place and then reads the
    /// all-fresh answer (bit-identical to `drive_incremental`), Base,
    /// top-k and the grid detectors answer directly. The elastic variant
    /// additionally feeds the flush-boundary dirty counts to its balancer
    /// and reshards in place *after* the answer is taken — the balancer
    /// decision is a pure function of those counters, so a crash-replayed
    /// run re-triggers the same reshard at the same flush.
    pub fn flush(&mut self, threads: usize) -> Vec<RegionAnswer> {
        self.flush_outcome(threads).answers
    }

    /// [`flush`](Self::flush) with the swept-cell count, shared with the
    /// [`QueryCore`] face.
    pub fn flush_outcome(&mut self, threads: usize) -> FlushOutcome {
        match self {
            SpecDetector::Cell(d) => {
                let swept = d.sweep_dirty(threads);
                FlushOutcome {
                    answers: d.current().into_iter().collect(),
                    swept,
                }
            }
            SpecDetector::Elastic(d, balancer) => {
                // The load signal must be read before the sweep clears the
                // dirty set.
                let dirty = d.dirty_counts();
                let swept = d.sweep_dirty(threads);
                let answers = d.current().into_iter().collect();
                if let Some(to) = balancer.observe(d.shard_count(), &dirty, &[]) {
                    d.reshard(to);
                }
                FlushOutcome { answers, swept }
            }
            SpecDetector::Base(d) => FlushOutcome {
                answers: d.current().into_iter().collect(),
                swept: 0,
            },
            SpecDetector::TopK(d) => FlushOutcome {
                answers: d.current_topk(),
                swept: 0,
            },
            SpecDetector::Gaps(d) => FlushOutcome {
                answers: d.current().into_iter().collect(),
                swept: 0,
            },
            SpecDetector::Mgaps(d) => FlushOutcome {
                answers: d.current().into_iter().collect(),
                swept: 0,
            },
            SpecDetector::Autopilot(d) => FlushOutcome {
                answers: d.current().into_iter().collect(),
                swept: 0,
            },
        }
    }

    /// Elastic-mesh runtime state for the snapshot's MESH section — `Some`
    /// exactly for the [`SpecDetector::Elastic`] variant.
    pub fn mesh_state(&self) -> Option<MeshState> {
        match self {
            SpecDetector::Elastic(d, b) => Some(MeshState {
                shards: d.shard_count() as u64,
                streak: b.streak(),
                reshards: b.reshards(),
            }),
            _ => None,
        }
    }

    /// Applies recovered MESH state: reshards the cell store to the
    /// snapshot's live count and restores the balancer mid-streak. Must be
    /// called after [`restore`](Self::restore).
    pub fn apply_mesh(&mut self, mesh: &MeshState) -> Result<(), CheckpointError> {
        match self {
            SpecDetector::Elastic(d, b) => {
                d.reshard(mesh.shards as usize);
                let policy = b.policy();
                *b = ShardBalancer::from_parts(policy, mesh.streak, mesh.reshards);
                Ok(())
            }
            _ => Err(CheckpointError::Config(
                "snapshot carries MESH state but the configured spec is not Elastic".into(),
            )),
        }
    }

    /// Captures the detector's logical state for a snapshot.
    pub fn capture(&self) -> DetectorState {
        match self {
            SpecDetector::Cell(d) => d.capture_state(),
            SpecDetector::Base(d) => d.capture_state(),
            SpecDetector::TopK(d) => d.capture_state(),
            SpecDetector::Gaps(d) => d.capture_state(),
            SpecDetector::Mgaps(d) => d.capture_state(),
            SpecDetector::Autopilot(d) => d.capture_state(),
            SpecDetector::Elastic(d, _) => d.capture_state(),
        }
    }

    /// Restores the detector from captured logical state.
    pub fn restore(&mut self, state: &DetectorState) -> Result<(), RestoreError> {
        match self {
            SpecDetector::Cell(d) => d.restore_state(state),
            SpecDetector::Base(d) => d.restore_state(state),
            SpecDetector::TopK(d) => d.restore_state(state),
            SpecDetector::Gaps(d) => d.restore_state(state),
            SpecDetector::Mgaps(d) => d.restore_state(state),
            SpecDetector::Autopilot(d) => d.restore_state(state),
            SpecDetector::Elastic(d, _) => d.restore_state(state),
        }
    }

    /// Detector counters.
    pub fn stats(&self) -> DetectorStats {
        match self {
            SpecDetector::Cell(d) => d.stats(),
            SpecDetector::Base(d) => BurstDetector::stats(d),
            SpecDetector::TopK(d) => TopKDetector::stats(d),
            SpecDetector::Gaps(d) => BurstDetector::stats(d),
            SpecDetector::Mgaps(d) => BurstDetector::stats(d.as_ref()),
            SpecDetector::Autopilot(d) => BurstDetector::stats(d.as_ref()),
            SpecDetector::Elastic(d, _) => d.stats(),
        }
    }
}

impl QueryCore for SpecDetector {
    fn on_event(&mut self, event: &Event) {
        SpecDetector::on_event(self, event);
    }

    fn flush(&mut self, threads: usize) -> FlushOutcome {
        SpecDetector::flush_outcome(self, threads)
    }

    fn stats(&self) -> DetectorStats {
        SpecDetector::stats(self)
    }
}

/// The run loop shared by fresh runs and recovery.
struct Runner<'s> {
    cfg: CheckpointConfig,
    dir: CheckpointDir,
    detector: SpecDetector,
    engine: SlidingWindowEngine,
    wal: WalWriter,
    batch: EventBatch,
    answers: AnswerLog<Vec<RegionAnswer>>,
    sink: &'s mut dyn AnswerSink<Vec<RegionAnswer>>,
    objects: u64,
    slides: u64,
    events: u64,
    in_slide: usize,
    snapshot_seq: u64,
    snapshots_written: u64,
    wal_appends: u64,
    pause: LatencyHistogram,
    /// When the current slide started (last flush end) — feeds the
    /// autopilot's slide-latency signal.
    slide_t0: Instant,
    /// Registry/flight probes; all no-ops under `Observe::off()`.
    probes: RunnerProbes,
}

/// The checkpoint runner's observability handles: a flight ring attributing
/// every snapshot stall to `(slide, bytes, sync_policy)` and every WAL
/// rotation to its segment, plus the `checkpoint/stall_ns` histogram the
/// stalls land in. Wall-clock stall durations go to the histogram only; the
/// trace events carry logical time, so a dump is deterministic run-to-run.
struct RunnerProbes {
    obs: Observe,
    flight: Flight,
    stall_ns: Histogram,
    /// WAL segments seen opened so far (rotation edge detector).
    wal_segments: u64,
}

impl RunnerProbes {
    fn new(obs: &Observe) -> Self {
        RunnerProbes {
            obs: obs.clone(),
            flight: obs.flight("checkpoint/runner"),
            stall_ns: obs.histogram("checkpoint/stall_ns"),
            wal_segments: 0,
        }
    }
}

impl Runner<'_> {
    fn apply_events(&mut self) {
        for ev in self.batch.iter() {
            self.detector.on_event(ev);
        }
        self.events += self.batch.len() as u64;
    }

    /// One flush: sweep + answer, then maybe a snapshot. The WAL is synced
    /// at every flush per the [`SyncPolicy`] (group commit — see the `wal`
    /// module docs).
    fn flush(&mut self) -> Result<(), CheckpointError> {
        match self.cfg.policy.sync {
            SyncPolicy::FsyncPerSlide => self.wal.sync_durable()?,
            SyncPolicy::OsFlush | SyncPolicy::FsyncPerSnapshot => self.wal.sync()?,
        }
        let flush_answers = self.detector.flush(self.cfg.threads);
        self.answers.offer(flush_answers, &mut *self.sink);
        self.slides += 1;
        // The autopilot observes its SLO signals at the same point
        // `drive_autopilot` does: after the slide's answer is taken, before
        // the snapshot — so a snapshot captures the post-transition tier
        // and replay reproduces the same transition sequence.
        if let SpecDetector::Autopilot(d) = &mut self.detector {
            let dt = self.slide_t0.elapsed();
            let latency_us = (dt.as_nanos() / 1_000).min(u64::MAX as u128) as u64;
            d.note_slide(latency_us, &self.engine);
        }
        self.slide_t0 = Instant::now();
        let every = self.cfg.policy.snapshot_every_slides;
        if every > 0 && self.slides.is_multiple_of(every) {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Captures, encodes and atomically writes one snapshot, retiring old
    /// snapshots and covered WAL segments per policy. The wall-clock cost
    /// — the stream stall a synchronous checkpoint causes — lands in the
    /// pause histogram.
    fn snapshot(&mut self) -> Result<(), CheckpointError> {
        let t0 = Instant::now();
        // Under FsyncPerSnapshot, the WAL records this snapshot does not
        // cover must be on stable storage before the snapshot becomes the
        // recovery anchor (and before gc drops their predecessors).
        if self.cfg.policy.sync == SyncPolicy::FsyncPerSnapshot {
            self.wal.sync_durable()?;
        }
        self.snapshot_seq += 1;
        let state = CheckpointState {
            meta: CheckpointMeta {
                objects_ingested: self.objects,
                slides_done: self.slides,
                slide_objects: self.cfg.slide_objects as u64,
                threads: self.cfg.threads as u64,
                snapshot_seq: self.snapshot_seq,
            },
            spec: self.cfg.spec,
            query: self.cfg.query,
            engine: self.engine.checkpoint(),
            detector: self.detector.capture(),
            answers_released: self.answers.released(),
            answers: self.answers.retained().to_vec(),
            mesh: self.detector.mesh_state(),
        };
        let path = self.dir.write_snapshot(&state)?;
        self.snapshots_written += 1;
        let retained_floor = self.dir.retire_snapshots(self.cfg.policy.keep_snapshots)?;
        self.wal.gc(retained_floor.unwrap_or(0))?;
        let stall = t0.elapsed();
        self.pause.record(stall);
        self.probes.stall_ns.record(stall);
        if self.probes.flight.is_enabled() {
            // Stall *identity* is logical — (slide, bytes, sync policy) —
            // so the trace dump is deterministic; the wall-clock duration
            // lives in the `checkpoint/stall_ns` histogram above.
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            self.probes.flight.record(TraceEvent::SnapshotStall {
                slide: self.slides,
                bytes,
                sync_policy: self.cfg.policy.sync.name(),
            });
        }
        Ok(())
    }

    fn ingest(&mut self, obj: SpatialObject, durable: bool) -> Result<(), CheckpointError> {
        // Validate *before* the WAL append: an out-of-order arrival must be
        // rejected as bad input, not made durable — a poisoned log would
        // make every future recovery fail. (The engine clock is the push
        // floor: `push` asserts `created >= max(last_created, now)` and
        // `now` always dominates.)
        if obj.created < self.engine.now() {
            return Err(CheckpointError::Config(format!(
                "stream must be timestamp-ordered: object {} at {} predates the engine clock {}",
                obj.id,
                obj.created,
                self.engine.now()
            )));
        }
        if durable {
            self.wal.append(&obj)?;
            self.wal_appends += 1;
            let segments = self.wal.segments_opened();
            if segments != self.probes.wal_segments {
                self.probes.wal_segments = segments;
                self.probes
                    .flight
                    .record(TraceEvent::WalRotation { segment: segments });
            }
        }
        self.batch.clear();
        self.engine.push_into(obj, &mut self.batch);
        self.apply_events();
        self.objects += 1;
        self.in_slide += 1;
        if self.in_slide >= self.cfg.slide_objects {
            self.in_slide = 0;
            self.flush()?;
        }
        Ok(())
    }

    fn run(
        mut self,
        source: impl Iterator<Item = SpatialObject>,
        tail: Tail,
        resumed_at: Option<u64>,
        replayed_from_wal: u64,
        wal_truncated_bytes: u64,
    ) -> Result<CheckpointReport, CheckpointError> {
        for obj in source {
            self.ingest(obj, true)?;
        }
        match tail {
            Tail::Crash => {
                self.wal.sync()?;
            }
            Tail::Finish => {
                if self.in_slide > 0 {
                    self.flush()?;
                }
                self.batch.clear();
                self.engine.finish_into(&mut self.batch);
                self.apply_events();
                self.flush()?;
            }
        }
        let final_tier = match &self.detector {
            SpecDetector::Autopilot(d) => Some(d.tier().index() as u8),
            _ => None,
        };
        if self.probes.obs.is_enabled() {
            let obs = &self.probes.obs;
            obs.counter("checkpoint/objects").add(self.objects);
            obs.counter("checkpoint/slides").add(self.slides);
            obs.counter("checkpoint/events").add(self.events);
            obs.counter("checkpoint/snapshots_written")
                .add(self.snapshots_written);
            obs.counter("checkpoint/wal_appends").add(self.wal_appends);
        }
        Ok(CheckpointReport {
            objects: self.objects,
            slides: self.slides,
            events: self.events,
            answers: self.answers,
            snapshots_written: self.snapshots_written,
            wal_appends: self.wal_appends,
            pause: self.pause.summary(),
            resumed_at,
            replayed_from_wal,
            wal_truncated_bytes,
            final_tier,
            stats: self.detector.stats(),
        })
    }
}

/// Validates that `slide_objects` is usable.
fn check_cfg(cfg: &CheckpointConfig) -> Result<(), CheckpointError> {
    if cfg.slide_objects == 0 {
        return Err(CheckpointError::Config(
            "slide_objects must be positive".into(),
        ));
    }
    Ok(())
}

/// Drives `source` through a fresh checkpointed run in `dir`.
///
/// `dir` must be empty of checkpoint state (use [`recover`] to resume an
/// existing one). Every arrival is WAL-appended before processing; the
/// detector flushes once per `cfg.slide_objects` arrivals, snapshots land
/// every [`CheckpointPolicy::snapshot_every_slides`] slides, and
/// [`Tail::Finish`] ends with the standard drain + terminal flush.
pub fn run_checkpointed(
    cfg: &CheckpointConfig,
    dir: impl Into<PathBuf>,
    source: impl Iterator<Item = SpatialObject>,
    tail: Tail,
) -> Result<CheckpointReport, CheckpointError> {
    run_checkpointed_inner(
        cfg,
        dir,
        source,
        tail,
        Box::new(FsStore),
        &mut RetainAll,
        &Observe::off(),
    )
}

/// [`run_checkpointed`] with registry probes: counters under
/// `checkpoint/*`, the `checkpoint/stall_ns` snapshot-stall histogram, and
/// a `checkpoint/runner` flight ring attributing every snapshot stall to
/// `(slide, bytes, sync_policy)` and every WAL rotation to its segment —
/// all no-ops under [`Observe::off`], with bitwise-identical answers either
/// way (proptested in `tests/observe_checkpoint.rs`).
pub fn run_checkpointed_observed(
    cfg: &CheckpointConfig,
    dir: impl Into<PathBuf>,
    source: impl Iterator<Item = SpatialObject>,
    tail: Tail,
    obs: &Observe,
) -> Result<CheckpointReport, CheckpointError> {
    run_checkpointed_inner(
        cfg,
        dir,
        source,
        tail,
        Box::new(FsStore),
        &mut RetainAll,
        obs,
    )
}

/// [`run_checkpointed`] with an explicit WAL segment-file store — the
/// fault-injection hook: hand it a [`surge_io::FailingStore`] and every
/// I/O-failure point must surface as [`CheckpointError::Io`], leaving a
/// WAL that still recovers to a clean prefix.
pub fn run_checkpointed_with_store(
    cfg: &CheckpointConfig,
    dir: impl Into<PathBuf>,
    source: impl Iterator<Item = SpatialObject>,
    tail: Tail,
    store: Box<dyn BlobStore>,
) -> Result<CheckpointReport, CheckpointError> {
    run_checkpointed_inner(
        cfg,
        dir,
        source,
        tail,
        store,
        &mut RetainAll,
        &Observe::off(),
    )
}

/// [`run_checkpointed`] with a consumer [`AnswerSink`]: every flush is
/// delivered synchronously and an [`surge_stream::Ack::Release`] lets the
/// runner drop the retained answer, bounding both the in-memory report and
/// every snapshot by consumer lag instead of stream length.
pub fn run_checkpointed_with_sink(
    cfg: &CheckpointConfig,
    dir: impl Into<PathBuf>,
    source: impl Iterator<Item = SpatialObject>,
    tail: Tail,
    sink: &mut dyn AnswerSink<Vec<RegionAnswer>>,
) -> Result<CheckpointReport, CheckpointError> {
    run_checkpointed_inner(
        cfg,
        dir,
        source,
        tail,
        Box::new(FsStore),
        sink,
        &Observe::off(),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_checkpointed_inner(
    cfg: &CheckpointConfig,
    dir: impl Into<PathBuf>,
    source: impl Iterator<Item = SpatialObject>,
    tail: Tail,
    store: Box<dyn BlobStore>,
    sink: &mut dyn AnswerSink<Vec<RegionAnswer>>,
    obs: &Observe,
) -> Result<CheckpointReport, CheckpointError> {
    check_cfg(cfg)?;
    let dir = CheckpointDir::create(dir)?;
    let has_wal = std::fs::read_dir(dir.wal_dir())
        .map(|mut d| d.next().is_some())
        .unwrap_or(false);
    if dir.latest_snapshot()?.is_some() || has_wal {
        return Err(CheckpointError::Config(
            "directory already holds checkpoint state; use recover() to resume".into(),
        ));
    }
    let wal = WalWriter::open_with_store(dir.wal_dir(), 0, cfg.policy.wal_segment_objects, store)?;
    let runner = Runner {
        cfg: *cfg,
        dir,
        detector: SpecDetector::build(&cfg.spec, cfg.query)?,
        engine: SlidingWindowEngine::new(cfg.windows),
        wal,
        batch: EventBatch::new(),
        answers: AnswerLog::new(),
        sink,
        objects: 0,
        slides: 0,
        events: 0,
        in_slide: 0,
        snapshot_seq: 0,
        snapshots_written: 0,
        wal_appends: 0,
        pause: LatencyHistogram::new(),
        slide_t0: Instant::now(),
        probes: RunnerProbes::new(obs),
    };
    runner.run(source, tail, None, 0, 0)
}

/// Recovers a checkpointed run from `dir` and resumes it over `source`.
///
/// `source` is the **full** replayable stream (the same iterator a fresh
/// run would get): recovery skips the prefix already covered by durable
/// state — snapshot plus WAL tail — and processes the rest, so a torn WAL
/// tail costs replay work, never correctness. The sequence
/// `restored answers + replayed answers + live answers` is bit-identical
/// to the uninterrupted run's.
///
/// When no valid snapshot exists (crash before the first snapshot, or
/// every snapshot corrupt) the run restarts from logical zero, still
/// honoring the WAL tail. Corrupt snapshots are skipped newest-first;
/// `cfg` must match the on-disk spec when a snapshot is found.
pub fn recover(
    cfg: &CheckpointConfig,
    dir: impl Into<PathBuf>,
    source: impl Iterator<Item = SpatialObject>,
    tail: Tail,
) -> Result<CheckpointReport, CheckpointError> {
    recover_with_sink(cfg, dir, source, tail, &mut RetainAll)
}

/// [`recover`] with a consumer [`AnswerSink`]. Flushes replayed from the
/// WAL tail are re-delivered (at-least-once semantics across a crash);
/// answers the snapshot recorded as released stay released.
pub fn recover_with_sink(
    cfg: &CheckpointConfig,
    dir: impl Into<PathBuf>,
    source: impl Iterator<Item = SpatialObject>,
    tail: Tail,
    sink: &mut dyn AnswerSink<Vec<RegionAnswer>>,
) -> Result<CheckpointReport, CheckpointError> {
    check_cfg(cfg)?;
    let dir = CheckpointDir::create(dir)?;
    let snapshot = dir.latest_snapshot()?;
    let wal_rec = Wal::recover(dir.wal_dir())?;

    let mut detector = SpecDetector::build(&cfg.spec, cfg.query)?;
    let mut engine = SlidingWindowEngine::new(cfg.windows);
    let mut answers = AnswerLog::new();
    let mut objects = 0u64;
    let mut slides = 0u64;
    let mut snapshot_seq = 0u64;
    let mut resumed_at = None;

    if let Some((_, state)) = snapshot {
        if state.spec != cfg.spec {
            return Err(CheckpointError::Config(format!(
                "snapshot spec {:?} does not match configured spec {:?}",
                state.spec, cfg.spec
            )));
        }
        if state.query != cfg.query {
            return Err(CheckpointError::Config(
                "snapshot query does not match the configured query".into(),
            ));
        }
        if state.meta.slide_objects != cfg.slide_objects as u64 {
            return Err(CheckpointError::Config(format!(
                "snapshot slide size {} does not match configured {}",
                state.meta.slide_objects, cfg.slide_objects
            )));
        }
        if state.engine.windows != cfg.windows {
            return Err(CheckpointError::Config(format!(
                "snapshot window config {:?} does not match configured {:?}",
                state.engine.windows, cfg.windows
            )));
        }
        detector.restore(&state.detector)?;
        // A resharded mesh resumes at its live width, mid-streak: the
        // restored cells are re-homed under the snapshot's shard count and
        // the balancer continues exactly where the crashed run left it.
        if let Some(mesh) = &state.mesh {
            detector.apply_mesh(mesh)?;
        }
        engine = SlidingWindowEngine::from_state(&state.engine)?;
        answers = AnswerLog::from_parts(state.answers_released, state.answers);
        objects = state.meta.objects_ingested;
        slides = state.meta.slides_done;
        snapshot_seq = state.meta.snapshot_seq;
        resumed_at = Some(state.meta.objects_ingested);
    }

    // The WAL tail: durable records the snapshot does not cover.
    if wal_rec.start_index > objects && !wal_rec.objects.is_empty() {
        return Err(CheckpointError::Config(format!(
            "WAL starts at index {} but the snapshot covers only {} objects",
            wal_rec.start_index, objects
        )));
    }
    let skip = (objects - wal_rec.start_index.min(objects)) as usize;
    let tail_objects: Vec<SpatialObject> = wal_rec.objects.into_iter().skip(skip).collect();
    let replayed = tail_objects.len() as u64;

    // Resume appends in a fresh segment after everything durable.
    let wal = WalWriter::open(
        dir.wal_dir(),
        objects + replayed,
        cfg.policy.wal_segment_objects,
    )?;

    let mut runner = Runner {
        cfg: *cfg,
        dir,
        detector,
        engine,
        wal,
        batch: EventBatch::new(),
        answers,
        sink,
        objects,
        slides,
        events: 0,
        // Snapshots normally land at slide boundaries, but a terminal
        // flush can snapshot mid-slide; the slide phase is derivable
        // either way.
        in_slide: (objects % cfg.slide_objects as u64) as usize,
        snapshot_seq,
        snapshots_written: 0,
        wal_appends: 0,
        pause: LatencyHistogram::new(),
        slide_t0: Instant::now(),
        probes: RunnerProbes::new(&Observe::off()),
    };

    // Replay the WAL tail through the identical loop (not re-appended).
    for obj in tail_objects {
        runner.ingest(obj, false)?;
    }
    // Skip the source prefix the durable state already covers, then go live.
    let covered = runner.objects;
    runner.run(
        source.skip(covered as usize),
        tail,
        resumed_at,
        replayed,
        wal_rec.truncated_bytes,
    )
}
