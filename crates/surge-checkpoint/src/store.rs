//! Checkpoint directory layout: snapshot files + the WAL subdirectory.
//!
//! ```text
//! <dir>/
//!   snap-0000000001-000000002048.snap    seq 1, covers objects [0, 2048)
//!   snap-0000000002-000000004096.snap    seq 2, covers objects [0, 4096)
//!   wal/
//!     wal-000000002048.seg ...
//! ```
//!
//! Snapshot names carry `(sequence, objects_ingested)` so retention and
//! WAL garbage collection are directory listings — no manifest file to
//! keep consistent. Snapshots are written atomically
//! ([`surge_io::write_snapshot_atomic`]); [`CheckpointDir::latest_snapshot`]
//! walks newest-first and **skips corrupt files** (logging them into the
//! return value is the caller's concern; recovery must survive a bad
//! newest snapshot by falling back to the previous one).

use std::path::{Path, PathBuf};

use surge_io::{read_snapshot_from, write_snapshot_atomic, IoError, Result};

use crate::state::CheckpointState;

/// A checkpoint directory handle.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    root: PathBuf,
}

fn parse_snapshot_name(name: &str) -> Option<(u64, u64)> {
    let stem = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    let (seq, objects) = stem.split_once('-')?;
    Some((seq.parse().ok()?, objects.parse().ok()?))
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let dir = CheckpointDir { root };
        std::fs::create_dir_all(dir.wal_dir())?;
        Ok(dir)
    }

    /// The root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The WAL subdirectory.
    pub fn wal_dir(&self) -> PathBuf {
        self.root.join("wal")
    }

    /// The snapshot files as `(seq, objects_ingested, path)`, ascending by
    /// sequence.
    pub fn snapshots(&self) -> Result<Vec<(u64, u64, PathBuf)>> {
        let mut snaps = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((seq, objects)) = parse_snapshot_name(name) {
                snaps.push((seq, objects, entry.path()));
            }
        }
        snaps.sort_unstable();
        Ok(snaps)
    }

    /// Writes `state` as the next snapshot file, atomically.
    pub fn write_snapshot(&self, state: &CheckpointState) -> Result<PathBuf> {
        let path = self.root.join(format!(
            "snap-{:010}-{:012}.snap",
            state.meta.snapshot_seq, state.meta.objects_ingested
        ));
        write_snapshot_atomic(&path, &state.to_snapshot())?;
        Ok(path)
    }

    /// Loads the newest snapshot that decodes and validates cleanly,
    /// walking backwards over corrupt ones. Returns `None` when no valid
    /// snapshot exists.
    ///
    /// Only *content* failures (bad CRC, truncation, semantic corruption)
    /// demote to an older snapshot; a genuine I/O failure — permissions, a
    /// bad mount — surfaces as an error, so recovery never silently
    /// replays from zero because the disk was unreadable. A concurrently
    /// vanished file (`NotFound`) is skipped like corruption.
    pub fn latest_snapshot(&self) -> Result<Option<(PathBuf, CheckpointState)>> {
        let snaps = self.snapshots()?;
        for (_, _, path) in snaps.iter().rev() {
            let loaded =
                read_snapshot_from(path).and_then(|snap| CheckpointState::from_snapshot(&snap));
            match loaded {
                Ok(state) => return Ok(Some((path.clone(), state))),
                Err(IoError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(IoError::Io(e)) => return Err(IoError::Io(e)),
                // Corrupt snapshot: fall back to the previous one.
                Err(_) => continue,
            }
        }
        Ok(None)
    }

    /// Deletes all but the newest `keep` snapshots and returns the
    /// `objects_ingested` of the **oldest retained** snapshot — the floor
    /// below which WAL segments are no longer needed. `None` when no
    /// snapshot remains.
    pub fn retire_snapshots(&self, keep: usize) -> Result<Option<u64>> {
        let keep = keep.max(1);
        let snaps = self.snapshots()?;
        let cut = snaps.len().saturating_sub(keep);
        for (_, _, path) in &snaps[..cut] {
            std::fs::remove_file(path)?;
        }
        Ok(snaps[cut..].first().map(|(_, objects, _)| *objects))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_names_parse() {
        assert_eq!(
            parse_snapshot_name("snap-0000000007-000000002048.snap"),
            Some((7, 2048))
        );
        assert_eq!(parse_snapshot_name("snap-x.snap"), None);
        assert_eq!(parse_snapshot_name("wal-000000000000.seg"), None);
    }
}
