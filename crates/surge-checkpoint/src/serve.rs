//! The serving-registry state model and its snapshot codec.
//!
//! A [`ServeState`] is the durable form of a `surge-serve` server: every
//! ingest **lane** (a shared window engine plus its slide phase), every
//! deduped **detector group** riding that lane (query + spec + captured
//! [`surge_core::DetectorState`]), and every **subscription**'s answer
//! channel (`released` cursor + retained flushes). Restoring it rebuilds a
//! server whose subsequent answers are bit-identical to one that never
//! stopped — the multi-query extension of the single-query
//! [`CheckpointState`](crate::CheckpointState) contract, proptested in
//! `surge-serve`.
//!
//! The snapshot container reuses the `surge-io` section format with two
//! serve-specific sections ([`tags::SERVE_META`] and
//! [`tags::SERVE_REGISTRY`](crate::state::tags::SERVE_REGISTRY)), and the
//! registry section composes the exact same `put_*`/`get_*` codecs the
//! single-query sections use — engine residency, detector state and answer
//! windows serialize byte-compatibly in both worlds.

use surge_core::{DetectorState, EngineState, RegionAnswer, SurgeQuery};
use surge_io::{IoError, PayloadReader, PayloadWriter, Snapshot};

use crate::state::{
    get_answers, get_detector, get_engine, get_mesh, get_spec, inv, put_answers, put_detector,
    put_engine, put_mesh, put_spec, tags, DetectorSpec, MeshState,
};

/// Cadence and id counters of a serving registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeMeta {
    /// Objects the server has broadcast to its lanes.
    pub objects_ingested: u64,
    /// Arrivals per slide (shared by every lane).
    pub slide_objects: u64,
    /// Sweep worker threads per flush.
    pub threads: u64,
    /// The next subscription id the server will hand out.
    pub next_sub_id: u64,
    /// Monotonic snapshot sequence number.
    pub snapshot_seq: u64,
}

/// One subscription's answer channel: its ack cursor and the retained
/// (unacked) flushes.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSubState {
    /// The subscription id.
    pub id: u64,
    /// Flushes released by acks (the seq of the first retained entry).
    pub released: u64,
    /// Retained flushes, seqs `released..released + retained.len()`.
    pub retained: Vec<Vec<RegionAnswer>>,
}

/// One deduped detector group: a query + spec, the shared detector's
/// captured state, and the subscriptions fanned out from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeGroupState {
    /// The continuous query.
    pub query: SurgeQuery,
    /// The detector flavor.
    pub spec: DetectorSpec,
    /// The shared detector's logical state.
    pub detector: DetectorState,
    /// Elastic-mesh runtime state — `Some` exactly for
    /// [`DetectorSpec::Elastic`] groups, whose live shard count and
    /// balancer streak are not derivable from the detector state alone.
    pub mesh: Option<MeshState>,
    /// Window-transition events the group has consumed.
    pub events: u64,
    /// The group's subscriptions (at least one; an empty group is removed).
    pub subs: Vec<ServeSubState>,
}

/// One ingest lane: a shared window engine at a slide cadence, plus the
/// detector groups it feeds.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLaneState {
    /// Server-level object count when the lane was created (the lane only
    /// saw the stream suffix from here).
    pub start_objects: u64,
    /// Arrivals in the lane's currently open slide.
    pub in_slide: u64,
    /// Flushes the lane has executed.
    pub slides: u64,
    /// Engine shard-lane count (1 = monolithic emission order, which every
    /// count reproduces bit-identically).
    pub lane_count: u64,
    /// The router region `(width, height)` the sharded engine was built
    /// with — needed to rebuild the identical lane assignment.
    pub region: (f64, f64),
    /// Merged window-engine residency (the monolithic-equivalent state).
    pub engine: EngineState,
    /// Detector groups fed by this lane, in registration order.
    pub groups: Vec<ServeGroupState>,
}

/// The complete logical state of a serving registry.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeState {
    /// Cadence + id counters.
    pub meta: ServeMeta,
    /// Ingest lanes in creation order.
    pub lanes: Vec<ServeLaneState>,
}

fn encode_serve_meta(m: &ServeMeta) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(m.objects_ingested);
    w.u64(m.slide_objects);
    w.u64(m.threads);
    w.u64(m.next_sub_id);
    w.u64(m.snapshot_seq);
    w.finish()
}

fn decode_serve_meta(buf: &[u8]) -> Result<ServeMeta, IoError> {
    let mut r = PayloadReader::new(buf);
    let m = ServeMeta {
        objects_ingested: r.u64("serve.objects_ingested")?,
        slide_objects: r.u64("serve.slide_objects")?,
        threads: r.u64("serve.threads")?,
        next_sub_id: r.u64("serve.next_sub_id")?,
        snapshot_seq: r.u64("serve.snapshot_seq")?,
    };
    if m.slide_objects == 0 {
        return Err(inv("serve meta: slide_objects must be positive"));
    }
    r.expect_exhausted("serve meta")?;
    Ok(m)
}

fn encode_registry(lanes: &[ServeLaneState]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(lanes.len() as u64);
    for lane in lanes {
        w.u64(lane.start_objects);
        w.u64(lane.in_slide);
        w.u64(lane.slides);
        w.u64(lane.lane_count);
        w.f64(lane.region.0);
        w.f64(lane.region.1);
        put_engine(&mut w, &lane.engine);
        w.u64(lane.groups.len() as u64);
        for g in &lane.groups {
            put_spec(&mut w, &g.query, &g.spec);
            put_detector(&mut w, &g.detector);
            put_mesh(&mut w, g.mesh.as_ref());
            w.u64(g.events);
            w.u64(g.subs.len() as u64);
            for sub in &g.subs {
                w.u64(sub.id);
                put_answers(&mut w, sub.released, &sub.retained);
            }
        }
    }
    w.finish()
}

fn decode_registry(buf: &[u8]) -> Result<Vec<ServeLaneState>, IoError> {
    let mut r = PayloadReader::new(buf);
    let n_lanes = r.u64("serve.lanes")?;
    let mut lanes = Vec::with_capacity(n_lanes.min(1 << 16) as usize);
    for _ in 0..n_lanes {
        let start_objects = r.u64("lane.start_objects")?;
        let in_slide = r.u64("lane.in_slide")?;
        let slides = r.u64("lane.slides")?;
        let lane_count = r.u64("lane.lane_count")?;
        if lane_count == 0 {
            return Err(inv("serve lane: lane_count must be positive"));
        }
        let region = (r.f64("lane.region.w")?, r.f64("lane.region.h")?);
        if !(region.0 > 0.0 && region.0.is_finite() && region.1 > 0.0 && region.1.is_finite()) {
            return Err(inv("serve lane: router region must be positive and finite"));
        }
        let engine = get_engine(&mut r)?;
        let n_groups = r.u64("lane.groups")?;
        let mut groups = Vec::with_capacity(n_groups.min(1 << 16) as usize);
        for _ in 0..n_groups {
            let (query, spec) = get_spec(&mut r)?;
            if spec == DetectorSpec::Serve {
                return Err(inv("serve group: nested Serve spec"));
            }
            let detector = get_detector(&mut r)?;
            let mesh = get_mesh(&mut r)?;
            if mesh.is_some() != matches!(spec, DetectorSpec::Elastic { .. }) {
                return Err(inv(
                    "serve group: MESH state present iff the spec is Elastic — mismatch",
                ));
            }
            let events = r.u64("group.events")?;
            let n_subs = r.u64("group.subs")?;
            if n_subs == 0 {
                return Err(inv("serve group: a group must have subscribers"));
            }
            let mut subs = Vec::with_capacity(n_subs.min(1 << 16) as usize);
            for _ in 0..n_subs {
                let id = r.u64("sub.id")?;
                let (released, retained) = get_answers(&mut r, &query)?;
                subs.push(ServeSubState {
                    id,
                    released,
                    retained,
                });
            }
            groups.push(ServeGroupState {
                query,
                spec,
                detector,
                mesh,
                events,
                subs,
            });
        }
        lanes.push(ServeLaneState {
            start_objects,
            in_slide,
            slides,
            lane_count,
            region,
            engine,
            groups,
        });
    }
    r.expect_exhausted("serve registry")?;
    Ok(lanes)
}

impl ServeState {
    /// Serializes into the snapshot section container. The SPEC section of
    /// a serve snapshot is the [`DetectorSpec::Serve`] marker, so a reader
    /// can tell a registry snapshot from a single-query one before
    /// touching the serve sections.
    pub fn to_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new();
        s.push_section(tags::SERVE_META, encode_serve_meta(&self.meta));
        s.push_section(tags::SERVE_REGISTRY, encode_registry(&self.lanes));
        s
    }

    /// Decodes from a snapshot container, validating every section.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, IoError> {
        let section = |tag: u32, name: &str| {
            snap.section(tag)
                .ok_or_else(|| inv(format!("snapshot is missing the {name} section")))
        };
        let meta = decode_serve_meta(section(tags::SERVE_META, "SERVE_META")?)?;
        let lanes = decode_registry(section(tags::SERVE_REGISTRY, "SERVE_REGISTRY")?)?;
        for lane in &lanes {
            if lane.in_slide >= meta.slide_objects {
                return Err(inv(format!(
                    "serve lane: in_slide {} not below slide_objects {}",
                    lane.in_slide, meta.slide_objects
                )));
            }
        }
        Ok(ServeState { meta, lanes })
    }
}
