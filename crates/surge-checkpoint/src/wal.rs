//! The segmented write-ahead log of raw ingested objects.
//!
//! Every arrival is appended to the WAL *before* it enters the window
//! engine, so the stream between the newest snapshot and a crash can be
//! replayed deterministically. The log is a directory of segment files:
//!
//! ```text
//! wal-000000000000.seg        objects [0, 4096)
//! wal-000000004096.seg        objects [4096, 8192)
//! wal-000000008192.seg        objects [8192, ...)   ← active tail
//! ```
//!
//! Segment layout (little-endian):
//!
//! ```text
//! magic       : 8 bytes = b"SURGWAL1"
//! first_index : u64      global index of the segment's first record
//! records     : × { len: u32 = 40, payload: 40-byte object record,
//!                   crc: u32 = CRC-32(payload) }
//! ```
//!
//! The 40-byte payload is exactly `surge-io`'s binary object record
//! ([`surge_io::encode_record`]); the CRC framing is
//! [`surge_io::frame_record`]. Segments are named by their first index so
//! garbage collection — dropping segments fully covered by the oldest
//! retained snapshot — is a directory listing, no index file.
//!
//! # Torn tails
//!
//! A crash can end the active segment mid-record. [`Wal::recover`]
//! tolerates exactly that: a torn or CRC-corrupt record **at the tail of
//! the last segment** truncates the file to its last complete record (a
//! header-less last segment is removed outright). The same damage anywhere
//! else — a non-final segment, or records *after* valid ones would imply —
//! is real corruption and surfaces as a precise [`IoError`]. This is the
//! decoder contract the `surge-io` hardening tests pin down: truncation is
//! recovered or reported, never silently misread.
//!
//! # Durability
//!
//! [`WalWriter::append`] buffers; [`WalWriter::sync`] flushes to the OS and
//! [`WalWriter::sync_durable`] additionally forces the bytes to stable
//! storage (`fdatasync`). The checkpointing driver syncs at every slide
//! boundary (group commit) per its [`SyncPolicy`](crate::SyncPolicy), so a
//! hard kill loses at most the current slide's tail — and because recovery
//! resumes the *source* stream from the last durable record, a lost tail
//! costs replay work, never correctness.
//!
//! Segment files are created through a [`surge_io::BlobStore`], so tests
//! can substitute [`surge_io::FailingStore`] and probe every I/O-failure
//! point; production uses [`surge_io::FsStore`].

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use surge_core::SpatialObject;
use surge_io::{
    decode_record, encode_record, frame_record, read_framed_record, BlobFile, BlobStore,
    FramedRecord, FsStore, IoError, Result, RECORD_SIZE,
};

/// Magic bytes identifying a WAL segment.
pub const WAL_MAGIC: &[u8; 8] = b"SURGWAL1";
/// Segment header size: magic + first_index.
pub const WAL_HEADER: usize = 16;

fn segment_path(dir: &Path, first_index: u64) -> PathBuf {
    dir.join(format!("wal-{first_index:012}.seg"))
}

/// Lists the segment files in `dir` as `(first_index, path)`, ascending.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    if !dir.exists() {
        return Ok(segments);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        else {
            continue;
        };
        let first: u64 = stem
            .parse()
            .map_err(|_| IoError::Invariant(format!("unparseable WAL segment name {name:?}")))?;
        segments.push((first, entry.path()));
    }
    segments.sort_unstable();
    Ok(segments)
}

/// The write half of the log: appends framed records, rotating segments
/// every `segment_objects` appends.
pub struct WalWriter {
    dir: PathBuf,
    segment_objects: u64,
    store: Box<dyn BlobStore>,
    file: Option<BufWriter<Box<dyn BlobFile>>>,
    /// Records in the active segment.
    in_segment: u64,
    /// Global index of the next record to append.
    next_index: u64,
    /// Segments this writer opened.
    segments_opened: u64,
}

impl fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalWriter")
            .field("dir", &self.dir)
            .field("segment_objects", &self.segment_objects)
            .field("in_segment", &self.in_segment)
            .field("next_index", &self.next_index)
            .field("segments_opened", &self.segments_opened)
            .finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Opens a writer that appends starting at global index `next_index`
    /// (0 for a fresh run; the recovered count after a restart). The first
    /// append opens a new segment — recovery always seals the old tail, so
    /// a writer never extends a file it did not create.
    pub fn open(dir: impl Into<PathBuf>, next_index: u64, segment_objects: u64) -> Result<Self> {
        Self::open_with_store(dir, next_index, segment_objects, Box::new(FsStore))
    }

    /// [`WalWriter::open`] with an explicit segment-file store — the hook
    /// fault-injection tests use to make any write or sync fail.
    pub fn open_with_store(
        dir: impl Into<PathBuf>,
        next_index: u64,
        segment_objects: u64,
        store: Box<dyn BlobStore>,
    ) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(WalWriter {
            dir,
            segment_objects: segment_objects.max(1),
            store,
            file: None,
            in_segment: 0,
            next_index,
            segments_opened: 0,
        })
    }

    /// Global index the next append will get.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Segments this writer has opened.
    pub fn segments_opened(&self) -> u64 {
        self.segments_opened
    }

    fn roll(&mut self) -> Result<()> {
        if let Some(mut f) = self.file.take() {
            f.flush()?;
        }
        let path = segment_path(&self.dir, self.next_index);
        // Overwriting an existing segment named `next_index` is safe: a
        // recovered writer starts after every durable record, so a
        // colliding file can only be a torn tail recovery truncated down
        // to (at most) its header. Guarding against *accidental* reuse of
        // a live log is the driver's job (it refuses dirs with state).
        let file = self.store.create(&path)?;
        let mut out = BufWriter::new(file);
        out.write_all(WAL_MAGIC)?;
        out.write_all(&self.next_index.to_le_bytes())?;
        self.file = Some(out);
        self.in_segment = 0;
        self.segments_opened += 1;
        Ok(())
    }

    /// Appends one object, rotating the segment when full. Returns the
    /// record's global index.
    pub fn append(&mut self, object: &SpatialObject) -> Result<u64> {
        if self.file.is_none() || self.in_segment >= self.segment_objects {
            self.roll()?;
        }
        let framed = frame_record(&encode_record(object));
        self.file
            .as_mut()
            .expect("segment open")
            .write_all(&framed)?;
        self.in_segment += 1;
        let idx = self.next_index;
        self.next_index += 1;
        Ok(idx)
    }

    /// Flushes buffered records to the OS (the group-commit point).
    pub fn sync(&mut self) -> Result<()> {
        if let Some(f) = self.file.as_mut() {
            f.flush()?;
        }
        Ok(())
    }

    /// [`WalWriter::sync`] plus `fdatasync`: the bytes survive power loss,
    /// not just a process kill. Used by the stricter
    /// [`SyncPolicy`](crate::SyncPolicy) tiers.
    pub fn sync_durable(&mut self) -> Result<()> {
        if let Some(f) = self.file.as_mut() {
            f.flush()?;
            f.get_mut().sync_data()?;
        }
        Ok(())
    }

    /// Deletes every segment whose records all have index `< upto` — the
    /// segments fully covered by the oldest retained snapshot. The active
    /// segment is never deleted.
    pub fn gc(&mut self, upto: u64) -> Result<u64> {
        let segments = list_segments(&self.dir)?;
        let mut removed = 0u64;
        for (i, (_first, path)) in segments.iter().enumerate() {
            // A segment's records end where the next segment starts; the
            // last listed segment is (or was) the active tail — keep it.
            let Some((next_first, _)) = segments.get(i + 1) else {
                break;
            };
            if *next_first <= upto {
                std::fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// What [`Wal::recover`] found.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecovery {
    /// Global index of `objects[0]` (0 when the log is empty).
    pub start_index: u64,
    /// Every durable object in the retained segments, in index order.
    pub objects: Vec<SpatialObject>,
    /// Bytes truncated off the last segment's torn tail (0 for a clean
    /// shutdown).
    pub truncated_bytes: u64,
    /// Segments read.
    pub segments: u64,
}

/// The read/recovery half of the log.
#[derive(Debug)]
pub struct Wal;

impl Wal {
    /// Reads every retained segment, validating headers, per-record CRCs
    /// and cross-segment contiguity. A torn tail on the **last** segment is
    /// truncated in place (see the module docs); damage anywhere else is an
    /// error.
    pub fn recover(dir: impl AsRef<Path>) -> Result<WalRecovery> {
        let dir = dir.as_ref();
        let segments = list_segments(dir)?;
        let mut objects: Vec<SpatialObject> = Vec::new();
        let mut start_index = 0u64;
        let mut truncated = 0u64;
        let mut expected_next: Option<u64> = None;
        let count = segments.len();
        for (i, (first, path)) in segments.iter().enumerate() {
            let last = i + 1 == count;
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            if bytes.len() < WAL_HEADER || &bytes[..8] != WAL_MAGIC {
                if last {
                    // A crash before the tail segment's header completed:
                    // the whole file is a torn tail.
                    truncated += bytes.len() as u64;
                    std::fs::remove_file(path)?;
                    continue;
                }
                return Err(IoError::Invariant(format!(
                    "WAL segment {path:?} has a corrupt header and is not the tail"
                )));
            }
            let header_first =
                u64::from_le_bytes(bytes[8..WAL_HEADER].try_into().expect("8 bytes"));
            if header_first != *first {
                return Err(IoError::Invariant(format!(
                    "WAL segment {path:?} header says first index {header_first}, name says {first}"
                )));
            }
            if let Some(expected) = expected_next {
                if *first != expected {
                    return Err(IoError::Invariant(format!(
                        "WAL gap: segment {path:?} starts at {first}, expected {expected}"
                    )));
                }
            } else {
                start_index = *first;
            }
            let mut off = WAL_HEADER;
            let mut index = *first;
            loop {
                match read_framed_record(&bytes, &mut off) {
                    FramedRecord::End => break,
                    FramedRecord::Complete(payload) => {
                        if payload.len() != RECORD_SIZE {
                            return Err(IoError::Invariant(format!(
                                "WAL record {index} has {} payload bytes, expected {RECORD_SIZE}",
                                payload.len()
                            )));
                        }
                        let rec: &[u8; RECORD_SIZE] = payload.try_into().expect("length checked");
                        objects.push(decode_record(rec, index)?);
                        index += 1;
                    }
                    FramedRecord::Torn { at } => {
                        if !last {
                            return Err(IoError::Invariant(format!(
                                "WAL segment {path:?} is torn at byte {at} but is not the tail"
                            )));
                        }
                        truncated += (bytes.len() - at) as u64;
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(at as u64)?;
                        f.sync_all()?;
                        break;
                    }
                }
            }
            expected_next = Some(index);
        }
        // Timestamp monotonicity across the whole recovered stream.
        for pair in objects.windows(2) {
            if pair[0].created > pair[1].created {
                return Err(IoError::Invariant(format!(
                    "WAL objects out of timestamp order: {} after {}",
                    pair[1].created, pair[0].created
                )));
            }
        }
        Ok(WalRecovery {
            start_index,
            objects,
            truncated_bytes: truncated,
            segments: count as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::Point;

    fn obj(id: u64, t: u64) -> SpatialObject {
        SpatialObject::new(id, 1.0 + (id % 3) as f64, Point::new(id as f64, 0.5), t)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("surge-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_rotate_recover_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut w = WalWriter::open(&dir, 0, 4).unwrap();
        let objs: Vec<_> = (0..11).map(|i| obj(i, i * 10)).collect();
        for o in &objs {
            w.append(o).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.segments_opened(), 3); // 4 + 4 + 3
        drop(w);
        let rec = Wal::recover(&dir).unwrap();
        assert_eq!(rec.start_index, 0);
        assert_eq!(rec.objects, objs);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.segments, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        // Build a log, then truncate the LAST segment at every byte offset:
        // recovery must always return a prefix of the appended objects and
        // leave the log readable again.
        let dir = temp_dir("torn");
        let objs: Vec<_> = (0..6).map(|i| obj(i, i * 10)).collect();
        {
            let mut w = WalWriter::open(&dir, 0, 4).unwrap();
            for o in &objs {
                w.append(o).unwrap();
            }
            w.sync().unwrap();
        }
        let tail = segment_path(&dir, 4);
        let full = std::fs::read(&tail).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&tail, &full[..cut]).unwrap();
            let rec = Wal::recover(&dir).unwrap();
            assert!(rec.objects.len() >= 4, "first segment intact at cut {cut}");
            assert_eq!(
                rec.objects[..],
                objs[..rec.objects.len()],
                "prefix property at cut {cut}"
            );
            // Recovery after recovery is clean (idempotent truncation).
            let again = Wal::recover(&dir).unwrap();
            assert_eq!(again.objects, rec.objects);
            assert_eq!(again.truncated_bytes, 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_in_tail_is_truncated_there() {
        let dir = temp_dir("flip");
        let objs: Vec<_> = (0..4).map(|i| obj(i, i * 10)).collect();
        {
            let mut w = WalWriter::open(&dir, 0, 100).unwrap();
            for o in &objs {
                w.append(o).unwrap();
            }
            w.sync().unwrap();
        }
        let path = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit in the third record.
        let rec_size = 4 + RECORD_SIZE + 4;
        bytes[WAL_HEADER + 2 * rec_size + 10] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let rec = Wal::recover(&dir).unwrap();
        assert_eq!(rec.objects, objs[..2]);
        assert!(rec.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_in_a_non_tail_segment_is_an_error() {
        let dir = temp_dir("midcorrupt");
        {
            let mut w = WalWriter::open(&dir, 0, 2).unwrap();
            for i in 0..6 {
                w.append(&obj(i, i * 10)).unwrap();
            }
            w.sync().unwrap();
        }
        let first = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&first).unwrap();
        let n = bytes.len();
        bytes.truncate(n - 3);
        std::fs::write(&first, &bytes).unwrap();
        assert!(matches!(Wal::recover(&dir), Err(IoError::Invariant(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_drops_covered_segments_only() {
        let dir = temp_dir("gc");
        let mut w = WalWriter::open(&dir, 0, 2).unwrap();
        for i in 0..7 {
            w.append(&obj(i, i * 10)).unwrap();
        }
        w.sync().unwrap();
        // Segments: [0,2) [2,4) [4,6) [6,..). A snapshot at index 5 covers
        // the first two entirely, not the third.
        let removed = w.gc(5).unwrap();
        assert_eq!(removed, 2);
        let rec = Wal::recover(&dir).unwrap();
        assert_eq!(rec.start_index, 4);
        assert_eq!(rec.objects.len(), 3);
        assert_eq!(rec.objects[0].id, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_resumes_after_recovery_with_a_fresh_segment() {
        let dir = temp_dir("resume");
        {
            let mut w = WalWriter::open(&dir, 0, 100).unwrap();
            for i in 0..5 {
                w.append(&obj(i, i * 10)).unwrap();
            }
            w.sync().unwrap();
        }
        let rec = Wal::recover(&dir).unwrap();
        assert_eq!(rec.objects.len(), 5);
        let mut w = WalWriter::open(&dir, 5, 100).unwrap();
        for i in 5..8 {
            assert_eq!(w.append(&obj(i, i * 10)).unwrap(), i);
        }
        w.sync().unwrap();
        let rec = Wal::recover(&dir).unwrap();
        assert_eq!(rec.objects.len(), 8);
        assert_eq!(rec.segments, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gap_between_segments_is_an_error() {
        let dir = temp_dir("gap");
        {
            let mut w = WalWriter::open(&dir, 0, 2).unwrap();
            for i in 0..6 {
                w.append(&obj(i, i * 10)).unwrap();
            }
            w.sync().unwrap();
        }
        std::fs::remove_file(segment_path(&dir, 2)).unwrap();
        assert!(matches!(Wal::recover(&dir), Err(IoError::Invariant(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_durable_persists_the_tail() {
        let dir = temp_dir("durable");
        let mut w = WalWriter::open(&dir, 0, 8).unwrap();
        for i in 0..3 {
            w.append(&obj(i, i * 10)).unwrap();
        }
        w.sync_durable().unwrap();
        let rec = Wal::recover(&dir).unwrap();
        assert_eq!(rec.objects.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_failure_surfaces_and_log_stays_recoverable() {
        use surge_io::{FailingStore, FaultPlan};
        let dir = temp_dir("inject");
        let store = FailingStore::new(FaultPlan::new().fail_after_writes(6));
        let mut w = WalWriter::open_with_store(&dir, 0, 2, Box::new(store)).unwrap();
        let mut failed = false;
        for i in 0..40 {
            // Appends buffer, so the injected failure may surface at a
            // roll or at sync — either way it must be IoError::Io.
            let r = w.append(&obj(i, i * 10)).and_then(|_| w.sync());
            match r {
                Ok(()) => {}
                Err(IoError::Io(_)) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error kind: {e:?}"),
            }
        }
        assert!(failed, "fault plan must trigger");
        drop(w);
        // Whatever made it to disk recovers as a clean prefix.
        let rec = Wal::recover(&dir).unwrap();
        for (i, o) in rec.objects.iter().enumerate() {
            assert_eq!(o.id, rec.start_index + i as u64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_log_recovers_empty() {
        let dir = temp_dir("empty");
        let rec = Wal::recover(&dir).unwrap();
        assert!(rec.objects.is_empty());
        assert_eq!(rec.segments, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
