//! The checkpoint state model and its snapshot-section codec.
//!
//! A [`CheckpointState`] is everything a process needs to resume a
//! checkpointed run **bit-identically**: the run configuration
//! ([`DetectorSpec`] + query + cadence), the window-engine residency
//! ([`surge_core::EngineState`]), the detector's logical state
//! ([`surge_core::DetectorState`]), and the per-slide answers produced so
//! far. It serializes into the `surge-io` snapshot container
//! ([`surge_io::Snapshot`]): one length-prefixed section per concern, CRC
//! footer, atomic write-then-rename.
//!
//! The codec is hand-rolled little-endian framing (the offline build has no
//! serde); floats travel as IEEE-754 bits so a decode→encode cycle is
//! byte-identical — `tests/snapshot_format.rs` proptests that, plus precise
//! [`IoError`]s for every truncation and corruption.

use surge_core::{
    CandidateState, CellState, ControllerState, DetectorState, DetectorStats, EngineState,
    GridCellState, Point, Rect, RectState, RegionAnswer, SpatialObject, SurgeQuery, WindowConfig,
    WindowKind,
};
use surge_exact::{BoundMode, SweepMode};
use surge_io::{IoError, PayloadReader, PayloadWriter, Snapshot};
use surge_stream::{BalancerPolicy, SloPolicy};

/// Section tags of the checkpoint snapshot format.
pub mod tags {
    /// Run cadence and WAL position.
    pub const META: u32 = 1;
    /// Query + detector construction parameters.
    pub const SPEC: u32 = 2;
    /// Window-engine residency and clocks.
    pub const ENGINE: u32 = 3;
    /// Detector logical state.
    pub const DETECTOR: u32 = 4;
    /// Per-slide answers produced so far.
    pub const ANSWERS: u32 = 5;
    /// Serving-registry cadence and id counters (`surge-serve`).
    pub const SERVE_META: u32 = 6;
    /// The full serving registry: lanes, detector groups, subscriptions.
    pub const SERVE_REGISTRY: u32 = 7;
    /// Elastic-mesh runtime state: current shard count and balancer
    /// history. Present only for [`super::DetectorSpec::Elastic`] runs.
    pub const MESH: u32 = 8;
}

/// Which detector a checkpointed run drives, with its construction
/// parameters — enough to rebuild an empty twin at recovery time.
///
/// `Hash` (alongside `Eq`) lets the serving layer dedupe detector groups
/// on `(QueryKey, DetectorSpec)` identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorSpec {
    /// [`surge_exact::CellCspot`] (CCS / B-CCS).
    Cell {
        /// Bound mode (Combined = CCS, StaticOnly = B-CCS).
        bound: BoundMode,
        /// Per-cell sweep mode.
        sweep: SweepMode,
        /// Cell-store shard count.
        shards: usize,
    },
    /// [`surge_exact::BaseDetector`].
    Base {
        /// Whether the incumbent-pruned variant is used.
        pruned: bool,
    },
    /// [`surge_topk::KCellCspot`] (continuous top-k).
    TopK {
        /// The configured k.
        k: usize,
    },
    /// [`surge_approx::GapSurge`] (GAP-SURGE).
    Gaps {
        /// Ingest shard count (power of two).
        shards: usize,
    },
    /// [`surge_approx::MgapSurge`] (MGAP-SURGE).
    Mgaps {
        /// Ingest shard count per grid (power of two).
        shards: usize,
    },
    /// [`surge_stream::AutopilotDetector`] — the overload autopilot over
    /// the exact ⇄ MGAPS ⇄ GAPS tier lattice.
    Autopilot {
        /// Ingest shard count handed to each tier detector.
        shards: usize,
        /// The degradation SLO.
        policy: SloPolicy,
    },
    /// A multi-query serving registry (`surge-serve`): the snapshot's
    /// detector section is empty and the real state lives in the serve
    /// sections. Not constructible by the single-query driver.
    Serve,
    /// [`surge_exact::CellCspot`] under the elastic shard balancer: the
    /// checkpointed twin of `surge-stream`'s `drive_elastic`. `shards` is
    /// the *initial* count — the live count is runtime state and travels
    /// in the snapshot's MESH section, so a recovered run resumes at the
    /// resharded width while the spec equality check keeps working.
    Elastic {
        /// Bound mode (Combined = CCS, StaticOnly = B-CCS).
        bound: BoundMode,
        /// Per-cell sweep mode.
        sweep: SweepMode,
        /// Cell-store shard count the run *starts* at.
        shards: usize,
        /// When the balancer recommends doubling the mesh.
        policy: BalancerPolicy,
    },
}

/// Elastic-mesh runtime state carried in the snapshot's MESH section: the
/// live shard count plus the balancer's history, so a recovered run
/// resumes the resharded mesh mid-streak and replayed flushes re-trigger
/// the exact same split decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshState {
    /// The cell store's shard count when the snapshot was taken.
    pub shards: u64,
    /// The balancer's consecutive-skewed-flush streak.
    pub streak: u32,
    /// Splits performed so far.
    pub reshards: u32,
}

/// Run cadence and durability bookkeeping carried in every snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Objects ingested when the snapshot was taken — also the global index
    /// of the first WAL record the snapshot does **not** cover.
    pub objects_ingested: u64,
    /// Slides flushed when the snapshot was taken.
    pub slides_done: u64,
    /// Arrivals per slide.
    pub slide_objects: u64,
    /// Sweep worker threads per flush.
    pub threads: u64,
    /// Monotonic snapshot sequence number.
    pub snapshot_seq: u64,
}

/// The complete logical state of a checkpointed run.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Cadence + WAL position.
    pub meta: CheckpointMeta,
    /// Detector construction parameters.
    pub spec: DetectorSpec,
    /// The continuous query.
    pub query: SurgeQuery,
    /// Window-engine residency (includes the engine's `WindowConfig`).
    pub engine: EngineState,
    /// Detector logical state.
    pub detector: DetectorState,
    /// Flushes released by consumer acks before this snapshot — the seq of
    /// the first entry in [`answers`](Self::answers). With no acking
    /// consumer this is 0 and `answers` is the full history.
    pub answers_released: u64,
    /// Retained per-slide answers (one `Vec` per flush: 0/1 entries for
    /// single-region detectors, up to k for top-k), covering flush seqs
    /// `answers_released..answers_released + answers.len()`.
    pub answers: Vec<Vec<RegionAnswer>>,
    /// Elastic-mesh runtime state — `Some` exactly for
    /// [`DetectorSpec::Elastic`] runs (the spec records the initial shard
    /// count; this records the live one plus the balancer history).
    pub mesh: Option<MeshState>,
}

pub(crate) fn inv(msg: impl std::fmt::Display) -> IoError {
    IoError::Invariant(msg.to_string())
}

// --- scalar helpers -------------------------------------------------------

pub(crate) fn put_rect(w: &mut PayloadWriter, r: &Rect) {
    w.f64(r.x0);
    w.f64(r.y0);
    w.f64(r.x1);
    w.f64(r.y1);
}

pub(crate) fn get_rect(r: &mut PayloadReader<'_>, what: &str) -> Result<Rect, IoError> {
    let x0 = r.f64(what)?;
    let y0 = r.f64(what)?;
    let x1 = r.f64(what)?;
    let y1 = r.f64(what)?;
    if x1 < x0 || y1 < y0 || x0.is_nan() || y0.is_nan() || x1.is_nan() || y1.is_nan() {
        return Err(inv(format!("{what}: malformed rectangle")));
    }
    Ok(Rect { x0, y0, x1, y1 })
}

pub(crate) fn put_object(w: &mut PayloadWriter, o: &SpatialObject) {
    w.u64(o.id);
    w.f64(o.weight);
    w.f64(o.pos.x);
    w.f64(o.pos.y);
    w.u64(o.created);
}

pub(crate) fn get_object(r: &mut PayloadReader<'_>, what: &str) -> Result<SpatialObject, IoError> {
    let id = r.u64(what)?;
    let weight = r.f64(what)?;
    let x = r.f64(what)?;
    let y = r.f64(what)?;
    let created = r.u64(what)?;
    if !(weight >= 0.0 && weight.is_finite() && x.is_finite() && y.is_finite()) {
        return Err(inv(format!("{what}: malformed object {id}")));
    }
    Ok(SpatialObject::new(id, weight, Point::new(x, y), created))
}

pub(crate) fn put_windows(w: &mut PayloadWriter, cfg: &WindowConfig) {
    w.u64(cfg.current_len);
    w.u64(cfg.past_len);
}

pub(crate) fn get_windows(r: &mut PayloadReader<'_>, what: &str) -> Result<WindowConfig, IoError> {
    let current = r.u64(what)?;
    let past = r.u64(what)?;
    if current == 0 {
        return Err(inv(format!(
            "{what}: current window length must be positive"
        )));
    }
    Ok(WindowConfig::new(current, past))
}

fn kind_code(kind: WindowKind) -> u8 {
    match kind {
        WindowKind::Current => 0,
        WindowKind::Past => 1,
    }
}

fn code_kind(code: u8) -> Result<WindowKind, IoError> {
    match code {
        0 => Ok(WindowKind::Current),
        1 => Ok(WindowKind::Past),
        other => Err(inv(format!("unknown window-kind code {other}"))),
    }
}

// --- sections -------------------------------------------------------------

fn encode_meta(m: &CheckpointMeta) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(m.objects_ingested);
    w.u64(m.slides_done);
    w.u64(m.slide_objects);
    w.u64(m.threads);
    w.u64(m.snapshot_seq);
    w.finish()
}

fn decode_meta(buf: &[u8]) -> Result<CheckpointMeta, IoError> {
    let mut r = PayloadReader::new(buf);
    let m = CheckpointMeta {
        objects_ingested: r.u64("meta.objects_ingested")?,
        slides_done: r.u64("meta.slides_done")?,
        slide_objects: r.u64("meta.slide_objects")?,
        threads: r.u64("meta.threads")?,
        snapshot_seq: r.u64("meta.snapshot_seq")?,
    };
    if m.slide_objects == 0 {
        return Err(inv("meta: slide_objects must be positive"));
    }
    r.expect_exhausted("meta")?;
    Ok(m)
}

pub(crate) fn encode_spec(query: &SurgeQuery, spec: &DetectorSpec) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    put_spec(&mut w, query, spec);
    w.finish()
}

pub(crate) fn put_spec(w: &mut PayloadWriter, query: &SurgeQuery, spec: &DetectorSpec) {
    put_rect(w, &query.area);
    w.f64(query.region.width);
    w.f64(query.region.height);
    put_windows(w, &query.windows);
    w.f64(query.alpha);
    match spec {
        DetectorSpec::Cell {
            bound,
            sweep,
            shards,
        } => {
            w.u8(0);
            w.u8(match bound {
                BoundMode::Combined => 0,
                BoundMode::StaticOnly => 1,
            });
            w.u8(match sweep {
                SweepMode::Persistent => 0,
                SweepMode::Rebuild => 1,
            });
            w.u64(*shards as u64);
        }
        DetectorSpec::Base { pruned } => {
            w.u8(1);
            w.u8(u8::from(*pruned));
        }
        DetectorSpec::TopK { k } => {
            w.u8(2);
            w.u64(*k as u64);
        }
        DetectorSpec::Gaps { shards } => {
            w.u8(3);
            w.u64(*shards as u64);
        }
        DetectorSpec::Mgaps { shards } => {
            w.u8(4);
            w.u64(*shards as u64);
        }
        DetectorSpec::Autopilot { shards, policy } => {
            w.u8(5);
            w.u64(*shards as u64);
            w.u64(policy.slide_latency_budget_us);
            w.u64(policy.max_residents);
            w.u32(policy.degrade_after);
            w.u32(policy.upgrade_after);
            w.u32(policy.cooldown_slides);
            w.u32(policy.drain_percent);
        }
        DetectorSpec::Serve => w.u8(6),
        DetectorSpec::Elastic {
            bound,
            sweep,
            shards,
            policy,
        } => {
            w.u8(7);
            w.u8(match bound {
                BoundMode::Combined => 0,
                BoundMode::StaticOnly => 1,
            });
            w.u8(match sweep {
                SweepMode::Persistent => 0,
                SweepMode::Rebuild => 1,
            });
            w.u64(*shards as u64);
            w.u32(policy.skew_percent);
            w.u32(policy.patience);
            w.u64(policy.max_shards as u64);
            w.u64(policy.min_load);
        }
    }
}

pub(crate) fn decode_spec(buf: &[u8]) -> Result<(SurgeQuery, DetectorSpec), IoError> {
    let mut r = PayloadReader::new(buf);
    let out = get_spec(&mut r)?;
    r.expect_exhausted("spec")?;
    Ok(out)
}

pub(crate) fn get_spec(r: &mut PayloadReader<'_>) -> Result<(SurgeQuery, DetectorSpec), IoError> {
    let area = get_rect(r, "spec.area")?;
    let width = r.f64("spec.region.width")?;
    let height = r.f64("spec.region.height")?;
    if !(width > 0.0 && width.is_finite() && height > 0.0 && height.is_finite()) {
        return Err(inv("spec: region extents must be positive and finite"));
    }
    let windows = get_windows(r, "spec.windows")?;
    let alpha = r.f64("spec.alpha")?;
    if !(0.0..1.0).contains(&alpha) {
        return Err(inv(format!("spec: alpha {alpha} outside [0, 1)")));
    }
    let query = SurgeQuery::new(
        area,
        surge_core::RegionSize::new(width, height),
        windows,
        alpha,
    );
    let spec = match r.u8("spec.kind")? {
        0 => DetectorSpec::Cell {
            bound: match r.u8("spec.bound")? {
                0 => BoundMode::Combined,
                1 => BoundMode::StaticOnly,
                other => return Err(inv(format!("unknown bound-mode code {other}"))),
            },
            sweep: match r.u8("spec.sweep")? {
                0 => SweepMode::Persistent,
                1 => SweepMode::Rebuild,
                other => return Err(inv(format!("unknown sweep-mode code {other}"))),
            },
            shards: r.u64("spec.shards")? as usize,
        },
        1 => DetectorSpec::Base {
            pruned: r.u8("spec.pruned")? != 0,
        },
        2 => DetectorSpec::TopK {
            k: {
                let k = r.u64("spec.k")? as usize;
                if k == 0 {
                    return Err(inv("spec: k must be positive"));
                }
                k
            },
        },
        3 => DetectorSpec::Gaps {
            shards: r.u64("spec.shards")? as usize,
        },
        4 => DetectorSpec::Mgaps {
            shards: r.u64("spec.shards")? as usize,
        },
        5 => {
            let shards = r.u64("spec.shards")? as usize;
            let policy = SloPolicy {
                slide_latency_budget_us: r.u64("spec.policy.latency")?,
                max_residents: r.u64("spec.policy.residents")?,
                degrade_after: r.u32("spec.policy.degrade_after")?,
                upgrade_after: r.u32("spec.policy.upgrade_after")?,
                cooldown_slides: r.u32("spec.policy.cooldown")?,
                drain_percent: r.u32("spec.policy.drain")?,
            };
            if policy.drain_percent > 100 {
                return Err(inv(format!(
                    "spec: drain_percent {} above 100",
                    policy.drain_percent
                )));
            }
            if policy.degrade_after == 0 || policy.upgrade_after == 0 {
                return Err(inv("spec: degrade/upgrade streaks must be positive"));
            }
            DetectorSpec::Autopilot { shards, policy }
        }
        6 => DetectorSpec::Serve,
        7 => {
            let bound = match r.u8("spec.bound")? {
                0 => BoundMode::Combined,
                1 => BoundMode::StaticOnly,
                other => return Err(inv(format!("unknown bound-mode code {other}"))),
            };
            let sweep = match r.u8("spec.sweep")? {
                0 => SweepMode::Persistent,
                1 => SweepMode::Rebuild,
                other => return Err(inv(format!("unknown sweep-mode code {other}"))),
            };
            let shards = r.u64("spec.shards")? as usize;
            let policy = BalancerPolicy {
                skew_percent: r.u32("spec.policy.skew_percent")?,
                patience: r.u32("spec.policy.patience")?,
                max_shards: r.u64("spec.policy.max_shards")? as usize,
                min_load: r.u64("spec.policy.min_load")?,
            };
            if policy.max_shards == 0 {
                return Err(inv("spec: balancer max_shards must be positive"));
            }
            DetectorSpec::Elastic {
                bound,
                sweep,
                shards,
                policy,
            }
        }
        other => return Err(inv(format!("unknown detector-spec code {other}"))),
    };
    Ok((query, spec))
}

pub(crate) fn encode_engine(e: &EngineState) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    put_engine(&mut w, e);
    w.finish()
}

pub(crate) fn put_engine(w: &mut PayloadWriter, e: &EngineState) {
    put_windows(w, &e.windows);
    w.u64(e.now);
    w.u64(e.last_created);
    w.u8(u8::from(e.started));
    match e.last_arrival {
        Some((t, id)) => {
            w.u8(1);
            w.u64(t);
            w.u64(id);
        }
        None => w.u8(0),
    }
    for objs in [&e.current, &e.past] {
        w.u64(objs.len() as u64);
        for o in objs {
            put_object(w, o);
        }
    }
}

pub(crate) fn decode_engine(buf: &[u8]) -> Result<EngineState, IoError> {
    let mut r = PayloadReader::new(buf);
    let engine = get_engine(&mut r)?;
    r.expect_exhausted("engine")?;
    Ok(engine)
}

pub(crate) fn get_engine(r: &mut PayloadReader<'_>) -> Result<EngineState, IoError> {
    let windows = get_windows(r, "engine.windows")?;
    let now = r.u64("engine.now")?;
    let last_created = r.u64("engine.last_created")?;
    let started = r.u8("engine.started")? != 0;
    let last_arrival = match r.u8("engine.last_arrival")? {
        0 => None,
        1 => Some((
            r.u64("engine.last_arrival.t")?,
            r.u64("engine.last_arrival.id")?,
        )),
        other => return Err(inv(format!("bad last_arrival flag {other}"))),
    };
    let mut lists = Vec::with_capacity(2);
    for what in ["engine.current", "engine.past"] {
        let n = r.u64(what)?;
        let mut objs = Vec::with_capacity(n.min(1 << 24) as usize);
        for _ in 0..n {
            objs.push(get_object(r, what)?);
        }
        lists.push(objs);
    }
    let past = lists.pop().expect("two lists");
    let current = lists.pop().expect("two lists");
    Ok(EngineState {
        windows,
        now,
        last_created,
        started,
        last_arrival,
        current,
        past,
    })
}

fn put_rect_state(w: &mut PayloadWriter, r: &RectState) {
    w.u64(r.id);
    put_rect(w, &r.rect);
    w.f64(r.weight);
    w.u8(kind_code(r.kind));
    w.u32(r.level);
}

fn get_rect_state(r: &mut PayloadReader<'_>, what: &str) -> Result<RectState, IoError> {
    Ok(RectState {
        id: r.u64(what)?,
        rect: get_rect(r, what)?,
        weight: r.f64(what)?,
        kind: code_kind(r.u8(what)?)?,
        level: r.u32(what)?,
    })
}

fn put_cand(w: &mut PayloadWriter, c: &CandidateState) {
    match c {
        CandidateState::Stale => w.u8(0),
        CandidateState::Valid { point, wc, wp } => {
            w.u8(1);
            w.f64(point.x);
            w.f64(point.y);
            w.f64(*wc);
            w.f64(*wp);
        }
        CandidateState::Infeasible => w.u8(2),
        CandidateState::Absent => w.u8(3),
    }
}

fn get_cand(r: &mut PayloadReader<'_>, what: &str) -> Result<CandidateState, IoError> {
    match r.u8(what)? {
        0 => Ok(CandidateState::Stale),
        1 => Ok(CandidateState::Valid {
            point: Point::new(r.f64(what)?, r.f64(what)?),
            wc: r.f64(what)?,
            wp: r.f64(what)?,
        }),
        2 => Ok(CandidateState::Infeasible),
        3 => Ok(CandidateState::Absent),
        other => Err(inv(format!("{what}: unknown candidate code {other}"))),
    }
}

pub(crate) fn encode_detector(d: &DetectorState) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    put_detector(&mut w, d);
    w.finish()
}

pub(crate) fn put_detector(w: &mut PayloadWriter, d: &DetectorState) {
    w.str(&d.name);
    w.u32(d.levels);
    w.u64(d.stats.events);
    w.u64(d.stats.new_events);
    w.u64(d.stats.searches);
    w.u64(d.stats.events_triggering_search);
    w.u64(d.rects.len() as u64);
    for r in &d.rects {
        put_rect_state(w, r);
    }
    w.u64(d.cells.len() as u64);
    for c in &d.cells {
        w.i64(c.id.0);
        w.i64(c.id.1);
        w.u64(c.rects.len() as u64);
        for r in &c.rects {
            put_rect_state(w, r);
        }
        for floats in [&c.us, &c.ud] {
            w.u64(floats.len() as u64);
            for &f in floats.iter() {
                w.f64(f);
            }
        }
        w.u64(c.cand.len() as u64);
        for cand in &c.cand {
            put_cand(w, cand);
        }
    }
    w.u64(d.incumbents.len() as u64);
    for inc in &d.incumbents {
        match inc {
            Some((p, s)) => {
                w.u8(1);
                w.f64(p.x);
                w.f64(p.y);
                w.f64(*s);
            }
            None => w.u8(0),
        }
    }
    w.u64(d.grid_cells.len() as u64);
    for g in &d.grid_cells {
        w.u32(g.grid);
        w.i64(g.id.0);
        w.i64(g.id.1);
        w.f64(g.wc);
        w.f64(g.wp);
        w.u32(g.count);
    }
    match &d.controller {
        Some(c) => {
            w.u8(1);
            w.u8(c.tier);
            w.u32(c.over);
            w.u32(c.under);
            w.u32(c.cooldown);
            w.u64(c.transitions);
            for &s in &c.slides_in_tier {
                w.u64(s);
            }
            w.u64(c.base_stats.events);
            w.u64(c.base_stats.new_events);
            w.u64(c.base_stats.searches);
            w.u64(c.base_stats.events_triggering_search);
        }
        None => w.u8(0),
    }
}

pub(crate) fn decode_detector(buf: &[u8]) -> Result<DetectorState, IoError> {
    let mut r = PayloadReader::new(buf);
    let detector = get_detector(&mut r)?;
    r.expect_exhausted("detector")?;
    Ok(detector)
}

pub(crate) fn get_detector(r: &mut PayloadReader<'_>) -> Result<DetectorState, IoError> {
    let name = r.str("detector.name")?;
    let levels = r.u32("detector.levels")?;
    let stats = DetectorStats {
        events: r.u64("detector.stats")?,
        new_events: r.u64("detector.stats")?,
        searches: r.u64("detector.stats")?,
        events_triggering_search: r.u64("detector.stats")?,
    };
    let n_rects = r.u64("detector.rects")?;
    let mut rects = Vec::with_capacity(n_rects.min(1 << 24) as usize);
    for _ in 0..n_rects {
        rects.push(get_rect_state(r, "detector.rect")?);
    }
    let n_cells = r.u64("detector.cells")?;
    let mut cells = Vec::with_capacity(n_cells.min(1 << 24) as usize);
    for _ in 0..n_cells {
        let id = (r.i64("cell.id")?, r.i64("cell.id")?);
        let n = r.u64("cell.rects")?;
        let mut cr = Vec::with_capacity(n.min(1 << 24) as usize);
        for _ in 0..n {
            cr.push(get_rect_state(r, "cell.rect")?);
        }
        let mut floats = Vec::with_capacity(2);
        for what in ["cell.us", "cell.ud"] {
            let n = r.u64(what)?;
            let mut v = Vec::with_capacity(n.min(1 << 20) as usize);
            for _ in 0..n {
                v.push(r.f64(what)?);
            }
            floats.push(v);
        }
        let ud = floats.pop().expect("two");
        let us = floats.pop().expect("two");
        let n = r.u64("cell.cand")?;
        let mut cand = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            cand.push(get_cand(r, "cell.cand")?);
        }
        cells.push(CellState {
            id,
            rects: cr,
            us,
            ud,
            cand,
        });
    }
    let n_inc = r.u64("detector.incumbents")?;
    let mut incumbents = Vec::with_capacity(n_inc.min(1 << 20) as usize);
    for _ in 0..n_inc {
        incumbents.push(match r.u8("incumbent")? {
            0 => None,
            1 => Some((
                Point::new(r.f64("incumbent")?, r.f64("incumbent")?),
                r.f64("incumbent")?,
            )),
            other => return Err(inv(format!("bad incumbent flag {other}"))),
        });
    }
    let n_grid = r.u64("detector.grid_cells")?;
    let mut grid_cells = Vec::with_capacity(n_grid.min(1 << 24) as usize);
    for _ in 0..n_grid {
        let grid = r.u32("grid_cell.grid")?;
        let id = (r.i64("grid_cell.id")?, r.i64("grid_cell.id")?);
        let wc = r.f64("grid_cell.wc")?;
        let wp = r.f64("grid_cell.wp")?;
        let count = r.u32("grid_cell.count")?;
        if !(wc.is_finite() && wp.is_finite()) {
            return Err(inv(format!("grid cell {id:?}: non-finite weights")));
        }
        if count == 0 {
            return Err(inv(format!("grid cell {id:?}: zero resident count")));
        }
        grid_cells.push(GridCellState {
            grid,
            id,
            wc,
            wp,
            count,
        });
    }
    let controller = match r.u8("detector.controller")? {
        0 => None,
        1 => {
            let tier = r.u8("controller.tier")?;
            if tier > 2 {
                return Err(inv(format!("controller: unknown tier code {tier}")));
            }
            let over = r.u32("controller.over")?;
            let under = r.u32("controller.under")?;
            let cooldown = r.u32("controller.cooldown")?;
            let transitions = r.u64("controller.transitions")?;
            let mut slides_in_tier = [0u64; 3];
            for s in &mut slides_in_tier {
                *s = r.u64("controller.slides_in_tier")?;
            }
            let base_stats = DetectorStats {
                events: r.u64("controller.base_stats")?,
                new_events: r.u64("controller.base_stats")?,
                searches: r.u64("controller.base_stats")?,
                events_triggering_search: r.u64("controller.base_stats")?,
            };
            Some(ControllerState {
                tier,
                over,
                under,
                cooldown,
                transitions,
                slides_in_tier,
                base_stats,
            })
        }
        other => return Err(inv(format!("bad controller flag {other}"))),
    };
    Ok(DetectorState {
        name,
        levels,
        cells,
        rects,
        incumbents,
        grid_cells,
        controller,
        stats,
    })
}

pub(crate) fn encode_answers(released: u64, answers: &[Vec<RegionAnswer>]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    put_answers(&mut w, released, answers);
    w.finish()
}

pub(crate) fn put_answers(w: &mut PayloadWriter, released: u64, answers: &[Vec<RegionAnswer>]) {
    w.u64(released);
    w.u64(answers.len() as u64);
    for flush in answers {
        w.u64(flush.len() as u64);
        for a in flush {
            w.f64(a.point.x);
            w.f64(a.point.y);
            w.f64(a.score);
        }
    }
}

pub(crate) fn decode_answers(
    buf: &[u8],
    query: &SurgeQuery,
) -> Result<(u64, Vec<Vec<RegionAnswer>>), IoError> {
    let mut r = PayloadReader::new(buf);
    let out = get_answers(&mut r, query)?;
    r.expect_exhausted("answers")?;
    Ok(out)
}

pub(crate) fn get_answers(
    r: &mut PayloadReader<'_>,
    query: &SurgeQuery,
) -> Result<(u64, Vec<Vec<RegionAnswer>>), IoError> {
    let released = r.u64("answers.released")?;
    let n = r.u64("answers")?;
    let mut answers = Vec::with_capacity(n.min(1 << 24) as usize);
    for _ in 0..n {
        let m = r.u64("answers.flush")?;
        let mut flush = Vec::with_capacity(m.min(1 << 16) as usize);
        for _ in 0..m {
            let p = Point::new(r.f64("answer")?, r.f64("answer")?);
            let score = r.f64("answer")?;
            // Every driver reports `RegionAnswer::from_point` answers, so
            // the region reconstructs bit-exactly from the point.
            flush.push(RegionAnswer::from_point(p, query.region, score));
        }
        answers.push(flush);
    }
    Ok((released, answers))
}

/// Inline (presence-flagged) mesh codec for registry payloads, where a
/// [`MeshState`] rides per detector group rather than as its own section.
pub(crate) fn put_mesh(w: &mut PayloadWriter, mesh: Option<&MeshState>) {
    match mesh {
        Some(m) => {
            w.u8(1);
            w.u64(m.shards);
            w.u32(m.streak);
            w.u32(m.reshards);
        }
        None => w.u8(0),
    }
}

pub(crate) fn get_mesh(r: &mut PayloadReader<'_>) -> Result<Option<MeshState>, IoError> {
    match r.u8("mesh.present")? {
        0 => Ok(None),
        1 => {
            let shards = r.u64("mesh.shards")?;
            let streak = r.u32("mesh.streak")?;
            let reshards = r.u32("mesh.reshards")?;
            if shards == 0 || !shards.is_power_of_two() {
                return Err(inv(format!(
                    "mesh: shard count {shards} is not a positive power of two"
                )));
            }
            Ok(Some(MeshState {
                shards,
                streak,
                reshards,
            }))
        }
        other => Err(inv(format!("mesh: bad presence flag {other}"))),
    }
}

pub(crate) fn encode_mesh(m: &MeshState) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(m.shards);
    w.u32(m.streak);
    w.u32(m.reshards);
    w.finish()
}

pub(crate) fn decode_mesh(buf: &[u8]) -> Result<MeshState, IoError> {
    let mut r = PayloadReader::new(buf);
    let shards = r.u64("mesh.shards")?;
    let streak = r.u32("mesh.streak")?;
    let reshards = r.u32("mesh.reshards")?;
    if shards == 0 || !shards.is_power_of_two() {
        return Err(inv(format!(
            "mesh: shard count {shards} is not a positive power of two"
        )));
    }
    r.expect_exhausted("mesh")?;
    Ok(MeshState {
        shards,
        streak,
        reshards,
    })
}

impl CheckpointState {
    /// Serializes into the snapshot section container.
    pub fn to_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new();
        s.push_section(tags::META, encode_meta(&self.meta));
        s.push_section(tags::SPEC, encode_spec(&self.query, &self.spec));
        s.push_section(tags::ENGINE, encode_engine(&self.engine));
        s.push_section(tags::DETECTOR, encode_detector(&self.detector));
        s.push_section(
            tags::ANSWERS,
            encode_answers(self.answers_released, &self.answers),
        );
        if let Some(mesh) = &self.mesh {
            s.push_section(tags::MESH, encode_mesh(mesh));
        }
        s
    }

    /// Decodes from a snapshot container, validating every section.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, IoError> {
        let section = |tag: u32, name: &str| {
            snap.section(tag)
                .ok_or_else(|| inv(format!("snapshot is missing the {name} section")))
        };
        let meta = decode_meta(section(tags::META, "META")?)?;
        let (query, spec) = decode_spec(section(tags::SPEC, "SPEC")?)?;
        let engine = decode_engine(section(tags::ENGINE, "ENGINE")?)?;
        let detector = decode_detector(section(tags::DETECTOR, "DETECTOR")?)?;
        let (answers_released, answers) =
            decode_answers(section(tags::ANSWERS, "ANSWERS")?, &query)?;
        let mesh = match snap.section(tags::MESH) {
            Some(buf) => Some(decode_mesh(buf)?),
            None => None,
        };
        if mesh.is_some() != matches!(spec, DetectorSpec::Elastic { .. }) {
            return Err(inv(
                "snapshot MESH section present iff the spec is Elastic — mismatch",
            ));
        }
        Ok(CheckpointState {
            meta,
            spec,
            query,
            engine,
            detector,
            answers_released,
            answers,
            mesh,
        })
    }
}
