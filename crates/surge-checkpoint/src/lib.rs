//! # surge-checkpoint
//!
//! Durable state for continuous detection: periodic **logical snapshots**
//! plus a **segmented write-ahead log**, with recovery that resumes the
//! run **bit-identically** — the same per-slide and terminal answers the
//! uninterrupted run would have produced, for any crash point.
//!
//! The ROADMAP's north star is a production system; every driver the
//! earlier PRs built (`drive`, `drive_slides`, `drive_incremental`,
//! `drive_sharded`) still ingests from t = 0, so a process restart lost
//! all window state, persistent cell sweeps and top-k incumbents. This
//! crate closes that gap with three pieces:
//!
//! * [`state`] — the [`CheckpointState`] model and its snapshot codec:
//!   engine residency ([`surge_core::EngineState`]), detector logical
//!   state ([`surge_core::DetectorState`], captured via the
//!   [`surge_core::CheckpointableDetector`] trait implemented by
//!   `CellCspot`, `BaseDetector` and `KCellCspot`), the query/spec, and
//!   the per-slide answers so far — serialized into `surge-io`'s
//!   checksummed, versioned section container (CRC footer, atomic
//!   write-then-rename).
//! * [`wal`] — the segmented WAL of raw ingested objects: 40-byte binary
//!   records with per-record CRC framing, segment rotation by object
//!   count, torn-tail truncation on recovery, and segment GC once a
//!   snapshot covers them.
//! * [`driver`] — [`CheckpointPolicy`] + the checkpointing run loop
//!   ([`run_checkpointed`]) and the [`recover`] entry point: load the
//!   newest valid snapshot (skipping corrupt ones), rebuild the engine
//!   and detector from logical state — the persistent sweep structures
//!   rebuild deterministically from the restored rectangle sets, which
//!   the shared `sweep_core` guarantees is bit-identical — replay the WAL
//!   tail, then continue with the live source. Snapshot stalls land in a
//!   [`surge_stream::LatencyHistogram`] and surface as p50/p99/max
//!   columns in the reports and `surge_exp checkpoint-bench`.
//!
//! # Why recovery is bit-identical
//!
//! Two kinds of state exist. *Derived* state (sorted edge multisets,
//! segment trees, shard queues, heap keys) is a pure function of total
//! orders over the logical state, so rebuilding it reproduces future
//! searches exactly — the argument (and the proptests) behind the
//! persistent-vs-rebuild sweep differential of PR 4. *Accumulated*
//! floating-point state (Lemma-4 candidate sums, dynamic bounds, static
//! bound accumulators) is **not** re-derivable bit-for-bit — summation
//! order matters — so it is captured verbatim. `tests/crash_recovery.rs`
//! proptests the end-to-end claim across arbitrary cut points, 1/2/8
//! shards and both sweep modes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod serve;
pub mod state;
pub mod store;
pub mod wal;

pub use driver::{
    recover, recover_with_sink, run_checkpointed, run_checkpointed_observed,
    run_checkpointed_with_sink, run_checkpointed_with_store, CheckpointConfig, CheckpointError,
    CheckpointPolicy, CheckpointReport, SpecDetector, SyncPolicy, Tail,
};
pub use serve::{ServeGroupState, ServeLaneState, ServeMeta, ServeState, ServeSubState};
pub use state::{CheckpointMeta, CheckpointState, DetectorSpec, MeshState};
pub use store::CheckpointDir;
pub use wal::{Wal, WalRecovery, WalWriter, WAL_MAGIC};
