//! Crash-at-any-point differentials for the approx detectors and the
//! overload autopilot: GAPS and MGAPS must recover **bit-identically** at
//! arbitrary cut points and shard counts, and a crash mid-degradation must
//! restore the autopilot's controller — tier, hysteresis streaks, cooldown
//! — so the resumed run walks the exact ⇄ MGAPS ⇄ GAPS lattice exactly as
//! the uninterrupted run does.
//!
//! The autopilot runs use a **residency-only** SLO (`max_residents`, read
//! from the window engine) so the transition sequence is deterministic —
//! wall-clock slide latency is disabled and cannot flip a tier.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use surge_checkpoint::{
    recover, run_checkpointed, CheckpointConfig, CheckpointPolicy, CheckpointReport, DetectorSpec,
    SyncPolicy, Tail,
};
use surge_core::{RegionAnswer, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
use surge_stream::SloPolicy;
use surge_testkit::arb_lattice_stream;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("surge-apx-{tag}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(spec: DetectorSpec, windows: WindowConfig) -> CheckpointConfig {
    CheckpointConfig {
        query: SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, 0.5),
        windows,
        spec,
        slide_objects: 16,
        threads: 2,
        policy: CheckpointPolicy {
            snapshot_every_slides: 2,
            wal_segment_objects: 23,
            keep_snapshots: 2,
            sync: SyncPolicy::OsFlush,
        },
    }
}

fn assert_answers_bitwise(a: &[Vec<RegionAnswer>], b: &[Vec<RegionAnswer>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: flush counts differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: flush {i} answer counts differ");
        for (j, (p, q)) in x.iter().zip(y.iter()).enumerate() {
            assert_eq!(
                p.score.to_bits(),
                q.score.to_bits(),
                "{ctx}: flush {i} answer {j} score"
            );
            assert_eq!(p.point.x.to_bits(), q.point.x.to_bits(), "{ctx}: flush {i}");
            assert_eq!(p.point.y.to_bits(), q.point.y.to_bits(), "{ctx}: flush {i}");
        }
    }
}

/// Crash at `cut`, recover, and compare against the uninterrupted run:
/// answers bit-identical, detector counters equal, final tier equal.
fn crash_recover_matches(
    config: &CheckpointConfig,
    stream: &[SpatialObject],
    cut: usize,
    tag: &str,
) -> CheckpointReport {
    let full_dir = fresh_dir(&format!("{tag}-full"));
    let full = run_checkpointed(config, &full_dir, stream.iter().copied(), Tail::Finish)
        .expect("uninterrupted run");

    let crash_dir = fresh_dir(&format!("{tag}-crash"));
    run_checkpointed(
        config,
        &crash_dir,
        stream.iter().take(cut).copied(),
        Tail::Crash,
    )
    .expect("crashed run");

    let resumed =
        recover(config, &crash_dir, stream.iter().copied(), Tail::Finish).expect("recovery");
    assert_eq!(resumed.objects, stream.len() as u64);
    assert_answers_bitwise(full.answers.retained(), resumed.answers.retained(), tag);
    assert_eq!(
        resumed.stats, full.stats,
        "{tag}: detector counters diverge"
    );
    assert_eq!(
        resumed.final_tier, full.final_tier,
        "{tag}: final tier diverges"
    );

    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
    resumed
}

/// Pinned scenario: residency sits far above the threshold for the whole
/// run, so the controller walks exact → MGAPS → GAPS early and the crash
/// is guaranteed to land **while degraded**. Recovery must restore the
/// GAPS tier (index 2) — not silently restart in exact — and still match
/// the uninterrupted run bit for bit.
#[test]
fn crash_while_degraded_resumes_in_the_degraded_tier() {
    let stream = surge_testkit::lattice_stream(vec![(3, 4, 2, 1); 120]);
    let windows = WindowConfig::equal(1_000); // everything stays resident
    let policy = SloPolicy {
        slide_latency_budget_us: 0,
        max_residents: 10,
        degrade_after: 2,
        upgrade_after: 100, // never upgrades within this run
        cooldown_slides: 1,
        drain_percent: 50,
    };
    let spec = DetectorSpec::Autopilot { shards: 2, policy };
    let config = cfg(spec, windows);
    let resumed = crash_recover_matches(&config, &stream, 80, "autopilot-degraded");
    assert_eq!(resumed.final_tier, Some(2), "run must end in the GAPS tier");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// GAPS and MGAPS across shard counts: the grid-cell codec round-trips
    /// the accumulated `wc`/`wp` sums verbatim, so the recovered run's
    /// per-slide and terminal answers are bit-identical.
    #[test]
    fn approx_detectors_recover_bit_identically(
        stream in arb_lattice_stream(48),
        cut_seed in 0usize..1000,
    ) {
        let windows = WindowConfig::equal(170);
        let cut = cut_seed % (stream.len() + 1);
        for (spec, tag) in [
            (DetectorSpec::Gaps { shards: 1 }, "gaps1"),
            (DetectorSpec::Gaps { shards: 4 }, "gaps4"),
            (DetectorSpec::Mgaps { shards: 1 }, "mgaps1"),
            (DetectorSpec::Mgaps { shards: 2 }, "mgaps2"),
        ] {
            let config = cfg(spec, windows);
            crash_recover_matches(&config, &stream, cut, &format!("{tag}-cut{cut}"));
        }
    }

    /// A crash mid-degradation: the residency SLO forces the controller off
    /// the exact tier during the run, the crash can land in any tier or
    /// mid-cooldown, and recovery must restore the controller so the
    /// resumed transition sequence — and every stamped answer — matches the
    /// uninterrupted run bit for bit.
    #[test]
    fn autopilot_crash_mid_degradation_restores_controller(
        stream in arb_lattice_stream(56),
        cut_seed in 0usize..1000,
        max_residents in 8u64..40,
    ) {
        let windows = WindowConfig::equal(170);
        let cut = cut_seed % (stream.len() + 1);
        let policy = SloPolicy {
            slide_latency_budget_us: 0, // wall-clock disabled: deterministic
            max_residents,
            degrade_after: 2,
            upgrade_after: 3,
            cooldown_slides: 2,
            drain_percent: 90,
        };
        let spec = DetectorSpec::Autopilot { shards: 2, policy };
        let config = cfg(spec, windows);
        crash_recover_matches(
            &config,
            &stream,
            cut,
            &format!("autopilot-r{max_residents}-cut{cut}"),
        );
    }
}
