//! Crash-at-any-point differential tests: snapshot + WAL-tail replay must
//! produce **bit-identical** per-slide and terminal answers to the
//! uninterrupted run — for arbitrary cut points, at 1/2/8 shards, for both
//! `SweepMode::Persistent` and `SweepMode::Rebuild`, and for the Base and
//! top-k detector families.
//!
//! Streams come from `surge-testkit`'s collision-heavy generators (the
//! workspace rule: differential code draws from the shared toolkit).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use surge_checkpoint::{
    recover, run_checkpointed, CheckpointConfig, CheckpointPolicy, CheckpointReport, DetectorSpec,
    SyncPolicy, Tail,
};
use surge_core::{RegionAnswer, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
use surge_exact::{BoundMode, CellCspot, SweepMode};
use surge_stream::drive_incremental;
use surge_testkit::arb_lattice_stream;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("surge-ckpt-{tag}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn query(windows: WindowConfig) -> SurgeQuery {
    SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, 0.5)
}

fn cfg(spec: DetectorSpec, windows: WindowConfig) -> CheckpointConfig {
    CheckpointConfig {
        query: query(windows),
        windows,
        spec,
        slide_objects: 16,
        threads: 2,
        policy: CheckpointPolicy {
            snapshot_every_slides: 2,
            wal_segment_objects: 23,
            keep_snapshots: 2,
            sync: SyncPolicy::OsFlush,
        },
    }
}

fn assert_answers_bitwise(a: &[Vec<RegionAnswer>], b: &[Vec<RegionAnswer>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: flush counts differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: flush {i} answer counts differ");
        for (j, (p, q)) in x.iter().zip(y.iter()).enumerate() {
            assert_eq!(
                p.score.to_bits(),
                q.score.to_bits(),
                "{ctx}: flush {i} answer {j} score"
            );
            assert_eq!(p.point.x.to_bits(), q.point.x.to_bits(), "{ctx}: flush {i}");
            assert_eq!(p.point.y.to_bits(), q.point.y.to_bits(), "{ctx}: flush {i}");
        }
    }
}

/// Runs the crash-and-recover cycle for one config and compares against an
/// uninterrupted checkpointed run of the same config.
fn crash_recover_matches(
    config: &CheckpointConfig,
    stream: &[SpatialObject],
    cut: usize,
    tag: &str,
) -> CheckpointReport {
    let full_dir = fresh_dir(&format!("{tag}-full"));
    let full = run_checkpointed(config, &full_dir, stream.iter().copied(), Tail::Finish)
        .expect("uninterrupted run");

    let crash_dir = fresh_dir(&format!("{tag}-crash"));
    let crashed = run_checkpointed(
        config,
        &crash_dir,
        stream.iter().take(cut).copied(),
        Tail::Crash,
    )
    .expect("crashed run");
    assert_eq!(crashed.objects, cut as u64);

    let resumed =
        recover(config, &crash_dir, stream.iter().copied(), Tail::Finish).expect("recovery");
    assert_eq!(resumed.objects, stream.len() as u64);
    assert_answers_bitwise(full.answers.retained(), resumed.answers.retained(), tag);
    assert_eq!(
        resumed.stats, full.stats,
        "{tag}: detector counters diverge"
    );

    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
    resumed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance matrix: arbitrary cut points × {1, 2, 8} shards ×
    /// {Persistent, Rebuild} sweeps, answers bit-identical per slide and
    /// terminally — and identical to `drive_incremental` at the same
    /// cadence.
    #[test]
    fn crash_at_any_point_is_bit_identical(
        stream in arb_lattice_stream(60),
        cut_seed in 0usize..1000,
    ) {
        let windows = WindowConfig::equal(170);
        let cut = cut_seed % (stream.len() + 1);

        // Cross-check target: the in-memory incremental driver.
        let mut reference = CellCspot::with_shards(query(windows), BoundMode::Combined, 1);
        let ref_report = drive_incremental(
            &mut reference,
            windows,
            stream.iter().copied(),
            16,
            1,
        );

        for shards in [1usize, 2, 8] {
            for sweep in [SweepMode::Persistent, SweepMode::Rebuild] {
                let spec = DetectorSpec::Cell {
                    bound: BoundMode::Combined,
                    sweep,
                    shards,
                };
                let config = cfg(spec, windows);
                let tag = format!("cell-s{shards}-{sweep:?}-cut{cut}");
                let resumed = crash_recover_matches(&config, &stream, cut, &tag);

                // The recovered answer sequence equals the plain driver's.
                let got = resumed.single_answers();
                prop_assert_eq!(got.len(), ref_report.answers.len());
                for (i, (a, b)) in got.iter().zip(ref_report.answers.iter()).enumerate() {
                    match (a, b) {
                        (Some(x), Some(y)) => {
                            prop_assert_eq!(x.score.to_bits(), y.score.to_bits(), "{} slide {}", &tag, i);
                            prop_assert_eq!(x.point.x.to_bits(), y.point.x.to_bits());
                            prop_assert_eq!(x.point.y.to_bits(), y.point.y.to_bits());
                        }
                        (None, None) => {}
                        other => prop_assert!(false, "{} slide {}: {:?}", &tag, i, other),
                    }
                }
            }
        }
    }

    /// Base (eager and pruned) and top-k recover bit-identically too.
    #[test]
    fn other_detector_families_recover_bit_identically(
        stream in arb_lattice_stream(48),
        cut_seed in 0usize..1000,
    ) {
        let windows = WindowConfig::new(150, 70);
        let cut = cut_seed % (stream.len() + 1);
        for (spec, tag) in [
            (DetectorSpec::Base { pruned: false }, "base"),
            (DetectorSpec::Base { pruned: true }, "base-pruned"),
            (DetectorSpec::TopK { k: 3 }, "topk3"),
        ] {
            let config = cfg(spec, windows);
            crash_recover_matches(&config, &stream, cut, &format!("{tag}-cut{cut}"));
        }
    }

    /// Losing the unsynced WAL tail (a harder crash) still recovers
    /// bit-identically: the lost suffix is re-read from the source.
    #[test]
    fn torn_wal_tail_recovers_from_the_source(
        stream in arb_lattice_stream(48),
        cut_seed in 0usize..1000,
        chop in 1usize..200,
    ) {
        let windows = WindowConfig::equal(140);
        let cut = cut_seed % (stream.len() + 1);
        let spec = DetectorSpec::Cell {
            bound: BoundMode::Combined,
            sweep: SweepMode::Persistent,
            shards: 2,
        };
        let config = cfg(spec, windows);

        let full_dir = fresh_dir("torn-full");
        let full = run_checkpointed(&config, &full_dir, stream.iter().copied(), Tail::Finish)
            .expect("uninterrupted run");

        let crash_dir = fresh_dir("torn-crash");
        run_checkpointed(
            &config,
            &crash_dir,
            stream.iter().take(cut).copied(),
            Tail::Crash,
        )
        .expect("crashed run");

        // Chop bytes off the newest WAL segment — the torn tail a hard
        // kill leaves behind.
        let wal_dir = crash_dir.join("wal");
        if let Ok(entries) = std::fs::read_dir(&wal_dir) {
            let mut segs: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
            segs.sort();
            if let Some(tail_seg) = segs.last() {
                let bytes = std::fs::read(tail_seg).unwrap();
                let keep = bytes.len().saturating_sub(chop);
                std::fs::write(tail_seg, &bytes[..keep]).unwrap();
            }
        }

        let resumed = recover(&config, &crash_dir, stream.iter().copied(), Tail::Finish)
            .expect("recovery after torn tail");
        assert_answers_bitwise(full.answers.retained(), resumed.answers.retained(), "torn-tail");
        prop_assert_eq!(resumed.objects, stream.len() as u64);

        std::fs::remove_dir_all(&full_dir).ok();
        std::fs::remove_dir_all(&crash_dir).ok();
    }
}

/// A corrupt newest snapshot must not sink recovery: it falls back to the
/// previous snapshot (or logical zero) and still resumes bit-identically.
#[test]
fn corrupt_newest_snapshot_falls_back() {
    let stream = surge_testkit::clustered_stream(120, 4, 9, 77);
    let windows = WindowConfig::equal(300);
    let spec = DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 2,
    };
    let config = cfg(spec, windows);

    let full_dir = fresh_dir("fallback-full");
    let full = run_checkpointed(&config, &full_dir, stream.iter().copied(), Tail::Finish).unwrap();

    let crash_dir = fresh_dir("fallback-crash");
    let crashed = run_checkpointed(
        &config,
        &crash_dir,
        stream.iter().take(100).copied(),
        Tail::Crash,
    )
    .unwrap();
    assert!(crashed.snapshots_written >= 2, "need snapshots to corrupt");

    // Flip a byte in the newest snapshot file.
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&crash_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "snap"))
        .collect();
    snaps.sort();
    let newest = snaps.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(newest, &bytes).unwrap();

    let resumed = recover(&config, &crash_dir, stream.iter().copied(), Tail::Finish).unwrap();
    assert_answers_bitwise(
        full.answers.retained(),
        resumed.answers.retained(),
        "fallback",
    );
    // It really did fall back: the resume point predates the corrupt
    // snapshot's coverage.
    assert!(resumed.resumed_at.unwrap() < crashed.objects);

    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// Recovery with no snapshot at all (crash before the first one) replays
/// the whole WAL.
#[test]
fn recovery_without_any_snapshot_replays_the_wal() {
    let stream = surge_testkit::clustered_stream(40, 3, 11, 5);
    let windows = WindowConfig::equal(250);
    let spec = DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 1,
    };
    let mut config = cfg(spec, windows);
    config.policy.snapshot_every_slides = 1000; // never during this run

    let full_dir = fresh_dir("nosnap-full");
    let full = run_checkpointed(&config, &full_dir, stream.iter().copied(), Tail::Finish).unwrap();

    let crash_dir = fresh_dir("nosnap-crash");
    let crashed = run_checkpointed(
        &config,
        &crash_dir,
        stream.iter().take(29).copied(),
        Tail::Crash,
    )
    .unwrap();
    assert_eq!(crashed.snapshots_written, 0);

    let resumed = recover(&config, &crash_dir, stream.iter().copied(), Tail::Finish).unwrap();
    assert_eq!(resumed.resumed_at, None);
    assert_eq!(resumed.replayed_from_wal, 29);
    assert_answers_bitwise(
        full.answers.retained(),
        resumed.answers.retained(),
        "nosnap",
    );

    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// Config mismatches are rejected loudly, not silently misrecovered.
#[test]
fn recover_rejects_mismatched_config() {
    let stream = surge_testkit::clustered_stream(64, 3, 9, 13);
    let windows = WindowConfig::equal(200);
    let spec = DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 2,
    };
    let config = cfg(spec, windows);
    let dir = fresh_dir("mismatch");
    run_checkpointed(&config, &dir, stream.iter().copied(), Tail::Crash).unwrap();

    let mut wrong_spec = config;
    wrong_spec.spec = DetectorSpec::Base { pruned: false };
    assert!(recover(&wrong_spec, &dir, stream.iter().copied(), Tail::Finish).is_err());

    let mut wrong_slide = config;
    wrong_slide.slide_objects = 7;
    assert!(recover(&wrong_slide, &dir, stream.iter().copied(), Tail::Finish).is_err());

    // A window-config mismatch is just as loud — the engine would
    // otherwise silently resume under the snapshot's windows.
    let mut wrong_windows = config;
    wrong_windows.windows = WindowConfig::equal(999);
    assert!(recover(&wrong_windows, &dir, stream.iter().copied(), Tail::Finish).is_err());

    // Starting a *fresh* run over existing state is rejected too.
    assert!(run_checkpointed(&config, &dir, stream.iter().copied(), Tail::Finish).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

/// An out-of-order arrival is rejected *before* it reaches the WAL: bad
/// input must never poison the durable log, and the directory must remain
/// recoverable afterwards.
#[test]
fn out_of_order_arrival_is_rejected_before_the_wal() {
    let windows = WindowConfig::equal(200);
    let spec = DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 2,
    };
    let config = cfg(spec, windows);
    let dir = fresh_dir("ooo");

    let mut stream = surge_testkit::clustered_stream(40, 3, 9, 17);
    stream[33].created = 0; // regresses far behind the engine clock

    let err = run_checkpointed(&config, &dir, stream.iter().copied(), Tail::Finish)
        .expect_err("out-of-order arrival must be rejected");
    assert!(err.to_string().contains("timestamp-ordered"), "{err}");

    // The poison object never became durable: recovery over the corrected
    // stream replays the 33 good objects and finishes cleanly.
    let good = surge_testkit::clustered_stream(40, 3, 9, 17);
    let resumed = recover(&config, &dir, good.iter().copied(), Tail::Finish).unwrap();
    assert_eq!(resumed.objects, good.len() as u64);
    assert_eq!(
        resumed.replayed_from_wal + resumed.resumed_at.unwrap_or(0),
        33
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// WAL segments fully covered by the oldest retained snapshot are garbage
/// collected; old snapshots are retired per policy.
#[test]
fn wal_and_snapshot_gc_respect_retention() {
    let stream = surge_testkit::uniform_stream(400, 21);
    let windows = WindowConfig::equal(400);
    let spec = DetectorSpec::Cell {
        bound: BoundMode::Combined,
        sweep: SweepMode::Persistent,
        shards: 2,
    };
    let mut config = cfg(spec, windows);
    config.policy = CheckpointPolicy {
        snapshot_every_slides: 2,
        wal_segment_objects: 16,
        keep_snapshots: 2,
        sync: SyncPolicy::OsFlush,
    };
    let dir = fresh_dir("gc");
    let report = run_checkpointed(&config, &dir, stream.iter().copied(), Tail::Finish).unwrap();
    assert!(report.snapshots_written > 3);

    let snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
        .collect();
    assert_eq!(snaps.len(), 2, "retention keeps the newest two snapshots");

    let segs: Vec<_> = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .filter_map(|e| e.ok())
        .collect();
    let expected_max = (stream.len() as u64 / 16 + 2) as usize;
    assert!(
        segs.len() < expected_max,
        "covered segments were collected: {} live, {expected_max} written",
        segs.len()
    );

    // The pause histogram recorded every snapshot stall.
    assert_eq!(report.pause.count, report.snapshots_written);
    assert!(report.pause.max_us > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}
