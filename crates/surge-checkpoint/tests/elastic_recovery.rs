//! Crash-anywhere recovery for the elastic mesh: a checkpointed
//! [`DetectorSpec::Elastic`] run reshards itself mid-stream (the balancer
//! decision is a pure function of flush-boundary dirty counts), and a
//! crash at *any* cut point — before, during the streak leading up to, or
//! after a reshard — must recover to the same per-slide answers bit for
//! bit, the same detector counters, and the same mesh width. The MESH
//! snapshot section carries the live shard count and balancer history;
//! WAL-replayed flushes recompute identical dirty counts and so re-trigger
//! identical split decisions.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use surge_checkpoint::{
    recover, run_checkpointed, CheckpointConfig, CheckpointDir, CheckpointPolicy, DetectorSpec,
    SyncPolicy, Tail,
};
use surge_core::{Point, RegionAnswer, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
use surge_exact::{BoundMode, CellCspot, SweepMode};
use surge_stream::{drive_incremental, BalancerPolicy};
use surge_testkit::arb_lattice_stream;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("surge-mesh-{tag}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn query(windows: WindowConfig) -> SurgeQuery {
    SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, 0.5)
}

/// A split-happy policy so short test streams actually reshard.
fn aggressive() -> BalancerPolicy {
    BalancerPolicy {
        skew_percent: 0,
        patience: 2,
        max_shards: 8,
        min_load: 1,
    }
}

fn cfg(windows: WindowConfig, shards: usize, policy: BalancerPolicy) -> CheckpointConfig {
    CheckpointConfig {
        query: query(windows),
        windows,
        spec: DetectorSpec::Elastic {
            bound: BoundMode::Combined,
            sweep: SweepMode::Persistent,
            shards,
            policy,
        },
        slide_objects: 16,
        threads: 2,
        policy: CheckpointPolicy {
            snapshot_every_slides: 2,
            wal_segment_objects: 23,
            keep_snapshots: 2,
            sync: SyncPolicy::OsFlush,
        },
    }
}

/// Every object homed to a cell that hashes to shard 0 at width 2: one
/// shard owns the whole sweep load, so the aggressive balancer splits the
/// mesh within a few flushes.
fn hot_stream(n: usize) -> Vec<SpatialObject> {
    let hot: Vec<(i64, i64)> = (0..40i64)
        .flat_map(|i| (0..40i64).map(move |j| (i, j)))
        .filter(|&(i, j)| surge_core::shard_of_cell((i, j), 2) == 0)
        .take(12)
        .collect();
    (0..n)
        .map(|i| {
            let (cx, cy) = hot[i % hot.len()];
            SpatialObject::new(
                i as u64,
                1.0 + (i % 3) as f64,
                Point::new(cx as f64 + 0.2 + (i % 7) as f64 * 0.1, cy as f64 + 0.3),
                (i as u64) * 7,
            )
        })
        .collect()
}

fn assert_answers_bitwise(a: &[Vec<RegionAnswer>], b: &[Vec<RegionAnswer>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: flush counts differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: flush {i} answer counts differ");
        for (p, q) in x.iter().zip(y.iter()) {
            assert_eq!(p.score.to_bits(), q.score.to_bits(), "{ctx}: flush {i}");
            assert_eq!(p.point.x.to_bits(), q.point.x.to_bits(), "{ctx}: flush {i}");
            assert_eq!(p.point.y.to_bits(), q.point.y.to_bits(), "{ctx}: flush {i}");
        }
    }
}

/// The newest snapshot's MESH state — both runs snapshot on the same slide
/// cadence, so their final snapshots land at the same stream position and
/// their mesh states must agree exactly.
fn final_mesh(dir: &std::path::Path) -> surge_checkpoint::MeshState {
    let dir = CheckpointDir::create(dir).unwrap();
    let (_, state) = dir.latest_snapshot().unwrap().expect("a snapshot exists");
    state.mesh.expect("elastic runs carry MESH state")
}

/// Crash at `cut`, recover, and require bitwise answers, equal counters
/// and an identical final mesh vs the uninterrupted run.
fn crash_recover_matches(
    config: &CheckpointConfig,
    stream: &[SpatialObject],
    cut: usize,
    tag: &str,
) {
    let full_dir = fresh_dir(&format!("{tag}-full"));
    let full = run_checkpointed(config, &full_dir, stream.iter().copied(), Tail::Finish)
        .expect("uninterrupted run");

    let crash_dir = fresh_dir(&format!("{tag}-crash"));
    run_checkpointed(
        config,
        &crash_dir,
        stream.iter().take(cut).copied(),
        Tail::Crash,
    )
    .expect("crashed run");

    let resumed =
        recover(config, &crash_dir, stream.iter().copied(), Tail::Finish).expect("recovery");
    assert_eq!(resumed.objects, stream.len() as u64);
    assert_answers_bitwise(full.answers.retained(), resumed.answers.retained(), tag);
    assert_eq!(
        resumed.stats, full.stats,
        "{tag}: detector counters diverge"
    );
    assert_eq!(
        final_mesh(&full_dir),
        final_mesh(&crash_dir),
        "{tag}: mesh state diverges after recovery"
    );

    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// The deterministic acceptance run: the skewed stream must actually
/// reshard (2 → more shards) and stay bit-identical to the unsharded
/// in-memory driver at the same cadence.
#[test]
fn skewed_checkpointed_run_reshards_and_matches_incremental() {
    let windows = WindowConfig::equal(170);
    let stream = hot_stream(160);
    let config = cfg(windows, 2, aggressive());

    let mut reference = CellCspot::with_shards(query(windows), BoundMode::Combined, 1);
    let ref_report = drive_incremental(&mut reference, windows, stream.iter().copied(), 16, 1);

    let dir = fresh_dir("accept");
    let report = run_checkpointed(&config, &dir, stream.iter().copied(), Tail::Finish)
        .expect("checkpointed elastic run");

    let got = report.single_answers();
    assert_eq!(got.len(), ref_report.answers.len());
    for (i, (a, b)) in got.iter().zip(ref_report.answers.iter()).enumerate() {
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "slide {i}");
                assert_eq!(x.point.x.to_bits(), y.point.x.to_bits(), "slide {i}");
                assert_eq!(x.point.y.to_bits(), y.point.y.to_bits(), "slide {i}");
            }
            (None, None) => {}
            other => panic!("slide {i}: {other:?}"),
        }
    }
    let mesh = final_mesh(&dir);
    assert!(
        mesh.shards > 2,
        "the skewed stream never split the mesh: {mesh:?}"
    );
    assert!(mesh.reshards >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Dense deterministic sweep of cut points across the stream stretch where
/// the reshards happen — including cuts landing exactly on the flush that
/// splits — every one must recover bit-identically.
#[test]
fn crash_around_the_reshard_recovers_bit_identically() {
    let windows = WindowConfig::equal(170);
    let stream = hot_stream(112);
    let config = cfg(windows, 2, aggressive());
    for cut in (0..=stream.len()).step_by(16) {
        crash_recover_matches(&config, &stream, cut, &format!("grid-cut{cut}"));
    }
    // Off-boundary cuts: mid-slide crashes leave a WAL tail that replays
    // through the same flush sequence.
    for cut in [19usize, 37, 50, 71, 93] {
        crash_recover_matches(&config, &stream, cut, &format!("mid-cut{cut}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary lattice streams and arbitrary cut points: whatever
    /// reshard history the balancer picks, crash + recovery reproduces it
    /// and the answers bit-match the uninterrupted run.
    #[test]
    fn crash_at_any_point_recovers_the_elastic_run(
        stream in arb_lattice_stream(60),
        cut_seed in 0usize..1000,
        patience in 1u32..3,
    ) {
        let windows = WindowConfig::equal(170);
        let cut = cut_seed % (stream.len() + 1);
        let policy = BalancerPolicy {
            skew_percent: 0,
            patience,
            max_shards: 8,
            min_load: 1,
        };
        for shards in [1usize, 2] {
            let config = cfg(windows, shards, policy);
            crash_recover_matches(
                &config,
                &stream,
                cut,
                &format!("prop-s{shards}-p{patience}-cut{cut}"),
            );
        }
    }
}
