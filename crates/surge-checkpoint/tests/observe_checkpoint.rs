//! Observability differentials for the checkpointed runner: a run with
//! [`Observe::off`] and a run with an enabled registry must produce
//! **bitwise-identical** per-flush answers and identical durability
//! side effects (snapshots written, WAL appends), the registry totals must
//! be conserved against the [`CheckpointReport`], and every snapshot stall
//! must be attributed in the flight ring as a logical
//! `(slide, bytes, sync_policy)` event alongside its wall-clock sample in
//! the `checkpoint/stall_ns` histogram.
//!
//! The trace dump carries only logical time, so two observed runs over the
//! same stream produce the same dump — asserted here including the WAL
//! rotation trail, whose event count must equal the number of segments the
//! writer opened (`ceil(appends / segment_objects)`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use surge_checkpoint::{
    run_checkpointed, run_checkpointed_observed, CheckpointConfig, CheckpointPolicy, DetectorSpec,
    SyncPolicy, Tail,
};
use surge_core::{RegionAnswer, RegionSize, SurgeQuery, WindowConfig};
use surge_exact::{BoundMode, SweepMode};
use surge_observe::{Observe, TraceEvent};
use surge_testkit::arb_lattice_stream;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("surge-obs-{tag}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(windows: WindowConfig, sync: SyncPolicy) -> CheckpointConfig {
    CheckpointConfig {
        query: SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, 0.5),
        windows,
        spec: DetectorSpec::Cell {
            bound: BoundMode::Combined,
            sweep: SweepMode::Persistent,
            shards: 2,
        },
        slide_objects: 16,
        threads: 2,
        policy: CheckpointPolicy {
            snapshot_every_slides: 2,
            wal_segment_objects: 23,
            keep_snapshots: 2,
            sync,
        },
    }
}

fn assert_flushes_bitwise(a: &[Vec<RegionAnswer>], b: &[Vec<RegionAnswer>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: flush counts differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: flush {i} answer counts differ");
        for (p, q) in x.iter().zip(y.iter()) {
            assert_eq!(p.score.to_bits(), q.score.to_bits(), "{ctx}: flush {i}");
            assert_eq!(p.point.x.to_bits(), q.point.x.to_bits(), "{ctx}: flush {i}");
            assert_eq!(p.point.y.to_bits(), q.point.y.to_bits(), "{ctx}: flush {i}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Observe-on vs observe-off over arbitrary lattice streams and every
    /// sync policy: same answers bit for bit, same snapshots, same WAL,
    /// and registry totals conserved against the report.
    #[test]
    fn checkpointed_run_is_unperturbed_and_conserved(
        stream in arb_lattice_stream(60),
        sync_pick in 0u8..3,
    ) {
        let windows = WindowConfig::equal(170);
        let sync = match sync_pick {
            0 => SyncPolicy::OsFlush,
            1 => SyncPolicy::FsyncPerSnapshot,
            _ => SyncPolicy::FsyncPerSlide,
        };
        let config = cfg(windows, sync);

        let off_dir = fresh_dir("off");
        let off = run_checkpointed(&config, &off_dir, stream.iter().copied(), Tail::Finish)
            .expect("unobserved run");

        let obs = Observe::enabled();
        let on_dir = fresh_dir("on");
        let on = run_checkpointed_observed(
            &config, &on_dir, stream.iter().copied(), Tail::Finish, &obs,
        )
        .expect("observed run");

        assert_flushes_bitwise(off.answers.retained(), on.answers.retained(), "observed");
        prop_assert_eq!(off.objects, on.objects);
        prop_assert_eq!(off.slides, on.slides);
        prop_assert_eq!(off.events, on.events);
        prop_assert_eq!(off.snapshots_written, on.snapshots_written);
        prop_assert_eq!(off.wal_appends, on.wal_appends);
        prop_assert_eq!(off.stats, on.stats);

        // Conservation: registry totals == report counters.
        let snap = obs.snapshot();
        prop_assert_eq!(snap.counter("checkpoint/objects"), Some(on.objects));
        prop_assert_eq!(snap.counter("checkpoint/slides"), Some(on.slides));
        prop_assert_eq!(snap.counter("checkpoint/events"), Some(on.events));
        prop_assert_eq!(
            snap.counter("checkpoint/snapshots_written"),
            Some(on.snapshots_written)
        );
        prop_assert_eq!(snap.counter("checkpoint/wal_appends"), Some(on.wal_appends));

        // Stall attribution: one histogram sample and one flight event per
        // snapshot, stamped with the policy in force.
        let stalls = snap.histogram("checkpoint/stall_ns").map_or(0, |h| h.summary.count);
        prop_assert_eq!(stalls, on.snapshots_written, "one stall sample per snapshot");
        let dump = obs.trace_dump();
        let mut stall_events = 0u64;
        let mut rotations = 0u64;
        for w in &dump.workers {
            for ev in &w.events {
                match ev {
                    TraceEvent::SnapshotStall { slide, bytes, sync_policy } => {
                        stall_events += 1;
                        prop_assert!(*bytes > 0, "snapshot stall with empty snapshot file");
                        prop_assert!(*slide <= on.slides);
                        prop_assert_eq!(*sync_policy, config.policy.sync.name());
                    }
                    TraceEvent::WalRotation { segment } => {
                        rotations += 1;
                        prop_assert!(*segment >= 1);
                    }
                    _ => {}
                }
            }
        }
        prop_assert_eq!(stall_events, on.snapshots_written, "stall events == snapshots");
        // The writer opens a segment every `wal_segment_objects` appends.
        let expected_segments = on.wal_appends.div_ceil(config.policy.wal_segment_objects);
        prop_assert_eq!(rotations, expected_segments, "rotation trail == segments opened");

        std::fs::remove_dir_all(&off_dir).ok();
        std::fs::remove_dir_all(&on_dir).ok();
    }
}

/// Two observed runs over the same stream dump the same flight trail:
/// every event payload is logical (slide indices, snapshot byte sizes,
/// policy names), so the dump is reproducible run-to-run.
#[test]
fn checkpoint_trace_dump_is_deterministic() {
    let windows = WindowConfig::equal(170);
    let config = cfg(windows, SyncPolicy::FsyncPerSnapshot);
    let stream: Vec<_> = (0..200u64)
        .map(|i| {
            surge_core::SpatialObject::new(
                i,
                1.0 + (i % 3) as f64,
                surge_core::Point::new((i % 13) as f64 * 0.4, (i % 7) as f64 * 0.6),
                i * 11,
            )
        })
        .collect();

    let run = || {
        let obs = Observe::enabled();
        let dir = fresh_dir("det");
        let report =
            run_checkpointed_observed(&config, &dir, stream.iter().copied(), Tail::Finish, &obs)
                .expect("observed run");
        std::fs::remove_dir_all(&dir).ok();
        (obs.trace_dump(), report.snapshots_written)
    };
    let (dump_a, snaps_a) = run();
    let (dump_b, snaps_b) = run();
    assert!(snaps_a > 0, "run too short to snapshot");
    assert_eq!(snaps_a, snaps_b);
    assert_eq!(
        dump_a, dump_b,
        "checkpoint flight dumps diverged across runs"
    );
}
