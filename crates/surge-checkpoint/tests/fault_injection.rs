//! Fault-injection properties: with a [`surge_io::FailingStore`] under the
//! WAL, any write or sync failure point must surface from
//! [`run_checkpointed_with_store`] as a precise
//! [`CheckpointError::Io`] — never a panic — and the WAL left on disk must
//! still recover to a clean prefix of the appended stream (no corrupt
//! middle, no misread tail).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use surge_checkpoint::{
    run_checkpointed_with_store, CheckpointConfig, CheckpointError, CheckpointPolicy, DetectorSpec,
    SyncPolicy, Tail, Wal,
};
use surge_core::{RegionSize, SurgeQuery, WindowConfig};
use surge_exact::{BoundMode, SweepMode};
use surge_io::{FailingStore, FaultPlan};
use surge_testkit::arb_lattice_stream;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("surge-fi-{tag}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(windows: WindowConfig, sync: SyncPolicy) -> CheckpointConfig {
    CheckpointConfig {
        query: SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, 0.5),
        windows,
        spec: DetectorSpec::Cell {
            bound: BoundMode::Combined,
            sweep: SweepMode::Persistent,
            shards: 2,
        },
        slide_objects: 8,
        threads: 1,
        policy: CheckpointPolicy {
            snapshot_every_slides: 2,
            wal_segment_objects: 16,
            keep_snapshots: 2,
            sync,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_write_failure_point_surfaces_a_precise_io_error(
        stream in arb_lattice_stream(48),
        fail_after in 1u64..48,
        sync_pick in 0usize..3,
    ) {
        let sync = [
            SyncPolicy::OsFlush,
            SyncPolicy::FsyncPerSnapshot,
            SyncPolicy::FsyncPerSlide,
        ][sync_pick];
        let config = cfg(WindowConfig::equal(120), sync);
        let dir = fresh_dir("w");
        let plan = FaultPlan::new().fail_after_writes(fail_after);
        let store = Box::new(FailingStore::new(plan.clone()));
        match run_checkpointed_with_store(&config, &dir, stream.iter().copied(), Tail::Finish, store) {
            // The plan may never trigger on a short stream — fine.
            Ok(_) => prop_assert!(plan.writes() < fail_after),
            Err(CheckpointError::Io(_)) => {
                // The durable prefix is intact: the WAL recovers cleanly
                // and is a prefix of the source stream.
                let rec = Wal::recover(dir.join("wal")).expect("WAL tail must stay recoverable");
                prop_assert!(rec.objects.len() <= stream.len());
                let start = rec.start_index as usize;
                for (o, s) in rec.objects.iter().zip(stream[start..].iter()) {
                    prop_assert_eq!(o, s, "recovered WAL diverges from the source");
                }
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_sync_failure_point_surfaces_a_precise_io_error(
        stream in arb_lattice_stream(48),
        fail_on in 1u64..12,
    ) {
        // Sync faults only fire on fdatasync, so use the per-slide tier.
        let config = cfg(WindowConfig::equal(120), SyncPolicy::FsyncPerSlide);
        let dir = fresh_dir("s");
        let plan = FaultPlan::new().fail_on_sync(fail_on);
        let store = Box::new(FailingStore::new(plan.clone()));
        match run_checkpointed_with_store(&config, &dir, stream.iter().copied(), Tail::Finish, store) {
            Ok(_) => prop_assert!(plan.syncs() < fail_on),
            Err(CheckpointError::Io(_)) => {
                let rec = Wal::recover(dir.join("wal")).expect("WAL tail must stay recoverable");
                let start = rec.start_index as usize;
                for (o, s) in rec.objects.iter().zip(stream[start..].iter()) {
                    prop_assert_eq!(o, s, "recovered WAL diverges from the source");
                }
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
