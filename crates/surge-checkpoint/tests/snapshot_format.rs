//! Snapshot-file format properties: write → read → re-write is
//! byte-identical, corrupt CRCs/versions are rejected with precise
//! `IoError`s, and every truncation point fails loudly.

use proptest::prelude::*;
use surge_checkpoint::{
    run_checkpointed, CheckpointConfig, CheckpointPolicy, CheckpointState, DetectorSpec,
    SyncPolicy, Tail,
};
use surge_core::{RegionSize, SurgeQuery, WindowConfig};
use surge_exact::{BoundMode, SweepMode};
use surge_io::{IoError, Snapshot};
use surge_testkit::arb_lattice_stream;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "surge-snapfmt-{tag}-{}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Produces a real snapshot file by running the checkpointed driver, and
/// returns its raw bytes.
fn real_snapshot_bytes(stream: &[surge_core::SpatialObject], tag: &str) -> Vec<u8> {
    let windows = WindowConfig::equal(160);
    let config = CheckpointConfig {
        query: SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, 0.3),
        windows,
        spec: DetectorSpec::Cell {
            bound: BoundMode::Combined,
            sweep: SweepMode::Persistent,
            shards: 4,
        },
        slide_objects: 8,
        threads: 1,
        policy: CheckpointPolicy {
            snapshot_every_slides: 1,
            wal_segment_objects: 64,
            keep_snapshots: 1,
            sync: SyncPolicy::OsFlush,
        },
    };
    let dir = fresh_dir(tag);
    run_checkpointed(&config, &dir, stream.iter().copied(), Tail::Crash).expect("run");
    let mut snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "snap"))
        .collect();
    snaps.sort();
    let bytes = std::fs::read(snaps.last().expect("at least one snapshot")).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Decode → re-encode reproduces the file byte for byte: the capture
    /// order is canonical and every float travels as raw bits.
    #[test]
    fn snapshot_rewrite_is_byte_identical(stream in arb_lattice_stream(40)) {
        let bytes = real_snapshot_bytes(&stream, "rewrite");
        let snap = Snapshot::decode(&bytes).unwrap();
        let state = CheckpointState::from_snapshot(&snap).unwrap();
        let rewritten = state.to_snapshot().encode();
        prop_assert_eq!(rewritten, bytes);
    }

    /// Every truncation of a real snapshot file is rejected with a precise
    /// `IoError` — never a panic, never a partial state.
    #[test]
    fn every_truncation_is_rejected(stream in arb_lattice_stream(24)) {
        let bytes = real_snapshot_bytes(&stream, "trunc");
        // Every byte-level cut of the container fails its framing/CRC…
        for cut in (0..bytes.len()).step_by(7) {
            prop_assert!(Snapshot::decode(&bytes[..cut]).is_err(), "cut {}", cut);
        }
        // …and section-payload truncation (container intact, payload cut)
        // fails the state decoder with a parse error, not a panic.
        let snap = Snapshot::decode(&bytes).unwrap();
        for (tag, payload) in snap.sections() {
            for cut in (0..payload.len()).step_by(5) {
                let mut cutsnap = Snapshot::new();
                for (t, p) in snap.sections() {
                    if t == tag {
                        cutsnap.push_section(*t, payload[..cut].to_vec());
                    } else {
                        cutsnap.push_section(*t, p.clone());
                    }
                }
                let got = CheckpointState::from_snapshot(&cutsnap);
                prop_assert!(
                    matches!(got, Err(IoError::Parse { .. }) | Err(IoError::Invariant(_))),
                    "section {} cut {}: {:?}", tag, cut, got.map(|_| ())
                );
            }
        }
    }
}

#[test]
fn corrupt_crc_and_version_are_precise_errors() {
    let stream = surge_testkit::clustered_stream(48, 3, 7, 3);
    let bytes = real_snapshot_bytes(&stream, "corrupt");

    // Any payload bit flip trips the CRC.
    let mut flipped = bytes.clone();
    flipped[bytes.len() / 2] ^= 0x01;
    assert!(matches!(
        Snapshot::decode(&flipped),
        Err(IoError::Invariant(_))
    ));

    // A future version is a BadHeader, not a misparse.
    let mut versioned = bytes.clone();
    versioned[8] = 0xFE;
    let n = versioned.len();
    let crc = surge_io::crc32(&versioned[..n - 4]);
    versioned[n - 4..].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        Snapshot::decode(&versioned),
        Err(IoError::BadHeader { .. })
    ));

    // Wrong magic.
    let mut magic = bytes.clone();
    magic[0] = b'X';
    assert!(matches!(
        Snapshot::decode(&magic),
        Err(IoError::BadHeader { .. })
    ));
}

#[test]
fn semantic_corruption_is_rejected_by_the_state_decoder() {
    let stream = surge_testkit::clustered_stream(48, 3, 7, 9);
    let bytes = real_snapshot_bytes(&stream, "semantic");
    let snap = Snapshot::decode(&bytes).unwrap();
    let state = CheckpointState::from_snapshot(&snap).unwrap();

    // A missing section.
    let mut missing = Snapshot::new();
    for (t, p) in snap.sections().iter().skip(1) {
        missing.push_section(*t, p.clone());
    }
    assert!(matches!(
        CheckpointState::from_snapshot(&missing),
        Err(IoError::Invariant(_))
    ));

    // The snapshot round-trips through the typed state too.
    let again = CheckpointState::from_snapshot(&state.to_snapshot()).unwrap();
    assert_eq!(again, state);
}
