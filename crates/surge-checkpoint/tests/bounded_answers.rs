//! The unbounded-retention fix, end to end: with an acking consumer the
//! checkpoint runner's retained answers — and therefore its snapshot bytes
//! — stop growing with slide count, while the delivered answer stream stays
//! bit-identical to the retain-everything run.

use surge_checkpoint::{
    run_checkpointed, run_checkpointed_with_sink, CheckpointConfig, CheckpointDir,
    CheckpointPolicy, DetectorSpec, SyncPolicy, Tail,
};
use surge_core::{
    BurstDetector, Event, Point, RegionAnswer, RegionSize, ShardAnswer, ShardRunStats, ShardWorker,
    ShardWorkerStats, ShardedIngest, SpatialObject, SurgeQuery, WindowConfig,
};
use surge_exact::{BoundMode, SweepMode};
use surge_stream::{drive_sharded_with_sink, Ack};

/// A fully periodic stream (period 60 in position and weight, constant
/// timestamp spacing): once the windows saturate, residency at object
/// count `n` and at `n + 60k` is the same pattern — so any snapshot-size
/// difference between stream lengths can only come from retained answers.
fn periodic_stream(n: usize) -> Vec<SpatialObject> {
    (0..n)
        .map(|i| {
            SpatialObject::new(
                i as u64,
                1.0 + (i % 4) as f64,
                Point::new((i % 5) as f64 * 0.7, (i % 3) as f64 * 0.9),
                (i as u64) * 11,
            )
        })
        .collect()
}

fn config(slide_objects: usize) -> CheckpointConfig {
    let windows = WindowConfig::new(240, 120);
    CheckpointConfig {
        query: SurgeQuery::whole_space(RegionSize::new(1.5, 1.5), windows, 0.4),
        windows,
        spec: DetectorSpec::Cell {
            bound: BoundMode::Combined,
            sweep: SweepMode::Persistent,
            shards: 1,
        },
        slide_objects,
        threads: 1,
        policy: CheckpointPolicy {
            snapshot_every_slides: 4,
            wal_segment_objects: 64,
            keep_snapshots: 1,
            sync: SyncPolicy::OsFlush,
        },
    }
}

fn newest_snapshot_bytes(dir: &std::path::Path) -> u64 {
    let dir = CheckpointDir::create(dir).unwrap();
    let (path, _) = dir.latest_snapshot().unwrap().expect("a snapshot exists");
    std::fs::metadata(path).unwrap().len()
}

/// Snapshot size is flat in stream length under an acking consumer, and
/// grows without one — the direct test of the grow-forever fix.
#[test]
fn acked_snapshots_stop_growing_with_slide_count() {
    let base = std::env::temp_dir().join(format!("surge-bounded-{}", std::process::id()));
    let mut acked_sizes = Vec::new();
    let mut retained_sizes = Vec::new();
    let mut delivered_per_len = Vec::new();

    for (i, objects) in [240usize, 480, 960].into_iter().enumerate() {
        let stream = periodic_stream(objects);

        // Acking consumer: every flush is consumed on delivery.
        let acked_dir = base.join(format!("acked-{i}"));
        let mut delivered: Vec<Vec<RegionAnswer>> = Vec::new();
        let mut sink = |_seq: u64, answers: &Vec<RegionAnswer>| {
            delivered.push(answers.clone());
            Ack::Release
        };
        let report = run_checkpointed_with_sink(
            &config(8),
            &acked_dir,
            stream.iter().copied(),
            Tail::Finish,
            &mut sink,
        )
        .unwrap();
        assert!(report.answers.is_empty(), "everything was acked away");
        assert_eq!(report.answers.released(), report.slides);
        acked_sizes.push(newest_snapshot_bytes(&acked_dir));

        // The historical retain-everything run over the same stream.
        let retained_dir = base.join(format!("retained-{i}"));
        let full = run_checkpointed(
            &config(8),
            &retained_dir,
            stream.iter().copied(),
            Tail::Finish,
        )
        .unwrap();
        retained_sizes.push(newest_snapshot_bytes(&retained_dir));

        // Releasing answers must not change what the consumer sees: the
        // delivered sequence is the retained report, bit for bit.
        assert_eq!(delivered.len(), full.answers.len());
        for (s, (got, want)) in delivered.iter().zip(full.answers.iter()).enumerate() {
            assert_eq!(got.len(), want.len(), "flush {s}");
            for (a, b) in got.iter().zip(want.iter()) {
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "flush {s}");
                assert_eq!(a.point.x.to_bits(), b.point.x.to_bits(), "flush {s}");
                assert_eq!(a.point.y.to_bits(), b.point.y.to_bits(), "flush {s}");
            }
        }
        delivered_per_len.push(delivered.len());

        std::fs::remove_dir_all(&acked_dir).ok();
        std::fs::remove_dir_all(&retained_dir).ok();
    }
    std::fs::remove_dir_all(&base).ok();

    // Twice the stream, twice the flushes — so retention actually had
    // something to bound.
    assert!(delivered_per_len[2] > delivered_per_len[0] * 2);
    // The acked snapshot stops growing: doubling the stream leaves its
    // size unchanged (the answers section is empty either way, and the
    // periodic stream makes saturated-window residency a repeating
    // pattern).
    assert_eq!(
        acked_sizes[1], acked_sizes[2],
        "acked snapshot size must be flat in slide count: {acked_sizes:?}"
    );
    // The retain-everything snapshot keeps growing with every doubling.
    assert!(
        retained_sizes[2] > retained_sizes[1] && retained_sizes[1] > retained_sizes[0],
        "retained snapshot sizes should grow: {retained_sizes:?}"
    );
    // And the acked one is strictly smaller than its retained twin.
    assert!(acked_sizes[2] < retained_sizes[2]);
}

/// A detector that always has an answer — even for drained windows. The
/// cell detectors report `None` after the terminal drain, which made the
/// `final_answer = answers.last()` bug invisible to them: with a fully
/// acking sink `answers` is empty and `last()` is `None`, exactly the value
/// the drain happens to produce. This toy makes the terminal answer `Some`,
/// so the regression below fails on the pre-fix code.
struct AlwaysAnswer {
    events: u64,
}

struct AlwaysWorker<'a> {
    events: u64,
    _mesh: std::marker::PhantomData<&'a ()>,
}

impl ShardWorker for AlwaysWorker<'_> {
    fn on_event(&mut self, _event: &Event) {
        self.events += 1;
    }
    fn flush(&mut self) -> Option<ShardAnswer> {
        Some(ShardAnswer {
            point: Point::new(0.25, 0.25),
            score: 1.0 + self.events as f64,
            bound: 2.0 + self.events as f64,
            cell: (0, 0),
        })
    }
    fn stats(&self) -> ShardWorkerStats {
        ShardWorkerStats::default()
    }
}

impl BurstDetector for AlwaysAnswer {
    fn on_event(&mut self, _event: &Event) {
        self.events += 1;
    }
    fn current(&mut self) -> Option<RegionAnswer> {
        None
    }
    fn name(&self) -> &'static str {
        "always-answer"
    }
}

impl ShardedIngest for AlwaysAnswer {
    type Worker<'a> = AlwaysWorker<'a>;
    fn ingest_workers(&mut self) -> Vec<AlwaysWorker<'_>> {
        vec![AlwaysWorker {
            events: 0,
            _mesh: std::marker::PhantomData,
        }]
    }
    fn absorb_shard_run(&mut self, run: ShardRunStats) {
        self.events += run.events;
    }
    fn region_size(&self) -> RegionSize {
        RegionSize::new(1.5, 1.5)
    }
}

/// The sharded report's terminal answer is tracked independently of answer
/// retention: a consumer that acks every flush releases the whole
/// `answers` log, and `final_answer` must still hold the terminal flush's
/// answer. Pre-fix, `final_answer` was derived as `answers.last()`, which
/// is `None` as soon as the sink keeps up — this test fails on that code.
#[test]
fn terminal_answer_survives_a_fully_acked_consumer() {
    let stream = periodic_stream(120);

    // Ground truth: retain everything, terminal answer = last retained.
    let mut retained = AlwaysAnswer { events: 0 };
    let full = surge_stream::drive_sharded(
        &mut retained,
        WindowConfig::new(240, 120),
        stream.iter().copied(),
        8,
    );
    let want = full
        .answers
        .iter()
        .last()
        .copied()
        .flatten()
        .expect("the toy answers every flush");
    assert_eq!(
        full.final_answer.map(|a| a.score.to_bits()),
        Some(want.score.to_bits())
    );

    // The regression: a sink that releases every flush on delivery.
    let mut acked = AlwaysAnswer { events: 0 };
    let mut sink = |_seq: u64, _ans: &Option<RegionAnswer>| Ack::Release;
    let report = drive_sharded_with_sink(
        &mut acked,
        WindowConfig::new(240, 120),
        stream.iter().copied(),
        8,
        &mut sink,
    );
    assert!(report.answers.is_empty(), "everything was acked away");
    let got = report
        .final_answer
        .expect("terminal answer must survive full acking");
    assert_eq!(got.score.to_bits(), want.score.to_bits());
    assert_eq!(got.point.x.to_bits(), want.point.x.to_bits());
    assert_eq!(got.point.y.to_bits(), want.point.y.to_bits());
}

/// A consumer that acks lazily (every third flush) bounds retention by its
/// lag, not the stream length.
#[test]
fn retention_is_bounded_by_consumer_lag() {
    let base = std::env::temp_dir().join(format!("surge-lag-{}", std::process::id()));
    let stream = periodic_stream(600);
    let mut pending = 0u32;
    let mut sink = |_seq: u64, _answers: &Vec<RegionAnswer>| {
        pending += 1;
        if pending == 3 {
            pending = 0;
            Ack::Release
        } else {
            Ack::Hold
        }
    };
    let report = run_checkpointed_with_sink(
        &config(6),
        &base,
        stream.iter().copied(),
        Tail::Finish,
        &mut sink,
    )
    .unwrap();
    assert!(
        report.answers.len() < 3,
        "retained window exceeds consumer lag: {}",
        report.answers.len()
    );
    assert_eq!(
        report.answers.released() + report.answers.len() as u64,
        report.slides
    );
    std::fs::remove_dir_all(&base).ok();
}
