//! Degenerate and adversarial inputs for the exact detectors: coincident
//! objects, grid-line alignment, zero weights, ties, bulk expiry, and empty
//! domains. Each case is checked against the stateless snapshot oracle.

use surge_core::{BurstDetector, Point, Rect, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
use surge_exact::{snapshot_bursty_region, BaseDetector, BoundMode, CellCspot};
use surge_stream::SlidingWindowEngine;

fn query(alpha: f64) -> SurgeQuery {
    SurgeQuery::whole_space(RegionSize::new(2.0, 2.0), WindowConfig::equal(1_000), alpha)
}

/// Feeds a stream into all three exact detectors and asserts oracle-equal
/// scores after every object.
fn assert_all_exact_match(query: SurgeQuery, objects: &[SpatialObject]) {
    let mut detectors: Vec<Box<dyn BurstDetector>> = vec![
        Box::new(CellCspot::new(query)),
        Box::new(CellCspot::with_mode(query, BoundMode::StaticOnly)),
        Box::new(BaseDetector::new(query)),
    ];
    let mut engine = SlidingWindowEngine::new(query.windows);
    for (step, obj) in objects.iter().enumerate() {
        let events = engine.push(*obj);
        for det in detectors.iter_mut() {
            for ev in &events {
                det.on_event(ev);
            }
        }
        let current: Vec<SpatialObject> = engine.current_objects().copied().collect();
        let past: Vec<SpatialObject> = engine.past_objects().copied().collect();
        let oracle = snapshot_bursty_region(&current, &past, &query)
            .map(|a| a.score)
            .unwrap_or(0.0);
        for det in detectors.iter_mut() {
            let got = det.current().map(|a| a.score).unwrap_or(0.0);
            let scale = oracle.abs().max(1e-12);
            assert!(
                (oracle - got).abs() <= 1e-9 * scale,
                "step {step} [{}]: oracle {oracle} vs {got}",
                det.name()
            );
        }
    }
}

#[test]
fn all_objects_at_one_point() {
    let objs: Vec<SpatialObject> = (0..60)
        .map(|i| SpatialObject::new(i, 1.0 + (i % 3) as f64, Point::new(5.0, 5.0), i * 40))
        .collect();
    assert_all_exact_match(query(0.5), &objs);
}

#[test]
fn objects_exactly_on_grid_lines() {
    // Query size 2×2 → grid lines at even coordinates. Objects sit exactly on
    // lines and at lattice corners, where cell-assignment ambiguity would
    // show up as an oracle mismatch.
    let mut objs = Vec::new();
    for t in 0..40u64 {
        let x = ((t % 5) * 2) as f64; // 0, 2, 4, 6, 8 — all on lines
        let y = ((t % 3) * 2) as f64;
        objs.push(SpatialObject::new(t, 2.0, Point::new(x, y), t * 60));
    }
    assert_all_exact_match(query(0.3), &objs);
}

#[test]
fn zero_weight_objects_are_neutral() {
    let q = query(0.5);
    let mut with_zeros = Vec::new();
    let mut without = Vec::new();
    let mut id = 0;
    for t in 0..30u64 {
        let o = SpatialObject::new(id, 3.0, Point::new((t % 7) as f64, (t % 4) as f64), t * 50);
        with_zeros.push(o);
        without.push(o);
        id += 1;
        // Interleave zero-weight noise.
        with_zeros.push(SpatialObject::new(
            id,
            0.0,
            Point::new((t % 5) as f64, (t % 6) as f64),
            t * 50,
        ));
        id += 1;
    }
    let run = |objs: &[SpatialObject]| {
        let mut det = CellCspot::new(q);
        let mut engine = SlidingWindowEngine::new(q.windows);
        for o in objs {
            for ev in engine.push(*o) {
                det.on_event(&ev);
            }
        }
        det.current().map(|a| a.score).unwrap_or(0.0)
    };
    let a = run(&with_zeros);
    let b = run(&without);
    assert!(
        (a - b).abs() <= 1e-12,
        "zero weights changed score: {a} vs {b}"
    );
}

#[test]
fn bulk_expiry_after_long_silence() {
    // A dense burst, then silence long enough to expire everything, then one
    // straggler: the detector must process the mass transition correctly.
    let mut objs: Vec<SpatialObject> = (0..50)
        .map(|i| SpatialObject::new(i, 2.0, Point::new((i % 5) as f64 * 0.3, 1.0), 100 + i))
        .collect();
    objs.push(SpatialObject::new(999, 1.0, Point::new(9.0, 9.0), 50_000));
    assert_all_exact_match(query(0.7), &objs);
}

#[test]
fn score_ties_are_resolved_consistently() {
    // Two symmetric clusters with identical weight: either answer is correct
    // but the score must match the oracle, and all exact detectors must agree
    // on the score.
    let mut objs = Vec::new();
    for i in 0..20u64 {
        objs.push(SpatialObject::new(2 * i, 1.0, Point::new(1.0, 1.0), i * 30));
        objs.push(SpatialObject::new(
            2 * i + 1,
            1.0,
            Point::new(50.0, 50.0),
            i * 30,
        ));
    }
    assert_all_exact_match(query(0.5), &objs);
}

#[test]
fn alpha_zero_reduces_to_maxrs_semantics() {
    // With α = 0 the past window is irrelevant: scores must not change when
    // objects merely grow into the past window.
    let q = query(0.0);
    let mut det = CellCspot::new(q);
    let mut engine = SlidingWindowEngine::new(q.windows);
    for i in 0..10u64 {
        for ev in engine.push(SpatialObject::new(i, 1.0, Point::new(3.0, 3.0), i)) {
            det.on_event(&ev);
        }
    }
    let before = det.current().unwrap().score;
    // Advance so the cluster grows into the past window but a fresh twin
    // cluster arrives in the current window: same current mass, nonzero past
    // mass. α = 0 must score it identically.
    for i in 0..10u64 {
        for ev in engine.push(SpatialObject::new(
            100 + i,
            1.0,
            Point::new(3.0, 3.0),
            1_200 + i,
        )) {
            det.on_event(&ev);
        }
    }
    let after = det.current().unwrap().score;
    assert!(
        (before - after).abs() <= 1e-12,
        "alpha=0 must ignore the past window: {before} vs {after}"
    );
}

#[test]
fn area_narrower_than_region_yields_no_answer() {
    let q = SurgeQuery::new(
        Rect::new(0.0, 0.0, 1.0, 1.0),
        RegionSize::new(2.0, 2.0),
        WindowConfig::equal(1_000),
        0.5,
    );
    assert_eq!(q.point_domain(), None);
    let mut det = CellCspot::new(q);
    let mut engine = SlidingWindowEngine::new(q.windows);
    for ev in engine.push(SpatialObject::new(0, 5.0, Point::new(0.5, 0.5), 0)) {
        det.on_event(&ev);
    }
    assert!(
        det.current().is_none(),
        "no query-sized region fits in the area"
    );
}

#[test]
fn huge_weights_do_not_overflow_bounds() {
    let objs: Vec<SpatialObject> = (0..30)
        .map(|i| {
            SpatialObject::new(
                i,
                1e12 + (i as f64) * 1e10,
                Point::new((i % 4) as f64, (i % 6) as f64),
                i * 45,
            )
        })
        .collect();
    assert_all_exact_match(query(0.9), &objs);
}

#[test]
fn high_alpha_near_one_is_stable() {
    let objs: Vec<SpatialObject> = (0..80)
        .map(|i| {
            SpatialObject::new(
                i,
                1.0,
                Point::new((i * 13 % 17) as f64, (i * 7 % 11) as f64),
                i * 35,
            )
        })
        .collect();
    assert_all_exact_match(query(0.999), &objs);
}

#[test]
fn equal_timestamps_entire_stream() {
    // Every object arrives at t = 0: nothing ever grows or expires within
    // the stream; detectors see only New events.
    let objs: Vec<SpatialObject> = (0..40)
        .map(|i| SpatialObject::new(i, 1.0, Point::new((i % 8) as f64, (i / 8) as f64), 0))
        .collect();
    assert_all_exact_match(query(0.5), &objs);
}
