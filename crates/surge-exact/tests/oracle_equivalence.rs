//! Oracle-equivalence property tests: after *every* event of a random
//! stream, the continuous exact detectors (CCS, B-CCS, Base) must report the
//! same burst score as a stateless global sweep over the window snapshots.
//!
//! This is the strongest correctness statement for the incremental machinery:
//! upper bounds, candidate-point validity (Lemma 4) and lazy search can only
//! fail by reporting a wrong score at *some* snapshot, which this test would
//! catch.

use proptest::prelude::*;

use surge_core::{BurstDetector, Point, Rect, RegionSize, SpatialObject, SurgeQuery, WindowConfig};
use surge_exact::{snapshot_bursty_region, BaseDetector, BoundMode, CellCspot};
use surge_stream::SlidingWindowEngine;

const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-12);
    (a - b).abs() <= REL_TOL * scale
}

/// Runs a detector against the oracle after every object; panics on mismatch.
fn check_against_oracle(
    mut detector: impl BurstDetector,
    query: SurgeQuery,
    objects: &[SpatialObject],
) {
    let mut engine = SlidingWindowEngine::new(query.windows);
    for (step, obj) in objects.iter().enumerate() {
        for ev in engine.push(*obj) {
            detector.on_event(&ev);
        }
        let current: Vec<SpatialObject> = engine.current_objects().copied().collect();
        let past: Vec<SpatialObject> = engine.past_objects().copied().collect();
        let oracle = snapshot_bursty_region(&current, &past, &query);
        let got = detector.current();
        match (&oracle, &got) {
            (Some(o), Some(g)) => {
                assert!(
                    close(o.score, g.score),
                    "step {step} [{}]: oracle score {} != detector score {}\n\
                     oracle point {:?}, detector point {:?}",
                    detector.name(),
                    o.score,
                    g.score,
                    o.point,
                    g.point,
                );
            }
            (None, None) => {}
            // A detector may report a zero-score answer where the oracle
            // reports None (both mean "nothing bursty anywhere").
            (None, Some(g)) => assert!(
                g.score.abs() <= 1e-12,
                "step {step}: oracle empty but detector scored {}",
                g.score
            ),
            (Some(o), None) => assert!(
                o.score.abs() <= 1e-12,
                "step {step}: detector empty but oracle scored {}",
                o.score
            ),
        }
    }
}

/// Strategy: a stream of objects with integer-ish coordinates/weights to keep
/// float error negligible, clustered enough to create overlapping rectangles
/// and window churn (the shared [`surge_testkit::timed_stream`] shape).
fn object_stream(max_len: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    surge_testkit::arb_timed_stream(max_len)
}

fn small_query(alpha: f64) -> SurgeQuery {
    // Window 100ms so streams of ~40 objects with dt<40 exercise all three
    // event kinds heavily.
    SurgeQuery::whole_space(RegionSize::new(0.5, 0.5), WindowConfig::equal(100), alpha)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ccs_matches_oracle(objects in object_stream(40), alpha in 0.0f64..0.95) {
        let q = small_query(alpha);
        check_against_oracle(CellCspot::new(q), q, &objects);
    }

    #[test]
    fn bccs_matches_oracle(objects in object_stream(30), alpha in 0.0f64..0.95) {
        let q = small_query(alpha);
        check_against_oracle(CellCspot::with_mode(q, BoundMode::StaticOnly), q, &objects);
    }

    #[test]
    fn base_matches_oracle(objects in object_stream(30), alpha in 0.0f64..0.95) {
        let q = small_query(alpha);
        check_against_oracle(BaseDetector::new(q), q, &objects);
    }

    #[test]
    fn ccs_matches_oracle_with_restricted_area(objects in object_stream(30), alpha in 0.0f64..0.95) {
        let q = SurgeQuery::new(
            Rect::new(0.3, 0.3, 1.6, 1.6),
            RegionSize::new(0.5, 0.5),
            WindowConfig::equal(100),
            alpha,
        );
        check_against_oracle(CellCspot::new(q), q, &objects);
    }

    #[test]
    fn ccs_matches_oracle_unequal_windows(objects in object_stream(30), alpha in 0.0f64..0.95) {
        let q = SurgeQuery::whole_space(
            RegionSize::new(0.5, 0.5),
            WindowConfig::new(80, 160),
            alpha,
        );
        check_against_oracle(CellCspot::new(q), q, &objects);
    }
}

#[test]
fn regression_alignment_heavy_stream() {
    // All coordinates on exact multiples of the cell size: maximal
    // boundary-degeneracy (rect edges on grid lines everywhere).
    let q = SurgeQuery::whole_space(RegionSize::new(0.5, 0.5), WindowConfig::equal(100), 0.5);
    let objects: Vec<SpatialObject> = (0..30)
        .map(|i| {
            SpatialObject::new(
                i,
                1.0 + (i % 3) as f64,
                Point::new((i % 4) as f64 * 0.5, (i % 3) as f64 * 0.5),
                i * 25,
            )
        })
        .collect();
    check_against_oracle(CellCspot::new(q), q, &objects);
    check_against_oracle(BaseDetector::new(q), q, &objects);
}

#[test]
fn regression_all_objects_one_point() {
    let q = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(50), 0.7);
    let objects: Vec<SpatialObject> = (0..40)
        .map(|i| SpatialObject::new(i, 2.0, Point::new(1.0, 1.0), i * 10))
        .collect();
    check_against_oracle(CellCspot::new(q), q, &objects);
}
