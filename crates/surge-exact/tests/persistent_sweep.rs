//! Differential property tests for the persistent cross-sweep cell state:
//! [`PersistentCellSweep`] driven by long random event streams must match
//! the rebuild-per-search reference ([`sl_cspot_rebuild`]) **bitwise** —
//! score, point, and raw window sums — at every checkpoint, including
//! forced `rebuild_threshold` crossings, cell eviction + re-dirty through a
//! pool, and the `finish()` tail drain of full detector runs.

use proptest::prelude::*;
use surge_core::{BurstDetector, Rect, RegionSize, SurgeQuery, WindowConfig};
use surge_exact::{
    sl_cspot_rebuild, BoundMode, CellCspot, PersistentCellSweep, SweepArena, SweepMode, SweepPool,
};
use surge_stream::{drive_incremental, drive_sharded, SlidingWindowEngine};
use surge_testkit::{arb_lattice_stream, arb_window_config};

fn params(alpha_pct: u32) -> surge_core::BurstParams {
    surge_core::BurstParams {
        alpha: alpha_pct as f64 / 100.0,
        current_norm: 1.0,
        past_norm: 1.0,
    }
}

const DOMAIN: Rect = Rect {
    x0: -2.0,
    y0: -2.0,
    x1: 8.0,
    y1: 8.0,
};

/// One persistent-vs-rebuild checkpoint: both sweeps over the same resident
/// set must agree bit for bit.
fn check_bitwise(p: &mut PersistentCellSweep, arena: &mut SweepArena, alpha_pct: u32) {
    let rects = p.full_rects();
    let want = sl_cspot_rebuild(arena, &rects, &DOMAIN, &params(alpha_pct));
    let got = p.search();
    match (got, want) {
        (Some(a), Some(b)) => {
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "score");
            assert_eq!(a.point.x.to_bits(), b.point.x.to_bits(), "point.x");
            assert_eq!(a.point.y.to_bits(), b.point.y.to_bits(), "point.y");
            assert_eq!(a.wc.to_bits(), b.wc.to_bits(), "wc");
            assert_eq!(a.wp.to_bits(), b.wp.to_bits(), "wp");
        }
        (None, None) => {}
        other => panic!("persistent vs rebuild Some/None: {other:?}"),
    }
}

/// Event-stream operations against one cell: insert / grow / remove drawn
/// from a lattice so shared edges and exact coordinate collisions between
/// live and removed rectangles are common.
type RawOp = (u32, u32, u32, u32, u32, u32);

/// Applies the ops with periodic bitwise checks; returns the number of
/// *structural* ops executed (inserts + removes — the ones that churn the
/// persistent coordinate maps).
fn apply_ops(
    p: &mut PersistentCellSweep,
    arena: &mut SweepArena,
    ops: &[RawOp],
    alpha_pct: u32,
    check_every: usize,
) -> usize {
    let mut next_id = 0u64;
    let mut live: Vec<u64> = Vec::new();
    let mut structural = 0usize;
    for (step, &(kind, x, y, w, h, sel)) in ops.iter().enumerate() {
        match kind % 4 {
            // Insert dominates so cells actually grow.
            0 | 1 => {
                let x0 = x as f64 * 0.25 - 1.0;
                let y0 = y as f64 * 0.25 - 1.0;
                let rect = Rect::new(x0, y0, x0 + w as f64 * 0.25, y0 + h as f64 * 0.25);
                p.insert(next_id, rect, 1.0 + (w % 3) as f64);
                live.push(next_id);
                next_id += 1;
                structural += 1;
            }
            2 if !live.is_empty() => {
                let id = live[sel as usize % live.len()];
                assert!(p.grow(id));
            }
            3 if !live.is_empty() => {
                let id = live.swap_remove(sel as usize % live.len());
                assert!(p.remove(id).is_some());
                structural += 1;
            }
            _ => {}
        }
        if step % check_every == check_every - 1 {
            check_bitwise(p, arena, alpha_pct);
        }
    }
    check_bitwise(p, arena, alpha_pct);
    structural
}

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec(
        (0u32..4, 0u32..24, 0u32..24, 0u32..10, 0u32..10, 0u32..64),
        4..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Long random transition streams, checkpointed frequently: persistent
    /// state must match the rebuild reference bitwise at every checkpoint.
    #[test]
    fn persistent_matches_rebuild_bitwise(
        ops in arb_ops(160),
        alpha_pct in 0u32..100,
    ) {
        let mut p =
            PersistentCellSweep::new(Some(DOMAIN), params(alpha_pct), SweepMode::Persistent);
        let mut arena = SweepArena::new();
        apply_ops(&mut p, &mut arena, &ops, alpha_pct, 7);
    }

    /// Forced `rebuild_threshold` crossings: a zero threshold trips the
    /// fallback on any churn, a tiny positive one flips between the
    /// incremental and rebuild regimes mid-stream. Results must stay
    /// bitwise identical either way.
    #[test]
    fn threshold_crossings_stay_bitwise(
        ops in arb_ops(120),
        alpha_pct in 0u32..100,
        thresh_pct in 0u32..20,
    ) {
        let mut p =
            PersistentCellSweep::new(Some(DOMAIN), params(alpha_pct), SweepMode::Persistent);
        p.set_rebuild_threshold(thresh_pct as f64 / 100.0);
        let mut arena = SweepArena::new();
        let structural = apply_ops(&mut p, &mut arena, &ops, alpha_pct, 5);
        // Every insert/remove in this generator is in-domain and churns 6
        // maintained entries (4 edge refs + 2 order splices). The budget is
        // floored at MIN_CHURN_BUDGET even for a zero threshold, so a
        // crossing — and hence a full rebuild at the closing search — is
        // only *guaranteed* once structural churn exceeds that floor.
        if thresh_pct == 0 && structural * 6 > surge_exact::MIN_CHURN_BUDGET {
            prop_assert!(p.stats().full_rebuilds >= 1, "zero threshold never rebuilt");
        }
    }

    /// Cell eviction and re-dirty through a pool: drain the cell, retire
    /// its state, take it back for a "new" cell, and keep checking — pool
    /// reuse must be invisible bit for bit.
    #[test]
    fn eviction_and_pool_reuse_stay_bitwise(
        rounds in prop::collection::vec(arb_ops(60), 1..4),
        alpha_pct in 0u32..100,
    ) {
        let mut pool = SweepPool::new();
        let mut arena = SweepArena::new();
        for ops in rounds {
            let mut p = pool.take(Some(DOMAIN), params(alpha_pct), SweepMode::Persistent);
            prop_assert!(p.is_empty(), "pool leaked state into a fresh cell");
            apply_ops(&mut p, &mut arena, &ops, alpha_pct, 6);
            pool.retire(p);
        }
        prop_assert!(pool.retired_stats().searches > 0);
    }

    /// Detector level, end to end: a persistent-mode `CellCspot` and a
    /// rebuild-mode one driven through `drive_incremental` (which ends with
    /// the `finish()` tail drain) must report bitwise identical answers at
    /// every slide *and* at the terminal flush, with identical search
    /// counts — and the persistent run must do its coordinate work
    /// incrementally (fewer rebuilt evaluation positions than the rebuild
    /// run).
    #[test]
    fn detector_persistent_vs_rebuild_bitwise_per_slide(
        objs in arb_lattice_stream(220),
        windows in arb_window_config(400),
        alpha_pct in 0u32..100,
        slide_pow in 2u32..6,
    ) {
        let alpha = alpha_pct as f64 / 100.0;
        let slide = 1usize << slide_pow;
        let query = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, alpha);

        let mut pers = CellCspot::with_sweep_mode(query, BoundMode::Combined, SweepMode::Persistent, 4);
        let pers_report = drive_incremental(&mut pers, windows, objs.iter().copied(), slide, 1);

        let mut reb = CellCspot::with_sweep_mode(query, BoundMode::Combined, SweepMode::Rebuild, 4);
        let reb_report = drive_incremental(&mut reb, windows, objs.iter().copied(), slide, 1);

        prop_assert_eq!(pers_report.answers.len(), reb_report.answers.len());
        for (i, (a, b)) in pers_report
            .answers
            .iter()
            .zip(reb_report.answers.iter())
            .enumerate()
        {
            match (a, b) {
                (Some(x), Some(y)) => {
                    prop_assert_eq!(
                        x.score.to_bits(), y.score.to_bits(),
                        "slide {} (alpha {}): {} vs {}", i, alpha, x.score, y.score
                    );
                    prop_assert_eq!(x.point.x.to_bits(), y.point.x.to_bits());
                    prop_assert_eq!(x.point.y.to_bits(), y.point.y.to_bits());
                    prop_assert_eq!(x.region, y.region);
                }
                (None, None) => {}
                other => panic!("slide {i}: {other:?}"),
            }
        }
        prop_assert_eq!(pers_report.jobs, reb_report.jobs);
        prop_assert_eq!(pers.stats(), reb.stats());
        let (ps, rs) = (pers.sweep_stats(), reb.sweep_stats());
        prop_assert_eq!(ps.searches, rs.searches);
        if rs.rebuilt_leaves > 0 {
            prop_assert!(
                ps.rebuilt_leaves <= rs.rebuilt_leaves,
                "persistent rebuilt {} leaves, rebuild path {}",
                ps.rebuilt_leaves, rs.rebuilt_leaves
            );
        }
    }

    /// The sharded driver on a persistent detector still bit-matches the
    /// rebuild-mode incremental driver — persistence composes with lanes,
    /// shard workers and the terminal drain.
    #[test]
    fn sharded_persistent_matches_rebuild_incremental(
        objs in arb_lattice_stream(160),
        alpha_pct in 0u32..100,
        shard_pow in 0u32..4,
    ) {
        let alpha = alpha_pct as f64 / 100.0;
        let windows = WindowConfig::equal(300);
        let query = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, alpha);

        let mut reb = CellCspot::with_sweep_mode(query, BoundMode::Combined, SweepMode::Rebuild, 1);
        let seq = drive_incremental(&mut reb, windows, objs.iter().copied(), 32, 1);

        let shards = 1usize << shard_pow;
        let mut pers =
            CellCspot::with_sweep_mode(query, BoundMode::Combined, SweepMode::Persistent, shards);
        let par = drive_sharded(&mut pers, windows, objs.iter().copied(), 32);

        prop_assert_eq!(par.answers.len(), seq.answers.len());
        for (i, (a, b)) in par.answers.iter().zip(seq.answers.iter()).enumerate() {
            match (a, b) {
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.score.to_bits(), y.score.to_bits(), "slide {}", i);
                    prop_assert_eq!(x.point.x.to_bits(), y.point.x.to_bits());
                    prop_assert_eq!(x.point.y.to_bits(), y.point.y.to_bits());
                }
                (None, None) => {}
                other => panic!("slide {i}: {other:?}"),
            }
        }
        prop_assert_eq!(par.sweeps, seq.jobs);
    }
}

/// The lazy per-object path (`current()` after every event) also matches
/// the rebuild detector bitwise — searches happen at different cadences
/// than the slide drivers, exercising candidate caching between sweeps.
#[test]
fn lazy_per_event_path_matches_rebuild() {
    let objs = surge_testkit::clustered_stream(600, 4, 9, 0xBEEF_CAFE);
    for alpha in [0.0, 0.5, 0.9] {
        let windows = WindowConfig::equal(250);
        let query = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, alpha);
        let mut pers =
            CellCspot::with_sweep_mode(query, BoundMode::Combined, SweepMode::Persistent, 8);
        let mut reb = CellCspot::with_sweep_mode(query, BoundMode::Combined, SweepMode::Rebuild, 8);
        let mut engine_a = SlidingWindowEngine::new(windows);
        let mut engine_b = SlidingWindowEngine::new(windows);
        for obj in objs.iter().copied() {
            for ev in engine_a.push(obj) {
                pers.on_event(&ev);
            }
            for ev in engine_b.push(obj) {
                reb.on_event(&ev);
            }
            let a = pers.current();
            let b = reb.current();
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.score.to_bits(), y.score.to_bits(), "alpha {alpha}");
                    assert_eq!(x.point.x.to_bits(), y.point.x.to_bits());
                    assert_eq!(x.point.y.to_bits(), y.point.y.to_bits());
                }
                (None, None) => {}
                other => panic!("alpha {alpha}: {other:?}"),
            }
        }
        // Tail drain: both detectors end with empty windows and agree.
        for ev in engine_a.finish() {
            pers.on_event(&ev);
        }
        for ev in engine_b.finish() {
            reb.on_event(&ev);
        }
        assert_eq!(
            pers.current().map(|r| r.score.to_bits()),
            reb.current().map(|r| r.score.to_bits()),
            "alpha {alpha}: post-drain divergence"
        );
        assert_eq!(pers.stats(), reb.stats(), "alpha {alpha}");
        assert_eq!(pers.cell_count(), reb.cell_count());
        assert_eq!(pers.cell_count(), 0, "drained run must evict every cell");
    }
}

/// Base-detector sanity: persistent sweeps under the eager per-event search
/// cadence agree with CCS (both are exact detectors on the same stream).
#[test]
fn base_and_ccs_agree_with_persistent_sweeps() {
    let objs = surge_testkit::clustered_stream(300, 3, 11, 0x1234_5678);
    let windows = WindowConfig::equal(300);
    let query = SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), windows, 0.6);
    let mut base = surge_exact::BaseDetector::new(query);
    let mut ccs = CellCspot::new(query);
    let mut engine_a = SlidingWindowEngine::new(windows);
    let mut engine_b = SlidingWindowEngine::new(windows);
    for obj in objs {
        for ev in engine_a.push(obj) {
            base.on_event(&ev);
        }
        for ev in engine_b.push(obj) {
            ccs.on_event(&ev);
        }
        let a = base.current().map(|r| r.score);
        let b = ccs.current().map(|r| r.score);
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{x} vs {y}"),
            (None, None) => {}
            other => panic!("{other:?}"),
        }
    }
}
