//! End-to-end equivalence of the incremental dirty-cell path: driving
//! Cell-CSPOT through `drive_incremental` (snapshot dirty cells → parallel
//! sweeps → install) must produce exactly the state and answers of the
//! plain sequential driver, for any thread count — parallelism may only
//! change wall-clock time.

use surge_core::{
    BurstDetector, IncrementalDetector, Point, RegionSize, SpatialObject, SurgeQuery, WindowConfig,
};
use surge_exact::CellCspot;
use surge_stream::{drive_incremental, SlidingWindowEngine};
use surge_testkit::clustered_stream;

fn query(alpha: f64) -> SurgeQuery {
    SurgeQuery::whole_space(RegionSize::new(1.0, 1.0), WindowConfig::equal(500), alpha)
}

/// A clustered deterministic stream that keeps several cells contending.
fn stream(n: usize) -> Vec<SpatialObject> {
    clustered_stream(n, 5, 7, 0xA5A5_5A5A_1234_5678)
}

#[test]
fn parallel_dirty_sweeps_match_sequential_answers() {
    for alpha in [0.0, 0.5, 0.9] {
        let objs = stream(1_500);

        // Sequential reference: per-object events + lazy current().
        let mut seq = CellCspot::new(query(alpha));
        let mut engine = SlidingWindowEngine::new(WindowConfig::equal(500));
        for obj in objs.iter().copied() {
            for ev in engine.push(obj) {
                seq.on_event(&ev);
            }
        }
        let want = seq.current().map(|a| a.score);

        for threads in [1, 4] {
            let mut par = CellCspot::new(query(alpha));
            let report = drive_incremental(
                &mut par,
                WindowConfig::equal(500),
                objs.iter().copied(),
                64,
                threads,
            );
            // The last pre-drain flush sits exactly at stream end — it must
            // match the lazy sequential answer there. (The driver then
            // drains the tail windows, so the detector's *final* state sees
            // them empty.)
            assert!(report.answers.len() >= 2);
            let got = report.answers[report.answers.len() - 2].map(|a| a.score);
            match (want, got) {
                (Some(w), Some(g)) => assert!(
                    (w - g).abs() < 1e-12,
                    "alpha {alpha} threads {threads}: {w} vs {g}"
                ),
                (None, None) => {}
                other => panic!("alpha {alpha} threads {threads}: {other:?}"),
            }
            assert_eq!(report.objects, objs.len() as u64);
            assert!(report.slides >= (objs.len() / 64) as u64);
            assert!(report.jobs > 0, "clustered stream must dirty cells");
            // After the terminal flush every cell is fresh: reading the
            // answer triggers no extra search.
            assert_eq!(par.dirty_cell_count(), 0);
            // Post-drain the windows are empty, so the drained sequential
            // reference agrees bit-for-bit with the driver's final answer.
            let mut drained = CellCspot::new(query(alpha));
            let mut eng = SlidingWindowEngine::new(WindowConfig::equal(500));
            for obj in objs.iter().copied() {
                for ev in eng.push(obj) {
                    drained.on_event(&ev);
                }
            }
            for ev in eng.finish() {
                drained.on_event(&ev);
            }
            assert_eq!(
                drained.current().map(|a| a.score.to_bits()),
                report.answers.last().unwrap().map(|a| a.score.to_bits()),
                "alpha {alpha} threads {threads}: post-drain divergence"
            );
        }
    }
}

#[test]
fn snapshot_install_equals_lazy_search() {
    // Apply the same events to two detectors; resolve one lazily via
    // current(), the other eagerly via snapshot → run → install. Scores and
    // dirty-cell bookkeeping must agree.
    let objs = stream(400);
    let mut lazy = CellCspot::new(query(0.5));
    let mut eager = CellCspot::new(query(0.5));
    let mut engine_a = SlidingWindowEngine::new(WindowConfig::equal(500));
    let mut engine_b = SlidingWindowEngine::new(WindowConfig::equal(500));
    for (i, obj) in objs.iter().enumerate() {
        for ev in engine_a.push(*obj) {
            lazy.on_event(&ev);
        }
        for ev in engine_b.push(*obj) {
            eager.on_event(&ev);
        }
        if i % 50 == 49 {
            let jobs = eager.snapshot_dirty_jobs();
            let outcomes: Vec<_> = jobs.iter().map(|j| eager.run_job(j)).collect();
            eager.install_outcomes(outcomes);
            assert_eq!(eager.dirty_cell_count(), 0);

            let a = lazy.current().map(|r| r.score);
            let b = eager.current().map(|r| r.score);
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert!((x - y).abs() < 1e-12, "step {i}: {x} vs {y}")
                }
                (None, None) => {}
                other => panic!("step {i}: {other:?}"),
            }
        }
    }
    // The eager path performed the same searches the lazy path would have
    // needed, plus sweeps of cells whose bounds let current() skip them —
    // never fewer.
    assert!(eager.stats().searches >= lazy.stats().searches);
}

#[test]
fn snapshot_of_clean_detector_is_empty() {
    let mut d = CellCspot::new(query(0.5));
    assert!(d.snapshot_dirty_jobs().is_empty());
    let mut engine = SlidingWindowEngine::new(WindowConfig::equal(500));
    for ev in engine.push(SpatialObject::new(0, 1.0, Point::new(0.5, 0.5), 0)) {
        d.on_event(&ev);
    }
    assert!(d.dirty_cell_count() > 0);
    // current() resolves lazily: it may leave bound-dominated cells stale
    // (that is the point of the bounds), so dirt can remain...
    let _ = d.current();
    // ...whereas snapshot → install sweeps *every* dirty cell eagerly.
    let jobs = d.snapshot_dirty_jobs();
    let outcomes: Vec<_> = jobs.iter().map(|j| d.run_job(j)).collect();
    d.install_outcomes(outcomes);
    assert_eq!(d.dirty_cell_count(), 0);
    assert!(d.snapshot_dirty_jobs().is_empty());
}
