//! Differential tests: the production `O(n log n)` segment-tree sweep
//! against the retained naive `O(n²)` midpoint-enumeration sweep, over
//! randomized rectangle sets — current + past mixes, degenerate and
//! edge-aligned rectangles, varying α and window normalizers.
//!
//! The two sweeps must agree on the *score* exactly up to floating-point
//! accumulation (≤ 1e-9 relative here), and each returned point must attain
//! its reported score under exhaustive re-scoring.

use proptest::prelude::*;
use surge_core::{BurstParams, Point, Rect, WindowKind};
use surge_exact::{score_at_point, sl_cspot, sl_cspot_naive, SweepRect};
use surge_testkit::arb_scene;

const AREA: Rect = Rect {
    x0: -50.0,
    y0: -50.0,
    x1: 50.0,
    y1: 50.0,
};

fn check_equivalence(rects: &[SweepRect], params: &BurstParams) {
    let fast = sl_cspot(rects, &AREA, params);
    let naive = sl_cspot_naive(rects, &AREA, params);
    match (fast, naive) {
        (Some(f), Some(n)) => {
            assert!(
                (f.score - n.score).abs() <= 1e-9 * n.score.abs().max(1.0),
                "segtree {} vs naive {}",
                f.score,
                n.score
            );
            // Both returned points must attain their reported scores.
            let fr = score_at_point(rects, f.point, params);
            assert!((fr.score - f.score).abs() <= 1e-9 * f.score.abs().max(1.0));
            let nr = score_at_point(rects, n.point, params);
            assert!((nr.score - n.score).abs() <= 1e-9 * n.score.abs().max(1.0));
        }
        (None, None) => {}
        other => panic!("sweep disagreement on Some/None: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Snapped random scenes across the α sweep used by the paper.
    #[test]
    fn segtree_matches_naive_on_lattice_scenes(
        rects in arb_scene(24),
        alpha_pct in 0u32..100,
    ) {
        let params = BurstParams {
            alpha: alpha_pct as f64 / 100.0,
            current_norm: 1.0,
            past_norm: 1.0,
        };
        check_equivalence(&rects, &params);
    }

    /// Asymmetric window normalizers exercise the `−α·w/|W_p|` scaling of
    /// past rectangles in the tree.
    #[test]
    fn segtree_matches_naive_with_asymmetric_norms(
        rects in arb_scene(16),
        alpha_pct in 0u32..100,
        cur_norm in 1u32..2_000,
        past_norm in 1u32..2_000,
    ) {
        let params = BurstParams {
            alpha: alpha_pct as f64 / 100.0,
            current_norm: cur_norm as f64,
            past_norm: past_norm as f64,
        };
        check_equivalence(&rects, &params);
    }

    /// Scenes clipped by a small search area (cell-domain shape): clipping
    /// produces edge-aligned and degenerate rectangles by construction.
    #[test]
    fn segtree_matches_naive_under_tight_clipping(
        rects in arb_scene(16),
        alpha_pct in 0u32..100,
        ax in 0u32..20,
        ay in 0u32..20,
    ) {
        let params = BurstParams {
            alpha: alpha_pct as f64 / 100.0,
            current_norm: 1.0,
            past_norm: 1.0,
        };
        let x0 = ax as f64 * 0.25 - 3.0;
        let y0 = ay as f64 * 0.25 - 3.0;
        let area = Rect::new(x0, y0, x0 + 1.5, y0 + 1.5);
        let fast = sl_cspot(&rects, &area, &params);
        let naive = sl_cspot_naive(&rects, &area, &params);
        match (fast, naive) {
            (Some(f), Some(n)) => {
                prop_assert!(
                    (f.score - n.score).abs() <= 1e-9 * n.score.abs().max(1.0),
                    "segtree {} vs naive {}", f.score, n.score
                );
                prop_assert!(area.contains(f.point));
            }
            (None, None) => {}
            other => panic!("sweep disagreement on Some/None: {other:?}"),
        }
    }
}

/// Deterministic worst-case-ish scenes the lattice generator rarely hits.
#[test]
fn segtree_matches_naive_on_adversarial_scenes() {
    let params = |alpha: f64| BurstParams {
        alpha,
        current_norm: 1.0,
        past_norm: 1.0,
    };

    // All rectangles identical (maximum tie pressure).
    let same: Vec<SweepRect> = (0..12)
        .map(|i| SweepRect {
            rect: Rect::new(0.0, 0.0, 1.0, 1.0),
            weight: 1.0 + (i % 3) as f64,
            kind: if i % 2 == 0 {
                WindowKind::Past
            } else {
                WindowKind::Current
            },
        })
        .collect();
    check_equivalence(&same, &params(0.5));

    // A column of horizontally-stacked slivers sharing edges.
    let slivers: Vec<SweepRect> = (0..20)
        .map(|i| SweepRect {
            rect: Rect::new(i as f64, 0.0, (i + 1) as f64, 10.0),
            weight: 1.0 + (i % 5) as f64,
            kind: if i % 3 == 0 {
                WindowKind::Past
            } else {
                WindowKind::Current
            },
        })
        .collect();
    check_equivalence(&slivers, &params(0.9));

    // Point/segment degenerate rectangles stabbing a big one.
    let degenerate = vec![
        SweepRect {
            rect: Rect::new(0.0, 0.0, 4.0, 4.0),
            weight: 2.0,
            kind: WindowKind::Current,
        },
        SweepRect {
            rect: Rect::new(2.0, 2.0, 2.0, 2.0), // point
            weight: 5.0,
            kind: WindowKind::Current,
        },
        SweepRect {
            rect: Rect::new(1.0, 3.0, 3.0, 3.0), // horizontal segment
            weight: 3.0,
            kind: WindowKind::Past,
        },
        SweepRect {
            rect: Rect::new(3.0, 1.0, 3.0, 3.5), // vertical segment
            weight: 4.0,
            kind: WindowKind::Current,
        },
    ];
    for a in [0.0, 0.3, 0.7, 0.99] {
        check_equivalence(&degenerate, &params(a));
    }

    // The sweep must find the point-rect pile: fc = 2 + 5 at (2, 2).
    let res = sl_cspot(&degenerate, &AREA, &params(0.0)).unwrap();
    assert_eq!(res.point, Point::new(2.0, 2.0));
    assert_eq!(res.wc, 7.0);
}

// ---------------------------------------------------------------------------
// Flat vs recursive segment tree
// ---------------------------------------------------------------------------

use surge_exact::{
    sl_cspot_with, BurstSegTree, MaxAddTree, RecursiveMaxAddTree, SplitBurstSegTree, SweepArena,
};

// ---------------------------------------------------------------------------
// Fused SoA lanes vs split per-form trees
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fused SoA-lane tree against the split two-tree reference over
    /// random insert/remove burst-update sequences: max and argmax must
    /// agree bit for bit after every apply. α runs to 1.0 inclusive so the
    /// zero current-signal coefficient exercises `-0.0` lane sums (a lane
    /// that canonicalized zeros would diverge here), and removals replay
    /// earlier inserts with `sign = -1` the way the persistent sweep does.
    #[test]
    fn fused_lanes_match_split_trees_bitwise(
        n in 1usize..100,
        ops in prop::collection::vec(
            (0u32..1_000, 0u32..1_000, 1u32..5, any::<bool>(), any::<bool>()),
            1..150,
        ),
        alpha_pct in 0u32..=100,
        cur_norm in 1u32..500,
        past_norm in 1u32..500,
    ) {
        let params = BurstParams {
            alpha: alpha_pct as f64 / 100.0,
            current_norm: cur_norm as f64,
            past_norm: past_norm as f64,
        };
        let mut fused = BurstSegTree::new(n, &params);
        let mut split = SplitBurstSegTree::new(n, &params);
        let mut live: Vec<(usize, usize, f64, WindowKind)> = Vec::new();
        for (a, b, w, past, remove) in ops {
            let (l, r, w, kind) = if remove && !live.is_empty() {
                let (l, r, w, kind) = live.swap_remove(a as usize % live.len());
                fused.apply(l, r, w, kind, -1.0);
                split.apply(l, r, w, kind, -1.0);
                (l, r, w, kind)
            } else {
                let (a, b) = (a as usize % n, b as usize % n);
                let (l, r) = (a.min(b), a.max(b));
                let kind = if past { WindowKind::Past } else { WindowKind::Current };
                fused.apply(l, r, w as f64, kind, 1.0);
                split.apply(l, r, w as f64, kind, 1.0);
                live.push((l, r, w as f64, kind));
                (l, r, w as f64, kind)
            };
            let (fm, fa) = fused.top();
            let (sm, sa) = split.top();
            prop_assert_eq!(
                fm.to_bits(), sm.to_bits(),
                "n {} op ({}, {}, {}, {:?}): fused {} vs split {}",
                n, l, r, w, kind, fm, sm
            );
            prop_assert_eq!(fa, sa, "argmax");
        }
    }

    /// Resizing a loaded fused tree through `clear_values` + `sync_len`
    /// (the persistent sweep's reuse path) tracks the split reference doing
    /// the same: pool reuse must stay bitwise invisible in both layouts.
    #[test]
    fn fused_and_split_agree_across_sync_len_resizes(
        sizes in prop::collection::vec(1usize..60, 2..5),
        applies in prop::collection::vec(
            (0u32..1_000, 0u32..1_000, 1u32..5, any::<bool>()),
            1..40,
        ),
        alpha_pct in 0u32..=100,
    ) {
        let params = BurstParams {
            alpha: alpha_pct as f64 / 100.0,
            current_norm: 1.0,
            past_norm: 1.0,
        };
        let mut fused = BurstSegTree::new(sizes[0], &params);
        let mut split = SplitBurstSegTree::new(sizes[0], &params);
        for &n in &sizes {
            fused.clear_values();
            fused.sync_len(n, &params);
            split.clear_values();
            split.sync_len(n, &params);
            for &(a, b, w, past) in &applies {
                let (a, b) = (a as usize % n, b as usize % n);
                let (l, r) = (a.min(b), a.max(b));
                let kind = if past { WindowKind::Past } else { WindowKind::Current };
                fused.apply(l, r, w as f64, kind, 1.0);
                split.apply(l, r, w as f64, kind, 1.0);
                let (fm, fa) = fused.top();
                let (sm, sa) = split.top();
                prop_assert_eq!(fm.to_bits(), sm.to_bits(), "n {}: {} vs {}", n, fm, sm);
                prop_assert_eq!(fa, sa, "argmax at n {}", n);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental leaf edits (the persistent-sweep tree API)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `insert_leaf` / `remove_leaf` interleaved with integer range adds
    /// against a plain `Vec<f64>` model: leaf values, the max and the
    /// leftmost-tie argmax must agree exactly after every operation —
    /// covering both the pristine O(log n) fast path and the loaded-tree
    /// rebuild fallback.
    #[test]
    fn leaf_edits_match_vec_model(
        ops in prop::collection::vec((0u32..4, 0u32..1_000, 0u32..1_000, -9i32..10), 1..120),
    ) {
        let mut model: Vec<f64> = Vec::new();
        let mut tree = MaxAddTree::new(0);
        for (kind, a, b, v) in ops {
            match kind {
                0 => {
                    let at = a as usize % (model.len() + 1);
                    model.insert(at, 0.0);
                    tree.insert_leaf(at);
                }
                1 if !model.is_empty() => {
                    let at = a as usize % model.len();
                    model.remove(at);
                    tree.remove_leaf(at);
                }
                _ if !model.is_empty() => {
                    let (a, b) = (a as usize % model.len(), b as usize % model.len());
                    let (l, r) = (a.min(b), a.max(b));
                    for x in &mut model[l..=r] {
                        *x += v as f64;
                    }
                    tree.add(l, r, v as f64);
                }
                _ => {}
            }
            prop_assert_eq!(tree.len(), model.len());
            prop_assert_eq!(tree.leaf_values(), model.clone());
            if !model.is_empty() {
                let (want_arg, want_max) = model
                    .iter()
                    .enumerate()
                    .fold((0usize, f64::NEG_INFINITY), |(am, m), (i, &x)| {
                        if x > m { (i, x) } else { (am, m) }
                    });
                let (got_max, got_arg) = tree.top();
                prop_assert_eq!(got_max.to_bits(), want_max.to_bits());
                prop_assert_eq!(got_arg, want_arg, "argmax");
            }
        }
    }

    /// The persistent path's tree maintenance — `clear_values` followed by
    /// incremental `sync_len` — must leave a `BurstSegTree` bitwise
    /// identical to a freshly `reset` one: the same apply sequence then
    /// yields the same max/argmax bit for bit. (Bit-identity of the whole
    /// persistent sweep reduces to this plus identical inputs.)
    #[test]
    fn clear_and_sync_is_bitwise_reset(
        n0 in 1usize..40,
        n1 in 1usize..40,
        applies in prop::collection::vec((0u32..1_000, 0u32..1_000, 1u32..5, any::<bool>()), 1..40),
        alpha_pct in 0u32..100,
    ) {
        let params = BurstParams {
            alpha: alpha_pct as f64 / 100.0,
            current_norm: 1.0,
            past_norm: 1.0,
        };
        // Dirty a tree at n0 leaves, then clear + sync to n1.
        let mut synced = BurstSegTree::new(n0, &params);
        synced.apply(0, n0 - 1, 2.0, surge_core::WindowKind::Current, 1.0);
        synced.clear_values();
        synced.sync_len(n1, &params);
        let mut fresh = BurstSegTree::new(n1, &params);
        for (a, b, w, past) in applies {
            let (a, b) = (a as usize % n1, b as usize % n1);
            let (l, r) = (a.min(b), a.max(b));
            let kind = if past { WindowKind::Past } else { WindowKind::Current };
            synced.apply(l, r, w as f64, kind, 1.0);
            fresh.apply(l, r, w as f64, kind, 1.0);
            let (sm, sa) = synced.top();
            let (fm, fa) = fresh.top();
            prop_assert_eq!(sm.to_bits(), fm.to_bits(), "max mismatch at n1={}", n1);
            prop_assert_eq!(sa, fa, "argmax mismatch");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random interval-add scenes with integer values: arithmetic is exact,
    /// so the flat production tree and the recursive reference must agree
    /// bit-for-bit after every operation — max *and* argmax (both trees
    /// break ties leftmost, independent of tree shape).
    #[test]
    fn flat_tree_matches_recursive_on_random_interval_adds(
        n in 1usize..130,
        ops in prop::collection::vec((0u32..1_000, 0u32..1_000, -12i32..13), 1..200),
    ) {
        let mut flat = MaxAddTree::new(n);
        let mut rec = RecursiveMaxAddTree::new(n);
        for (a, b, v) in ops {
            let (a, b) = (a as usize % n, b as usize % n);
            let (l, r) = (a.min(b), a.max(b));
            flat.add(l, r, v as f64);
            rec.add(l, r, v as f64);
            let (fm, fa) = flat.top();
            let (rm, ra) = rec.top();
            prop_assert_eq!(fm.to_bits(), rm.to_bits(), "n {} max {} vs {}", n, fm, rm);
            prop_assert_eq!(fa, ra, "n {} argmax", n);
        }
    }

    /// Signed-zero adds: `-0.0` and `+0.0` interleaved with ±1 values. The
    /// trees may legitimately differ in the *sign* of a zero (their internal
    /// sums associate differently), so compare under `==` — what matters is
    /// that the max value and the leftmost-tie argmax agree.
    #[test]
    fn flat_tree_matches_recursive_with_negative_zero_adds(
        n in 1usize..40,
        ops in prop::collection::vec((0u32..100, 0u32..100, 0u32..4), 1..120),
    ) {
        let values = [-0.0f64, 0.0, 1.0, -1.0];
        let mut flat = MaxAddTree::new(n);
        let mut rec = RecursiveMaxAddTree::new(n);
        for (a, b, vi) in ops {
            let (a, b) = (a as usize % n, b as usize % n);
            let (l, r) = (a.min(b), a.max(b));
            let v = values[vi as usize];
            flat.add(l, r, v);
            rec.add(l, r, v);
            let (fm, fa) = flat.top();
            let (rm, ra) = rec.top();
            prop_assert!(fm == rm, "n {} max {} vs {}", n, fm, rm);
            prop_assert_eq!(fa, ra, "n {} argmax", n);
        }
    }

    /// A reused arena must be invisible: sweeping a *sequence* of unrelated
    /// scenes through one `SweepArena` yields bitwise the results of fresh
    /// per-scene sweeps — including scenes with `-0.0` edges, which stress
    /// the total-order dedup of the recycled coordinate buffers.
    #[test]
    fn arena_reuse_is_bitwise_invisible(
        scenes in prop::collection::vec(arb_scene(14), 1..6),
        alpha_pct in 0u32..100,
        flip_zero in any::<bool>(),
    ) {
        let params = BurstParams {
            alpha: alpha_pct as f64 / 100.0,
            current_norm: 1.0,
            past_norm: 1.0,
        };
        let signed_zero = |v: f64| if flip_zero && v == 0.0 { -0.0 } else { v };
        let mut arena = SweepArena::new();
        for scene in scenes {
            let scene: Vec<SweepRect> = scene
                .into_iter()
                .map(|r| SweepRect {
                    rect: Rect::new(
                        signed_zero(r.rect.x0),
                        signed_zero(r.rect.y0),
                        signed_zero(r.rect.x1),
                        signed_zero(r.rect.y1),
                    ),
                    ..r
                })
                .collect();
            let reused = sl_cspot_with(&mut arena, &scene, &AREA, &params);
            let fresh = sl_cspot(&scene, &AREA, &params);
            match (reused, fresh) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
                    prop_assert_eq!(a.point.x.to_bits(), b.point.x.to_bits());
                    prop_assert_eq!(a.point.y.to_bits(), b.point.y.to_bits());
                    prop_assert_eq!(a.wc.to_bits(), b.wc.to_bits());
                    prop_assert_eq!(a.wp.to_bits(), b.wp.to_bits());
                }
                (None, None) => {}
                other => panic!("arena reuse changed Some/None: {other:?}"),
            }
        }
    }
}
