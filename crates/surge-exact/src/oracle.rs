//! Snapshot oracles: slow, obviously-correct reference implementations used
//! by tests and by the approximation-ratio experiments (Tables III and IV).

use surge_core::{
    object_to_rect, BurstParams, Rect, RegionAnswer, RegionSize, SpatialObject, SurgeQuery,
    WindowKind,
};

use crate::sweep::{score_at_point, sl_cspot, SweepRect};

/// Converts window snapshots into tagged sweep rectangles for a query size,
/// filtering by the preferred area.
pub fn snapshot_rects(
    current: &[SpatialObject],
    past: &[SpatialObject],
    query: &SurgeQuery,
) -> Vec<SweepRect> {
    let mut rects = Vec::with_capacity(current.len() + past.len());
    for (objs, kind) in [(current, WindowKind::Current), (past, WindowKind::Past)] {
        for o in objs {
            if query.accepts(o.pos) {
                let g = object_to_rect(o, query.region);
                rects.push(SweepRect {
                    rect: g.rect,
                    weight: g.weight,
                    kind,
                });
            }
        }
    }
    rects
}

/// The exact bursty region for a snapshot, computed by one global sweep over
/// all rectangles — O(n²) and stateless, the ground truth for every detector.
pub fn snapshot_bursty_region(
    current: &[SpatialObject],
    past: &[SpatialObject],
    query: &SurgeQuery,
) -> Option<RegionAnswer> {
    let rects = snapshot_rects(current, past, query);
    let domain = query.point_domain()?;
    let params = query.burst_params();
    let res = sl_cspot(&rects, &domain, &params)?;
    if res.score < 0.0 {
        return None;
    }
    Some(RegionAnswer::from_point(res.point, query.region, res.score))
}

/// The exact burst score of an arbitrary `region` (not necessarily
/// query-sized) on a snapshot: used to evaluate the regions the approximate
/// detectors report.
pub fn score_of_region(
    current: &[SpatialObject],
    past: &[SpatialObject],
    region: &Rect,
    params: &BurstParams,
) -> f64 {
    let mut wc = 0.0;
    let mut wp = 0.0;
    for o in current {
        if region.contains(o.pos) {
            wc += o.weight;
        }
    }
    for o in past {
        if region.contains(o.pos) {
            wp += o.weight;
        }
    }
    params.score_weights(wc, wp)
}

/// Greedy top-k oracle (Definition 9): repeatedly finds the bursty point over
/// the rectangles not covering any previously chosen point.
pub fn snapshot_topk(
    current: &[SpatialObject],
    past: &[SpatialObject],
    query: &SurgeQuery,
    k: usize,
) -> Vec<RegionAnswer> {
    let mut rects = snapshot_rects(current, past, query);
    let Some(domain) = query.point_domain() else {
        return Vec::new();
    };
    let params = query.burst_params();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let Some(res) = sl_cspot(&rects, &domain, &params) else {
            break;
        };
        // Only positively-scored regions are meaningful answers; a zero
        // score (up to rounding noise) means "nothing bursty remains".
        if res.score <= surge_core::SCORE_EPS {
            break;
        }
        out.push(RegionAnswer::from_point(res.point, query.region, res.score));
        // Exclude rectangles covering the chosen point from later rounds.
        rects.retain(|r| !r.rect.contains(res.point));
    }
    out
}

/// Re-scores a point against a snapshot (both windows), for verifying
/// detector answers.
pub fn verify_point_score(
    current: &[SpatialObject],
    past: &[SpatialObject],
    query: &SurgeQuery,
    point: surge_core::Point,
) -> f64 {
    let rects = snapshot_rects(current, past, query);
    score_at_point(&rects, point, &query.burst_params()).score
}

/// Helper for tests: the paper's `q` region for a unit square workspace.
pub fn unit_region() -> RegionSize {
    RegionSize::new(1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use surge_core::{Point, WindowConfig};

    fn query(alpha: f64) -> SurgeQuery {
        SurgeQuery::whole_space(unit_region(), WindowConfig::equal(1_000), alpha)
    }

    fn obj(id: u64, w: f64, x: f64, y: f64) -> SpatialObject {
        SpatialObject::new(id, w, Point::new(x, y), 0)
    }

    #[test]
    fn oracle_finds_cluster() {
        let current = [
            obj(0, 1.0, 0.0, 0.0),
            obj(1, 1.0, 0.3, 0.3),
            obj(2, 1.0, 9.0, 9.0),
        ];
        let ans = snapshot_bursty_region(&current, &[], &query(0.5)).unwrap();
        assert!((ans.score - 2.0 / 1_000.0).abs() < 1e-12);
        assert!(ans.region.contains(Point::new(0.0, 0.0)));
        assert!(ans.region.contains(Point::new(0.3, 0.3)));
    }

    #[test]
    fn empty_snapshot_gives_none() {
        assert!(snapshot_bursty_region(&[], &[], &query(0.5)).is_none());
    }

    #[test]
    fn score_of_region_counts_windows() {
        let params = query(0.5).burst_params();
        let region = Rect::new(0.0, 0.0, 1.0, 1.0);
        let current = [obj(0, 4.0, 0.5, 0.5)];
        let past = [obj(1, 2.0, 0.5, 0.5), obj(2, 100.0, 5.0, 5.0)];
        let s = score_of_region(&current, &past, &region, &params);
        // fc = 4/1000, fp = 2/1000 -> 0.5*(2/1000) + 0.5*(4/1000) = 3/1000
        assert!((s - 3.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn topk_excludes_covered_objects() {
        // Two clusters; k=2 must report both, not the same one twice.
        let current = [
            obj(0, 1.0, 0.0, 0.0),
            obj(1, 1.0, 0.2, 0.2),
            obj(2, 1.0, 10.0, 10.0),
        ];
        let q = query(0.0);
        let top = snapshot_topk(&current, &[], &q, 2);
        assert_eq!(top.len(), 2);
        assert!((top[0].score - 2.0 / 1_000.0).abs() < 1e-12);
        assert!((top[1].score - 1.0 / 1_000.0).abs() < 1e-12);
        assert!(top[1].region.contains(Point::new(10.0, 10.0)));
    }

    #[test]
    fn topk_scores_are_non_increasing() {
        let current: Vec<SpatialObject> = (0..20)
            .map(|i| {
                obj(
                    i,
                    1.0 + (i % 3) as f64,
                    (i as f64 * 0.37) % 7.0,
                    (i as f64 * 0.61) % 7.0,
                )
            })
            .collect();
        let top = snapshot_topk(&current, &[], &query(0.3), 5);
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
    }

    #[test]
    fn verify_point_score_matches_region_score() {
        let q = query(0.5);
        let current = [obj(0, 3.0, 1.0, 1.0)];
        let past = [obj(1, 1.0, 1.2, 1.2)];
        let p = Point::new(1.5, 1.5);
        let via_point = verify_point_score(&current, &past, &q, p);
        let region = surge_core::region_for_point(p, q.region);
        let via_region = score_of_region(&current, &past, &region, &q.burst_params());
        assert!((via_point - via_region).abs() < 1e-12);
    }
}
