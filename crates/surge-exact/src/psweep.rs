//! Persistent cross-sweep cell state: SL-CSPOT inputs that survive events.
//!
//! Every search in PRs 1–3 rebuilt a cell's sweep from its full rectangle
//! set: re-clip, re-sort the edge coordinates, re-derive the evaluation
//! positions and leaf ranges, re-sort the enter/exit orders — `O(n log n)`
//! comparison work per search even when only one rectangle changed since the
//! previous one. [`PersistentCellSweep`] keeps that derived state **across
//! events**: the `New`/`Grown`/`Expired` transitions the window engines emit
//! are applied to the persistent structures directly
//! ([`insert`](PersistentCellSweep::insert) /
//! [`grow`](PersistentCellSweep::grow) /
//! [`remove`](PersistentCellSweep::remove)), so the per-search rebuild cost
//! becomes proportional to the *churn* since the last search, not the cell
//! population.
//!
//! # What persists
//!
//! * the cell's rectangles, id-ordered (a sorted `Vec`, not a hash map — the
//!   deterministic order every sweep needs is now free);
//! * the **event-coordinate map**: refcounted, totally-ordered x/y edge
//!   multisets of the domain-clipped rectangles, plus the derived evaluation
//!   positions (edges + open-interval midpoints);
//! * the **enter/exit orders** (top edge descending / bottom edge
//!   descending, ties by object id) as incrementally maintained sorted
//!   lists;
//! * the two-form [`BurstSegTree`], re-zeroed in place after each sweep and
//!   size-synced with the incremental [`MaxAddTree::insert_leaf`] /
//!   [`MaxAddTree::remove_leaf`](crate::segtree::MaxAddTree::remove_leaf)
//!   leaf edits (full reset only when the power-of-two layout changes).
//!
//! # The rebuild threshold
//!
//! Incremental maintenance of a sorted list is an `O(n)` splice per edit;
//! under heavy churn (a mass expiry draining half the cell) doing many of
//! those loses to one `O(n log n)` re-sort. When the churn accumulated since
//! the structures were last valid exceeds
//! [`rebuild_threshold`](PersistentCellSweep::set_rebuild_threshold) × the
//! current leaf count, the sweep stops patching, marks the derived state
//! stale, applies subsequent transitions to the rectangle list only (O(log n)
//! membership ops), and re-sorts everything once at the next search — a
//! counted *full rebuild*. [`SweepMode::Rebuild`] pins that fallback on
//! permanently, which is exactly the pre-persistence behaviour: it survives
//! as the differential-testing reference (see
//! [`sl_cspot_rebuild`](crate::sweep::sl_cspot_rebuild)) and the baseline
//! column of `surge_exp sweep-bench`.
//!
//! # Bit-identity
//!
//! Persistent and rebuild searches route through the same
//! [`sweep_core`](crate::sweep) loop, and every maintained structure is
//! defined by a *total order* (coordinates under `f64::total_cmp`, orders
//! under `(edge, object id)`), so the incremental state equals the from-
//! scratch state exactly — results are bitwise identical, argmax and window
//! sums included. `surge-exact/tests/persistent_sweep.rs` proptests that
//! contract, including forced threshold crossings and pool reuse.

use std::cmp::Ordering;

use surge_core::{BurstParams, ObjectId, Point, Rect, TotalF64, WindowKind};

use crate::segtree::BurstSegTree;
use crate::sweep::{score_at_point, sweep_core, SweepRect, SweepResult};

/// How a detector runs its per-cell searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweepMode {
    /// Persistent cross-sweep state: searches reuse incrementally maintained
    /// coordinate maps and orders (the production path).
    #[default]
    Persistent,
    /// Rebuild everything from the rectangle set on every search — the
    /// pre-persistence behaviour, retained for differential testing and as
    /// the `sweep-bench` baseline.
    Rebuild,
}

/// Lifetime counters of one [`PersistentCellSweep`] (or an aggregate over
/// many — see [`SweepPool::retired_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Searches answered (executed sweeps plus epoch-cache hits — a hit
    /// answers a search without running one, see `epoch_hits`).
    pub searches: u64,
    /// Incremental edits applied to the persistent structures (edge
    /// refcount changes, order splices, tree leaf edits).
    pub churn_ops: u64,
    /// Evaluation positions written by full rebuilds (threshold crossings,
    /// first builds, and — in [`SweepMode::Rebuild`] — every search).
    pub rebuilt_leaves: u64,
    /// Full rebuilds executed.
    pub full_rebuilds: u64,
    /// Searches answered from a cell's epoch-keyed result cache without
    /// touching the tree (the churn epoch was unchanged since the cached
    /// sweep).
    pub epoch_hits: u64,
    /// Cache-capable searches that had to sweep (epoch advanced or nothing
    /// was cached yet).
    pub epoch_misses: u64,
    /// Kinetic sweep plans compiled (the y-event order and per-position
    /// tree deltas had to be re-derived from the rectangle set).
    pub plan_builds: u64,
    /// Searches that replayed a retained kinetic plan — reusing the
    /// previous sweep's y-event order instead of re-running the descent
    /// bookkeeping.
    pub plan_reuses: u64,
}

impl SweepStats {
    /// Folds another counter set into this one.
    pub fn absorb(&mut self, other: &SweepStats) {
        self.searches += other.searches;
        self.churn_ops += other.churn_ops;
        self.rebuilt_leaves += other.rebuilt_leaves;
        self.full_rebuilds += other.full_rebuilds;
        self.epoch_hits += other.epoch_hits;
        self.epoch_misses += other.epoch_misses;
        self.plan_builds += other.plan_builds;
        self.plan_reuses += other.plan_reuses;
    }
}

/// One rectangle resident in a cell: the full reduced rectangle plus its
/// pre-computed clip against the cell's point domain (`None` when it misses
/// the domain — such rectangles count for bounds but never sweep).
#[derive(Debug, Clone, Copy)]
struct Entry {
    id: ObjectId,
    rect: SweepRect,
    clip: Option<Rect>,
}

/// Descending-edge, ascending-id total order for the enter/exit lists —
/// the order a stable descending sort over id-ordered input produces.
#[inline]
fn order_cmp(a: &(TotalF64, ObjectId), b: &(TotalF64, ObjectId)) -> Ordering {
    b.0.cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Minimum pending-churn budget before the rebuild threshold can trip —
/// regardless of how small the threshold fraction is — so tiny cells don't
/// rebuild on every other event. Public so tests forcing threshold
/// crossings can compute how much churn guarantees one.
pub const MIN_CHURN_BUDGET: usize = 32;

/// Cost-model cap on the churn budget: each incremental edit splices an
/// `O(leaves)` sorted list, while the rebuild fallback re-sorts once at
/// `O(leaves · log leaves)` — so past roughly this many pending edits *per
/// `log₂(leaves)`* the splices cost more than the one re-sort they avoid.
/// Large cells previously got a budget linear in their leaf count
/// (`rebuild_threshold × leaves`), which let quadratic splice work
/// accumulate; the budget is now the minimum of that linear term and this
/// crossover cap. Thresholds only move cost, never results: the incremental
/// and rebuilt structures are bitwise identical by construction.
pub const CHURN_OPS_PER_LOG2: usize = 24;

/// One pre-compiled tree update of a kinetic sweep plan: rectangle `i`
/// enters (`sign = 1.0`) or leaves (`sign = -1.0`) the descending sweep
/// front over leaf range `[lo, hi]`. Replaying these through
/// [`BurstSegTree::apply`] performs bit-for-bit the adds `sweep_core` would.
#[derive(Debug, Clone, Copy)]
struct PlanOp {
    lo: usize,
    hi: usize,
    weight: f64,
    kind: WindowKind,
    sign: f64,
}

/// One y position of a kinetic plan at which the tree top can change: the
/// ops in `plan_ops[start..end]` apply here (enters before exits, exactly
/// the `sweep_core` order). Positions with no ops are omitted — between ops
/// the tree is constant and the best-update comparison is strict, so they
/// can never improve the running best.
#[derive(Debug, Clone, Copy)]
struct PlanPos {
    y: f64,
    start: usize,
    end: usize,
}

/// Sentinel for a rectangle whose exit op never fires (its bottom edge is
/// the lowest evaluation position, and exits require `y0 > y`).
const NO_OP: usize = usize::MAX;

/// Everything the sweep can observe about one clipped entry: object id,
/// clip coordinate bits, weight bits, window kind. Two sweep states whose
/// `(id → ContentKey)` maps are equal produce bitwise identical searches —
/// every derived structure (clip scratch, edge multisets, enter/exit
/// orders, kinetic plan) is a deterministic function of exactly this map.
/// The id participates because same-coordinate ties in the enter/exit
/// orders break by id, and reordering rectangles with different weights
/// reorders floating-point accumulation.
type ContentKey = (ObjectId, u64, u64, u64, u64, u64, WindowKind);

/// Cap on distinct in-flight journal keys; beyond this the journal stops
/// tracking (revert detection is abandoned until the next search anchors a
/// fresh baseline). Keeps the per-mutation scan O(1) in practice.
const PENDING_CAP: usize = 16;

#[inline]
fn content_key(id: ObjectId, clip: &Rect, rect: &SweepRect) -> ContentKey {
    (
        id,
        clip.x0.to_bits(),
        clip.y0.to_bits(),
        clip.x1.to_bits(),
        clip.y1.to_bits(),
        rect.weight.to_bits(),
        rect.kind,
    )
}

/// Per-cell sweep state that persists across window-transition events.
///
/// Owned by one cell of an exact detector; created from (and retired to) a
/// per-shard [`SweepPool`] so allocations outlive individual cells.
#[derive(Debug)]
pub struct PersistentCellSweep {
    domain: Option<Rect>,
    params: BurstParams,
    mode: SweepMode,
    /// Rebuild when pending churn exceeds this fraction of the leaf count.
    rebuild_threshold: f64,

    /// Resident rectangles, sorted by object id.
    entries: Vec<Entry>,
    /// Refcounted x edge coordinates of the clipped rectangles, sorted by
    /// `total_cmp`, unique.
    x_edges: Vec<(f64, u32)>,
    /// Same for y.
    y_edges: Vec<(f64, u32)>,
    /// `(clip.y1, id)` sorted by [`order_cmp`] — the enter order.
    enter: Vec<(TotalF64, ObjectId)>,
    /// `(clip.y0, id)` sorted by [`order_cmp`] — the exit order.
    exit: Vec<(TotalF64, ObjectId)>,
    /// Derived x evaluation positions (edges + midpoints, ascending).
    xs: Vec<f64>,
    /// Derived y evaluation positions (ascending).
    ys: Vec<f64>,
    /// Whether `xs`/`ys` match `x_edges`/`y_edges`.
    coords_valid: bool,
    /// Set when the threshold tripped (or mode is `Rebuild`): the edge and
    /// order lists are stale and the next search re-sorts them from
    /// `entries`.
    needs_rebuild: bool,
    /// Incremental edits since the structures were last known-valid.
    churn_pending: usize,

    // Per-search scratch, reused across searches. While `plan_valid` these
    // double as retained kinetic-plan state (see below).
    clipped: Vec<SweepRect>,
    clip_ids: Vec<ObjectId>,
    ranges: Vec<(usize, usize)>,
    enter_idx: Vec<usize>,
    exit_idx: Vec<usize>,
    tree: BurstSegTree,

    /// Kinetic sweep plan: the pre-compiled op schedule of the descent
    /// (every tree update, grouped by y position), valid while the clipped
    /// rectangle set and the coordinate maps are unchanged since it was
    /// compiled. A `Grown` transition patches the resident ops in place —
    /// growth changes no coordinate, so the y-event order is reusable.
    plan_ops: Vec<PlanOp>,
    /// The y positions at which `plan_ops` apply, descending.
    plan_pos: Vec<PlanPos>,
    /// Per clipped-rectangle op locations `(enter, exit)` into `plan_ops`
    /// (`exit` may be [`NO_OP`]) — the grow-patch index.
    plan_slots: Vec<(usize, usize)>,
    /// Whether the plan (and the scratch vectors it shares) mirror the
    /// current clipped set and coordinates.
    plan_valid: bool,

    /// Monotone mutation counter: advanced by every mutation that changes
    /// the clipped rectangle set. The public [`epoch`](Self::epoch) derives
    /// the *content* epoch from this plus the pending journal below.
    epoch: u64,
    /// [`epoch`](Self::epoch)'s value when the journal was last anchored
    /// (at a search).
    anchor_epoch: u64,
    /// Exact signed [`ContentKey`] deltas since the anchor. Empty ⇔ the
    /// clipped content is bit-identical to the anchored state, so mutation
    /// sequences that cancel out (idempotent re-delivery of a `New` or
    /// `Grown`, remove-then-reinsert of an identical entry) revert the
    /// content epoch and let cached results keep serving.
    pending: Vec<(ContentKey, i64)>,
    /// The journal overflowed [`PENDING_CAP`]: revert detection is off
    /// until the next search re-anchors.
    pending_overflow: bool,

    stats: SweepStats,
}

impl PersistentCellSweep {
    /// A fresh, empty sweep for a cell with the given point `domain`
    /// (`None` = infeasible: rectangles are tracked, searches return
    /// `None`).
    pub fn new(domain: Option<Rect>, params: BurstParams, mode: SweepMode) -> Self {
        PersistentCellSweep {
            domain,
            params,
            mode,
            rebuild_threshold: 0.5,
            entries: Vec::new(),
            x_edges: Vec::new(),
            y_edges: Vec::new(),
            enter: Vec::new(),
            exit: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            coords_valid: true,
            needs_rebuild: mode == SweepMode::Rebuild,
            churn_pending: 0,
            clipped: Vec::new(),
            clip_ids: Vec::new(),
            ranges: Vec::new(),
            enter_idx: Vec::new(),
            exit_idx: Vec::new(),
            tree: BurstSegTree::new(0, &params),
            plan_ops: Vec::new(),
            plan_pos: Vec::new(),
            plan_slots: Vec::new(),
            plan_valid: false,
            epoch: 0,
            anchor_epoch: 0,
            pending: Vec::new(),
            pending_overflow: false,
            stats: SweepStats::default(),
        }
    }

    /// Re-initializes for a new cell, keeping every allocation (the pool
    /// path). Counters are **not** cleared — [`SweepPool::retire`] folds
    /// them into the pool aggregate first via [`take_stats`](Self::take_stats).
    pub fn reset(&mut self, domain: Option<Rect>, params: BurstParams, mode: SweepMode) {
        self.domain = domain;
        self.params = params;
        self.mode = mode;
        self.entries.clear();
        self.x_edges.clear();
        self.y_edges.clear();
        self.enter.clear();
        self.exit.clear();
        self.xs.clear();
        self.ys.clear();
        self.coords_valid = true;
        self.needs_rebuild = mode == SweepMode::Rebuild;
        self.churn_pending = 0;
        self.plan_valid = false;
        self.epoch = 0;
        self.anchor_epoch = 0;
        self.pending.clear();
        self.pending_overflow = false;
    }

    /// The search mode this sweep runs under.
    #[inline]
    pub fn mode(&self) -> SweepMode {
        self.mode
    }

    /// The content epoch: two searches at the same epoch (same domain,
    /// same parameters) return bitwise identical results, so callers may
    /// cache a result keyed on this and skip the sweep entirely while it
    /// holds.
    ///
    /// Mutations that change the clipped rectangle set advance it; a touch
    /// that misses the domain (clip `None`) changes bounds but not the
    /// sweep, and leaves it unchanged. Mutation sequences whose exact
    /// signed content deltas cancel — idempotent re-delivery of a `New`
    /// (replace by an identical entry) or a `Grown` (already past), or
    /// remove-then-reinsert of an identical entry — *revert* it to the
    /// last anchored value: the journal proves the `(id → content)` map is
    /// bit-identical to the state the cached result was computed from, so
    /// re-sweeping would reproduce it exactly.
    #[inline]
    pub fn epoch(&self) -> u64 {
        if self.pending.is_empty() && !self.pending_overflow {
            self.anchor_epoch
        } else {
            self.epoch
        }
    }

    /// Folds one signed content delta into the pending journal.
    fn note_content_delta(&mut self, key: ContentKey, sign: i64) {
        if self.pending_overflow {
            return;
        }
        if let Some(i) = self.pending.iter().position(|(k, _)| *k == key) {
            self.pending[i].1 += sign;
            if self.pending[i].1 == 0 {
                self.pending.swap_remove(i);
            }
        } else if self.pending.len() == PENDING_CAP {
            self.pending_overflow = true;
            self.pending.clear();
        } else {
            self.pending.push((key, sign));
        }
    }

    /// Records a search answered from an epoch-keyed cache (counted as a
    /// search so cache-on and always-sweep runs report comparable totals).
    #[inline]
    pub fn note_epoch_hit(&mut self) {
        self.stats.searches += 1;
        self.stats.epoch_hits += 1;
    }

    /// Records a cache-capable search that had to sweep.
    #[inline]
    pub fn note_epoch_miss(&mut self) {
        self.stats.epoch_misses += 1;
    }

    /// Overrides the rebuild-threshold fraction (pending churn / leaf
    /// count above which incremental maintenance gives way to a full
    /// re-sort at the next search). The budget is floored at
    /// [`MIN_CHURN_BUDGET`] regardless of the fraction, so `0.0` forces a
    /// rebuild once pending churn exceeds that minimum (tests use it to
    /// pin the fallback path).
    pub fn set_rebuild_threshold(&mut self, fraction: f64) {
        self.rebuild_threshold = fraction.max(0.0);
    }

    /// This sweep's lifetime counters.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// Returns and clears the counters (pool retirement).
    pub fn take_stats(&mut self) -> SweepStats {
        std::mem::take(&mut self.stats)
    }

    /// Number of resident rectangles (including ones outside the domain).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no rectangles are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether object `id` is resident.
    #[inline]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.entries.binary_search_by_key(&id, |e| e.id).is_ok()
    }

    /// The resident rectangles in id order (the `DirtyCellJob` snapshot —
    /// what `sorted_rects` used to sort out of a hash map, now a plain
    /// copy).
    pub fn full_rects(&self) -> Vec<SweepRect> {
        self.entries.iter().map(|e| e.rect).collect()
    }

    /// The resident rectangles with their object ids, in ascending id order
    /// — the logical state a checkpoint captures. Re-inserting these into a
    /// fresh sweep (via [`insert`](Self::insert) then
    /// [`grow`](Self::grow) for past-window entries) reproduces a state
    /// whose searches are bit-identical to this one's: every derived
    /// structure is defined by a total order over exactly this set.
    pub fn entries(&self) -> impl Iterator<Item = (ObjectId, SweepRect)> + '_ {
        self.entries.iter().map(|e| (e.id, e.rect))
    }

    /// Whether the incrementally maintained structures are live (false once
    /// the threshold tripped or in [`SweepMode::Rebuild`]).
    #[inline]
    fn live(&self) -> bool {
        !self.needs_rebuild && self.mode == SweepMode::Persistent
    }

    fn note_churn(&mut self, ops: usize) {
        self.churn_pending += ops;
        self.stats.churn_ops += ops as u64;
        let leaves = self.xs.len() + self.ys.len();
        // Churn-adaptive budget: the linear `threshold × leaves` term capped
        // at the splice-vs-rebuild cost crossover (each pending edit splices
        // an O(leaves) list; one rebuild re-sorts at O(leaves·log leaves)),
        // floored at MIN_CHURN_BUDGET so tiny cells never thrash. Small
        // cells behave exactly as before; big cells stop accumulating
        // quadratic splice work.
        let linear = (self.rebuild_threshold * leaves as f64) as usize;
        let log2 = usize::BITS - leaves.max(1).leading_zeros();
        let crossover = CHURN_OPS_PER_LOG2 * log2 as usize;
        let budget = MIN_CHURN_BUDGET.max(linear.min(crossover));
        if self.churn_pending > budget {
            // Threshold tripped: stop patching; the next search re-sorts.
            self.needs_rebuild = true;
        }
    }

    /// Applies a `New` transition: object `id` enters with `rect` (current
    /// window). An existing entry with the same id is replaced.
    pub fn insert(&mut self, id: ObjectId, rect: Rect, weight: f64) {
        let sweep = SweepRect {
            rect,
            weight,
            kind: WindowKind::Current,
        };
        let clip = self.domain.and_then(|d| rect.intersection(&d));
        match self.entries.binary_search_by_key(&id, |e| e.id) {
            Ok(i) => {
                // Replace: ids recur on duplicate delivery (at-least-once
                // streams re-send `New`); the refcounts must not corrupt
                // and an identical re-insert must journal to net zero.
                let old = self.entries[i];
                if old.clip.is_some() || clip.is_some() {
                    self.note_clipped_mutation();
                }
                if let Some(c) = old.clip {
                    self.note_content_delta(content_key(id, &c, &old.rect), -1);
                }
                if let Some(c) = clip {
                    self.note_content_delta(content_key(id, &c, &sweep), 1);
                }
                self.detach_entry(i);
                self.entries[i] = Entry {
                    id,
                    rect: sweep,
                    clip,
                };
                self.attach_clip(id, clip);
            }
            Err(i) => {
                if let Some(c) = clip {
                    self.note_clipped_mutation();
                    self.note_content_delta(content_key(id, &c, &sweep), 1);
                }
                self.entries.insert(
                    i,
                    Entry {
                        id,
                        rect: sweep,
                        clip,
                    },
                );
                self.attach_clip(id, clip);
            }
        }
    }

    /// The clipped rectangle set changed: the sweep answer may change (the
    /// epoch advances) and any compiled plan no longer mirrors the scene.
    #[inline]
    fn note_clipped_mutation(&mut self) {
        self.epoch += 1;
        self.plan_valid = false;
    }

    /// Applies a `Grown` transition: the object's rectangle moves to the
    /// past window. Returns whether the object was resident. No structural
    /// churn — the coordinate map and orders are kind-agnostic, and a
    /// retained kinetic plan survives: growth changes no coordinate, so the
    /// y-event order is untouched and only the rectangle's resident ops
    /// need their window kind flipped in place.
    pub fn grow(&mut self, id: ObjectId) -> bool {
        match self.entries.binary_search_by_key(&id, |e| e.id) {
            Ok(i) => {
                let old = self.entries[i];
                self.entries[i].rect.kind = WindowKind::Past;
                if let Some(c) = old.clip {
                    self.epoch += 1;
                    // A duplicate grow (already past) journals to net zero
                    // and the content epoch stays reverted.
                    self.note_content_delta(content_key(id, &c, &old.rect), -1);
                    self.note_content_delta(content_key(id, &c, &self.entries[i].rect), 1);
                    if self.plan_valid {
                        self.patch_plan_kind(id);
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Flips a clipped rectangle's window kind inside the retained plan:
    /// the scratch clip (the final re-score input) and its enter/exit ops.
    fn patch_plan_kind(&mut self, id: ObjectId) {
        let j = self
            .clip_ids
            .binary_search(&id)
            .expect("clipped entry must be in the plan");
        self.clipped[j].kind = WindowKind::Past;
        let (enter_op, exit_op) = self.plan_slots[j];
        self.plan_ops[enter_op].kind = WindowKind::Past;
        if exit_op != NO_OP {
            self.plan_ops[exit_op].kind = WindowKind::Past;
        }
    }

    /// Applies an `Expired` transition: removes the object's rectangle and
    /// returns it (`None` when the object was not resident).
    pub fn remove(&mut self, id: ObjectId) -> Option<SweepRect> {
        let i = self.entries.binary_search_by_key(&id, |e| e.id).ok()?;
        if let Some(c) = self.entries[i].clip {
            self.note_clipped_mutation();
            let e = self.entries[i];
            self.note_content_delta(content_key(id, &c, &e.rect), -1);
        }
        self.detach_entry(i);
        let e = self.entries.remove(i);
        Some(e.rect)
    }

    /// Removes entry `i`'s contributions from the maintained structures
    /// (the entry itself stays for the caller to overwrite or remove).
    fn detach_entry(&mut self, i: usize) {
        let Entry { id, clip, .. } = self.entries[i];
        let Some(c) = clip else { return };
        if !self.live() {
            return;
        }
        let mut ops = 0usize;
        ops += Self::edge_remove(&mut self.x_edges, c.x0, &mut self.coords_valid);
        ops += Self::edge_remove(&mut self.x_edges, c.x1, &mut self.coords_valid);
        ops += Self::edge_remove(&mut self.y_edges, c.y0, &mut self.coords_valid);
        ops += Self::edge_remove(&mut self.y_edges, c.y1, &mut self.coords_valid);
        ops += Self::order_remove(&mut self.enter, (TotalF64(c.y1), id));
        ops += Self::order_remove(&mut self.exit, (TotalF64(c.y0), id));
        self.note_churn(ops);
    }

    /// Adds a clipped rectangle's contributions to the maintained
    /// structures.
    fn attach_clip(&mut self, id: ObjectId, clip: Option<Rect>) {
        let Some(c) = clip else { return };
        if !self.live() {
            return;
        }
        let mut ops = 0usize;
        ops += Self::edge_insert(&mut self.x_edges, c.x0, &mut self.coords_valid);
        ops += Self::edge_insert(&mut self.x_edges, c.x1, &mut self.coords_valid);
        ops += Self::edge_insert(&mut self.y_edges, c.y0, &mut self.coords_valid);
        ops += Self::edge_insert(&mut self.y_edges, c.y1, &mut self.coords_valid);
        ops += Self::order_insert(&mut self.enter, (TotalF64(c.y1), id));
        ops += Self::order_insert(&mut self.exit, (TotalF64(c.y0), id));
        self.note_churn(ops);
    }

    fn edge_insert(edges: &mut Vec<(f64, u32)>, v: f64, coords_valid: &mut bool) -> usize {
        match edges.binary_search_by(|p| p.0.total_cmp(&v)) {
            Ok(i) => edges[i].1 += 1,
            Err(i) => {
                edges.insert(i, (v, 1));
                *coords_valid = false;
            }
        }
        1
    }

    fn edge_remove(edges: &mut Vec<(f64, u32)>, v: f64, coords_valid: &mut bool) -> usize {
        match edges.binary_search_by(|p| p.0.total_cmp(&v)) {
            Ok(i) => {
                edges[i].1 -= 1;
                if edges[i].1 == 0 {
                    edges.remove(i);
                    *coords_valid = false;
                }
            }
            Err(_) => debug_assert!(false, "removing untracked edge {v}"),
        }
        1
    }

    fn order_insert(order: &mut Vec<(TotalF64, ObjectId)>, key: (TotalF64, ObjectId)) -> usize {
        match order.binary_search_by(|p| order_cmp(p, &key)) {
            Ok(_) => debug_assert!(false, "duplicate order key {key:?}"),
            Err(i) => order.insert(i, key),
        }
        1
    }

    fn order_remove(order: &mut Vec<(TotalF64, ObjectId)>, key: (TotalF64, ObjectId)) -> usize {
        match order.binary_search_by(|p| order_cmp(p, &key)) {
            Ok(i) => {
                order.remove(i);
            }
            Err(_) => debug_assert!(false, "removing untracked order key {key:?}"),
        }
        1
    }

    /// Re-sorts every maintained structure from the rectangle list — the
    /// threshold fallback, and the whole story in [`SweepMode::Rebuild`].
    fn rebuild_all(&mut self) {
        self.x_edges.clear();
        self.y_edges.clear();
        self.enter.clear();
        self.exit.clear();
        for e in &self.entries {
            let Some(c) = e.clip else { continue };
            self.x_edges.push((c.x0, 1));
            self.x_edges.push((c.x1, 1));
            self.y_edges.push((c.y0, 1));
            self.y_edges.push((c.y1, 1));
            self.enter.push((TotalF64(c.y1), e.id));
            self.exit.push((TotalF64(c.y0), e.id));
        }
        for edges in [&mut self.x_edges, &mut self.y_edges] {
            edges.sort_by(|a, b| a.0.total_cmp(&b.0));
            edges.dedup_by(|a, b| {
                if a.0.total_cmp(&b.0) == Ordering::Equal {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
        }
        self.enter.sort_by(order_cmp);
        self.exit.sort_by(order_cmp);
        self.coords_valid = false;
        self.plan_valid = false;
        self.churn_pending = 0;
        self.needs_rebuild = self.mode == SweepMode::Rebuild;
        self.stats.full_rebuilds += 1;
    }

    /// Regenerates the evaluation positions from the sorted edge multisets:
    /// every edge plus the midpoint of every open interval between
    /// neighbours — linear, no comparison sorting, and bitwise what
    /// `eval_positions_into` builds from the same edges.
    fn regen_coords(&mut self) {
        for (edges, out) in [(&self.x_edges, &mut self.xs), (&self.y_edges, &mut self.ys)] {
            out.clear();
            out.reserve(edges.len().saturating_mul(2));
            for (i, &(e, _)) in edges.iter().enumerate() {
                if i > 0 {
                    let prev = edges[i - 1].0;
                    let mid = prev + (e - prev) / 2.0;
                    if mid > prev && mid < e {
                        out.push(mid);
                    }
                }
                out.push(e);
            }
        }
        self.coords_valid = true;
        // Leaf ranges and plan ops index into `xs`, which just shifted.
        self.plan_valid = false;
    }

    /// Rebuilds the per-search scratch (clipped rects, leaf ranges,
    /// enter/exit index orders) from the maintained structures — the
    /// `O(R log R)` derivation every search used to pay; now paid only when
    /// no valid kinetic plan is retained.
    fn rebuild_scratch(&mut self) {
        self.clipped.clear();
        self.clip_ids.clear();
        for e in &self.entries {
            if let Some(c) = e.clip {
                self.clipped.push(SweepRect {
                    rect: c,
                    weight: e.rect.weight,
                    kind: e.rect.kind,
                });
                self.clip_ids.push(e.id);
            }
        }
        let xs = &self.xs;
        let x_index = |v: f64| -> usize {
            xs.binary_search_by(|p| p.total_cmp(&v))
                .expect("rect edge must be an evaluation position")
        };
        self.ranges.clear();
        self.ranges.extend(
            self.clipped
                .iter()
                .map(|r| (x_index(r.rect.x0), x_index(r.rect.x1))),
        );
        let clip_ids = &self.clip_ids;
        let idx_of = |id: ObjectId| -> usize {
            clip_ids
                .binary_search(&id)
                .expect("ordered entry must be clipped")
        };
        self.enter_idx.clear();
        self.enter_idx
            .extend(self.enter.iter().map(|&(_, id)| idx_of(id)));
        self.exit_idx.clear();
        self.exit_idx
            .extend(self.exit.iter().map(|&(_, id)| idx_of(id)));
    }

    /// Compiles the kinetic plan from the freshly rebuilt scratch *while
    /// sweeping it*: the `sweep_core` descent's enter/exit scheduling runs
    /// once, and each tree update is recorded into the plan and applied to
    /// the (zeroed, size-synced) tree in the same step, with the
    /// per-position maxima feeding the running best. One pass instead of
    /// compile-then-replay — bitwise identical to both, since the ops, the
    /// order they apply in, and the best-update comparisons are the same.
    fn compile_and_replay(&mut self) -> Option<SweepResult> {
        debug_assert_eq!(self.tree.len(), self.xs.len());
        self.plan_ops.clear();
        self.plan_pos.clear();
        self.plan_slots.clear();
        self.plan_slots.resize(self.clipped.len(), (NO_OP, NO_OP));
        let mut next_enter = 0usize;
        let mut next_exit = 0usize;
        let mut best: Option<(TotalF64, usize, f64)> = None;
        for &y in self.ys.iter().rev() {
            let start = self.plan_ops.len();
            while next_enter < self.enter_idx.len()
                && self.clipped[self.enter_idx[next_enter]].rect.y1 >= y
            {
                let i = self.enter_idx[next_enter];
                let (lo, hi) = self.ranges[i];
                self.plan_slots[i].0 = self.plan_ops.len();
                let op = PlanOp {
                    lo,
                    hi,
                    weight: self.clipped[i].weight,
                    kind: self.clipped[i].kind,
                    sign: 1.0,
                };
                self.tree.apply(op.lo, op.hi, op.weight, op.kind, op.sign);
                self.plan_ops.push(op);
                next_enter += 1;
            }
            while next_exit < self.exit_idx.len()
                && self.clipped[self.exit_idx[next_exit]].rect.y0 > y
            {
                let i = self.exit_idx[next_exit];
                let (lo, hi) = self.ranges[i];
                self.plan_slots[i].1 = self.plan_ops.len();
                let op = PlanOp {
                    lo,
                    hi,
                    weight: self.clipped[i].weight,
                    kind: self.clipped[i].kind,
                    sign: -1.0,
                };
                self.tree.apply(op.lo, op.hi, op.weight, op.kind, op.sign);
                self.plan_ops.push(op);
                next_exit += 1;
            }
            if self.plan_ops.len() > start {
                self.plan_pos.push(PlanPos {
                    y,
                    start,
                    end: self.plan_ops.len(),
                });
                let (m, leaf) = self.tree.top();
                let key = TotalF64(m);
                if best.is_none_or(|(b, _, _)| key > b) {
                    best = Some((key, leaf, y));
                }
            }
        }
        debug_assert_eq!(next_enter, self.enter_idx.len(), "unscheduled enter");
        self.plan_valid = true;
        let (_, leaf, y) = best?;
        let point = Point::new(self.xs[leaf], y);
        // Exact re-evaluation at the winning point, as in `sweep_core`.
        Some(score_at_point(&self.clipped, point, &self.params))
    }

    /// Replays the retained plan over the zeroed, size-synced tree.
    ///
    /// Bitwise identical to `sweep_core` on the same scratch: the ops carry
    /// the exact `(lo, hi, weight, kind, sign)` arguments the descent would
    /// pass to [`BurstSegTree::apply`], in the same order; the tree top only
    /// changes where ops apply, and `sweep_core`'s best-update comparison is
    /// strictly-greater (first attainment wins), so evaluating `top()` at op
    /// positions alone selects the same `(score key, leaf, y)` — the first
    /// descending position always schedules at least one enter (the topmost
    /// y1 edge), so the running best starts at the same place too.
    fn replay_plan(&mut self) -> Option<SweepResult> {
        debug_assert_eq!(self.tree.len(), self.xs.len());
        let mut best: Option<(TotalF64, usize, f64)> = None;
        for p in &self.plan_pos {
            for op in &self.plan_ops[p.start..p.end] {
                self.tree.apply(op.lo, op.hi, op.weight, op.kind, op.sign);
            }
            let (m, leaf) = self.tree.top();
            let key = TotalF64(m);
            if best.is_none_or(|(b, _, _)| key > b) {
                best = Some((key, leaf, p.y));
            }
        }
        let (_, leaf, y) = best?;
        let point = Point::new(self.xs[leaf], y);
        // Exact re-evaluation at the winning point, as in `sweep_core`.
        Some(score_at_point(&self.clipped, point, &self.params))
    }

    /// Runs SL-CSPOT over the resident rectangles, restricted to the cell
    /// domain. Returns `None` when the domain is infeasible or no rectangle
    /// intersects it — exactly the [`crate::sweep::sl_cspot`] contract, and
    /// bitwise its result (see the module docs).
    pub fn search(&mut self) -> Option<SweepResult> {
        self.stats.searches += 1;
        // Anchor the content journal: the result this search produces is
        // the cached baseline the journal's revert detection refers to.
        self.anchor_epoch = self.epoch;
        self.pending.clear();
        self.pending_overflow = false;
        self.domain?;
        if self.needs_rebuild {
            self.rebuild_all();
            if !self.coords_valid {
                self.regen_coords();
            }
            self.stats.rebuilt_leaves += (self.xs.len() + self.ys.len()) as u64;
        } else if !self.coords_valid {
            self.regen_coords();
        }

        if self.mode == SweepMode::Rebuild {
            // Pre-persistence behaviour: re-derive the scratch and rebuild
            // the trees outright, every search.
            self.rebuild_scratch();
            if self.clipped.is_empty() {
                return None;
            }
            self.tree.reset(self.xs.len(), &self.params);
            return sweep_core(
                &self.clipped,
                &self.xs,
                &self.ys,
                &self.ranges,
                &self.enter_idx,
                &self.exit_idx,
                &mut self.tree,
                &self.params,
            );
        }

        // Persistent path: replay the retained plan, or record a fresh one
        // while sweeping. Recording costs one `sweep_core`-shaped pass —
        // not compile *then* replay — and every search until the next
        // clipped mutation then replays for free.
        let reuse = self.plan_valid;
        if reuse {
            self.stats.plan_reuses += 1;
        } else {
            self.rebuild_scratch();
            self.stats.plan_builds += 1;
        }
        if self.clipped.is_empty() {
            if !reuse {
                // Retain the (empty) plan so later searches still reuse it.
                self.plan_ops.clear();
                self.plan_pos.clear();
                self.plan_slots.clear();
                self.plan_valid = true;
            }
            return None;
        }
        // Re-zero in place, then repair size drift with incremental leaf
        // edits (a full reset only when the power-of-two layout changed).
        // Bitwise identical to `reset` — proptested in
        // `segtree_differential::clear_and_sync_is_bitwise_reset`.
        self.tree.clear_values();
        self.stats.churn_ops += {
            let before = self.tree.leaf_churn();
            self.tree.sync_len(self.xs.len(), &self.params);
            self.tree.leaf_churn() - before
        };
        if reuse {
            self.replay_plan()
        } else {
            self.compile_and_replay()
        }
    }
}

/// A free list of [`PersistentCellSweep`]s for one shard: cells come and go
/// with object lifetimes, their sweep allocations should not. Retired
/// sweeps also park their counters here so detector-level aggregates
/// survive cell eviction.
#[derive(Debug, Default)]
pub struct SweepPool {
    free: Vec<PersistentCellSweep>,
    retired: SweepStats,
}

impl SweepPool {
    /// An empty pool.
    pub fn new() -> Self {
        SweepPool::default()
    }

    /// A sweep for a new cell: reuses a retired allocation when one is
    /// available.
    pub fn take(
        &mut self,
        domain: Option<Rect>,
        params: BurstParams,
        mode: SweepMode,
    ) -> PersistentCellSweep {
        match self.free.pop() {
            Some(mut s) => {
                s.reset(domain, params, mode);
                s
            }
            None => PersistentCellSweep::new(domain, params, mode),
        }
    }

    /// Returns a drained cell's sweep to the pool, folding its counters
    /// into the pool aggregate.
    pub fn retire(&mut self, mut sweep: PersistentCellSweep) {
        self.retired.absorb(&sweep.take_stats());
        self.free.push(sweep);
    }

    /// Counters accumulated by retired sweeps.
    pub fn retired_stats(&self) -> SweepStats {
        self.retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{sl_cspot_rebuild, SweepArena};

    fn params() -> BurstParams {
        BurstParams {
            alpha: 0.5,
            current_norm: 1.0,
            past_norm: 1.0,
        }
    }

    const DOMAIN: Rect = Rect {
        x0: 0.0,
        y0: 0.0,
        x1: 10.0,
        y1: 10.0,
    };

    fn assert_matches_rebuild(p: &mut PersistentCellSweep, arena: &mut SweepArena) {
        let rects = p.full_rects();
        let want = sl_cspot_rebuild(arena, &rects, &DOMAIN, &params());
        let got = p.search();
        match (got, want) {
            (Some(a), Some(b)) => {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.point.x.to_bits(), b.point.x.to_bits());
                assert_eq!(a.point.y.to_bits(), b.point.y.to_bits());
                assert_eq!(a.wc.to_bits(), b.wc.to_bits());
                assert_eq!(a.wp.to_bits(), b.wp.to_bits());
            }
            (None, None) => {}
            other => panic!("persistent vs rebuild Some/None: {other:?}"),
        }
    }

    #[test]
    fn insert_grow_remove_lifecycle_matches_rebuild() {
        let mut p = PersistentCellSweep::new(Some(DOMAIN), params(), SweepMode::Persistent);
        let mut arena = SweepArena::new();
        assert_eq!(p.search(), None);
        p.insert(0, Rect::new(1.0, 1.0, 3.0, 3.0), 2.0);
        assert_matches_rebuild(&mut p, &mut arena);
        p.insert(1, Rect::new(2.0, 2.0, 4.0, 5.0), 1.0);
        assert_matches_rebuild(&mut p, &mut arena);
        assert!(p.grow(0));
        assert_matches_rebuild(&mut p, &mut arena);
        assert!(p.remove(0).is_some());
        assert_matches_rebuild(&mut p, &mut arena);
        assert!(p.remove(1).is_some());
        assert!(p.is_empty());
        assert_eq!(p.search(), None);
        assert!(!p.grow(7));
        assert!(p.remove(7).is_none());
    }

    #[test]
    fn out_of_domain_rect_counts_but_never_sweeps() {
        let mut p = PersistentCellSweep::new(Some(DOMAIN), params(), SweepMode::Persistent);
        p.insert(0, Rect::new(20.0, 20.0, 25.0, 25.0), 3.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.search(), None);
        let mut arena = SweepArena::new();
        p.insert(1, Rect::new(0.5, 0.5, 1.5, 1.5), 1.0);
        assert_matches_rebuild(&mut p, &mut arena);
    }

    #[test]
    fn infeasible_domain_always_none() {
        let mut p = PersistentCellSweep::new(None, params(), SweepMode::Persistent);
        p.insert(0, Rect::new(1.0, 1.0, 2.0, 2.0), 1.0);
        assert_eq!(p.search(), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn zero_threshold_forces_full_rebuilds() {
        let mut p = PersistentCellSweep::new(Some(DOMAIN), params(), SweepMode::Persistent);
        p.set_rebuild_threshold(0.0);
        let mut arena = SweepArena::new();
        for i in 0..MIN_CHURN_BUDGET as u64 + 8 {
            p.insert(
                i,
                Rect::new(0.1 * i as f64, 0.2, 0.1 * i as f64 + 1.0, 2.0),
                1.0,
            );
        }
        assert_matches_rebuild(&mut p, &mut arena);
        assert!(p.stats().full_rebuilds >= 1);
        assert!(p.stats().rebuilt_leaves > 0);
    }

    #[test]
    fn rebuild_mode_rebuilds_every_search() {
        let mut p = PersistentCellSweep::new(Some(DOMAIN), params(), SweepMode::Rebuild);
        let mut arena = SweepArena::new();
        p.insert(0, Rect::new(1.0, 1.0, 2.0, 2.0), 1.0);
        assert_matches_rebuild(&mut p, &mut arena);
        assert_matches_rebuild(&mut p, &mut arena);
        let s = p.stats();
        assert_eq!(s.full_rebuilds, 2);
        assert_eq!(s.churn_ops, 0, "rebuild mode must not patch incrementally");
    }

    #[test]
    fn plan_reuse_and_grow_patch() {
        let mut p = PersistentCellSweep::new(Some(DOMAIN), params(), SweepMode::Persistent);
        let mut arena = SweepArena::new();
        p.insert(0, Rect::new(1.0, 1.0, 3.0, 3.0), 2.0);
        p.insert(1, Rect::new(2.0, 0.5, 4.0, 5.0), 1.0);
        let e0 = p.epoch();
        assert_matches_rebuild(&mut p, &mut arena); // compiles the plan
        assert_matches_rebuild(&mut p, &mut arena); // replays it
        let s = p.stats();
        assert_eq!(s.plan_builds, 1, "second search must reuse the plan");
        assert_eq!(s.plan_reuses, 1);
        assert_eq!(p.epoch(), e0, "searches must not advance the epoch");

        // Growth patches the plan in place: no recompile, same answer as a
        // from-scratch rebuild, and the epoch advances (the answer changed).
        assert!(p.grow(0));
        assert!(p.epoch() > e0);
        assert_matches_rebuild(&mut p, &mut arena);
        let s = p.stats();
        assert_eq!(s.plan_builds, 1, "grow must not recompile the plan");
        assert_eq!(s.plan_reuses, 2);

        // A structural mutation invalidates it.
        p.insert(2, Rect::new(0.0, 0.0, 1.5, 1.5), 3.0);
        assert_matches_rebuild(&mut p, &mut arena);
        assert_eq!(p.stats().plan_builds, 2);
    }

    #[test]
    fn epoch_tracks_clipped_mutations_only() {
        let mut p = PersistentCellSweep::new(Some(DOMAIN), params(), SweepMode::Persistent);
        let e0 = p.epoch();
        // Out-of-domain rect: counted, but the sweep answer cannot change.
        p.insert(0, Rect::new(20.0, 20.0, 25.0, 25.0), 3.0);
        assert!(p.grow(0));
        assert_eq!(p.epoch(), e0, "clip-miss touches must not advance epoch");
        assert!(p.remove(0).is_some());
        assert_eq!(p.epoch(), e0);
        // In-domain mutations each advance it while content differs from
        // the anchor...
        p.insert(1, Rect::new(1.0, 1.0, 2.0, 2.0), 1.0);
        let e1 = p.epoch();
        assert!(e1 > e0);
        assert!(p.grow(1));
        let e2 = p.epoch();
        assert!(e2 > e1);
        // ...but the full insert→grow→remove cycle is net zero: the cell
        // is bit-identical to its anchored (empty) state again.
        assert!(p.remove(1).is_some());
        assert_eq!(p.epoch(), e0, "net-zero churn must revert the epoch");
    }

    /// Idempotent re-delivery (at-least-once streams): re-applying a `New`
    /// or `Grown` that is already reflected in the cell journals to net
    /// zero, so the content epoch reverts to the last search's anchor and
    /// epoch-keyed caches keep serving. Genuinely new churn still advances
    /// it.
    #[test]
    fn epoch_reverts_on_idempotent_redelivery() {
        let mut p = PersistentCellSweep::new(Some(DOMAIN), params(), SweepMode::Persistent);
        let rect = Rect::new(1.0, 1.0, 2.0, 2.0);
        p.insert(1, rect, 1.0);
        p.insert(2, Rect::new(0.5, 0.5, 3.0, 3.0), 2.0);
        assert!(p.grow(2));
        let _ = p.search();
        let anchored = p.epoch();

        // Duplicate New: replace by an identical entry.
        p.insert(1, rect, 1.0);
        assert_eq!(p.epoch(), anchored, "identical re-insert must revert");
        // Duplicate Grown: the entry is already past.
        assert!(p.grow(2));
        assert_eq!(p.epoch(), anchored, "duplicate grow must revert");
        // Remove + identical re-insert: also net zero.
        assert!(p.remove(1).is_some());
        assert!(p.epoch() > anchored);
        p.insert(1, rect, 1.0);
        assert_eq!(p.epoch(), anchored, "remove/re-insert must revert");
        // And the cached-result contract holds: a re-search at the reverted
        // epoch is bitwise the anchored search.
        let mut arena = SweepArena::new();
        assert_matches_rebuild(&mut p, &mut arena);

        // Genuinely new content does advance the epoch.
        p.insert(3, Rect::new(2.0, 2.0, 4.0, 4.0), 1.0);
        assert!(p.epoch() > anchored);
    }

    #[test]
    fn pool_reuse_is_invisible() {
        let mut pool = SweepPool::new();
        let mut a = pool.take(Some(DOMAIN), params(), SweepMode::Persistent);
        a.insert(0, Rect::new(1.0, 1.0, 2.0, 2.0), 1.0);
        let _ = a.search();
        pool.retire(a);
        assert_eq!(pool.retired_stats().searches, 1);
        let mut b = pool.take(Some(DOMAIN), params(), SweepMode::Persistent);
        assert!(b.is_empty());
        let mut arena = SweepArena::new();
        b.insert(5, Rect::new(0.0, 0.0, 4.0, 4.0), 2.0);
        assert_matches_rebuild(&mut b, &mut arena);
        assert_eq!(b.stats().searches, 1);
    }
}
