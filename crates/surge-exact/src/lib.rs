//! # surge-exact
//!
//! Exact solutions to the SURGE problem:
//!
//! * [`sweep`] — SL-CSPOT (Algorithm 1), the sweep-line bursty-point search
//!   on a snapshot of rectangle objects: the production `O(n log n)`
//!   segment-tree sweep [`sl_cspot`] plus the retained `O(n²)` reference
//!   [`sl_cspot_naive`].
//! * [`segtree`] — the flat, arena-friendly lazy max segment trees behind
//!   the sweep (plus the retained recursive reference tree), including the
//!   two-linear-form decomposition that makes range-add max exact for the
//!   non-monotone burst score.
//! * [`cell`] — Cell-CSPOT (Algorithm 2), the continuous exact detector with
//!   lazy cell updates, static + dynamic upper bounds and candidate-point
//!   maintenance over a sharded cell store; also provides the B-CCS
//!   (static-bound-only) ablation, the dirty-cell snapshot API and the
//!   per-shard ingest workers used by the parallel stream drivers.
//! * [`base`] — the Base ablation that searches every affected cell on every
//!   event (no bounds), with an opt-in incumbent-pruned variant.
//! * [`maxrs`] — the α = 0 specialization (classic MaxRS) on the shared
//!   segment tree, kept as a documented optimization/ablation.
//! * [`oracle`] — stateless snapshot oracles (global sweep, greedy top-k,
//!   region scoring) used for testing and the approximation-ratio
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod cell;
pub mod maxrs;
pub mod oracle;
pub mod psweep;
pub mod segtree;
pub mod sweep;

pub use base::BaseDetector;
pub use cell::{
    BoundMode, CellCspot, CellShardWorker, DirtyCellJob, DirtyCellResult, DEFAULT_SHARDS,
};
pub use maxrs::maxrs_sweep;
pub use oracle::{score_of_region, snapshot_bursty_region, snapshot_rects, snapshot_topk};
pub use psweep::{PersistentCellSweep, SweepMode, SweepPool, SweepStats, MIN_CHURN_BUDGET};
pub use segtree::{BurstSegTree, MaxAddTree, RecursiveMaxAddTree, SplitBurstSegTree};
pub use sweep::{
    score_at_point, sl_cspot, sl_cspot_naive, sl_cspot_rebuild, sl_cspot_with, SweepArena,
    SweepRect, SweepResult,
};
