//! # surge-exact
//!
//! Exact solutions to the SURGE problem:
//!
//! * [`sweep`] — SL-CSPOT (Algorithm 1), the sweep-line bursty-point search
//!   on a snapshot of rectangle objects.
//! * [`cell`] — Cell-CSPOT (Algorithm 2), the continuous exact detector with
//!   lazy cell updates, static + dynamic upper bounds and candidate-point
//!   maintenance; also provides the B-CCS (static-bound-only) ablation.
//! * [`base`] — the Base ablation that searches every affected cell on every
//!   event (no bounds).
//! * [`maxrs`] — an `O(n log n)` segment-tree sweep for the α = 0 special
//!   case (classic MaxRS), kept as a documented optimization/ablation.
//! * [`oracle`] — stateless snapshot oracles (global sweep, greedy top-k,
//!   region scoring) used for testing and the approximation-ratio
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod cell;
pub mod maxrs;
pub mod oracle;
pub mod sweep;

pub use base::BaseDetector;
pub use cell::{BoundMode, CellCspot};
pub use maxrs::maxrs_sweep;
pub use oracle::{score_of_region, snapshot_bursty_region, snapshot_rects, snapshot_topk};
pub use sweep::{score_at_point, sl_cspot, SweepRect, SweepResult};
