//! # surge-exact
//!
//! Exact solutions to the SURGE problem:
//!
//! * [`sweep`] — SL-CSPOT (Algorithm 1), the sweep-line bursty-point search
//!   on a snapshot of rectangle objects: the production `O(n log n)`
//!   segment-tree sweep [`sl_cspot`] plus the retained `O(n²)` reference
//!   [`sl_cspot_naive`].
//! * [`segtree`] — the lazily-propagated max segment trees behind the sweep,
//!   including the two-linear-form decomposition that makes range-add max
//!   exact for the non-monotone burst score.
//! * [`cell`] — Cell-CSPOT (Algorithm 2), the continuous exact detector with
//!   lazy cell updates, static + dynamic upper bounds and candidate-point
//!   maintenance; also provides the B-CCS (static-bound-only) ablation and
//!   the dirty-cell snapshot API used by the parallel stream driver.
//! * [`base`] — the Base ablation that searches every affected cell on every
//!   event (no bounds), with an opt-in incumbent-pruned variant.
//! * [`maxrs`] — the α = 0 specialization (classic MaxRS) on the shared
//!   segment tree, kept as a documented optimization/ablation.
//! * [`oracle`] — stateless snapshot oracles (global sweep, greedy top-k,
//!   region scoring) used for testing and the approximation-ratio
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod cell;
pub mod maxrs;
pub mod oracle;
pub mod segtree;
pub mod sweep;

pub use base::BaseDetector;
pub use cell::{BoundMode, CellCspot, DirtyCellJob, DirtyCellResult};
pub use maxrs::maxrs_sweep;
pub use oracle::{score_of_region, snapshot_bursty_region, snapshot_rects, snapshot_topk};
pub use segtree::{BurstSegTree, MaxAddTree};
pub use sweep::{score_at_point, sl_cspot, sl_cspot_naive, SweepRect, SweepResult};
